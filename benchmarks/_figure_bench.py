"""Shared driver for the per-figure benchmark files.

Each ``bench_figN_<app>.py`` regenerates one of the paper's result
figures: it sweeps the full (approach x intra technique x node count)
grid, prints the series the paper plots, evaluates the qualitative
shape checks, and asserts that they hold — so a cost-model regression
that flips a paper finding fails the benchmark suite.

The pytest-benchmark timer measures one full figure regeneration
(single round: a figure is a deterministic batch job, not a
microbenchmark).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.figures import run_figure


def regenerate_figure(benchmark, figure_id: str, scale: str, seed: int) -> None:
    result = benchmark.pedantic(
        run_figure,
        args=(figure_id,),
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    emit(result.to_text())
    failed = [c for c in result.checks if not c.passed]
    assert not failed, (
        f"{figure_id}: {len(failed)} shape check(s) failed:\n"
        + "\n".join(c.line() for c in failed)
    )
