"""Ablation A-1: MPI_Win_lock polling-interval sweep.

The paper attributes the MPI+MPI ``X+SS`` penalty to lock polling
(Zhao et al. [38]).  This ablation sweeps the polling interval and
shows the penalty is a monotone function of it — i.e. a lock
*implementation* artefact, not intrinsic to the hierarchy.
"""

from benchmarks.conftest import emit
from repro.experiments.ablations import ablation_lockpoll


def test_ablation_lockpoll(benchmark, scale, seed):
    report = benchmark.pedantic(
        ablation_lockpoll,
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    emit(report)
    # parse the penalty column and assert it grows with the interval
    penalties = [
        float(line.split()[3].rstrip("x"))
        for line in report.splitlines()
        if line.strip().endswith(tuple("0123456789")) and " us " in line
    ]
    assert len(penalties) >= 3
    assert penalties[-1] > penalties[0], (
        f"penalty should grow with the polling interval: {penalties}"
    )
