"""Ablation A-2: hierarchical MPI+MPI vs flat vs master-worker.

Quantifies what the paper's hierarchy buys over (a) the flat
distributed chunk calculation it extends [15] and (b) the classic
centralised master-worker tools (DLB tool [10]) whose bottleneck
motivated hierarchical DLS in the first place (paper Sec. 2).
"""

from benchmarks.conftest import emit
from repro.experiments.ablations import ablation_models


def test_ablation_models(benchmark, scale, seed):
    report = benchmark.pedantic(
        ablation_models,
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "finding:" in report
    # the hierarchical model must beat master-worker at the largest size
    factor = float(report.split("is ")[-1].split("x faster")[0])
    assert factor > 1.0
