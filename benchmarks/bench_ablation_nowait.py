"""Ablation A-3: the OpenMP ``nowait`` future-work variant (paper Sec. 6).

The paper defers evaluating a nowait-based MPI+OpenMP implementation
(threads fetching chunks themselves through serialised MPI calls) to
future work.  Our simulated OpenMP runtime implements it, so we can
answer the question the paper poses: how much of the implicit-barrier
cost does nowait recover, and does it reach MPI+MPI?
"""

from benchmarks.conftest import emit
from repro.experiments.ablations import ablation_nowait


def test_ablation_nowait(benchmark, scale, seed):
    report = benchmark.pedantic(
        ablation_nowait,
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    emit(report)
    times = {}
    for line in report.splitlines():
        line = line.strip()
        if line.startswith("MPI+") and line.endswith("s"):
            label = line.rsplit(None, 1)[0]
            times[label] = float(line.rsplit(None, 1)[1].rstrip("s"))
    barrier = next(v for k, v in times.items() if "(barrier)" in k)
    nowait = next(v for k, v in times.items() if "nowait" in k)
    # removing the barrier must help on the imbalanced figure workload
    assert nowait < barrier
