"""Ablation A-4: workers-per-node sensitivity.

The paper fixes 16 workers per node.  This sweep shows how the two
approaches respond to the intra-node worker count: the SS
lock-contention penalty grows with ppn (more pollers on one window)
while the X+STATIC advantage persists.
"""

from benchmarks.conftest import emit
from repro.experiments.ablations import ablation_ppn


def test_ablation_ppn(benchmark, scale, seed):
    report = benchmark.pedantic(
        ablation_ppn,
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "finding:" in report
    # sanity: the table has one row per swept ppn value
    rows = [l for l in report.splitlines() if l.strip()[:2].strip().isdigit()]
    assert len(rows) >= 3
