"""Record the cohort-vs-scalar scaling curve to ``BENCH_PR10.json``.

Runs one deterministic two-level SS+GSS cell (the contention-heaviest
eligible shape: a serialized global counter feeding per-node locks
polled by every rank) at a ladder of rank counts through both engines,
and records wall time, events processed and events/s for each.  The
headline acceptance number is the wall-time speedup at >= 10^4 ranks.

The scalar engine's cost grows with *rank-events* (every poll is two
heap-scheduled generator resumes), the cohort engine's with
*macro-events* plus O(1)-amortised deferred poll realisations — the
curve makes that separation visible as data.

Usage::

    PYTHONPATH=src python benchmarks/bench_cohort_scaling.py --out BENCH_PR10.json

Pass ``--quick`` to cap the ladder at ~10^4 ranks (the full curve runs
the scalar engine at 64k ranks, ~4.5 minutes on the reference
machine).  Numbers are machine-dependent; compare snapshots taken on
one machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List


#: (nodes, ppn) ladder; ppn=64 matches the tentpole target topology
LADDER = [(8, 64), (32, 64), (157, 64), (1000, 64)]
N_ITERATIONS = 20000


def _measure(engine: str, nodes: int, ppn: int, repeats: int) -> Dict[str, float]:
    from repro.api import run_hierarchical
    from repro.cluster.machine import homogeneous
    from repro.cluster.noise import NO_NOISE
    from repro.workloads import uniform_workload

    workload = uniform_workload(N_ITERATIONS, low=5e-5, high=2e-3, seed=3)
    # best-of-N: the min is the standard low-noise estimator of the
    # true cost, and taking it for *both* engines keeps the ratio fair
    wall = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_hierarchical(
            workload,
            homogeneous(nodes, ppn),
            inter="SS",
            intra="GSS",
            seed=0,
            noise=NO_NOISE,
            collect_chunks=False,
            engine=engine,
        )
        wall = min(wall, time.perf_counter() - t0)
    return {
        "wall_s": wall,
        "repeats": repeats,
        "events": result.n_events,
        "events_per_s": result.n_events / wall,
        "parallel_time_s": result.parallel_time,
    }


def collect(quick: bool = False, repeats: int = 2) -> List[Dict[str, object]]:
    curve: List[Dict[str, object]] = []
    for nodes, ppn in LADDER:
        ranks = nodes * ppn
        if quick and ranks > 11000:
            print(f"  (--quick: skipping {nodes}x{ppn})", file=sys.stderr)
            continue
        point: Dict[str, object] = {"nodes": nodes, "ppn": ppn, "ranks": ranks}
        for engine in ("scalar", "cohort"):
            print(f"  {engine:<6} {nodes}x{ppn} ({ranks} ranks)...",
                  file=sys.stderr, end="", flush=True)
            point[engine] = _measure(engine, nodes, ppn, repeats)
            print(f" {point[engine]['wall_s']:.2f}s", file=sys.stderr)
        point["speedup"] = (
            point["scalar"]["wall_s"] / point["cohort"]["wall_s"]
        )
        curve.append(point)
    return curve


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--quick", action="store_true",
                        help="cap the ladder at ~10^4 ranks")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of-N repetitions per point (default 2)")
    args = parser.parse_args(argv)

    curve = collect(quick=args.quick, repeats=args.repeats)
    payload = {
        "schema": 1,
        "label": "PR10: rank-aggregated cohort engine scaling curve",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cell": {
            "inter": "SS",
            "intra": "GSS",
            "approach": "mpi+mpi",
            "n_iterations": N_ITERATIONS,
            "noise": "none",
            "seed": 0,
        },
        "curve": curve,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for point in curve:
        print(
            f"{point['ranks']:>6} ranks: scalar "
            f"{point['scalar']['wall_s']:8.2f}s, cohort "
            f"{point['cohort']['wall_s']:7.2f}s  -> {point['speedup']:.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
