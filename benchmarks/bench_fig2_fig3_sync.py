"""Regenerate paper Figures 2 and 3: implicit-synchronisation Gantts.

Figure 2 illustrates OpenMP threads idling at the end-of-worksharing
barrier; Figure 3 the barrier-free MPI+MPI execution of the same work
finishing earlier (t'_end < t_end).  This benchmark renders both ASCII
Gantt charts from real simulated traces and asserts the t_end ordering
plus the presence/absence of implicit-sync intervals.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import run_sync_illustration


def test_fig2_fig3_sync_illustration(benchmark, scale, seed):
    report = benchmark.pedantic(
        run_sync_illustration,
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "[PASS]" in report and "[FAIL]" not in report
    # Figure 2's chart must contain sync glyphs; the combined report
    # also contains compute glyphs for both charts.
    assert "=" in report.split("Figure 3")[0]
