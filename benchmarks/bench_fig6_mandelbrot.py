"""Regenerate paper Figure 6a: mandelbrot under TSS inter-node scheduling.

Sweeps intra-node {STATIC, SS, GSS, TSS, FAC2} over {2, 4, 8, 16} nodes
with 16 workers/node for both implementation approaches (MPI+OpenMP
series exist only for the Intel-runtime schedules, as in the paper),
prints the plotted series, and asserts the paper's qualitative shape
checks.
"""

from benchmarks._figure_bench import regenerate_figure


def test_fig6a_mandelbrot(benchmark, scale, seed):
    regenerate_figure(benchmark, "fig6a", scale, seed)
