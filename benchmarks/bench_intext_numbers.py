"""Reproduce the paper's Section 5 in-text numbers (E-N1 / E-N2).

Quoted values: Mandelbrot GSS+STATIC — MPI+MPI 19.6 s (2 nodes) and
3.1 s (16 nodes) vs MPI+OpenMP 61.5 s and 4.5 s; PSIA GSS+STATIC —
233 s vs 245 s at 2 nodes.  The workloads are rescaled so total work
matches the paper's implied core-seconds; the benchmark prints
paper-vs-measured and asserts every *directional* statement (who wins
where, gap ordering) — absolute seconds are recorded, not asserted
(see EXPERIMENTS.md).
"""

from benchmarks.conftest import emit
from repro.experiments.intext import run_intext


def test_intext_numbers(benchmark, scale, seed):
    report = benchmark.pedantic(
        run_intext,
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    emit(report)
    directional = [l for l in report.splitlines() if l.strip().startswith("[")]
    assert directional, "directional checks missing"
    failed = [l for l in directional if "[FAIL]" in l]
    assert not failed, "directional checks failed:\n" + "\n".join(failed)
