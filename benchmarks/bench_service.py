"""Load-generate the sweep job server and record cross-request dedup.

The "heavy traffic from many users" benchmark behind the PR-9 service:
``N`` concurrent clients POST overlapping sweep grids at one server
sharing a single on-disk cell cache.  Three phases:

* **cold_identical** — every client posts the *same* grid against an
  empty cache.  The in-flight registry must collapse the duplicates:
  unique cells simulate exactly once, everything else attaches.
* **warm_identical** — the same grid again; the cache answers all of it.
* **cold_overlapping** — each client shares a common core grid but adds
  a private technique column, mixing dedup, cache hits and fresh work.

Recorded per phase: end-to-end wall time, cells/s delivered, the
simulated/dedup/cache split from ``GET /metrics``, and the dedup ratio
(requested cells that did *not* trigger a simulation).  Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_PR9.json

Numbers are machine-dependent; compare snapshots taken on one machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import threading
import time
import urllib.request
from typing import Any, Dict, List


def post_sweep(base_url: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """POST one sweep, drain the NDJSON stream, return the trailer."""
    request = urllib.request.Request(
        f"{base_url}/sweep",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    trailer: Dict[str, Any] = {}
    with urllib.request.urlopen(request) as response:
        for line in response:
            trailer = json.loads(line)
    if not trailer.get("done"):
        raise RuntimeError(f"sweep stream ended without trailer: {trailer}")
    if trailer.get("errors"):
        raise RuntimeError(f"sweep reported {trailer['errors']} cell error(s)")
    return trailer


def get_metrics(base_url: str) -> Dict[str, Any]:
    with urllib.request.urlopen(f"{base_url}/metrics") as response:
        return json.loads(response.read())


def run_clients(base_url: str, payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fire one thread per payload simultaneously; aggregate trailers."""
    barrier = threading.Barrier(len(payloads))
    trailers: List[Dict[str, Any]] = [None] * len(payloads)  # type: ignore[list-item]
    failures: List[BaseException] = []

    def client(index: int) -> None:
        try:
            barrier.wait(timeout=30)
            trailers[index] = post_sweep(base_url, payloads[index])
        except BaseException as error:
            failures.append(error)

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(len(payloads))
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    if failures:
        raise failures[0]
    cells = sum(trailer["cells"] for trailer in trailers)
    sources = {"cache": 0, "inflight": 0, "simulated": 0}
    for trailer in trailers:
        for source, count in trailer["sources"].items():
            sources[source] += count
    return {
        "clients": len(payloads),
        "cells_requested": cells,
        "wall_s": wall,
        "cells_per_s": cells / wall if wall > 0 else 0.0,
        "source_cache": sources["cache"],
        "source_inflight": sources["inflight"],
        "source_simulated": sources["simulated"],
        "dedup_ratio": (cells - sources["simulated"]) / cells if cells else 0.0,
    }


def sweep_payload(intras: List[str], scale: str) -> Dict[str, Any]:
    return {
        "workload": {"app": "mandelbrot", "scale": scale},
        "cluster": {"ppn": 4},
        "inter": "GSS",
        "intras": intras,
        "approaches": ["mpi+mpi"],
        "node_counts": [2, 4],
        "seed": 0,
    }


def collect(clients: int, scale: str) -> Dict[str, Dict[str, Any]]:
    from repro.service import create_server

    cache_dir = tempfile.mkdtemp(prefix="bench-service-cache-")
    server = create_server(port=0, jobs=4, cache_dir=cache_dir, quiet=True)
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    core = ["STATIC", "SS", "GSS", "FAC2"]
    private = ["TSS", "mFSC", "FISS", "VISS", "TFSS", "GSS+STATIC"]
    results: Dict[str, Dict[str, Any]] = {}
    try:
        identical = [sweep_payload(core, scale) for _ in range(clients)]
        results["service_cold_identical"] = run_clients(base_url, identical)
        results["service_cold_identical"]["unique_cells"] = len(core) * 2

        results["service_warm_identical"] = run_clients(base_url, identical)

        overlapping = [
            sweep_payload(core + [private[index % len(private)]], scale)
            for index in range(clients)
        ]
        results["service_cold_overlapping"] = run_clients(base_url, overlapping)

        metrics = get_metrics(base_url)
        results["service_server_totals"] = {
            "simulated": metrics["simulated"],
            "completed": metrics["completed"],
            "dedup_hits": metrics["dedup_hits"],
            "cache_hits": metrics["cache_hits"],
            "errors": metrics["errors"],
            "cache_disk_hits": metrics["cache"]["hits"],
            "cache_disk_misses": metrics["cache"]["misses"],
        }
    finally:
        server.shutdown()
        server.server_close()
        server.executor.shutdown()
        thread.join(timeout=10)
        shutil.rmtree(cache_dir, ignore_errors=True)
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR9.json")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent sweep clients (default 6)")
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "quick", "default", "full"])
    parser.add_argument("--label", default="PR9: sweep-as-a-service")
    args = parser.parse_args()

    results = collect(args.clients, args.scale)
    cold = results["service_cold_identical"]
    if cold["source_simulated"] != cold["unique_cells"]:
        raise SystemExit(
            f"dedup broken: {cold['source_simulated']} simulations for "
            f"{cold['unique_cells']} unique cells"
        )
    payload = {
        "label": args.label,
        "schema": 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "benchmarks": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    for name, stats in results.items():
        print(f"  {name}: {json.dumps(stats, sort_keys=True)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
