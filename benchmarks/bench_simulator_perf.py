"""Microbenchmarks of the simulation substrate itself.

These are classic pytest-benchmark measurements (many rounds) of the
hot paths every figure regeneration exercises: the event engine, the
shared-window lock under contention, remote atomics, the OpenMP
worksharing loop, and technique chunk calculation.  They exist so
performance regressions in the simulator show up independently of the
figure-level timings.
"""

import numpy as np

from repro.cluster.machine import homogeneous
from repro.core.techniques import get_technique
from repro.sim import Compute, Simulator
from repro.smpi import MpiWorld


def _run_engine(n_processes: int, n_steps: int) -> float:
    sim = Simulator()

    def proc():
        for _ in range(n_steps):
            yield Compute(1e-6)

    for _ in range(n_processes):
        sim.spawn(proc())
    return sim.run()


def test_engine_event_throughput(benchmark):
    """64 processes x 100 compute events each."""
    result = benchmark(_run_engine, 64, 100)
    assert result > 0


def _run_contended_lock() -> int:
    world = MpiWorld(Simulator(seed=1), homogeneous(1, 16), ppn=16)
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        for _ in range(20):
            yield from shm.lock(ctx)
            yield Compute(1e-6)
            yield from shm.unlock(ctx)

    world.run(main)
    return shm.n_acquisitions


def test_contended_window_lock(benchmark):
    """16 ranks x 20 exclusive lock cycles on one shared window."""
    acquisitions = benchmark(_run_contended_lock)
    assert acquisitions == 320


def _run_remote_atomics() -> int:
    world = MpiWorld(Simulator(seed=1), homogeneous(4, 8), ppn=8)
    win = world.create_window(0, {"step": 0})

    def main(ctx):
        for _ in range(25):
            yield from win.fetch_and_op(ctx, "step", 1)

    world.run(main)
    return win.peek("step")


def test_remote_atomic_throughput(benchmark):
    """32 ranks x 25 fetch_and_op on one hosted window."""
    total = benchmark(_run_remote_atomics)
    assert total == 800


def test_gss_chunk_calculation(benchmark):
    """Memoised serial-sequence unrolling for a large loop."""

    def calc():
        return get_technique("GSS").make(1_000_000, 64).total_steps()

    steps = benchmark(calc)
    assert steps > 100


def test_mandelbrot_cost_vector(benchmark):
    """Vectorised escape-count kernel, 128x128."""
    from repro.workloads.mandelbrot import escape_counts

    counts = benchmark.pedantic(
        escape_counts, args=(128, 128, 256), rounds=3, iterations=1
    )
    assert counts.shape == (128, 128)
    assert counts.max() == 256
