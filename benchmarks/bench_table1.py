"""Regenerate paper Table 1: DLS techniques vs OpenMP schedule clauses.

The table is derived from the technique registry metadata, so this
benchmark guards both the mapping's content and the (trivial) cost of
generating it.
"""

from benchmarks.conftest import emit
from repro.experiments.tables import table1, table1_rows


def test_table1(benchmark):
    text = benchmark(table1)
    emit(text)
    rows = {r["technique"]: r["clause"] for r in table1_rows()}
    assert rows == {
        "STATIC": "schedule(static)",
        "SS": "schedule(dynamic,1)",
        "GSS": "schedule(guided,1)",
    }
    assert "LaPeSD-libGOMP" in text  # extension rows (paper Sec. 2)
