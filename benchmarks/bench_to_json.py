"""Record simulator-substrate throughput to a JSON file.

Times the same hot paths as ``bench_simulator_perf.py`` — the event
engine, the contended shared-window lock, remote atomics, and technique
chunk calculation — without needing pytest-benchmark, and writes the
numbers to a ``BENCH_PR<n>.json`` checked in at the repo root.  The
file seeds the perf trajectory: each PR that touches a hot path records
a new snapshot, so regressions are visible as data rather than lore.

Usage::

    PYTHONPATH=src python benchmarks/bench_to_json.py --out BENCH_PR1.json

Numbers are machine-dependent; compare snapshots taken on one machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict


def _time_best(fn: Callable[[], object], rounds: int, warmup: int = 2) -> Dict[str, float]:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "rounds": rounds,
    }


def collect(rounds: int = 30) -> Dict[str, Dict[str, float]]:
    from bench_simulator_perf import (
        _run_contended_lock,
        _run_engine,
        _run_remote_atomics,
    )
    from repro.core.technique_base import clear_sequence_cache
    from repro.core.techniques import get_technique

    results: Dict[str, Dict[str, float]] = {}

    n_events = 64 * 100 + 64  # 64 procs x 100 delays + 64 spawn kickoffs
    stats = _time_best(lambda: _run_engine(64, 100), rounds)
    stats["events_per_s"] = n_events / stats["best_s"]
    results["engine_event_throughput"] = stats

    stats = _time_best(_run_contended_lock, rounds)
    stats["acquisitions_per_s"] = 320 / stats["best_s"]
    results["contended_window_lock"] = stats

    stats = _time_best(_run_remote_atomics, rounds)
    stats["atomics_per_s"] = 800 / stats["best_s"]
    results["remote_atomic_throughput"] = stats

    def chunk_calc():
        # cold path on purpose: measure the recurrence, not the memo
        clear_sequence_cache()
        return get_technique("GSS").make(1_000_000, 64).total_steps()

    stats = _time_best(chunk_calc, rounds)
    results["gss_chunk_calculation_cold"] = stats

    def chunk_calc_memoised():
        return get_technique("GSS").make(1_000_000, 64).total_steps()

    stats = _time_best(chunk_calc_memoised, rounds)
    results["gss_chunk_calculation_memoised"] = stats

    # Hierarchical depth on a wide node: a fine-grained leaf (SS) makes
    # every worker hammer its local queue's lock.  With one flat node
    # queue all 16 workers poll one lock; splitting the node into 4
    # socket queues (depth 3) divides the requesters per lock by 4, and
    # per-NUMA queues (depth 4) divide them once more.  The simulated
    # total poll wait is the paper-level result; the wall time tracks
    # the event count the contention generates.
    from repro.api import run_hierarchical
    from repro.cluster.machine import homogeneous
    from repro.workloads import uniform_workload

    wl = uniform_workload(2000, low=5e-5, high=5e-4, seed=5)
    hier_rounds = max(5, rounds // 3)

    def run_stack(stack: str, sockets: int, numa: int = 1):
        return run_hierarchical(
            wl,
            homogeneous(1, 16, sockets_per_node=sockets, numa_per_socket=numa),
            inter=stack, approach="mpi+mpi", ppn=16, seed=0,
            collect_chunks=False,
        )

    for key, stack, sockets, numa in (
        ("mpi_mpi_wide_node_two_level", "GSS+SS", 1, 1),
        ("mpi_mpi_wide_node_three_level_sockets", "GSS+FAC2+SS", 4, 1),
        ("mpi_mpi_wide_node_four_level_numa", "GSS+FAC2+FAC2+SS", 4, 2),
    ):
        stats = _time_best(lambda: run_stack(stack, sockets, numa), hier_rounds)
        result = run_stack(stack, sockets, numa)
        stats["simulated_poll_wait_s"] = result.counters["total_poll_wait"]
        stats["lock_acquisitions"] = result.counters["lock_acquisitions"]
        stats["simulated_parallel_time_s"] = result.parallel_time
        results[key] = stats

    # Locality-tier pricing (PR 4): the same wide node re-run under the
    # documented non-zero NUMA/socket penalty preset.  The machine is
    # fixed (4 sockets x 2 NUMA domains, 16 workers); only the *queue
    # placement* changes with the stack depth.  With a flat per-node
    # queue, 14 of 16 workers poll a lock homed in another NUMA domain
    # or socket and pay the penalty on every attempt; per-NUMA queues
    # (depth 4) keep every poll inside the home domain, so simulated
    # lock-poll wait and makespan both drop — the paper's
    # queue-placement result, now priced by distance.
    from repro.cluster.costs import NUMA_PENALTY_COSTS

    def run_priced(stack):
        return run_hierarchical(
            wl,
            homogeneous(1, 16, sockets_per_node=4, numa_per_socket=2),
            inter=stack, approach="mpi+mpi", ppn=16, seed=0,
            collect_chunks=False, costs=NUMA_PENALTY_COSTS,
        )

    for key, stack in (
        ("numa_penalty_flat_node_queue", "GSS+SS"),
        ("numa_penalty_socket_queues", "GSS+FAC2+SS"),
        ("numa_penalty_numa_queues", "GSS+FAC2+FAC2+SS"),
        ("numa_penalty_adapt_leaf", "GSS+FAC2+FAC2+ADAPT"),
    ):
        stats = _time_best(lambda: run_priced(stack), hier_rounds)
        result = run_priced(stack)
        stats["simulated_poll_wait_s"] = result.counters["total_poll_wait"]
        stats["lock_acquisitions"] = result.counters["lock_acquisitions"]
        stats["simulated_parallel_time_s"] = result.parallel_time
        if "adapt_switches" in result.counters:
            stats["adapt_switches"] = result.counters["adapt_switches"]
        results[key] = stats

    # Penalty-aware queue placement (PR 5): leader vs optimized window
    # homes on an *asymmetric* depth-3/4 cluster (heterogeneous node
    # speeds: node 0 slow) under the calibrated locality preset.  The
    # leader rule pins the global RMA window to rank 0 on the slow
    # node, so the fast nodes — which issue most of the global fetches
    # — pay the network round trip on each; optimized placement homes
    # the window with the traffic and the measured distance-priced
    # queue cost (placement_cost_s = shared-window locality penalties
    # + global atomic service time) drops.
    from repro.cluster.costs import CALIBRATED_COSTS
    from repro.cluster.machine import heterogeneous
    from repro.cluster.placement_opt import leader_plan, solve_placement
    from repro.core.hierarchy import HierarchicalSpec as _Spec

    asym = heterogeneous(
        [8, 8], [0.6, 1.4], socket_counts=[2, 2], numa_counts=[2, 2]
    )

    def run_placed(stack, placement):
        return run_hierarchical(
            wl, asym, inter=stack, approach="mpi+mpi", ppn=8, seed=0,
            collect_chunks=False, costs=CALIBRATED_COSTS,
            placement=placement,
        )

    for key, stack in (
        ("placement_depth3_fac2_ss", "FAC2+FAC2+SS"),
        ("placement_depth4_gss_static", "GSS+FAC2+FAC2+STATIC"),
    ):
        stats = _time_best(
            lambda: run_placed(stack, "optimized"), hier_rounds
        )
        lead = run_placed(stack, "leader")
        opt = run_placed(stack, "optimized")
        plan = solve_placement(
            _Spec.parse(stack), wl.n, asym, 8, CALIBRATED_COSTS
        )
        stats["leader_placement_cost_s"] = lead.counters["placement_cost_s"]
        stats["optimized_placement_cost_s"] = opt.counters["placement_cost_s"]
        stats["leader_parallel_time_s"] = lead.parallel_time
        stats["optimized_parallel_time_s"] = opt.parallel_time
        stats["predicted_leader_objective_s"] = leader_plan(
            _Spec.parse(stack), wl.n, asym, 8, CALIBRATED_COSTS
        ).objective
        stats["predicted_optimized_objective_s"] = plan.objective
        stats["windows_moved"] = [str(k) for k in plan.moved]
        results[key] = stats

    # Fault injection + recovery (PR 6): recovery overhead vs the
    # failure-free makespan on a 4x8 mpi+mpi cluster.  Fault-free runs
    # pay nothing (the zero-default guarantee keeps them bit-identical
    # to the seed engine, so their row doubles as the baseline); seeded
    # crash schedules kill ranks mid-run — including rank 0, the global
    # window host and node-0 tier leader — and the simulated makespan
    # measures what lease breaking, window failover and re-depositing
    # the dead ranks' claimed chunks cost on the survivors.
    from repro.cluster.faults import FaultModel
    from repro.cluster.machine import minihpc

    fault_cluster = minihpc(4, 8)
    fault_wl = uniform_workload(2000, low=5e-5, high=5e-4, seed=5)

    def run_faulted(faults):
        return run_hierarchical(
            fault_wl, fault_cluster, inter="FAC2", intra="SS",
            approach="mpi+mpi", ppn=8, seed=0, collect_chunks=False,
            faults=faults,
        )

    fault_free = run_faulted(None)
    for key, faults in (
        ("faults_none_baseline", None),
        (
            "faults_two_crashes",
            FaultModel.random_crashes(2, 4, 8, (5e-4, 5e-3), seed=0),
        ),
        (
            "faults_four_crashes",
            FaultModel.random_crashes(4, 4, 8, (5e-4, 5e-3), seed=0),
        ),
        ("faults_coordinator_crash", FaultModel.parse("crash:0@0.001")),
        (
            "faults_mixed_crash_slow_stall",
            FaultModel.parse("crash:5@0.002,slow:2@0.001:0.5,stall:9@0.001:0.002"),
        ),
    ):
        stats = _time_best(lambda: run_faulted(faults), hier_rounds)
        result = run_faulted(faults)
        stats["simulated_parallel_time_s"] = result.parallel_time
        stats["recovery_overhead_fraction"] = (
            result.parallel_time / fault_free.parallel_time - 1.0
        )
        for counter in (
            "failures_injected",
            "chunks_reexecuted",
            "failovers",
            "lock_leases_broken",
        ):
            if counter in result.counters:
                stats[counter] = result.counters[counter]
        results[key] = stats

    # Distributed chunk calculation (PR 7): coordinator-queue contention
    # vs the single-counter dCC model as ranks-per-node grows.  A
    # fine-grained SS+SS stack makes every rank fetch constantly: the
    # master-worker coordinator serialises request/reply pairs, the
    # mpi+mpi node queues serialise lock-polled refills, and dCC pays
    # exactly one lock-free atomic per chunk — the gap widens with ppn.
    dcc_wl = uniform_workload(2000, low=5e-5, high=5e-4, seed=5)

    def run_dcc_cell(approach, ppn):
        return run_hierarchical(
            dcc_wl, minihpc(4, ppn), inter="SS", intra="SS",
            approach=approach, ppn=ppn, seed=0, collect_chunks=False,
        )

    for ppn in (4, 16, 32):
        for approach in ("master-worker", "mpi+mpi", "dcc"):
            key = f"dcc_contention_{approach.replace('-', '_').replace('+', '_')}_ppn{ppn}"
            stats = _time_best(
                lambda: run_dcc_cell(approach, ppn), hier_rounds
            )
            result = run_dcc_cell(approach, ppn)
            stats["simulated_parallel_time_s"] = result.parallel_time
            for counter in (
                "dcc_steps",
                "global_atomics",
                "global_atomic_time_s",
                "total_poll_wait",
                "lock_acquisitions",
            ):
                if counter in result.counters:
                    stats[counter] = result.counters[counter]
            results[key] = stats

    # Full scheduling roster + ADAPT ladders (PR 8): selector variants
    # head to head on an adversarial spike trace (rare expensive
    # stragglers punish large committed chunks; the forced tail spike
    # punishes coarse endgames).  The fixed-GSS row is the no-selector
    # baseline; the legacy ADAPT row walks SS->FAC2->GSS; the ladder
    # rows add the TSS rung and the dwell/improve hysteresis knobs.
    from repro.cluster.costs import DEFAULT_COSTS
    from repro.workloads import adversarial_workload

    ladder_wl = adversarial_workload("spike", 2000, seed=5)
    ladder_costs = DEFAULT_COSTS.with_overrides(
        **{"mpi.shm_poll_interval": 1.2e-4}
    )

    def run_ladder(stack):
        return run_hierarchical(
            ladder_wl, homogeneous(1, 16), inter=stack, approach="mpi+mpi",
            ppn=16, seed=0, collect_chunks=False, costs=ladder_costs,
        )

    for key, stack in (
        ("roster_ladder_fixed_gss", "GSS+GSS"),
        ("roster_ladder_legacy_adapt", "GSS+ADAPT"),
        ("roster_ladder_tss_rung", "GSS+ADAPT[ss,fac2,tss]"),
        (
            "roster_ladder_hysteresis",
            "GSS+ADAPT[ss,fac2,gss,dwell=4,improve=0.05]",
        ),
        ("roster_fiss_leaf", "GSS+FISS"),
        ("roster_viss_leaf", "GSS+VISS"),
        ("roster_tap_leaf", "GSS+TAP"),
    ):
        stats = _time_best(lambda: run_ladder(stack), hier_rounds)
        result = run_ladder(stack)
        stats["simulated_parallel_time_s"] = result.parallel_time
        if "adapt_switches" in result.counters:
            stats["adapt_switches"] = result.counters["adapt_switches"]
        results[key] = stats

    # Topology-aware native groups: the same depth-4 stack on real
    # threads, groups formed from the machine description.
    from repro.core.hierarchy import HierarchicalSpec
    from repro.native import NativeRunner
    from repro.workloads import mandelbrot_workload

    native_wl = mandelbrot_workload(width=48, height=48, max_iter=64)
    native_cluster = homogeneous(1, 8, sockets_per_node=2, numa_per_socket=2)
    native_spec = HierarchicalSpec.parse("GSS+FAC2+FAC2+SS")

    def run_native():
        return NativeRunner(native_wl, n_workers=8).run_hierarchical(
            native_spec, topology=native_cluster
        )

    sample = run_native()
    stats = _time_best(run_native, max(5, rounds // 3))
    stats["n_leaf_groups"] = len(sample.groups)
    results["native_topology_four_level"] = stats

    # Native simulated-cost reporting: the same machine and preset, the
    # lock ledger priced by worker<->queue distance.  Depth 2 leaves
    # every grab on a per-node queue that most workers reach across a
    # socket; depth 4 keeps grabs NUMA-local.
    flat_result = NativeRunner(native_wl, n_workers=8).run_hierarchical(
        HierarchicalSpec.parse("GSS+SS"),
        topology=native_cluster,
        costs=NUMA_PENALTY_COSTS,
    )
    numa_result = NativeRunner(native_wl, n_workers=8).run_hierarchical(
        native_spec, topology=native_cluster, costs=NUMA_PENALTY_COSTS
    )
    results["native_numa_penalty_queue_placement"] = {
        "best_s": flat_result.wall_seconds,
        "mean_s": flat_result.wall_seconds,
        "rounds": 1,
        "flat_node_lock_penalty_s": flat_result.simulated_lock_penalty_s,
        "numa_queue_lock_penalty_s": numa_result.simulated_lock_penalty_s,
    }

    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR1.json")
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--label", default="", help="free-form snapshot label")
    args = parser.parse_args(argv)

    payload = {
        "schema": 1,
        "label": args.label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": collect(rounds=args.rounds),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, stats in sorted(payload["benchmarks"].items()):
        print(f"{name:<36} best {stats['best_s'] * 1e3:8.3f} ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    import os

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    sys.exit(main())
