"""Shared fixtures for the benchmark/figure-regeneration harness.

Scale control: set ``REPRO_SCALE`` to ``tiny``/``quick``/``default``/
``full`` (benchmarks default to ``quick``: 128x128 Mandelbrot, 16k
spin images — the paper's qualitative shapes hold from ``quick`` up;
``default``/``full`` raise resolution and run time).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated paper series and shape-check PASS/FAIL lines.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_SCALE", "quick").lower()
    allowed = ("tiny", "quick", "default", "full")
    if value not in allowed:
        raise ValueError(f"REPRO_SCALE must be one of {allowed}")
    return value


@pytest.fixture(scope="session")
def seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))


def emit(text: str) -> None:
    """Print a report block (visible with -s, kept in captured logs)."""
    print()
    print(text)
