#!/usr/bin/env python
"""Extending the library with a custom DLS technique.

Implements "HALF-SS": chunks of half the per-PE remainder down to a
floor, i.e. a crude FAC2/GSS hybrid — then plugs it into the same
hierarchical execution models as the built-in techniques and verifies
its schedule covers the loop exactly.

Run:  python examples/custom_technique.py
"""

from repro import minihpc
from repro.core.chunking import unroll, verify_schedule
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.core.technique_base import ChunkCalculator, Technique, ceil_div
from repro.core.techniques import TECHNIQUES
from repro.models import MpiMpiModel
from repro.workloads import mandelbrot_workload


class _HalfSsCalculator(ChunkCalculator):
    """C_i = max(floor, ceil(R_i / (2P)))."""

    def __init__(self, name, n, p, floor=4):
        super().__init__(name, n, p)
        self.floor = floor

    def _next_size(self, remaining, step):
        return max(self.floor, ceil_div(remaining, 2 * self.p))


class HalfSs(Technique):
    name = "HALF-SS"
    description = "Half the per-PE remainder per grab, floored at 4."

    def make(self, n, p, **kwargs):
        return _HalfSsCalculator(self.name, n, p)


def main() -> None:
    technique = HalfSs()

    # 1. serial unrolling + invariant check
    calc = technique.make(1000, 8)
    chunks = unroll(calc)
    verify_schedule(chunks, 1000)
    print(f"HALF-SS on N=1000, P=8 -> {len(chunks)} chunks:")
    print("  sizes:", [c.size for c in chunks][:12], "...")

    # 2. optional: register it so string lookups work everywhere
    TECHNIQUES[technique.name] = technique

    # 3. use it as the intra-node technique of the MPI+MPI model
    workload = mandelbrot_workload(width=96, height=96, max_iter=256)
    spec = HierarchicalSpec(
        inter=LevelSpec.of("GSS"),
        intra=LevelSpec(technique=technique),
    )
    result = MpiMpiModel().run(
        workload=workload, cluster=minihpc(2, 8), spec=spec, ppn=8, seed=0,
    )
    print(f"\nGSS+HALF-SS on 2x8 workers: T = {result.parallel_time:.4f}s")
    print(f"  {result.metrics.summary()}")
    print("\nschedule verified: every iteration executed exactly once "
          "(the model asserts full coverage internally).")


if __name__ == "__main__":
    main()
