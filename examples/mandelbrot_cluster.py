#!/usr/bin/env python
"""Mandelbrot strong-scaling study (the paper's Figure 5a, condensed).

Renders the actual fractal (ASCII), then sweeps cluster sizes for the
GSS+STATIC combination under both implementation approaches and prints
times, speedups, and parallel efficiency.

Run:  python examples/mandelbrot_cluster.py
"""

from repro import minihpc, run_hierarchical
from repro.core.metrics import parallel_efficiency, speedup_series
from repro.workloads.mandelbrot import escape_counts, mandelbrot_workload, render_ascii


def main() -> None:
    region = (-2.5, 1.0, -1.25, 0.0)  # the calibrated figure region
    print("the workload (escape counts, lower half-plane):\n")
    print(render_ascii(escape_counts(96, 48, 128, region), width=72))
    print()

    workload = mandelbrot_workload(
        width=192, height=192, max_iter=512, region=region,
        iter_time=0.5e-6, base_time=0.5e-6,
    )
    print(f"{workload}\n")

    node_counts = (1, 2, 4, 8, 16)
    print(f"{'nodes':>6} | {'mpi+openmp':>12} | {'mpi+mpi':>12} | {'gap':>6}")
    print("-" * 48)
    times = {"mpi+openmp": {}, "mpi+mpi": {}}
    for nodes in node_counts:
        row = [f"{nodes:>6}"]
        for approach in ("mpi+openmp", "mpi+mpi"):
            result = run_hierarchical(
                workload, minihpc(nodes, 16), inter="GSS", intra="STATIC",
                approach=approach, ppn=16, seed=0, collect_chunks=False,
            )
            times[approach][nodes] = result.parallel_time
            row.append(f"{result.parallel_time:>11.4f}s")
        gap = times["mpi+openmp"][nodes] / times["mpi+mpi"][nodes]
        row.append(f"{gap:>5.2f}x")
        print(" | ".join(row))

    print("\nstrong scaling of the MPI+MPI approach:")
    speedups = speedup_series(times["mpi+mpi"])
    efficiency = parallel_efficiency(times["mpi+mpi"])
    for nodes in node_counts:
        bar = "#" * int(round(speedups[nodes] * 3))
        print(f"  {nodes:>3} nodes: speedup {speedups[nodes]:>5.2f}x  "
              f"eff {efficiency[nodes]:>5.1%}  {bar}")


if __name__ == "__main__":
    main()
