#!/usr/bin/env python
"""Really execute a workload on threads with DLS scheduling.

The simulator predicts timing; the native backend actually runs the
kernels.  Here we really compute Mandelbrot escape counts under (a)
flat GSS self-scheduling and (b) the hierarchical two-level scheme
(thread groups with local queues — the MPI+MPI design on one machine),
and verify both produce exactly the serial result.

Run:  python examples/native_threads.py
"""

import numpy as np

from repro.core.hierarchy import HierarchicalSpec
from repro.native import NativeRunner
from repro.workloads import mandelbrot_workload


def main() -> None:
    workload = mandelbrot_workload(width=128, height=128, max_iter=256)
    serial = workload.execute(0, workload.n)  # ground truth

    runner = NativeRunner(workload, n_workers=8, collect_outputs=True)

    # (a) flat GSS self-scheduling
    flat = runner.run_flat("GSS")
    print(f"flat GSS:          {flat.wall_seconds:.3f}s wall, "
          f"{len(flat.chunks)} chunks across {flat.n_workers} threads")

    # (b) hierarchical: 2 groups x 4 threads, GSS over groups, FAC2 inside
    hier = runner.run_hierarchical(HierarchicalSpec.of("GSS", "FAC2"), n_groups=2)
    print(f"hierarchical GSS+FAC2: {hier.wall_seconds:.3f}s wall, "
          f"{len(hier.chunks)} sub-chunks")

    # verify: reassemble outputs and compare to serial execution
    for result in (flat, hier):
        assembled = np.empty(workload.n, dtype=serial.dtype)
        for chunk in result.chunks:
            assembled[chunk.start : chunk.end] = result.outputs[chunk.start]
        assert np.array_equal(assembled, serial), "results differ from serial!"
    print("\nboth schedules reproduced the serial result bit-for-bit")

    print("\nper-thread iteration counts (hierarchical run):")
    for pe, count in sorted(hier.per_worker_iterations.items()):
        busy = hier.per_worker_busy[pe]
        print(f"  thread {pe}: {count:>6} iterations, {busy:.3f}s busy")


if __name__ == "__main__":
    main()
