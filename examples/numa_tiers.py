#!/usr/bin/env python
"""NUMA tiers: depth-4 scheduling stacks and topology-aware threads.

Shows the 4th machine tier end to end:

1. a depth-4 ``W+X+Y+Z`` stack simulated under MPI+MPI on a cluster of
   dual-socket nodes with sub-NUMA clustering, compared against the
   paper-style depth-2 stack on the same hardware;
2. the same spec running on *real threads* through the native
   backend's topology-aware hierarchical mode, whose worker groups are
   socket/NUMA-contiguous blocks formed from the machine description.

Run:  python examples/numa_tiers.py
"""

from repro import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.core.hierarchy import HierarchicalSpec
from repro.native import NativeRunner
from repro.workloads import mandelbrot_workload


def main() -> None:
    # 2 nodes x 2 sockets x 2 NUMA domains x 2 cores = 16 workers
    cluster = homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2)
    workload = mandelbrot_workload(width=64, height=64, max_iter=128)
    print(f"workload: {workload}")
    print(
        "machine: 2 nodes x 2 sockets x 2 NUMA/socket "
        f"({cluster.total_cores} cores)\n"
    )

    # -- 1. simulated: depth-2 vs depth-4 on identical hardware ---------
    for stack in ("GSS+SS", "GSS+FAC2+FAC2+SS"):
        result = run_hierarchical(
            workload, cluster, inter=stack, approach="mpi+mpi",
            ppn=8, seed=0,
        )
        poll = result.counters["total_poll_wait"]
        print(
            f"mpi+mpi {stack:<20} T_par={result.parallel_time:.4f}s  "
            f"simulated lock-poll wait={poll:.4f}s  "
            f"levels={len(result.level_chunks)}"
        )
    print(
        "\nThe fine-grained SS leaf hammers its local queue's lock; "
        "per-NUMA queues\n(each with its own lock) divide the pollers "
        "per lock versus one flat node\nqueue — same protocol, less "
        "contention (paper Sec. 3, generalised).\n"
    )

    # -- 2. native threads: topology-aware groups -----------------------
    runner = NativeRunner(workload, n_workers=16)
    result = runner.run_hierarchical(
        HierarchicalSpec.parse("GSS+FAC2+FAC2+SS"), topology=cluster
    )
    result.verify(workload.n)
    print(
        f"native  GSS+FAC2+FAC2+SS    wall={result.wall_seconds:.3f}s  "
        f"{result.total_iterations} iterations on {result.n_workers} threads"
    )
    print("leaf tier groups (node, socket, numa) -> worker ids:")
    for key in sorted(result.groups):
        print(f"  {key} -> {result.groups[key]}")


if __name__ == "__main__":
    main()
