#!/usr/bin/env python
"""PSIA end-to-end: real spin images + simulated cluster scheduling.

The Parallel Spin-Image Algorithm (paper Sec. 4) converts a 3-D object
into 2-D spin images.  This example:

1. builds the synthetic 3-D object (a sphere with a denser cap),
2. *really* computes a few spin images and prints one,
3. derives the full per-iteration cost trace from neighbourhood sizes,
4. simulates the hierarchical execution on a cluster for several
   scheduling combinations and reports which balances PSIA best.

Run:  python examples/psia_pipeline.py
"""

import numpy as np

from repro import minihpc, run_hierarchical
from repro.workloads.psia import (
    psia_workload,
    spin_image,
    synthetic_object,
)


def ascii_heatmap(hist: np.ndarray, palette: str = " .:-=+*#%@") -> str:
    hi = hist.max()
    norm = hist / hi if hi > 0 else hist
    idx = (norm * (len(palette) - 1)).astype(int)
    return "\n".join("  " + "".join(palette[j] for j in row) for row in idx)


def main() -> None:
    # -- 1+2: real geometry and a real spin image ----------------------
    points, normals = synthetic_object(4096, cluster_fraction=0.25, seed=7)
    print(f"object: {len(points)} oriented points on a noisy sphere")
    image = spin_image(points, normals, index=17, support_radius=0.4, bins=14)
    print("spin image of point 17 (alpha down, beta across):")
    print(ascii_heatmap(image))
    print()

    # -- 3: the workload ------------------------------------------------
    workload = psia_workload(
        n_points=16384, support_radius=0.2,
        cluster_fraction=0.25, cluster_spread=0.5,
        point_time=0.18e-6,
    )
    print(f"{workload}")
    print(f"  (mild imbalance: cov={workload.cov:.2f} vs ~2.0 for Mandelbrot)\n")

    # -- 4: which combination schedules PSIA best? ----------------------
    cluster = minihpc(4, 16)
    combos = [
        ("STATIC", "STATIC"), ("GSS", "STATIC"), ("GSS", "SS"),
        ("GSS", "GSS"), ("FAC2", "FAC2"), ("TSS", "TSS"),
    ]
    print(f"{'combination':<16} {'mpi+mpi':>10} {'mpi+openmp':>12}")
    print("-" * 42)
    best = (None, float("inf"))
    for inter, intra in combos:
        row = [f"{inter}+{intra:<10}"]
        for approach in ("mpi+mpi", "mpi+openmp"):
            try:
                result = run_hierarchical(
                    workload, cluster, inter=inter, intra=intra,
                    approach=approach, ppn=16, seed=0, collect_chunks=False,
                )
                t = result.parallel_time
                if approach == "mpi+mpi" and t < best[1]:
                    best = (f"{inter}+{intra}", t)
                row.append(f"{t:>9.4f}s")
            except Exception as exc:  # TSS intra needs the extended runtime
                row.append(f"{'n/a':>9}")
        print(" ".join(row))
    print(f"\nbest MPI+MPI combination for PSIA here: {best[0]} "
          f"({best[1]:.4f}s)")


if __name__ == "__main__":
    main()
