#!/usr/bin/env python
"""Anatomy of the two-level work queue (the paper's Figure 1).

Instruments one MPI+MPI run to show what the architecture actually
does: how many chunks each node pulled from the global RMA queue, who
refilled the local queues (the paper's "fastest process takes the
responsibility"), and what the window-lock contention looked like.

Run:  python examples/queue_anatomy.py
"""

from collections import Counter

from repro import minihpc, run_hierarchical
from repro.workloads import mandelbrot_workload


def main() -> None:
    workload = mandelbrot_workload(
        width=128, height=128, max_iter=512,
        region=(-2.5, 1.0, -1.25, 0.0),
    )
    result = run_hierarchical(
        workload, minihpc(2, 8), inter="FAC2", intra="GSS",
        approach="mpi+mpi", ppn=8, seed=0,
        collect_chunks=True,
    )
    print(f"run: {result.describe()}\n")

    # -- global work queue ------------------------------------------------
    per_node = Counter(c.pe for c in result.chunks)
    print("global work queue (RMA window on rank 0):")
    print(f"  atomic operations:        {result.counters['global_atomics']}")
    print(f"  of which cross-network:   {result.counters['remote_atomics']}")
    for node, count in sorted(per_node.items()):
        iters = sum(c.size for c in result.chunks if c.pe == node)
        print(f"  node {node}: fetched {count} chunks covering {iters} iterations")

    # -- local work queues -------------------------------------------------
    print("\nlocal work queues (MPI-3 shared-memory windows):")
    for node, stats in sorted(result.counters["lock_stats"].items()):
        print(
            f"  node {node}: {stats['acquisitions']:.0f} lock acquisitions, "
            f"{stats['mean_attempts']:.2f} attempts/acquire "
            f"(max {stats['max_attempts']:.0f}), "
            f"{stats['total_poll_wait'] * 1e3:.2f} ms spent lock-polling, "
            f"{stats['syncs']:.0f} win_syncs"
        )

    # -- who does the work ---------------------------------------------------
    print("\nper-worker sub-chunk counts (self-balancing in action):")
    per_worker = Counter(c.pe for c in result.subchunks)
    for rank in sorted(per_worker):
        bar = "#" * per_worker[rank]
        print(f"  rank {rank:>2}: {per_worker[rank]:>3} sub-chunks {bar}")
    print(
        "\nNote the asymmetry: workers that drew cheap iterations grabbed\n"
        "more sub-chunks — the 'fastest process fills the queue' behaviour\n"
        "that replaces a designated coordinator (paper Sec. 3)."
    )


if __name__ == "__main__":
    main()
