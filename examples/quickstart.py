#!/usr/bin/env python
"""Quickstart: simulate hierarchical DLS on a small cluster.

Builds the Mandelbrot workload, runs the paper's two implementation
approaches for one scheduling combination, and prints the comparison —
the smallest end-to-end use of the public API.

Run:  python examples/quickstart.py
"""

from repro import minihpc, run_hierarchical
from repro.workloads import mandelbrot_workload


def main() -> None:
    # 1. a workload: 128x128 Mandelbrot escape-time image, one loop
    #    iteration per pixel; per-pixel cost derived from the real kernel
    workload = mandelbrot_workload(width=128, height=128, max_iter=512)
    print(f"workload: {workload}")
    print(f"  serial time on one core: {workload.total_cost:.3f} s")
    print(f"  iteration-cost variability (cov): {workload.cov:.2f}\n")

    # 2. a machine: 4 nodes x 16 cores, Omni-Path-like fabric (the
    #    paper's miniHPC testbed)
    cluster = minihpc(n_nodes=4, cores_per_node=16)

    # 3. run the same scheduling combination under both approaches
    for approach in ("mpi+openmp", "mpi+mpi"):
        result = run_hierarchical(
            workload,
            cluster,
            inter="GSS",      # GSS across nodes
            intra="STATIC",   # static splits within each node
            approach=approach,
            ppn=16,
            seed=0,
        )
        print(f"{approach:>11}: parallel loop time = "
              f"{result.parallel_time:.4f} s   ({result.metrics.summary()})")

    print(
        "\nThe MPI+MPI approach wins because no worker ever waits at an\n"
        "implicit barrier: whoever drains the node's shared work queue\n"
        "first refills it from the global queue (paper Sec. 3, Fig. 1-3)."
    )


if __name__ == "__main__":
    main()
