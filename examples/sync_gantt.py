#!/usr/bin/env python
"""Regenerate the paper's Figures 2 and 3 as ASCII Gantt charts.

Figure 2: OpenMP threads idle ('=') at the implicit barrier terminating
each chunk's worksharing loop.  Figure 3: the MPI+MPI execution of the
same work — the fastest worker refills the shared queue ('o') and
nobody waits; t'_end < t_end.

Run:  python examples/sync_gantt.py
"""

from repro.experiments.figures import run_sync_illustration


def main() -> None:
    print(run_sync_illustration(scale="quick", seed=0))


if __name__ == "__main__":
    main()
