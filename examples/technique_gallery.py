#!/usr/bin/env python
"""Gallery: the chunk-size profile of every DLS technique.

Prints, for each registered technique, the serial chunk-size sequence
on a reference loop — the "DLS spectrum" from fully static to fully
dynamic that the paper's Section 2 surveys — plus a one-run comparison
of their load-balancing quality on an imbalanced workload.

Run:  python examples/technique_gallery.py
"""

import numpy as np

from repro import minihpc, run_hierarchical
from repro.core import IterationProfile, TECHNIQUES, unroll
from repro.workloads import mandelbrot_workload

N, P = 1000, 8
PROFILE = IterationProfile(mu=1e-3, sigma=0.4e-3)


def sequence_of(name: str):
    technique = TECHNIQUES[name]
    calc = technique.make(
        N, P, profile=PROFILE, weights=None, rng=np.random.default_rng(0)
    )
    return [c.size for c in unroll(calc)]


def main() -> None:
    print(f"chunk-size sequences for N={N}, P={P} "
          "(first 10 chunks, then count):\n")
    for name in sorted(TECHNIQUES):
        seq = sequence_of(name)
        head = ", ".join(f"{s:>3}" for s in seq[:10])
        print(f"  {name:<7} [{head}{', ...' if len(seq) > 10 else ''}]  "
              f"-> {len(seq)} chunks")

    print("\nscheduling quality on imbalanced Mandelbrot (4 nodes x 8):")
    workload = mandelbrot_workload(width=96, height=96, max_iter=256,
                                   region=(-2.5, 1.0, -1.25, 0.0))
    cluster = minihpc(4, 8)
    print(f"  {'technique':<8} {'T(s)':>9} {'cov':>6} {'chunks':>7}")
    for name in ("STATIC", "SS", "GSS", "TAP", "TSS", "TFSS", "FAC",
                 "FAC2", "mFSC", "AF", "AWF-B", "RND"):
        result = run_hierarchical(
            workload, cluster, inter=name, intra="GSS", approach="mpi+mpi",
            ppn=8, seed=0, collect_chunks=False,
            inter_profile=workload.profile(),
        )
        print(f"  {name:<8} {result.parallel_time:>9.4f} "
              f"{result.metrics.cov_finish:>6.3f} "
              f"{result.metrics.total_chunks:>7}")
    print("\n(the adaptive techniques shine on heterogeneous clusters — "
        "see tests/test_models_heterogeneous.py)")


if __name__ == "__main__":
    main()
