#!/usr/bin/env python
"""Adaptive weighted factoring across application time steps.

Iterative scientific applications (the AWF setting, paper Sec. 2)
execute the same parallel loop once per time step.  This example runs
an iterative loop on a heterogeneous cluster whose node speeds the
scheduler does *not* know, and shows AWF learning the 3:1 speed ratio
from measured rates — the parallel time dropping as the weights
converge.

Run:  python examples/timestepped_awf.py
"""

from repro.cluster.machine import heterogeneous
from repro.cluster.noise import NO_NOISE
from repro.core.timestepping import TimeSteppedLoop
from repro.models import MpiMpiModel
from repro.workloads import gaussian_workload


class QuietMpiMpi(MpiMpiModel):
    """Noise off so the convergence is easy to read."""

    def run(self, **kwargs):
        kwargs.setdefault("noise", NO_NOISE)
        return super().run(**kwargs)


def main() -> None:
    # node 0: nominal cores; node 1: 3x faster (e.g. a newer partition)
    cluster = heterogeneous([8, 8], core_speeds=[1.0, 3.0], name="mixed")
    workload = gaussian_workload(8192, mu=1e-3, sigma=2e-4, seed=5)

    loop = TimeSteppedLoop(
        model=QuietMpiMpi(),
        workload=workload,
        cluster=cluster,
        inter="AWF",   # weighted factoring with adapted weights
        intra="GSS",
        ppn=8,
    )
    print("time-stepped AWF on a 1x/3x heterogeneous cluster")
    print("(weights start uniform; the scheduler knows nothing)\n")
    for _ in range(5):
        result = loop.run_step()
        record = loop.history[-1]
        w = record.weights_used
        print(f"  step {record.step}: T={record.parallel_time:.4f}s   "
              f"weights node0={w[0]:.2f} node1={w[1]:.2f}")

    first, last = loop.history[0], loop.history[-1]
    print(f"\nlearned weight ratio: "
          f"{loop.weights[1] / loop.weights[0]:.2f} (true speed ratio: 3.0)")
    print(f"parallel time: {first.parallel_time:.4f}s -> "
          f"{last.parallel_time:.4f}s")


if __name__ == "__main__":
    main()
