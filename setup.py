"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` also works on
environments whose setuptools/pip lack PEP-660 editable-wheel support
(e.g. offline boxes without the ``wheel`` package installed)::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-serve=repro.service.server:main",
        ],
    },
)
