"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` also works on
environments whose setuptools/pip lack PEP-660 editable-wheel support
(e.g. offline boxes without the ``wheel`` package installed)::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
