"""repro — Hierarchical Dynamic Loop Self-Scheduling, MPI+MPI vs MPI+OpenMP.

A production-quality reproduction of:

    A. Eleliemy and F. M. Ciorba, "Hierarchical Dynamic Loop
    Self-Scheduling on Distributed-Memory Systems Using an MPI+MPI
    Approach", 2019 (arXiv:1903.09510).

The package simulates a distributed-memory cluster (discrete-event
engine, MPI runtime with RMA/shared-memory windows, OpenMP runtime) and
implements hierarchical dynamic loop self-scheduling on top of it in
both of the paper's flavours:

* **MPI+MPI** (the paper's contribution) — global RMA work queue plus a
  per-node shared-memory local queue; no implicit barriers; the fastest
  free process refills the local queue.
* **MPI+OpenMP** (the baseline) — one MPI process per node obtaining
  chunks via distributed chunk calculation, executed by an OpenMP team
  with an implicit barrier per chunk.

Quick start::

    from repro import run_hierarchical, minihpc
    from repro.workloads import mandelbrot_workload

    wl = mandelbrot_workload(width=128, height=128)
    result = run_hierarchical(
        workload=wl, cluster=minihpc(4), approach="mpi+mpi",
        inter="GSS", intra="STATIC", ppn=16,
    )
    print(result.metrics.summary())

See README.md for the full tour and docs/ARCHITECTURE.md for the
architecture.
"""

from repro.api import run_hierarchical, run_model
from repro.cluster import ClusterSpec, NodeSpec, minihpc
from repro.core import (
    TECHNIQUES,
    Chunk,
    HierarchicalSpec,
    IterationProfile,
    get_technique,
    list_techniques,
)

__version__ = "1.0.0"

__all__ = [
    "Chunk",
    "ClusterSpec",
    "HierarchicalSpec",
    "IterationProfile",
    "NodeSpec",
    "TECHNIQUES",
    "__version__",
    "get_technique",
    "list_techniques",
    "minihpc",
    "run_hierarchical",
    "run_model",
]
