"""High-level convenience API.

Wraps the execution models behind two functions so that the common case
(run one hierarchical combination on a cluster and read the metrics)
is a single call.  Imports of the heavier layers happen lazily so that
``import repro`` stays cheap for users who only need the technique
calculators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import ClusterSpec
    from repro.core.hierarchy import HierarchicalSpec
    from repro.models.base import ExecutionModel, RunResult
    from repro.workloads.base import Workload

#: canonical names for the implementation approaches
APPROACHES = ("mpi+mpi", "mpi+openmp", "flat-mpi", "master-worker", "dcc")


def _resolve_model(approach: str) -> "ExecutionModel":
    from repro.models import (
        DccModel,
        FlatMpiModel,
        MasterWorkerModel,
        MpiMpiModel,
        MpiOpenMpModel,
    )

    key = (
        approach.strip().lower()
        .replace("_", "").replace("-", "").replace(" ", "")
    )
    table = {
        "mpi+mpi": MpiMpiModel,
        "mpimpi": MpiMpiModel,
        "mpi+openmp": MpiOpenMpModel,
        "mpiopenmp": MpiOpenMpModel,
        "flatmpi": FlatMpiModel,
        "masterworker": MasterWorkerModel,
        "dcc": DccModel,
    }
    if key not in table:
        raise ValueError(f"unknown approach {approach!r}; choose from {APPROACHES}")
    return table[key]()


def run_hierarchical(
    workload: "Workload",
    cluster: "ClusterSpec",
    inter: Union[str, Any],
    intra: Union[str, Any, None] = None,
    approach: str = "mpi+mpi",
    ppn: Optional[int] = None,
    seed: int = 0,
    collect_trace: bool = False,
    collect_chunks: bool = True,
    costs: Optional[Any] = None,
    noise: Optional[Any] = None,
    placement: Any = "leader",
    faults: Union[str, Any, None] = None,
    max_sim_time: Optional[float] = None,
    dcc: bool = False,
    engine: str = "scalar",
    **spec_kwargs: Any,
) -> "RunResult":
    """Run one hierarchical DLS combination and return its result.

    Parameters
    ----------
    workload:
        The loop to schedule (see :mod:`repro.workloads`).
    cluster:
        Machine description (e.g. :func:`repro.cluster.minihpc`).
    inter / intra:
        Technique names or :class:`~repro.core.technique_base.Technique`
        instances for the scheduling levels (the paper's ``X+Y``).
        Either argument may itself be a ``+``-joined stack — the level
        stack is the concatenation of both, so ``inter="GSS",
        intra="FAC2+STATIC"`` and ``inter="GSS+FAC2+STATIC"`` (with
        ``intra`` omitted) both produce the same three-level
        cluster -> node -> socket configuration; a fourth level
        schedules each socket's NUMA domains
        (cluster -> node -> socket -> numa -> core).
    approach:
        ``"mpi+mpi"`` (paper's contribution), ``"mpi+openmp"``
        (baseline), ``"flat-mpi"`` or ``"master-worker"`` (ablations),
        or ``"dcc"`` (distributed chunk calculation, arXiv 2101.07050:
        the stack is flattened ahead of time and every rank resolves
        its own chunks from one fetch-and-incremented counter —
        deterministic techniques only).
    ppn:
        Workers per node (defaults to each node's core count).
    seed:
        Simulation seed (noise, RND technique, tie-breaking).
    collect_trace:
        Record a :class:`repro.core.trace.Trace` (Gantt) — slower.
    costs / noise:
        Override the :class:`repro.cluster.costs.CostModel` /
        :class:`repro.cluster.noise.NoiseModel`.
    placement:
        Work-queue window homes (mpi+mpi only): ``"leader"`` (default —
        global window on rank 0, each tier window first-touched by its
        group leader, bit-exact with the historical behaviour),
        ``"optimized"`` (homes solved by
        :mod:`repro.cluster.placement_opt` to minimise predicted priced
        traffic), or an explicit ``{window key -> rank}`` mapping
        (``"global"`` pins the RMA host).
    faults:
        A :class:`repro.cluster.faults.FaultModel`, or a spec string
        like ``"crash:5@0.002,slow:2@0.001:0.5"`` (see
        :meth:`~repro.cluster.faults.FaultModel.parse`).  ``None`` or an
        inactive model keeps every code path bit-identical to the
        fault-free engine.  Active faults require a failure-aware model
        (``mpi+mpi``, ``flat-mpi`` or ``master-worker``).
    max_sim_time:
        Engine watchdog deadline in simulated seconds; a run that has
        not completed by then raises
        :class:`repro.sim.engine.SimulationTimeout` with diagnostics
        instead of spinning forever.
    dcc:
        Run the given mpi+mpi level stack in dCC mode: same composed
        chunk schedule, but dispensed from the single global counter
        instead of the hierarchical queues (equivalent to
        ``approach="dcc"``; only valid with the mpi+mpi approach).
    engine:
        Event-execution strategy: ``"scalar"`` (default — one simulated
        process per rank) or ``"cohort"`` (the rank-aggregated
        macro-event engine of :mod:`repro.sim.cohorts`, which groups
        rank-symmetric events into cohorts for large rank counts).
        Cohort results are bit-exact with the scalar engine — eligible
        deterministic configurations replay the same event stream in
        condensed form (only ``RunResult.n_events`` counts macro events
        instead of scalar events), and everything else transparently
        falls back to the scalar path whole-run.

    Returns
    -------
    RunResult
        With ``.parallel_time``, ``.metrics``, ``.chunks``, ``.trace``.
    """
    from repro.core.hierarchy import HierarchicalSpec, split_stack

    if isinstance(faults, str):
        from repro.cluster.faults import FaultModel

        faults = FaultModel.parse(faults)
    spec = HierarchicalSpec.of_levels(
        *split_stack(inter), *split_stack(intra), **spec_kwargs
    )
    if dcc:
        resolved = _resolve_model(approach)
        if resolved.name not in ("mpi+mpi", "dcc"):
            raise ValueError(
                f"dcc=True reroutes an mpi+mpi level stack through the "
                f"distributed-chunk-calculation model; it does not apply "
                f"to approach={approach!r}"
            )
        approach = "dcc"
    model = _resolve_model(approach)
    return model.run(
        workload=workload,
        cluster=cluster,
        spec=spec,
        ppn=ppn,
        seed=seed,
        collect_trace=collect_trace,
        collect_chunks=collect_chunks,
        costs=costs,
        noise=noise,
        placement=placement,
        faults=faults,
        max_sim_time=max_sim_time,
        engine=engine,
    )


def run_model(
    model: "ExecutionModel",
    workload: "Workload",
    cluster: "ClusterSpec",
    spec: "HierarchicalSpec",
    **kwargs: Any,
) -> "RunResult":
    """Run an explicit :class:`~repro.models.base.ExecutionModel` instance."""
    return model.run(workload=workload, cluster=cluster, spec=spec, **kwargs)
