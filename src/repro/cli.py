"""Command-line interface.

Examples::

    repro techniques                       # list the DLS roster
    repro table1                           # regenerate paper Table 1
    repro figure --id fig5a                # regenerate a paper figure
    repro figure --id fig4b --scale quick --nodes 2,4
    repro sync                             # Figures 2/3 Gantt charts
    repro intext                           # Sec. 5 in-text numbers
    repro ablation --id lockpoll           # A-1 .. A-4
    repro run --app mandelbrot --inter GSS --intra STATIC \
              --approach mpi+mpi --nodes 4   # one simulated execution
    repro run --techniques GSS+FAC2+STATIC --sockets 2 --nodes 4 \
              --ppn 16                       # three-level stack
              # (GSS across nodes, FAC2 across each node's sockets,
              #  STATIC across each socket's cores)
    repro run --techniques GSS+FAC2+FAC2+STATIC --sockets 2 --numa 2 \
              --nodes 4 --ppn 16             # four-level stack
              # (… FAC2 across each socket's NUMA domains, STATIC
              #  across each NUMA domain's cores)
    repro run --techniques GSS+FAC2+FAC2+ADAPT --sockets 2 --numa 2 \
              --nodes 4 --ppn 16 --numa-costs
              # ADAPT leaf: runtime-selected SS/FAC2/GSS per NUMA
              # queue, under the non-zero NUMA/socket penalty preset
    repro run --techniques "GSS+ADAPT[ss,fac2,tss]" --nodes 4 --ppn 16
              # configured selector ladder: the node-level queue is
              # refilled by a selector walking ss->fac2->tss (quote the
              # brackets for the shell)
    repro run --techniques GSS+FAC2+FAC2+STATIC --sockets 2 --numa 2 \
              --nodes 4 --ppn 16 --placement optimized --costs calibrated
              # penalty-aware queue placement: window homes solved to
              # minimise predicted priced traffic, calibrated penalties
    repro run --techniques FAC2+SS --nodes 4 --ppn 4 \
              --faults crash:5@0.002,slow:2@0.001:0.5
              # fault injection: rank 5 crash-stops at t=2ms, rank 2
              # runs at half speed from t=1ms; the run completes on the
              # survivors (see docs/ROBUSTNESS.md)
    repro run --approach dcc --techniques GSS+FAC2 --nodes 4 --ppn 16
              # distributed chunk calculation: the stack is flattened
              # ahead of time, every rank fetch-and-increments one
              # global counter and resolves its chunk locally (no
              # coordinator, no queues); --dcc reroutes an mpi+mpi
              # stack the same way
    repro serve --port 8752 --jobs 4 --cache-dir .cellcache
              # sweep-as-a-service: accept sweep specs as JSON
              # (POST /sweep), dedupe concurrent duplicates against the
              # shared cell cache, stream per-cell results as NDJSON
              # (see docs/SERVICE.md)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_techniques(args: argparse.Namespace) -> int:
    from repro.core import list_techniques

    print(f"{'name':<8} {'OpenMP clause':<22} {'flags':<28} description")
    print("-" * 100)
    for row in list_techniques():
        flags = ",".join(
            flag
            for flag, on in (
                ("adaptive", row["adaptive"]),
                ("pe-dep", row["pe_dependent"]),
                ("profile", row["needs_profile"]),
                ("weights", row["needs_weights"]),
            )
            if on
        )
        clause = row["openmp_clause"] or (
            "ext" if row["openmp_extension_clause"] else "-"
        )
        print(f"{row['name']:<8} {clause:<22} {flags:<28} {row['description']}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.tables import table1

    print(table1(include_extensions=not args.paper_only))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import FIGURES, run_figure

    ids = sorted(FIGURES) if args.id == "all" else [args.id]
    node_counts = (
        tuple(int(n) for n in args.nodes.split(",")) if args.nodes else None
    )
    ok = True
    for figure_id in ids:
        result = run_figure(
            figure_id,
            scale=args.scale,
            seed=args.seed,
            node_counts=node_counts,
            progress=print if args.verbose else None,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        print(result.to_text())
        print()
        ok &= result.all_passed
    return 0 if ok else 1


def _cmd_sync(args: argparse.Namespace) -> int:
    from repro.experiments.figures import run_sync_illustration

    print(run_sync_illustration(scale=args.scale or "quick", seed=args.seed))
    return 0


def _cmd_intext(args: argparse.Namespace) -> int:
    from repro.experiments.intext import run_intext

    print(run_intext(scale=args.scale or "default", seed=args.seed))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    table = {
        "lockpoll": ablations.ablation_lockpoll,
        "models": ablations.ablation_models,
        "nowait": ablations.ablation_nowait,
        "ppn": ablations.ablation_ppn,
    }
    ids = sorted(table) if args.id == "all" else [args.id]
    for ablation_id in ids:
        if ablation_id not in table:
            print(f"unknown ablation {ablation_id!r}; known: {sorted(table)}")
            return 2
        print(table[ablation_id](scale=args.scale, seed=args.seed))
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import run_hierarchical
    from repro.cluster.costs import COST_PRESETS
    from repro.cluster.machine import minihpc
    from repro.cluster.noise import HARSH_NOISE, MILD_NOISE, NO_NOISE
    from repro.experiments.workloads import figure_workload

    noise = {"mild": MILD_NOISE, "none": NO_NOISE, "harsh": HARSH_NOISE}[
        args.noise
    ]

    workload = figure_workload(args.app, args.scale or "quick")
    if args.techniques is not None:
        # full ``+``-joined stack, any depth (overrides --inter/--intra)
        inter, intra = args.techniques, None
    else:
        inter, intra = args.inter, args.intra
    preset = args.costs
    if args.numa_costs:
        if preset not in (None, "numa"):
            print("--numa-costs conflicts with --costs; pick one")
            return 2
        preset = "numa"  # legacy alias for --costs numa
    costs = COST_PRESETS[preset or "default"]
    result = run_hierarchical(
        workload,
        minihpc(
            args.nodes,
            args.ppn,
            sockets_per_node=args.sockets,
            numa_per_socket=args.numa,
        ),
        inter=inter,
        intra=intra,
        approach=args.approach,
        ppn=args.ppn,
        seed=args.seed,
        collect_trace=args.gantt,
        collect_chunks=False,
        costs=costs,
        placement=args.placement,
        faults=args.faults,
        max_sim_time=args.max_sim_time,
        dcc=args.dcc,
        engine=args.engine,
        noise=noise,
    )
    print(result.describe())
    print(result.metrics.summary())
    if "failures_injected" in result.counters:
        dead = result.counters.get("dead_ranks", [])
        dead_text = ",".join(str(r) for r in dead) if dead else "none"
        print(
            f"faults: {result.counters['failures_injected']} injected "
            f"(dead ranks: {dead_text}), "
            f"{result.counters['chunks_reexecuted']} chunk(s) re-executed, "
            f"{result.counters['failovers']} failover(s), "
            f"{result.counters['lock_leases_broken']} lease(s) broken"
        )
    if "placement_cost_s" in result.counters:
        moved = result.counters.get("placement_moved", ())
        moved_text = (
            ", ".join(str(key) for key in moved) if moved else "none"
        )
        print(
            f"placement: {result.counters['placement']} "
            f"(priced queue traffic "
            f"{result.counters['placement_cost_s'] * 1e6:.1f}us, "
            f"windows moved: {moved_text})"
        )
    if "adapt_final_modes" in result.counters:
        modes = ", ".join(
            f"{mode}x{count}"
            for mode, count in sorted(result.counters["adapt_final_modes"].items())
        )
        print(
            f"ADAPT: {result.counters['adapt_switches']} switch(es), "
            f"final modes {modes}"
        )
    if args.gantt:
        print(result.trace.render_gantt(width=100))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import main as serve_main

    forwarded: List[str] = ["--host", args.host, "--port", str(args.port),
                            "--jobs", str(args.jobs)]
    if args.cache_dir is not None:
        forwarded += ["--cache-dir", args.cache_dir]
    if args.quiet:
        forwarded += ["--quiet"]
    return serve_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Hierarchical dynamic loop self-scheduling (MPI+MPI vs "
            "MPI+OpenMP) — simulation & reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("techniques", help="list the DLS technique roster")
    p.set_defaults(fn=_cmd_techniques)

    p = sub.add_parser("table1", help="regenerate paper Table 1")
    p.add_argument("--paper-only", action="store_true",
                   help="omit the LaPeSD-libGOMP extension rows")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("figure", help="regenerate paper figures 4-7")
    p.add_argument("--id", default="all",
                   help="fig4a..fig7b or 'all' (default)")
    p.add_argument("--scale", default=None,
                   choices=["tiny", "quick", "default", "full"])
    p.add_argument("--nodes", default=None,
                   help="comma-separated node counts (default 2,4,8,16)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="simulate independent grid cells on N processes")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed on-disk cell cache directory")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("sync", help="regenerate figures 2/3 (Gantt charts)")
    p.add_argument("--scale", default=None,
                   choices=["tiny", "quick", "default", "full"])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_sync)

    p = sub.add_parser("intext", help="reproduce the Sec. 5 in-text numbers")
    p.add_argument("--scale", default=None,
                   choices=["tiny", "quick", "default", "full"])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_intext)

    p = sub.add_parser("ablation", help="run ablations A-1..A-4")
    p.add_argument("--id", default="all",
                   help="lockpoll | models | nowait | ppn | all")
    p.add_argument("--scale", default=None,
                   choices=["tiny", "quick", "default", "full"])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_ablation)

    p = sub.add_parser("run", help="run one simulated loop execution")
    p.add_argument("--app", default="mandelbrot",
                   choices=["mandelbrot", "psia"])
    p.add_argument("--approach", default="mpi+mpi",
                   help="execution model: mpi+mpi (paper), mpi+openmp, "
                        "flat-mpi, master-worker, or dcc (distributed "
                        "chunk calculation: one global counter, chunks "
                        "resolved locally from the flattened stack)")
    p.add_argument("--dcc", action="store_true",
                   help="run the given mpi+mpi level stack in dCC mode "
                        "(same composed schedule, dispensed from the "
                        "single global counter; shorthand for "
                        "--approach dcc)")
    p.add_argument("--engine", default="scalar",
                   choices=["scalar", "cohort"],
                   help="execution engine: scalar replays every rank as "
                        "its own coroutine; cohort batches rank-symmetric "
                        "events into aggregated macro-events (bit-identical "
                        "results on eligible deterministic cells, orders of "
                        "magnitude faster at high rank counts; ineligible "
                        "cells transparently fall back to scalar)")
    p.add_argument("--noise", default="mild",
                   choices=["mild", "none", "harsh"],
                   help="execution-time noise model (default mild: the "
                        "paper's calibrated scatter; none makes the run "
                        "fully deterministic, which is what the cohort "
                        "engine's fast path requires)")
    p.add_argument("--inter", default="GSS")
    p.add_argument("--intra", default="STATIC")
    p.add_argument("--techniques", default=None, metavar="W+X[+Y[+Z]]",
                   help="full scheduling stack, one technique per level "
                        "(e.g. GSS+FAC2+STATIC schedules nodes, then each "
                        "node's sockets, then each socket's cores; a 4th "
                        "level schedules each socket's NUMA domains; ADAPT "
                        "at any level selects SS/FAC2/GSS at runtime, and "
                        "ADAPT[ss,fac2,tss] configures the candidate ladder "
                        "with optional window=/dwell=/improve= knobs); "
                        "overrides --inter/--intra")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--sockets", type=int, default=1,
                   help="sockets per node (the machine tier a 3-level "
                        "stack schedules at)")
    p.add_argument("--numa", type=int, default=1,
                   help="NUMA domains per socket (the 4th machine tier a "
                        "4-level stack schedules at)")
    p.add_argument("--ppn", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", default=None,
                   choices=["tiny", "quick", "default", "full"])
    p.add_argument("--costs", default=None,
                   choices=["default", "numa", "calibrated"],
                   help="cost preset: 'default' (distance-blind), 'numa' "
                        "(the stress-test NUMA/socket penalty preset), or "
                        "'calibrated' (penalties derived from published "
                        "STREAM/Intel-MLC latency ratios; see "
                        "docs/PLACEMENT.md)")
    p.add_argument("--numa-costs", action="store_true",
                   help="legacy alias for --costs numa")
    p.add_argument("--placement", default="leader",
                   choices=["leader", "optimized"],
                   help="work-queue window homes (mpi+mpi): 'leader' pins "
                        "each window to its tier-group leader (the paper's "
                        "rule); 'optimized' solves for homes minimising "
                        "predicted priced traffic "
                        "(repro.cluster.placement_opt)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault schedule: comma-joined crash:R@T (rank R "
                        "crash-stops at simulated time T), slow:R@T:F "
                        "(rank R runs at speed fraction F from T) and "
                        "stall:R@T:D (rank R freezes for D seconds) "
                        "tokens, e.g. crash:5@0.002,slow:2@0.001:0.5; "
                        "requires a failure-aware approach (mpi+mpi, "
                        "flat-mpi, master-worker)")
    p.add_argument("--max-sim-time", type=float, default=None,
                   metavar="SECONDS",
                   help="engine watchdog: abort with diagnostics if the "
                        "simulation passes this simulated time")
    p.add_argument("--gantt", action="store_true",
                   help="render an ASCII Gantt chart of the execution")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("serve", help="run the sweep job server "
                                     "(POST /sweep over the shared cell "
                                     "cache; see docs/SERVICE.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8752,
                   help="TCP port (default 8752; 0 = ephemeral)")
    p.add_argument("--jobs", type=int, default=2,
                   help="simulation worker processes")
    p.add_argument("--cache-dir", default=None,
                   help="shared content-addressed cell cache directory")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-request access logging")
    p.set_defaults(fn=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
