"""Cluster machine model (substrate S2).

Describes the simulated hardware: nodes, cores, per-core speed
variation, OS noise, and the interconnect cost model.  The default
parameters approximate the paper's *miniHPC* testbed: 16 dual-socket
Intel Xeon nodes (16 workers per node used in the evaluation) joined by
a 100 Gbit/s Omni-Path-like fabric in a non-blocking fat tree.
"""

from repro.cluster.costs import NUMA_PENALTY_COSTS, MpiCosts, OmpCosts
from repro.cluster.interconnect import Interconnect, Tier
from repro.cluster.machine import ClusterSpec, NodeSpec, minihpc
from repro.cluster.noise import NoiseModel
from repro.cluster.topology import Placement, block_placement

__all__ = [
    "ClusterSpec",
    "Interconnect",
    "MpiCosts",
    "NUMA_PENALTY_COSTS",
    "NodeSpec",
    "NoiseModel",
    "OmpCosts",
    "Placement",
    "Tier",
    "block_placement",
    "minihpc",
]
