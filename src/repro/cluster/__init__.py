"""Cluster machine model (substrate S2).

Describes the simulated hardware: nodes, cores, per-core speed
variation, OS noise, the interconnect cost model, and the
penalty-aware window-placement optimizer.  The default parameters
approximate the paper's *miniHPC* testbed: 16 dual-socket Intel Xeon
nodes (16 workers per node used in the evaluation) joined by a
100 Gbit/s Omni-Path-like fabric in a non-blocking fat tree.

Conventions (see each module's docstring for details): every latency
and cost in this package is in **seconds**, and every distance/penalty
query takes **MPI ranks** — the rank -> (node, socket, numa, core)
mapping lives in :class:`~repro.cluster.topology.Placement`, so node
indices never leak into cost queries.
"""

from repro.cluster.costs import (
    CALIBRATED_COSTS,
    COST_PRESETS,
    NUMA_PENALTY_COSTS,
    MpiCosts,
    OmpCosts,
)
from repro.cluster.interconnect import Interconnect, Tier
from repro.cluster.machine import ClusterSpec, NodeSpec, minihpc
from repro.cluster.noise import NoiseModel
from repro.cluster.placement_opt import (
    PlacementPlan,
    leader_plan,
    predict_profile,
    solve_placement,
)
from repro.cluster.topology import Placement, block_placement

__all__ = [
    "CALIBRATED_COSTS",
    "COST_PRESETS",
    "ClusterSpec",
    "Interconnect",
    "MpiCosts",
    "NUMA_PENALTY_COSTS",
    "NodeSpec",
    "NoiseModel",
    "OmpCosts",
    "Placement",
    "PlacementPlan",
    "Tier",
    "block_placement",
    "leader_plan",
    "minihpc",
    "predict_profile",
    "solve_placement",
]
