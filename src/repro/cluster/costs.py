"""Cost tables for the simulated MPI and OpenMP runtimes.

Every latency that shapes the paper's results is an explicit, documented
parameter here, and **every value is in seconds**.  Cost tables are
pure lookup: they take locality *tiers* (integers, see
:class:`repro.cluster.interconnect.Tier`), never ranks or node indices —
classifying a rank pair into a tier is the
:class:`~repro.cluster.interconnect.Interconnect`'s job.  Defaults are
calibrated so that full-scale runs land on the magnitudes reported in
the paper (Section 5); see
``repro.experiments.calibration`` and EXPERIMENTS.md for the procedure.

The two decisive knobs (paper Sections 5-6):

* ``shm_poll_interval`` — MPI passive-target ``MPI_Win_lock`` uses *lock
  polling* (Zhao et al. [38]): a process that fails to get the lock
  re-issues a lock-attempt message after this interval.  Under 16-way
  intra-node contention this makes every lock handoff cost a large
  fraction of the polling interval, which is why ``X+SS`` is the worst
  combination for the MPI+MPI approach.
* ``omp_barrier_base``/``omp_barrier_log`` — the implicit barrier at the
  end of each OpenMP worksharing loop.  The barrier itself is cheap; the
  *idle time it induces* (waiting for the slowest thread) is what the
  MPI+MPI approach eliminates for ``X+STATIC``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict


@dataclass(frozen=True)
class MpiCosts:
    """Latency model for the simulated MPI runtime (seconds)."""

    # --- two-sided ----------------------------------------------------
    #: software overhead added by sender/receiver per message
    p2p_overhead: float = 0.4e-6
    #: messages larger than this use the rendezvous protocol (extra RTT)
    eager_limit: int = 64 * 1024

    # --- one-sided (RMA) over the network ------------------------------
    #: remote atomic (fetch_and_op / compare_and_swap) processing time at
    #: the target, excluding network latency
    rma_atomic: float = 0.9e-6
    #: get/put processing overhead, excluding latency + payload/bandwidth
    rma_transfer_overhead: float = 0.6e-6

    # --- MPI-3 shared-memory windows -----------------------------------
    #: issuing one lock-attempt message for MPI_Win_lock (passive-target
    #: epoch open: progress-engine round trip, not just a CAS)
    shm_lock_attempt: float = 1.4e-6
    #: lock-polling retry interval when the lock is busy (the key knob)
    shm_poll_interval: float = 60e-6
    #: MPI_Win_unlock (epoch close + flush)
    shm_unlock: float = 1.1e-6
    #: MPI_Win_sync memory barrier
    shm_win_sync: float = 1.0e-6
    #: load/store/read-modify-write on a shared window, per access
    shm_access: float = 0.12e-6
    #: remote atomics on a *local* (same-node) window — cheaper than
    #: network RMA but dearer than plain shared loads
    shm_atomic: float = 0.5e-6

    # --- locality-tier penalties (NUMA/socket distance) ----------------
    #
    # Each knob prices *leaving* one machine boundary, and applies to
    # every operation at that distance **or farther** (crossing a
    # socket implies leaving the home NUMA domain; leaving the node
    # implies both — the data still exits the home domain on its way
    # to the NIC).  This accumulate-outward rule is what guarantees
    # cost monotonicity in distance (same-NUMA <= same-socket <=
    # same-node <= network) for *any* non-negative knob values, which
    # the property suite pins.  All default to 0, keeping the seed's
    # distance-blind model bit-exact.
    #
    #: extra cost of a load/store whose target memory lives outside the
    #: accessing core's NUMA domain (on-die mesh / remote-NUMA access).
    remote_numa_load_penalty: float = 0.0
    #: extra cost of an atomic / lock-attempt message targeting memory
    #: outside the accessing core's NUMA domain (cache-line transfer +
    #: directory hop).
    remote_numa_atomic_penalty: float = 0.0
    #: *additional* cost (on top of the remote-NUMA penalties) when the
    #: access also leaves the socket (UPI/QPI link).  Applies to loads
    #: and atomics alike.
    cross_socket_penalty: float = 0.0

    # --- collectives ----------------------------------------------------
    #: per-stage cost of log-tree collectives (barrier/bcast/reduce)
    collective_stage: float = 0.7e-6

    def tier_load_penalty(self, tier: int) -> float:
        """Per-access load/store penalty for a :class:`~repro.cluster.interconnect.Tier`.

        Penalties accumulate outward: crossing a socket implies crossing
        a NUMA boundary, so with non-negative knobs the penalty is
        monotonically non-decreasing in distance — the property the
        tier-monotonicity tests pin.  ``tier`` is compared numerically
        to avoid a circular import with :mod:`repro.cluster.interconnect`
        (SAME_NUMA=0 < SAME_SOCKET=1 < SAME_NODE=2 <= NETWORK=3).
        """
        penalty = 0.0
        if tier >= 1:  # leaves the home NUMA domain
            penalty += self.remote_numa_load_penalty
        if tier >= 2:  # additionally leaves the home socket
            penalty += self.cross_socket_penalty
        return penalty

    def tier_atomic_penalty(self, tier: int) -> float:
        """Per-op atomic/lock-message penalty for a tier (see
        :meth:`tier_load_penalty` for the accumulation rule)."""
        penalty = 0.0
        if tier >= 1:
            penalty += self.remote_numa_atomic_penalty
        if tier >= 2:
            penalty += self.cross_socket_penalty
        return penalty

    def p2p_time(self, nbytes: int, same_node: bool, network_latency: float,
                 network_bandwidth: float) -> float:
        """End-to-end time for one two-sided message of ``nbytes``."""
        if same_node:
            latency = 0.25e-6  # shared-memory transport
            bandwidth = 40e9
        else:
            latency = network_latency
            bandwidth = network_bandwidth
        time = self.p2p_overhead + latency + nbytes / bandwidth
        if nbytes > self.eager_limit:
            time += latency + self.p2p_overhead  # rendezvous handshake RTT
        return time

    def rma_atomic_time(self, same_node: bool, network_latency: float) -> float:
        """One remote atomic op (fetch&op / CAS), round trip."""
        if same_node:
            return self.shm_atomic
        return self.rma_atomic + 2.0 * network_latency


@dataclass(frozen=True)
class OmpCosts:
    """Latency model for the simulated OpenMP runtime (seconds)."""

    #: one-time team fork for a parallel region
    fork: float = 4.0e-6
    #: join/implicit barrier at region end uses barrier model below
    #: atomic capture used by schedule(dynamic)/(guided) chunk grabs
    atomic: float = 0.18e-6
    #: entering/leaving a worksharing loop (bookkeeping, no barrier)
    worksharing_init: float = 0.25e-6
    #: barrier cost model: base + log * ceil(log2(threads))
    barrier_base: float = 0.9e-6
    barrier_log: float = 0.35e-6

    def barrier_time(self, n_threads: int) -> float:
        """Seconds one OpenMP barrier costs for a team of ``n_threads``."""
        if n_threads <= 1:
            return 0.0
        return self.barrier_base + self.barrier_log * math.ceil(
            math.log2(max(2, n_threads))
        )


@dataclass(frozen=True)
class CostModel:
    """Bundle of all runtime cost tables plus chunk-calculation cost."""

    mpi: MpiCosts = MpiCosts()
    omp: OmpCosts = OmpCosts()
    #: evaluating a DLS closed form (a handful of flops) on any CPU
    chunk_calc: float = 0.08e-6

    def with_overrides(self, **kwargs: Any) -> "CostModel":
        """Functional update helper: dotted keys reach into sub-tables.

        >>> CostModel().with_overrides(**{"mpi.shm_poll_interval": 1e-4})
        """
        mpi_kw: Dict[str, Any] = {}
        omp_kw: Dict[str, Any] = {}
        top_kw: Dict[str, Any] = {}
        for key, value in kwargs.items():
            if key.startswith("mpi."):
                mpi_kw[key[4:]] = value
            elif key.startswith("omp."):
                omp_kw[key[4:]] = value
            else:
                top_kw[key] = value
        out = self
        if mpi_kw:
            out = replace(out, mpi=replace(out.mpi, **mpi_kw))
        if omp_kw:
            out = replace(out, omp=replace(out.omp, **omp_kw))
        if top_kw:
            out = replace(out, **top_kw)
        return out


DEFAULT_COSTS = CostModel()

#: Documented non-zero locality preset (used by ``BENCH_PR4.json`` and
#: the ``repro run --numa-costs`` CLI flag): remote-NUMA loads cost
#: about two thirds of a local shared access extra, remote-NUMA atomics
#: roughly double, and crossing the socket adds a UPI-link hop on top.
#: Magnitudes follow published Xeon remote-NUMA/QPI latency ratios
#: (~1.6x remote-NUMA, ~2-3x cross-socket for coherent RMW traffic).
NUMA_PENALTY_COSTS = DEFAULT_COSTS.with_overrides(
    **{
        "mpi.remote_numa_load_penalty": 0.08e-6,
        "mpi.remote_numa_atomic_penalty": 0.4e-6,
        "mpi.cross_socket_penalty": 0.6e-6,
    }
)

#: Calibrated locality preset: the same three knobs, but set from
#: published latency measurements instead of round stress-test numbers
#: (the full derivation, with sources, lives in ``docs/PLACEMENT.md``):
#:
#: * ``remote_numa_load_penalty = 10 ns`` — the far-domain load surcharge
#:   inside one socket under sub-NUMA clustering (Intel MLC on SNC-2
#:   Xeon-SP parts: ~81 ns near-domain vs ~91 ns far-domain DRAM).
#: * ``remote_numa_atomic_penalty = 50 ns`` — same-socket cross-domain
#:   cache-line transfer for an RMW (core-to-core latency measurements
#:   on mesh Xeons: ~45-55 ns across the die).
#: * ``cross_socket_penalty = 200 ns`` — the QPI/UPI hop.  Loads pay
#:   ~50-60 ns extra across sockets (MLC remote-DRAM on Broadwell-EP,
#:   the miniHPC CPU: ~85 ns local vs ~140 ns remote) while coherent
#:   RMW traffic pays ~250-350 ns; the single shared knob is set to the
#:   traffic-weighted compromise of 200 ns, biased toward the atomic
#:   side because lock messages dominate the queues' cross-socket
#:   traffic.
CALIBRATED_COSTS = DEFAULT_COSTS.with_overrides(
    **{
        "mpi.remote_numa_load_penalty": 0.01e-6,
        "mpi.remote_numa_atomic_penalty": 0.05e-6,
        "mpi.cross_socket_penalty": 0.2e-6,
    }
)

#: Named cost presets, the single lookup behind the CLI's ``--costs``
#: flag and the sweep helpers.  All values are :class:`CostModel`
#: bundles (every latency in seconds).
COST_PRESETS: Dict[str, CostModel] = {
    "default": DEFAULT_COSTS,
    "numa": NUMA_PENALTY_COSTS,
    "calibrated": CALIBRATED_COSTS,
}
