"""Deterministic fault-injection model for simulated runs.

A :class:`FaultModel` describes *what goes wrong and when* during a
simulated execution: crash-stop events (a rank dies at a simulated
time, measured in seconds), fail-slow degradation (a rank's execution
speed is multiplied by a factor from some time on), and transient
stalls (a rank freezes for a fixed number of seconds).  Like
:class:`~repro.cluster.noise.NoiseModel` it is **zero-default**: the
empty model injects nothing, and passing ``faults=None`` (or an empty
``FaultModel()``) to a run leaves every event stream bit-identical to
a fault-free execution.

Conventions
-----------
* all times and durations are **seconds** of simulated time;
* all fault targets are MPI **rank** numbers (block placement:
  ``rank = node * ppn + core``), never node indices;
* the model is immutable and hashable-by-value, so it can participate
  in sweep cache keys.

Crash detection is not instantaneous: survivors learn of a death only
``detection_latency`` seconds after it happens (the failure-detector
timeout), and a rank polling a lock held by a dead owner waits one
``lease_timeout`` before breaking the lease.

The optional :meth:`FaultModel.random_crashes` constructor draws a
seeded random crash schedule — the fault-model analogue of the noise
model's seeded perturbations — while keeping at least one survivor
per node.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CrashStop",
    "FailSlow",
    "TransientStall",
    "FaultModel",
    "NO_FAULTS",
]


@dataclass(frozen=True)
class CrashStop:
    """Kill ``rank`` at simulated ``time`` (seconds): it stops forever."""

    rank: int
    time: float

    def describe(self) -> str:
        """The CLI spec token for this event (``crash:r@t``)."""
        return f"crash:{self.rank}@{self.time:g}"


@dataclass(frozen=True)
class FailSlow:
    """From ``time`` (seconds) on, ``rank`` computes at ``factor`` x speed.

    ``factor`` is a speed multiplier in (0, 1]: ``0.5`` halves the
    rank's effective core speed.  Multiple events targeting the same
    rank compound multiplicatively.
    """

    rank: int
    time: float
    factor: float

    def describe(self) -> str:
        """The CLI spec token for this event (``slow:r@t:f``)."""
        return f"slow:{self.rank}@{self.time:g}:{self.factor:g}"


@dataclass(frozen=True)
class TransientStall:
    """``rank`` freezes for ``duration`` seconds starting at ``time``.

    Models a transient hiccup (page fault storm, OS jitter burst): the
    stall inflates the first execution that observes it, then clears.
    """

    rank: int
    time: float
    duration: float

    def describe(self) -> str:
        """The CLI spec token for this event (``stall:r@t:d``)."""
        return f"stall:{self.rank}@{self.time:g}:{self.duration:g}"


@dataclass(frozen=True)
class FaultModel:
    """An immutable schedule of injected failures (zero-default).

    ``detection_latency`` is the failure-detector timeout in seconds:
    the delay between a rank dying and survivors acting on its death
    (reclaiming its chunks, failing over its windows).
    ``lease_timeout`` is the extra wait, in seconds, a lock poller
    spends confirming a dead owner before breaking the lease.
    """

    crashes: Tuple[CrashStop, ...] = ()
    slowdowns: Tuple[FailSlow, ...] = ()
    stalls: Tuple[TransientStall, ...] = ()
    detection_latency: float = 200e-6
    lease_timeout: float = 120e-6

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        for crash in self.crashes:
            if crash.time < 0.0:
                raise ValueError(f"crash time must be >= 0, got {crash.time}")
        for slow in self.slowdowns:
            if not 0.0 < slow.factor <= 1.0:
                raise ValueError(
                    f"fail-slow factor must be in (0, 1], got {slow.factor}"
                )
            if slow.time < 0.0:
                raise ValueError(f"fail-slow time must be >= 0, got {slow.time}")
        for stall in self.stalls:
            if stall.duration < 0.0 or stall.time < 0.0:
                raise ValueError(
                    f"stall time/duration must be >= 0, got {stall}"
                )
        if self.detection_latency < 0.0 or self.lease_timeout < 0.0:
            raise ValueError("detection_latency/lease_timeout must be >= 0")
        seen = set()
        for crash in self.crashes:
            if crash.rank in seen:
                raise ValueError(f"rank {crash.rank} crashes more than once")
            seen.add(crash.rank)

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when the model injects at least one fault event."""
        return bool(self.crashes or self.slowdowns or self.stalls)

    @property
    def crashed_ranks(self) -> Tuple[int, ...]:
        """Ranks killed by this schedule, in crash-time order."""
        return tuple(c.rank for c in self.crash_timeline())

    def crash_timeline(self) -> Tuple[CrashStop, ...]:
        """Crash events sorted by (time, rank) — the injection order."""
        return tuple(sorted(self.crashes, key=lambda c: (c.time, c.rank)))

    def speed_factor(self, rank: int, time: float) -> float:
        """Compound fail-slow speed multiplier for ``rank`` at ``time``."""
        factor = 1.0
        for slow in self.slowdowns:
            if slow.rank == rank and slow.time <= time:
                factor *= slow.factor
        return factor

    def stalls_of(self, rank: int) -> List[TransientStall]:
        """Stall events targeting ``rank``, sorted by onset time."""
        return sorted(
            (s for s in self.stalls if s.rank == rank),
            key=lambda s: (s.time, s.duration),
        )

    def validate(self, world_size: int) -> None:
        """Raise ``ValueError`` if any event targets a rank outside
        ``[0, world_size)``."""
        for event in (*self.crashes, *self.slowdowns, *self.stalls):
            if not 0 <= event.rank < world_size:
                raise ValueError(
                    f"fault targets rank {event.rank}, but the world has "
                    f"only ranks 0..{world_size - 1}"
                )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Round-trippable CLI spec string (``parse(describe())`` is
        equivalent to the model, knobs aside)."""
        events = [
            *self.crash_timeline(),
            *sorted(self.slowdowns, key=lambda s: (s.time, s.rank)),
            *sorted(self.stalls, key=lambda s: (s.time, s.rank)),
        ]
        return ",".join(event.describe() for event in events) or "none"

    def signature(self) -> Optional[Dict[str, Any]]:
        """Cache-key payload: ``None`` when inactive (so an empty model
        keys identically to ``faults=None``), else a plain dict."""
        if not self.active:
            return None
        return dataclasses.asdict(self)

    # ------------------------------------------------------------------
    @classmethod
    def parse(
        cls,
        spec: str,
        detection_latency: float = 200e-6,
        lease_timeout: float = 120e-6,
    ) -> "FaultModel":
        """Parse a CLI fault spec.

        The spec is a comma-separated list of events::

            crash:R@T        kill rank R at time T seconds
            slow:R@T:F       rank R runs at F x speed from time T
            stall:R@T:D      rank R freezes for D seconds at time T

        e.g. ``crash:3@0.05,slow:1@0.02:0.5``.  ``"none"`` or the
        empty string yields the inactive model.
        """
        crashes: List[CrashStop] = []
        slowdowns: List[FailSlow] = []
        stalls: List[TransientStall] = []
        text = spec.strip()
        if text and text.lower() != "none":
            for token in text.split(","):
                token = token.strip()
                if not token:
                    continue
                try:
                    kind, _, rest = token.partition(":")
                    rank_text, _, tail = rest.partition("@")
                    rank = int(rank_text)
                    if kind == "crash":
                        crashes.append(CrashStop(rank, float(tail)))
                    elif kind == "slow":
                        time_text, _, factor_text = tail.partition(":")
                        slowdowns.append(
                            FailSlow(rank, float(time_text), float(factor_text))
                        )
                    elif kind == "stall":
                        time_text, _, dur_text = tail.partition(":")
                        stalls.append(
                            TransientStall(rank, float(time_text), float(dur_text))
                        )
                    else:
                        raise ValueError(f"unknown fault kind {kind!r}")
                except (ValueError, TypeError) as exc:
                    raise ValueError(
                        f"bad fault token {token!r} (expected crash:R@T, "
                        f"slow:R@T:F or stall:R@T:D): {exc}"
                    ) from exc
        return cls(
            crashes=tuple(crashes),
            slowdowns=tuple(slowdowns),
            stalls=tuple(stalls),
            detection_latency=detection_latency,
            lease_timeout=lease_timeout,
        )

    @classmethod
    def random_crashes(
        cls,
        n_crashes: int,
        n_nodes: int,
        ppn: int,
        t_window: Tuple[float, float],
        seed: int = 0,
        detection_latency: float = 200e-6,
        lease_timeout: float = 120e-6,
    ) -> "FaultModel":
        """Draw a seeded random crash-stop schedule.

        Picks ``n_crashes`` distinct victim ranks uniformly, capped at
        ``ppn - 1`` crashes per node so every node keeps at least one
        survivor (the hierarchy's refill trees stay serviceable), with
        crash times uniform over ``t_window`` seconds.  The same
        ``seed`` always yields the same schedule.
        """
        if ppn < 2 and n_crashes > 0:
            raise ValueError(
                "random_crashes needs ppn >= 2 to keep a survivor per node"
            )
        rng = np.random.default_rng(
            np.random.SeedSequence(int(seed), spawn_key=(0xFA117,))
        )
        per_node: Dict[int, int] = {}
        victims: List[int] = []
        candidates = list(range(n_nodes * ppn))
        rng.shuffle(candidates)
        for rank in candidates:
            if len(victims) >= n_crashes:
                break
            node = rank // ppn
            if per_node.get(node, 0) >= ppn - 1:
                continue
            per_node[node] = per_node.get(node, 0) + 1
            victims.append(rank)
        if len(victims) < n_crashes:
            raise ValueError(
                f"cannot place {n_crashes} crashes on {n_nodes}x{ppn} ranks "
                f"with one survivor per node"
            )
        lo, hi = t_window
        times = sorted(float(t) for t in rng.uniform(lo, hi, size=len(victims)))
        return cls(
            crashes=tuple(
                CrashStop(rank, time) for rank, time in zip(sorted(victims), times)
            ),
            detection_latency=detection_latency,
            lease_timeout=lease_timeout,
        )


#: the canonical inactive model (shared, immutable)
NO_FAULTS = FaultModel()
