"""Interconnect model: who is close to whom, and what transfers cost.

The paper's fabric (Intel Omni-Path, non-blocking fat tree) gives
distance-independent node-to-node latency, so *network* transfers
reduce to one class.  Inside a node, however, the machine has tiers —
NUMA domain ⊂ socket ⊂ node — and the cost of a shared-memory access
or atomic depends on which boundary it crosses.  :class:`Interconnect`
classifies any pair of **ranks** into a locality :class:`Tier` using
the job's :class:`~repro.cluster.topology.Placement` and prices
messages, atomics and one-sided transfers accordingly.

The per-tier penalties (:class:`~repro.cluster.costs.MpiCosts`
``remote_numa_*``/``cross_socket_penalty``) default to zero, which
collapses the model back to the seed's two-class (same node vs
network) behaviour bit-exactly.

Historically this class took *node indices* while every caller held
*ranks*; the rank→node mapping now lives here (the class owns the
placement), so callers pass ranks and cannot confuse the two spaces.
All returned times and penalties are in seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.costs import MpiCosts
from repro.cluster.machine import ClusterSpec
from repro.cluster.topology import Placement


class Tier(enum.IntEnum):
    """Locality class of a rank pair, ordered by distance.

    The integer order is load-bearing: cost penalties accumulate
    outward (``SAME_NUMA <= SAME_SOCKET <= SAME_NODE <= NETWORK`` for
    identical payloads — the monotonicity property the test suite
    pins).
    """

    SAME_NUMA = 0
    SAME_SOCKET = 1
    SAME_NODE = 2
    NETWORK = 3


def tier_between(path_a, path_b) -> Tier:
    """Locality tier of two ``(node, socket, numa)`` machine paths.

    The single owner of the coordinate -> tier cascade: every consumer
    (rank pairs here, the native runner's worker/queue pricing, the
    OpenMP team-span surcharge) classifies through this function so the
    tier ordering cannot desynchronise between cost reports.
    """
    if path_a[0] != path_b[0]:
        return Tier.NETWORK
    if path_a[1] != path_b[1]:
        return Tier.SAME_NODE
    if path_a[2] != path_b[2]:
        return Tier.SAME_SOCKET
    return Tier.SAME_NUMA


@dataclass(frozen=True)
class Interconnect:
    """Answer latency/bandwidth queries for rank pairs of one placement."""

    cluster: ClusterSpec
    costs: MpiCosts
    placement: Placement

    # -- distance classification ---------------------------------------
    def distance(self, rank_a: int, rank_b: int) -> Tier:
        """Locality tier of the pair — symmetric in its arguments."""
        return tier_between(
            self.placement.slots[rank_a], self.placement.slots[rank_b]
        )

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two *ranks* share a node (shared-memory transport)."""
        return self.placement.node_of(rank_a) == self.placement.node_of(rank_b)

    # -- per-tier penalties --------------------------------------------
    def load_penalty(self, rank_a: int, rank_b: int) -> float:
        """Extra per-access cost of a shared load/store between the pair."""
        return self.costs.tier_load_penalty(self.distance(rank_a, rank_b))

    def atomic_penalty(self, rank_a: int, rank_b: int) -> float:
        """Extra per-op cost of an atomic / lock message between the pair."""
        return self.costs.tier_atomic_penalty(self.distance(rank_a, rank_b))

    # -- priced operations ---------------------------------------------
    def message_time(self, rank_a: int, rank_b: int, nbytes: int) -> float:
        """Two-sided message transfer time between two ranks."""
        tier = self.distance(rank_a, rank_b)
        return self.costs.p2p_time(
            nbytes,
            same_node=tier is not Tier.NETWORK,
            network_latency=self.cluster.network_latency,
            network_bandwidth=self.cluster.network_bandwidth,
        ) + self.costs.tier_load_penalty(tier)

    def atomic_time(self, origin: int, target: int) -> float:
        """One-sided remote atomic round trip between two ranks."""
        tier = self.distance(origin, target)
        return self.costs.rma_atomic_time(
            same_node=tier is not Tier.NETWORK,
            network_latency=self.cluster.network_latency,
        ) + self.costs.tier_atomic_penalty(tier)

    def transfer_time(self, origin: int, target: int, nbytes: int) -> float:
        """One-sided get/put time between two ranks."""
        tier = self.distance(origin, target)
        penalty = self.costs.tier_load_penalty(tier)
        if tier is not Tier.NETWORK:
            return self.costs.rma_transfer_overhead + nbytes / 40e9 + penalty
        return (
            self.costs.rma_transfer_overhead
            + self.cluster.network_latency
            + nbytes / self.cluster.network_bandwidth
            + penalty
        )
