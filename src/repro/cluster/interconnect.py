"""Interconnect model: who is close to whom, and what transfers cost.

The paper's fabric (Intel Omni-Path, non-blocking fat tree) gives
distance-independent node-to-node latency, so the model reduces to a
two-class distinction — same node (shared memory transport) vs
different node (network) — plus a bandwidth term for payloads.  The
class is still structured as a graph-style query interface so that
blocking topologies can be added without touching the MPI layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.costs import MpiCosts
from repro.cluster.machine import ClusterSpec


@dataclass(frozen=True)
class Interconnect:
    """Answer latency/bandwidth queries for a given cluster + cost table."""

    cluster: ClusterSpec
    costs: MpiCosts

    def same_node(self, node_a: int, node_b: int) -> bool:
        return node_a == node_b

    def message_time(self, node_a: int, node_b: int, nbytes: int) -> float:
        """Two-sided message transfer time between two ranks' nodes."""
        return self.costs.p2p_time(
            nbytes,
            same_node=self.same_node(node_a, node_b),
            network_latency=self.cluster.network_latency,
            network_bandwidth=self.cluster.network_bandwidth,
        )

    def atomic_time(self, origin_node: int, target_node: int) -> float:
        """One-sided remote atomic round trip between two ranks' nodes."""
        return self.costs.rma_atomic_time(
            same_node=self.same_node(origin_node, target_node),
            network_latency=self.cluster.network_latency,
        )

    def transfer_time(self, origin_node: int, target_node: int, nbytes: int) -> float:
        """One-sided get/put time between two ranks' nodes."""
        if self.same_node(origin_node, target_node):
            return self.costs.rma_transfer_overhead + nbytes / 40e9
        return (
            self.costs.rma_transfer_overhead
            + self.cluster.network_latency
            + nbytes / self.cluster.network_bandwidth
        )
