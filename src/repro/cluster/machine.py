"""Hardware description: nodes, cores, and whole clusters.

Conventions: network latency is in seconds and bandwidth in
bytes/second; ``core_speed`` is a dimensionless multiplier (1.0 =
nominal).  Everything here is indexed by *node index* and *core index
within the node* — MPI ranks do not exist at this layer; the
rank -> (node, socket, numa, core) mapping is
:class:`repro.cluster.topology.Placement`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class NodeSpec:
    """A single shared-memory compute node.

    Parameters
    ----------
    cores:
        Number of physical cores usable by workers.
    core_speed:
        Relative speed multiplier of this node's cores (1.0 = nominal).
        A workload iteration with nominal cost ``c`` takes ``c /
        (core_speed * per-core factor)`` seconds here.
    sockets:
        Number of CPU sockets; cores are split evenly across them, so
        ``cores`` must be a multiple of ``sockets``.  The socket tier
        sits between node and core for three-level scheduling stacks
        (``X+Y+Z``); the default of 1 reproduces the paper's two-tier
        machine model.
    numa_per_socket:
        NUMA domains *within each socket* (sub-NUMA clustering /
        cluster-on-die).  A socket and a NUMA domain are distinct
        tiers: a dual-socket node has two NUMA domains even without
        sub-NUMA clustering, and modern Xeons expose 2-4 NUMA domains
        per socket.  Each socket's cores split evenly across its NUMA
        domains, giving the 4th machine tier for depth-4 scheduling
        stacks (``W+X+Y+Z``).  The default of 1 keeps every socket a
        single NUMA domain (bit-exact with the pre-NUMA model).
    name:
        Diagnostic label.
    """

    cores: int
    core_speed: float = 1.0
    sockets: int = 1
    numa_per_socket: int = 1
    name: str = "node"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"node must have >= 1 core, got {self.cores}")
        if self.core_speed <= 0:
            raise ValueError(f"core_speed must be > 0, got {self.core_speed}")
        if self.sockets < 1:
            raise ValueError(f"node must have >= 1 socket, got {self.sockets}")
        if self.cores % self.sockets != 0:
            raise ValueError(
                f"{self.cores} cores do not split evenly over "
                f"{self.sockets} sockets"
            )
        if self.numa_per_socket < 1:
            raise ValueError(
                f"node must have >= 1 NUMA domain per socket, "
                f"got {self.numa_per_socket}"
            )
        if self.cores_per_socket % self.numa_per_socket != 0:
            raise ValueError(
                f"{self.cores_per_socket} cores per socket do not split "
                f"evenly over {self.numa_per_socket} NUMA domains"
            )

    @property
    def cores_per_socket(self) -> int:
        """Cores in one socket (cores are numbered socket-contiguously)."""
        return self.cores // self.sockets

    @property
    def cores_per_numa(self) -> int:
        """Cores in one NUMA domain (numbered NUMA-contiguously)."""
        return self.cores_per_socket // self.numa_per_socket

    @property
    def numa_domains(self) -> int:
        """Total NUMA domains on the node (sockets x numa_per_socket)."""
        return self.sockets * self.numa_per_socket

    def socket_of_core(self, core: int) -> int:
        """Socket housing ``core`` (cores are numbered socket-contiguously)."""
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} outside node of {self.cores} cores")
        return core // self.cores_per_socket

    def numa_of_core(self, core: int) -> int:
        """NUMA domain housing ``core``, *within its socket*.

        Cores are numbered NUMA-contiguously inside each socket, so the
        cores of socket ``s`` split into ``numa_per_socket`` consecutive
        runs of ``cores_per_numa`` cores each.
        """
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} outside node of {self.cores} cores")
        return (core % self.cores_per_socket) // self.cores_per_numa


@dataclass(frozen=True)
class ClusterSpec:
    """A distributed-memory cluster: a sequence of nodes plus a fabric.

    The paper's evaluation uses homogeneous nodes; heterogeneous
    clusters are supported because several of the implemented DLS
    techniques (WF, AWF-*) only make sense with per-PE weights.
    """

    nodes: Tuple[NodeSpec, ...]
    #: one-way network latency between any two distinct nodes (seconds);
    #: non-blocking fat tree => distance-independent.
    network_latency: float = 1.1e-6
    #: point-to-point bandwidth (bytes/second).
    network_bandwidth: float = 12.5e9
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        if self.network_latency < 0 or self.network_bandwidth <= 0:
            raise ValueError("invalid network parameters")

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        """Total worker cores across all nodes."""
        return sum(node.cores for node in self.nodes)

    @property
    def sockets_per_node(self) -> int:
        """Common socket count, for uniform clusters.

        Raises on mixed-socket clusters — iterate ``nodes`` there.
        """
        counts = {node.sockets for node in self.nodes}
        if len(counts) != 1:
            raise ValueError(
                f"cluster has mixed socket counts {sorted(counts)}; "
                "read NodeSpec.sockets per node"
            )
        return counts.pop()

    @property
    def cores_per_socket(self) -> int:
        """Common cores-per-socket, for uniform clusters (raises on mixed)."""
        counts = {node.cores_per_socket for node in self.nodes}
        if len(counts) != 1:
            raise ValueError(
                f"cluster has mixed cores-per-socket {sorted(counts)}; "
                "read NodeSpec.cores_per_socket per node"
            )
        return counts.pop()

    @property
    def numa_per_socket(self) -> int:
        """Common NUMA-domains-per-socket, for uniform clusters (raises
        on mixed)."""
        counts = {node.numa_per_socket for node in self.nodes}
        if len(counts) != 1:
            raise ValueError(
                f"cluster has mixed NUMA-per-socket counts {sorted(counts)}; "
                "read NodeSpec.numa_per_socket per node"
            )
        return counts.pop()

    def node_of(self, index: int) -> NodeSpec:
        """The :class:`NodeSpec` at *node index* ``index`` (not a rank)."""
        return self.nodes[index]

    def core_speeds(self) -> np.ndarray:
        """Vector of core speeds, in node order, one entry per core."""
        return np.concatenate(
            [np.full(node.cores, node.core_speed) for node in self.nodes]
        )

    def subset(self, n_nodes: int) -> "ClusterSpec":
        """A cluster made of the first ``n_nodes`` nodes (for scaling sweeps)."""
        if not 1 <= n_nodes <= self.n_nodes:
            raise ValueError(f"cannot take {n_nodes} of {self.n_nodes} nodes")
        return ClusterSpec(
            nodes=self.nodes[:n_nodes],
            network_latency=self.network_latency,
            network_bandwidth=self.network_bandwidth,
            name=f"{self.name}[{n_nodes}]",
        )


def homogeneous(
    n_nodes: int,
    cores_per_node: int,
    core_speed: float = 1.0,
    network_latency: float = 1.1e-6,
    network_bandwidth: float = 12.5e9,
    name: str = "cluster",
    sockets_per_node: int = 1,
    numa_per_socket: int = 1,
) -> ClusterSpec:
    """Build a homogeneous cluster spec."""
    nodes = tuple(
        NodeSpec(
            cores=cores_per_node,
            core_speed=core_speed,
            sockets=sockets_per_node,
            numa_per_socket=numa_per_socket,
            name=f"{name}-n{i}",
        )
        for i in range(n_nodes)
    )
    return ClusterSpec(
        nodes=nodes,
        network_latency=network_latency,
        network_bandwidth=network_bandwidth,
        name=name,
    )


def minihpc(
    n_nodes: int = 16,
    cores_per_node: int = 16,
    sockets_per_node: int = 1,
    numa_per_socket: int = 1,
) -> ClusterSpec:
    """The paper's testbed slice: up to 16 identical Xeon nodes.

    miniHPC nodes have 20 cores, but the evaluation runs 16 workers per
    node (16 MPI processes for MPI+MPI, 16 OpenMP threads for
    MPI+OpenMP), so the default model exposes 16 worker cores.  The
    Omni-Path fabric is modelled as 1.1 us / 100 Gbit/s, distance
    independent (non-blocking fat tree).

    The physical nodes are dual-socket Xeon E5-2640v4; pass
    ``sockets_per_node=2`` to expose that tier for three-level
    scheduling stacks, and ``numa_per_socket=2`` to additionally model
    sub-NUMA clustering (the 4th machine tier, for depth-4 ``W+X+Y+Z``
    stacks).  The defaults of 1 keep the paper's flat node model (and
    the seed's exact behaviour) for two-level runs.
    """
    if not 1 <= n_nodes <= 16:
        raise ValueError("miniHPC has at most 16 identical Xeon nodes")
    return homogeneous(
        n_nodes=n_nodes,
        cores_per_node=cores_per_node,
        network_latency=1.1e-6,
        network_bandwidth=12.5e9,
        name="miniHPC",
        sockets_per_node=sockets_per_node,
        numa_per_socket=numa_per_socket,
    )


def heterogeneous(
    core_counts: Sequence[int],
    core_speeds: Optional[Sequence[float]] = None,
    network_latency: float = 1.1e-6,
    network_bandwidth: float = 12.5e9,
    name: str = "hetero",
    socket_counts: Optional[Sequence[int]] = None,
    numa_counts: Optional[Sequence[int]] = None,
) -> ClusterSpec:
    """Build a heterogeneous cluster (used by WF/AWF tests and examples).

    ``numa_counts`` gives each node's NUMA-domains-per-socket (default 1
    everywhere, the flat pre-NUMA model).
    """
    if core_speeds is None:
        core_speeds = [1.0] * len(core_counts)
    if len(core_speeds) != len(core_counts):
        raise ValueError("core_counts and core_speeds must have equal length")
    if socket_counts is None:
        socket_counts = [1] * len(core_counts)
    if len(socket_counts) != len(core_counts):
        raise ValueError("core_counts and socket_counts must have equal length")
    if numa_counts is None:
        numa_counts = [1] * len(core_counts)
    if len(numa_counts) != len(core_counts):
        raise ValueError("core_counts and numa_counts must have equal length")
    nodes = tuple(
        NodeSpec(
            cores=c, core_speed=s, sockets=k, numa_per_socket=m,
            name=f"{name}-n{i}",
        )
        for i, (c, s, k, m) in enumerate(
            zip(core_counts, core_speeds, socket_counts, numa_counts)
        )
    )
    return ClusterSpec(
        nodes=nodes,
        network_latency=network_latency,
        network_bandwidth=network_bandwidth,
        name=name,
    )
