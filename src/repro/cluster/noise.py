"""Systemic-variation models.

The paper attributes load imbalance to "problem characteristics,
algorithmic, and systemic variations".  The first two come from the
workload cost traces; this module supplies the third: per-core speed
scatter and multiplicative OS noise applied to each executed chunk.

The default used for figure reproduction is mild
(``per_core_sigma=0.5%``, ``jitter_sigma=1%``) — the paper's testbed is
a dedicated homogeneous cluster, so algorithmic imbalance dominates —
but tests and ablations exercise much noisier settings.

Conventions: noise factors are dimensionless multipliers applied to
execution times (which are in seconds); per-core draws are indexed by
``node * ppn + core`` in node order, never by MPI rank — the execution
models own the rank mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Deterministic (seeded) execution-time perturbation model.

    Parameters
    ----------
    per_core_sigma:
        Log-normal sigma of a *static* per-core speed factor, drawn once
        per core.  Models silicon/thermal variation.
    jitter_sigma:
        Log-normal sigma of a *per-chunk* multiplicative jitter.  Models
        OS interference, cache state, etc.
    seed_tag:
        Mixed into RNG stream names so different models draw
        independent perturbations from the same simulator seed.
    """

    per_core_sigma: float = 0.005
    jitter_sigma: float = 0.01
    seed_tag: str = "noise"

    def core_factor(self, rng: np.random.Generator, n_cores: int) -> np.ndarray:
        """Static speed factors, one per core (multiply nominal speed)."""
        if self.per_core_sigma <= 0.0:
            return np.ones(n_cores)
        return np.exp(rng.normal(0.0, self.per_core_sigma, size=n_cores))

    def chunk_jitter(self, rng: np.random.Generator) -> float:
        """Multiplicative factor applied to one chunk's execution time."""
        if self.jitter_sigma <= 0.0:
            return 1.0
        return float(np.exp(rng.normal(0.0, self.jitter_sigma)))


#: No perturbation at all — bit-exact analytic schedules (used heavily in tests).
NO_NOISE = NoiseModel(per_core_sigma=0.0, jitter_sigma=0.0, seed_tag="none")

#: Default for figure reproduction: dedicated, homogeneous testbed.
MILD_NOISE = NoiseModel(per_core_sigma=0.005, jitter_sigma=0.01, seed_tag="mild")

#: A deliberately hostile environment for robustness tests/ablations.
HARSH_NOISE = NoiseModel(per_core_sigma=0.05, jitter_sigma=0.15, seed_tag="harsh")
