"""Penalty-aware queue placement: choose where work-queue windows live.

Every queue of the MPI+MPI refill tree is backed by a window whose
memory physically lives in one NUMA domain — the *home*.  Historically
the home was fixed by fiat: the global RMA window on rank 0 and each
tier queue's shared window with its group leader (first-touch by the
lowest rank).  With the locality-tier cost model of
:mod:`repro.cluster.costs`, that choice is priced: every lock-attempt
message, unlock, shared load and remote atomic pays the tier penalty of
the (accessing rank, home rank) pair — so *where* the window lives
decides how much the tree's coordination traffic costs, exactly the
lever the companion RMA work (Eleliemy & Ciorba 2019, passive-target
DLS) identifies as dominating lock/poll latency.

This module is the placement *optimizer*:

* :func:`predict_profile` turns a :class:`~repro.core.hierarchy.
  HierarchicalSpec` plus a topology into a predicted **access
  profile** — per window, per rank, how many shared loads and atomic
  messages the run is expected to issue.  Counts come from the
  techniques' memoised serial chunk sequences
  (:meth:`~repro.core.technique_base.ChunkCalculator.total_steps`),
  distributed over ranks in proportion to their core speeds (a faster
  subtree drains and refills its queues proportionally more often).
* :func:`solve_placement` prices every candidate home for every window
  under that profile (all costs in **seconds**) and picks the cheapest,
  exhaustively for small tiers and by a weighted-centroid heuristic
  above :data:`EXHAUSTIVE_LIMIT` candidates; the **decision rule** only
  moves a window when the predicted cost is *strictly* below the
  leader home's, so ``solve_placement(...).objective <=
  leader_plan(...).objective`` always holds (the property the test
  suite pins).
* :func:`resolve_placement` normalises the public ``placement=`` knob
  (``"leader"`` | ``"optimized"`` | an explicit ``{window key ->
  rank}`` mapping) into a :class:`PlacementPlan` for the execution
  models.

All ranks in this module are **MPI ranks** (indices into the
:class:`~repro.cluster.topology.Placement`), never node indices; window
keys follow the shared-window convention of
:meth:`repro.smpi.world.MpiWorld.create_shared_window` — a node index
for per-node queues, ``(node, socket)`` / ``(node, socket, numa)``
tuples for deeper tiers, plus the reserved string ``"global"``
(:data:`GLOBAL_WINDOW`) for the global RMA queue.

See ``docs/PLACEMENT.md`` for the objective, a worked example and the
calibration methodology behind ``CALIBRATED_COSTS``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

from repro.cluster.costs import CostModel, DEFAULT_COSTS
from repro.cluster.interconnect import tier_between
from repro.cluster.machine import ClusterSpec
from repro.cluster.topology import Placement, block_placement

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hierarchy import HierarchicalSpec, LevelSpec

#: key of the global RMA work-queue window in plans and profiles
GLOBAL_WINDOW = "global"

#: a window key: :data:`GLOBAL_WINDOW`, a node index, or a tier tuple
WindowKey = Union[str, int, Tuple[int, ...]]

#: accepted values of the public ``placement=`` knob
PlacementArg = Union[str, Mapping[WindowKey, int]]

#: above this many candidate homes for one window the solver switches
#: from exhaustive pricing to the weighted-centroid heuristic
EXHAUSTIVE_LIMIT = 64

#: predicted shared loads per queue *take* (head pointers + counters,
#: mirroring the ``access(n=3)`` charges of the worker protocol) and
#: atomic messages per take (one lock-attempt plus one unlock).  The
#: constants scale the objective; only their load-vs-atomic *ratio*
#: influences which home wins.
LOADS_PER_TAKE = 3.0
ATOMICS_PER_TAKE = 2.0


@dataclass(frozen=True)
class WindowProfile:
    """Predicted traffic of one window: per-rank loads and atomics.

    ``loads``/``atomics`` map each accessing rank to its expected
    number of shared loads / atomic messages on this window over the
    whole run (dimensionless counts; the solver prices them in
    seconds).  ``members`` are the ranks eligible to *host* the window
    (the tier group; every rank for the global window).
    """

    key: WindowKey
    members: Tuple[int, ...]
    loads: Mapping[int, float]
    atomics: Mapping[int, float]

    @property
    def total_weight(self) -> float:
        """Total predicted operations (loads + atomics) on this window."""
        return sum(self.loads.values()) + sum(self.atomics.values())


@dataclass(frozen=True)
class AccessProfile:
    """Predicted access profile of one run: one entry per window."""

    windows: Tuple[WindowProfile, ...]

    def window(self, key: WindowKey) -> WindowProfile:
        """The profile of one window key (raises ``KeyError`` if absent)."""
        for profile in self.windows:
            if profile.key == key:
                return profile
        raise KeyError(f"no predicted window {key!r}")


@dataclass(frozen=True)
class PlacementPlan:
    """A resolved window-home assignment plus its predicted cost.

    ``homes`` maps every shared-window key to its home **rank**;
    ``global_host`` is the rank hosting the global RMA window.
    ``objective`` is the plan's total predicted priced traffic in
    **seconds** under the profile it was solved against; ``moved``
    lists the window keys whose home differs from the leader default.
    """

    strategy: str
    global_host: int
    homes: Mapping[WindowKey, int]
    objective: float
    moved: Tuple[WindowKey, ...] = ()

    def home_of(self, key: WindowKey) -> Optional[int]:
        """Home rank for a shared-window ``key`` (None = leader default)."""
        return self.homes.get(key)


# ---------------------------------------------------------------------------
# access-profile prediction
# ---------------------------------------------------------------------------
def _chunk_count(level: "LevelSpec", n: float, p: int) -> int:
    """Expected number of chunks ``level`` carves from ``n`` iterations.

    Deterministic techniques answer exactly via their memoised serial
    sequence; adaptive / PE-dependent ones (whose sequence depends on
    runtime state) fall back to a FAC-style batch estimate of ``p``
    chunks per halving of the remainder.
    """
    n_int = max(1, int(round(n)))
    p = max(1, int(p))
    try:
        calc = level.make_calculator(n_int, p)
        if calc.deterministic:
            return max(1, calc.total_steps())
    except Exception:  # missing profile/weights/rng: fall through
        pass
    return max(p, p * int(math.ceil(math.log2(max(2.0, n_int / p)))))


def _speed_of(cluster: ClusterSpec, placement: Placement, rank: int) -> float:
    """Nominal core speed of ``rank`` (silicon noise is not predictable)."""
    return cluster.nodes[placement.node_of(rank)].core_speed


def _shares(weights: List[float]) -> List[float]:
    """Normalise non-negative weights to shares summing to 1."""
    total = sum(weights)
    if total <= 0:
        return [1.0 / len(weights)] * len(weights)
    return [w / total for w in weights]


def predict_profile(
    spec: "HierarchicalSpec",
    n_iterations: int,
    cluster: ClusterSpec,
    ppn: Optional[int] = None,
) -> AccessProfile:
    """Predict per-window, per-rank traffic for one hierarchical run.

    Mirrors the queue tree :class:`repro.models.MpiMpiModel` builds for
    ``spec`` on ``cluster``: the global RMA window plus one shared
    window per tier group (node / socket / NUMA domain).  Chunk-fetch
    counts derive from the memoised serial chunk sequences; each tier
    group's fetches are attributed to its member ranks proportionally
    to their core speeds, because whichever member drains the queue
    first refills it and faster subtrees drain proportionally more
    often.  All returned quantities are *operation counts*; the solver
    prices them in seconds.
    """
    if ppn is None:
        ppn = min(node.cores for node in cluster.nodes)
    placement = block_placement(cluster, ppn)
    depth = spec.depth
    speeds = [_speed_of(cluster, placement, r) for r in range(placement.size)]
    all_ranks = tuple(range(placement.size))
    windows: List[WindowProfile] = []

    # --- global RMA window -------------------------------------------
    root = spec.levels[0]
    root_pes = placement.size if depth == 1 else cluster.n_nodes
    if root.technique.pinned_per_pe:
        # pinned STATIC: each root PE takes exactly its own chunk
        # without touching the window — zero global traffic, but one
        # deposit still arrives in every node queue
        root_fetches = 0.0
        root_chunks = float(root_pes)
    else:
        root_fetches = float(_chunk_count(root, n_iterations, root_pes))
        root_chunks = root_fetches
    atomics_per_fetch = 1.0 if _is_deterministic(root, n_iterations, root_pes) else 2.0
    node_weights = [
        sum(speeds[r] for r in placement.ranks_on_node(node))
        for node in range(cluster.n_nodes)
    ]
    node_shares = _shares(node_weights)
    global_atomics: Dict[int, float] = {}
    if depth == 1:
        shares = _shares(speeds)
        for rank in all_ranks:
            global_atomics[rank] = root_fetches * atomics_per_fetch * shares[rank]
    else:
        for node in range(cluster.n_nodes):
            members = placement.ranks_on_node(node)
            member_shares = _shares([speeds[r] for r in members])
            for rank, share in zip(members, member_shares):
                global_atomics[rank] = (
                    root_fetches * atomics_per_fetch * node_shares[node] * share
                )
    windows.append(
        WindowProfile(
            key=GLOBAL_WINDOW,
            members=all_ranks,
            loads={},
            atomics=global_atomics,
        )
    )
    if depth == 1:
        return AccessProfile(windows=tuple(windows))

    # --- shared tier windows (node -> socket -> numa) -----------------
    mean_root_chunk = n_iterations / max(1.0, root_chunks)
    for node in range(cluster.n_nodes):
        node_members = placement.ranks_on_node(node)
        if root.technique.pinned_per_pe:
            deposits = 1.0  # exactly the node's own pinned chunk
        else:
            deposits = root_chunks * node_shares[node]
        _profile_tier(
            windows=windows,
            spec=spec,
            level=1,
            key=node,
            members=node_members,
            placement=placement,
            speeds=speeds,
            deposits=deposits,
            mean_chunk=mean_root_chunk,
            depth=depth,
        )
    return AccessProfile(windows=tuple(windows))


def _is_deterministic(level: "LevelSpec", n: int, p: int) -> bool:
    """Whether ``level``'s calculator runs the single-counter protocol."""
    try:
        return bool(level.make_calculator(max(1, int(n)), max(1, p)).deterministic)
    except Exception:
        return False


def _profile_tier(
    windows: List[WindowProfile],
    spec: "HierarchicalSpec",
    level: int,
    key: WindowKey,
    members: List[int],
    placement: Placement,
    speeds: List[float],
    deposits: float,
    mean_chunk: float,
    depth: int,
) -> None:
    """Recursively profile the queue at ``key`` and its child queues.

    ``deposits`` chunks of ``mean_chunk`` iterations each arrive in this
    queue over the run; the level's technique carves each into takes,
    and every take costs :data:`LOADS_PER_TAKE` shared loads plus
    :data:`ATOMICS_PER_TAKE` atomic messages, attributed to the taking
    rank.  Interior tiers recurse with each child group's share of the
    takes as that child's deposits — including when ``deposits`` is
    zero, so every window the execution model builds appears in the
    profile (explicit placement maps validate against it).
    """
    if isinstance(key, int):  # node window
        children = (
            [
                placement.ranks_on_socket(key, socket)
                for socket in placement.sockets_on_node(key)
            ]
            if depth >= 3
            else [[r] for r in members]
        )
        child_keys: List[WindowKey] = (
            [(key, socket) for socket in placement.sockets_on_node(key)]
            if depth >= 3
            else []
        )
    elif len(key) == 2:  # socket window
        children = (
            [
                placement.ranks_on_numa(key[0], key[1], numa)
                for numa in placement.numas_on_socket(key[0], key[1])
            ]
            if depth >= 4
            else [[r] for r in members]
        )
        child_keys = (
            [(key[0], key[1], numa) for numa in placement.numas_on_socket(*key)]
            if depth >= 4
            else []
        )
    else:  # NUMA window: always a leaf
        children = [[r] for r in members]
        child_keys = []

    takes_per_deposit = _chunk_count(
        spec.levels[level], mean_chunk, len(children)
    )
    total_takes = deposits * takes_per_deposit
    child_weights = [sum(speeds[r] for r in group) for group in children]
    child_shares = _shares(child_weights)

    loads: Dict[int, float] = {}
    atomics: Dict[int, float] = {}
    for group, share in zip(children, child_shares):
        group_takes = total_takes * share
        member_shares = _shares([speeds[r] for r in group])
        for rank, m_share in zip(group, member_shares):
            loads[rank] = loads.get(rank, 0.0) + group_takes * m_share * LOADS_PER_TAKE
            atomics[rank] = (
                atomics.get(rank, 0.0) + group_takes * m_share * ATOMICS_PER_TAKE
            )
    windows.append(
        WindowProfile(
            key=key, members=tuple(members), loads=loads, atomics=atomics
        )
    )

    if child_keys:
        mean_child = (
            mean_chunk / takes_per_deposit if takes_per_deposit else 0.0
        )
        for child_key, group, share in zip(child_keys, children, child_shares):
            _profile_tier(
                windows=windows,
                spec=spec,
                level=level + 1,
                key=child_key,
                members=group,
                placement=placement,
                speeds=speeds,
                deposits=total_takes * share,
                mean_chunk=mean_child,
                depth=depth,
            )


# ---------------------------------------------------------------------------
# pricing and solving
# ---------------------------------------------------------------------------
def _improves(cost: float, incumbent: float) -> bool:
    """Decision-rule comparison: strictly cheaper beyond float noise.

    Candidate costs are sums over ranks whose terms arrive in different
    orders for different homes, so exact ties can differ in the last
    ulp; a symmetric pair must *not* count as an improvement (the
    window stays with the leader on ties).
    """
    return cost < incumbent - max(1e-18, 1e-9 * abs(incumbent))


def _shared_window_cost(
    profile: WindowProfile,
    home: int,
    placement: Placement,
    costs: CostModel,
) -> float:
    """Predicted priced traffic (seconds) of one shared window at ``home``."""
    mpi = costs.mpi
    total = 0.0
    home_path = placement.slots[home]
    for rank, n_loads in profile.loads.items():
        tier = tier_between(placement.slots[rank], home_path)
        total += n_loads * mpi.tier_load_penalty(tier)
    for rank, n_atomics in profile.atomics.items():
        tier = tier_between(placement.slots[rank], home_path)
        total += n_atomics * mpi.tier_atomic_penalty(tier)
    return total


def _global_window_cost(
    profile: WindowProfile,
    host: int,
    placement: Placement,
    cluster: ClusterSpec,
    costs: CostModel,
) -> float:
    """Predicted priced atomic traffic (seconds) of the RMA window at ``host``.

    Unlike shared windows, the host choice changes the *base* service
    time of every atomic — same-node origins use the shared-memory
    atomic path while remote origins pay the full network round trip —
    on top of the locality-tier penalty.
    """
    mpi = costs.mpi
    total = 0.0
    host_path = placement.slots[host]
    for rank, n_atomics in profile.atomics.items():
        tier = tier_between(placement.slots[rank], host_path)
        base = mpi.rma_atomic_time(
            same_node=tier < 3, network_latency=cluster.network_latency
        )
        total += n_atomics * (base + mpi.tier_atomic_penalty(tier))
    return total


def _candidate_homes(
    profile: WindowProfile, placement: Placement
) -> List[int]:
    """One representative rank per distinct NUMA domain among members.

    The priced cost of a home depends only on its ``(node, socket,
    numa)`` machine path, so one candidate per occupied domain spans
    the whole search space; the representative is the lowest member
    rank of the domain, which makes the group leader always a
    candidate.
    """
    seen: Dict[Tuple[int, int, int], int] = {}
    for rank in profile.members:
        node, socket, numa, _core = placement.slots[rank]
        seen.setdefault((node, socket, numa), rank)
    return [seen[domain] for domain in sorted(seen)]


def _weight_by_domain(
    profile: WindowProfile, placement: Placement
) -> Dict[Tuple[int, int, int], float]:
    """Total predicted operations per (node, socket, numa) domain."""
    weights: Dict[Tuple[int, int, int], float] = {}
    for source in (profile.loads, profile.atomics):
        for rank, count in source.items():
            domain = placement.slots[rank][:3]
            weights[domain] = weights.get(domain, 0.0) + count
    return weights


def _prune_candidates(
    window: WindowProfile, placement: Placement, limit: int
) -> List[int]:
    """Candidate homes for one window, pruned to the solver's budget.

    At most ``limit`` candidates: exhaustive (one per occupied NUMA
    domain) below it, the weighted-centroid heuristic above — only the
    domain carrying the largest predicted operation count is priced
    (represented by its lowest member rank).
    """
    candidates = _candidate_homes(window, placement)
    if len(candidates) <= limit:
        return candidates
    domains = _weight_by_domain(window, placement)
    if not domains:
        return []
    top = max(sorted(domains), key=lambda d: domains[d])
    return [
        min(r for r in window.members if placement.slots[r][:3] == top)
    ]


def leader_plan(
    spec: "HierarchicalSpec",
    n_iterations: int,
    cluster: ClusterSpec,
    ppn: Optional[int] = None,
    costs: CostModel = DEFAULT_COSTS,
    profile: Optional[AccessProfile] = None,
) -> PlacementPlan:
    """The paper-faithful default plan, priced for comparison.

    Global window on rank 0, every shared window with its tier-group
    leader (lowest member rank) — exactly the homes the execution
    models use when ``placement="leader"``.
    """
    if ppn is None:
        ppn = min(node.cores for node in cluster.nodes)
    placement = block_placement(cluster, ppn)
    if profile is None:
        profile = predict_profile(spec, n_iterations, cluster, ppn)
    homes: Dict[WindowKey, int] = {}
    objective = 0.0
    for window in profile.windows:
        if window.key == GLOBAL_WINDOW:
            objective += _global_window_cost(window, 0, placement, cluster, costs)
            continue
        leader = min(window.members) if window.members else 0
        homes[window.key] = leader
        objective += _shared_window_cost(window, leader, placement, costs)
    return PlacementPlan(
        strategy="leader", global_host=0, homes=homes, objective=objective
    )


def solve_placement(
    spec: "HierarchicalSpec",
    n_iterations: int,
    cluster: ClusterSpec,
    ppn: Optional[int] = None,
    costs: CostModel = DEFAULT_COSTS,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    profile: Optional[AccessProfile] = None,
) -> PlacementPlan:
    """Choose window homes minimising predicted priced traffic (seconds).

    Windows are independent in the objective, so each is solved on its
    own: exhaustively over one candidate per occupied NUMA domain when
    there are at most ``exhaustive_limit`` candidates, otherwise by the
    weighted-centroid heuristic (place the window in the domain with
    the largest predicted operation count and price only that
    candidate).  Either way the **decision rule** applies: the home
    moves off the leader only when the candidate is strictly cheaper,
    so the returned objective never exceeds :func:`leader_plan`'s.
    """
    if ppn is None:
        ppn = min(node.cores for node in cluster.nodes)
    placement = block_placement(cluster, ppn)
    if profile is None:
        profile = predict_profile(spec, n_iterations, cluster, ppn)
    homes: Dict[WindowKey, int] = {}
    moved: List[WindowKey] = []
    objective = 0.0
    global_host = 0
    for window in profile.windows:
        if window.key == GLOBAL_WINDOW:
            leader_cost = _global_window_cost(window, 0, placement, cluster, costs)
            best_rank, best_cost = 0, leader_cost
            for candidate in _prune_candidates(window, placement, exhaustive_limit):
                cost = _global_window_cost(
                    window, candidate, placement, cluster, costs
                )
                if _improves(cost, best_cost):
                    best_rank, best_cost = candidate, cost
            if best_rank != 0:
                moved.append(GLOBAL_WINDOW)
            global_host = best_rank
            objective += best_cost
            continue
        leader = min(window.members) if window.members else 0
        leader_cost = _shared_window_cost(window, leader, placement, costs)
        best_rank, best_cost = leader, leader_cost
        for candidate in _prune_candidates(window, placement, exhaustive_limit):
            cost = _shared_window_cost(window, candidate, placement, costs)
            if _improves(cost, best_cost):
                best_rank, best_cost = candidate, cost
        homes[window.key] = best_rank
        if best_rank != leader:
            moved.append(window.key)
        objective += best_cost
    return PlacementPlan(
        strategy="optimized",
        global_host=global_host,
        homes=homes,
        objective=objective,
        moved=tuple(moved),
    )


def explicit_plan(
    mapping: Mapping[WindowKey, int],
    spec: "HierarchicalSpec",
    n_iterations: int,
    cluster: ClusterSpec,
    ppn: Optional[int] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> PlacementPlan:
    """Validate a user-supplied ``{window key -> home rank}`` mapping.

    Keys absent from the mapping keep their leader default; the
    reserved key :data:`GLOBAL_WINDOW` pins the global RMA host.  Home
    ranks must be members of the window's tier group (any rank for the
    global window) — violations raise ``ValueError`` because a real
    ``MPI_Win_allocate_shared`` cannot first-touch memory it does not
    own.
    """
    if ppn is None:
        ppn = min(node.cores for node in cluster.nodes)
    placement = block_placement(cluster, ppn)
    profile = predict_profile(spec, n_iterations, cluster, ppn)
    known = {window.key: window for window in profile.windows}
    for key, rank in mapping.items():
        if key not in known:
            raise ValueError(
                f"placement map names unknown window {key!r}; known windows: "
                f"{sorted(known, key=repr)}"
            )
        if not 0 <= int(rank) < placement.size:
            raise ValueError(f"placement map rank {rank!r} outside world")
        if key != GLOBAL_WINDOW and int(rank) not in known[key].members:
            raise ValueError(
                f"rank {rank} is not a member of window {key!r} "
                f"(members {list(known[key].members)})"
            )
    homes: Dict[WindowKey, int] = {}
    moved: List[WindowKey] = []
    objective = 0.0
    global_host = int(mapping.get(GLOBAL_WINDOW, 0))
    for window in profile.windows:
        if window.key == GLOBAL_WINDOW:
            objective += _global_window_cost(
                window, global_host, placement, cluster, costs
            )
            if global_host != 0:
                moved.append(GLOBAL_WINDOW)
            continue
        leader = min(window.members) if window.members else 0
        home = int(mapping.get(window.key, leader))
        homes[window.key] = home
        if home != leader:
            moved.append(window.key)
        objective += _shared_window_cost(window, home, placement, costs)
    return PlacementPlan(
        strategy="explicit",
        global_host=global_host,
        homes=homes,
        objective=objective,
        moved=tuple(moved),
    )


def resolve_placement(
    placement: PlacementArg,
    spec: "HierarchicalSpec",
    n_iterations: int,
    cluster: ClusterSpec,
    ppn: Optional[int] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> Optional[PlacementPlan]:
    """Normalise the public ``placement=`` knob into a plan.

    ``"leader"`` returns None — the fast path where execution models
    keep their historical first-touch homes without computing a
    profile; ``"optimized"`` solves, a mapping validates.
    """
    if isinstance(placement, str):
        key = placement.strip().lower()
        if key == "leader":
            return None
        if key == "optimized":
            return solve_placement(spec, n_iterations, cluster, ppn, costs)
        raise ValueError(
            f"unknown placement {placement!r}; choose 'leader', 'optimized' "
            "or an explicit {window key -> rank} mapping"
        )
    if isinstance(placement, Mapping):
        return explicit_plan(placement, spec, n_iterations, cluster, ppn, costs)
    raise TypeError(
        f"placement must be a string or mapping, got {type(placement).__name__}"
    )


__all__ = [
    "AccessProfile",
    "EXHAUSTIVE_LIMIT",
    "GLOBAL_WINDOW",
    "PlacementPlan",
    "WindowProfile",
    "explicit_plan",
    "leader_plan",
    "predict_profile",
    "resolve_placement",
    "solve_placement",
]
