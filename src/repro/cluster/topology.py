"""Process placement: mapping MPI ranks to (node, socket, numa, core) slots.

The paper's two execution models place processes differently:

* **MPI+MPI** — ``ppn`` MPI processes per node (16 in the evaluation),
  rank-ordered block placement, one process per core.
* **MPI+OpenMP** — one MPI process per node; its OpenMP threads occupy
  the node's cores.

Both are expressed through :func:`block_placement`, which is the only
placement policy the reproduction needs; round-robin placement is
provided for completeness and ablations.

Every slot carries the full machine path ``(node, socket, numa, core)``.
Cores are numbered socket- and NUMA-contiguously (cores ``[s*cps,
(s+1)*cps)`` belong to socket ``s``, and within a socket consecutive
runs of ``cores_per_numa`` cores share a NUMA domain), so block
placement fills socket 0 before socket 1 — and NUMA domain 0 before
NUMA domain 1 within each socket — and never splits a tier group
between two non-adjacent rank ranges; consecutive ranks share sockets
and NUMA domains exactly as ``--map-by core`` binds them on real
hardware.  Multi-level scheduling stacks (node -> socket -> numa ->
core) group ranks through :meth:`Placement.socket_of` /
:meth:`Placement.ranks_on_socket` and the NUMA analogues
:meth:`Placement.numa_of` / :meth:`Placement.ranks_on_numa`.

Conventions: every query here takes or returns **MPI ranks** and
machine coordinates (node index, socket within node, NUMA domain
within socket, core within node); nothing in this module is a time —
costs (in seconds) live in :mod:`repro.cluster.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.machine import ClusterSpec


@dataclass(frozen=True)
class Placement:
    """Immutable rank -> (node, socket, numa, core) mapping.

    ``socket`` is the socket *within the node*, ``numa`` the NUMA
    domain *within the socket*, and ``core`` the core *within the node*
    (not within the socket or NUMA domain), so existing ``(node,
    core)`` consumers are unaffected by the deeper tiers.
    """

    cluster: ClusterSpec
    #: slots[rank] == (node_index, socket_index, numa_index_within_socket,
    #: core_index_within_node)
    slots: Tuple[Tuple[int, int, int, int], ...]

    @property
    def size(self) -> int:
        """Number of placed ranks (the world size)."""
        return len(self.slots)

    def _tier_index(self):
        """Rank groups per tier, built once in O(ranks).

        Every group query used to rescan ``slots`` (O(ranks) per call),
        which made constructing an ``MpiWorld`` — one ``local_rank`` /
        ``socket_rank`` / ``numa_rank`` triple per rank — quadratic in
        the world size and the dominant cost at 10^4-10^6 ranks.  The
        index maps each tier coordinate to its sorted rank list plus
        each rank to its position inside its own group, so the public
        queries return exactly what the scans returned, in O(group) or
        O(1).
        """
        cache = self.__dict__.get("_tier_cache")
        if cache is None:
            by_node: dict = {}
            by_socket: dict = {}
            by_numa: dict = {}
            for rank, (n, s, m, _) in enumerate(self.slots):
                by_node.setdefault(n, []).append(rank)
                by_socket.setdefault((n, s), []).append(rank)
                by_numa.setdefault((n, s, m), []).append(rank)
            pos = {
                "node": {}, "socket": {}, "numa": {},
            }
            for groups, key in (
                (by_node, "node"), (by_socket, "socket"), (by_numa, "numa")
            ):
                table = pos[key]
                for members in groups.values():
                    for index, rank in enumerate(members):
                        table[rank] = index
            cache = (by_node, by_socket, by_numa, pos)
            object.__setattr__(self, "_tier_cache", cache)
        return cache

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        return self.slots[rank][0]

    def socket_of(self, rank: int) -> int:
        """Socket (within its node) that ``rank``'s core belongs to."""
        return self.slots[rank][1]

    def numa_of(self, rank: int) -> int:
        """NUMA domain (within its socket) that ``rank``'s core belongs to."""
        return self.slots[rank][2]

    def core_of(self, rank: int) -> int:
        """Core index (within its node) that ``rank`` is bound to."""
        return self.slots[rank][3]

    def ranks_on_node(self, node: int) -> List[int]:
        """Ranks bound to one node (the node-level communicator), sorted."""
        return list(self._tier_index()[0].get(node, ()))

    def ranks_on_socket(self, node: int, socket: int) -> List[int]:
        """Ranks bound to one socket (the socket-level communicator)."""
        return list(self._tier_index()[1].get((node, socket), ()))

    def ranks_on_numa(self, node: int, socket: int, numa: int) -> List[int]:
        """Ranks bound to one NUMA domain (the NUMA-level communicator)."""
        return list(self._tier_index()[2].get((node, socket, numa), ()))

    def sockets_on_node(self, node: int) -> List[int]:
        """Socket indices of ``node`` that hold at least one rank, sorted."""
        return sorted(
            {s for (n, s) in self._tier_index()[1] if n == node}
        )

    def numas_on_socket(self, node: int, socket: int) -> List[int]:
        """NUMA indices of one socket that hold at least one rank, sorted."""
        return sorted(
            {
                m
                for (n, s, m) in self._tier_index()[2]
                if n == node and s == socket
            }
        )

    def node_leaders(self) -> List[int]:
        """Lowest rank on each node, in node order (the 'coordinators')."""
        seen: dict[int, int] = {}
        for rank, (node, _, _, _) in enumerate(self.slots):
            seen.setdefault(node, rank)
        return [seen[n] for n in sorted(seen)]

    def local_rank(self, rank: int) -> int:
        """Rank's index among the ranks of its own node (shared-memory comm)."""
        return self._tier_index()[3]["node"][rank]

    def socket_rank(self, rank: int) -> int:
        """Rank's index among the ranks of its own socket."""
        return self._tier_index()[3]["socket"][rank]

    def numa_rank(self, rank: int) -> int:
        """Rank's index among the ranks of its own NUMA domain."""
        return self._tier_index()[3]["numa"][rank]


def block_placement(cluster: ClusterSpec, ppn: int) -> Placement:
    """Place ``ppn`` consecutive ranks on each node (MPI default `-map-by node`).

    ``ppn`` must not exceed any node's core count — the reproduction
    never oversubscribes cores, matching the paper's setup.  Within a
    node, ranks fill cores (and therefore sockets and NUMA domains) in
    order, so a rank block never straddles a tier boundary it does not
    fully cover.
    """
    slots: List[Tuple[int, int, int, int]] = []
    for node_index, node in enumerate(cluster.nodes):
        if ppn > node.cores:
            raise ValueError(
                f"ppn={ppn} oversubscribes node {node.name} ({node.cores} cores)"
            )
        slots.extend(
            (node_index, node.socket_of_core(core), node.numa_of_core(core), core)
            for core in range(ppn)
        )
    return Placement(cluster=cluster, slots=tuple(slots))


def round_robin_placement(cluster: ClusterSpec, n_ranks: int) -> Placement:
    """Cyclic placement across nodes (ablation only)."""
    counters = [0] * cluster.n_nodes
    slots: List[Tuple[int, int, int, int]] = []
    node = 0
    for _ in range(n_ranks):
        attempts = 0
        while counters[node] >= cluster.nodes[node].cores:
            node = (node + 1) % cluster.n_nodes
            attempts += 1
            if attempts > cluster.n_nodes:
                raise ValueError("not enough cores for requested ranks")
        core = counters[node]
        spec = cluster.nodes[node]
        slots.append(
            (node, spec.socket_of_core(core), spec.numa_of_core(core), core)
        )
        counters[node] += 1
        node = (node + 1) % cluster.n_nodes
    return Placement(cluster=cluster, slots=tuple(slots))
