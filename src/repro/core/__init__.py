"""Core library: DLS techniques, hierarchical composition, metrics, traces.

This package holds the paper's primary contribution in reusable form:

* :mod:`repro.core.chunking` — chunks and schedule-verification helpers.
* :mod:`repro.core.technique_base` — the :class:`Technique` /
  :class:`ChunkCalculator` abstractions implementing the *distributed
  chunk-calculation* approach (chunk sizes derivable from the scheduling
  step alone for non-adaptive techniques).
* :mod:`repro.core.techniques` — the full DLS roster: STATIC, SS, FSC,
  mFSC, GSS, TAP, TSS, TFSS, FAC, FAC2, WF, AWF, AWF-B/C/D/E, AF, RND.
* :mod:`repro.core.adaptive` — the ADAPT meta-technique: runtime
  selection of the chunk calculator (SS/FAC2/GSS) per scheduling tier
  from observed chunk-fetch wait and iteration-time CoV.
* :mod:`repro.core.hierarchy` — two-level (inter-node x intra-node)
  scheduling composition used by the execution models.
* :mod:`repro.core.metrics` — parallel time, load-imbalance and
  overhead metrics.
* :mod:`repro.core.trace` — execution traces and ASCII Gantt charts
  (regenerates the paper's Figures 2 and 3).
"""

from repro.core.chunking import Chunk, ScheduleError, unroll, verify_schedule
from repro.core.hierarchy import HierarchicalSpec
from repro.core.metrics import LoadMetrics, compute_metrics
from repro.core.technique_base import (
    ChunkCalculator,
    IterationProfile,
    Technique,
    TechniqueError,
    clear_sequence_cache,
)
from repro.core.techniques import TECHNIQUES, get_technique, list_techniques

__all__ = [
    "Chunk",
    "ChunkCalculator",
    "HierarchicalSpec",
    "IterationProfile",
    "LoadMetrics",
    "ScheduleError",
    "TECHNIQUES",
    "Technique",
    "TechniqueError",
    "clear_sequence_cache",
    "compute_metrics",
    "get_technique",
    "list_techniques",
    "unroll",
    "verify_schedule",
]
