"""The ADAPT meta-technique: runtime selection of the chunk calculator.

"OpenMP Loop Scheduling Revisited" (Ciorba, Iwainsky & Buder, 2018)
makes the case that *no single* DLS technique wins across workloads and
machines — the right technique depends on the ratio of scheduling
overhead to load imbalance, which is only observable at runtime.  ADAPT
operationalises that argument per scheduling tier: every queue that
carries an ADAPT level watches two live signals,

* **chunk-fetch wait** — how long workers spend obtaining chunks (lock
  polling, refills, remote atomics), reported by the execution models
  through :meth:`~repro.core.technique_base.ChunkCalculator.record_wait`;
* **iteration-time CoV** — the coefficient of variation of observed
  per-iteration compute times, reported through ``record``,

and walks a fineness ladder (default ``SS -> FAC2 -> GSS``) in
response:

* it *starts at the first candidate* (by convention the finest — best
  load balance);
* when fetch wait dominates (``wait / (wait + compute)`` above the
  coarsen threshold over an observation window) it **coarsens** one
  rung — bigger chunks amortise the contended queue;
* when iteration times are highly variable (CoV above threshold) *and*
  fetching is cheap, it **refines** one rung — imbalance is the
  bigger enemy and the queue can afford the traffic.

The ladder is **configurable**: any ordered subset of the candidate
rules (``SS``, ``FAC2``, ``GSS``, ``TSS``) forms a valid ladder, spelt
``ADAPT[ss,fac2,tss]`` in a stack string (see :meth:`Adapt.parse`) or
passed as ``Adapt(candidates=(...))``.  The given order *is* the
ladder: index 0 is the starting rung, coarsening moves right.  Two
hysteresis knobs guard against thrash on noisy workloads:

* ``min_dwell`` — completed observation windows the selector must
  spend on a rung before it may switch again (0 = legacy behaviour:
  every window boundary may switch);
* ``improve_threshold`` — additive margin the triggering signal must
  clear beyond its threshold before a switch fires (0.0 = legacy
  exact thresholds).

The selector only ever picks from its ``candidates`` tuple, so an
installation that lacks a rule can simply omit it (the property suite
pins this).  Chunk sizes come from remaining-based closed forms of the
candidate rules — the ``TSS`` rule re-anchors its trapezoid on the
remainder at mode entry — so coverage/positivity hold by the same
argument as for the fixed techniques.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.technique_base import (
    ChunkCalculator,
    Technique,
    TechniqueError,
    ceil_div,
)

#: the legacy default ladder, finest first (SS -> FAC2 -> GSS)
_LADDER: Tuple[str, ...] = ("SS", "FAC2", "GSS")

#: stateless candidate rules — chunk size from (remaining, p)
_RULES = {
    "SS": lambda remaining, p: 1,
    "FAC2": lambda remaining, p: ceil_div(remaining, 2 * p),
    "GSS": lambda remaining, p: ceil_div(remaining, p),
}

#: every rule a ladder may carry (the stateless ones plus TSS)
RULE_NAMES: Tuple[str, ...] = ("SS", "FAC2", "GSS", "TSS")


class _TssRule:
    """The stateful TSS rung: a trapezoid re-anchored on mode entry.

    Unlike the stateless rules, TSS's linear decrement needs a fixed
    starting point; the selector anchors it on the iterations remaining
    when the rung is entered, and discards it on the next switch.
    """

    def __init__(self, remaining: int, p: int):
        self.first = max(1, ceil_div(remaining, 2 * p))
        self.last = 1
        steps = (
            max(1, ceil_div(2 * remaining, self.first + self.last))
            if remaining
            else 0
        )
        self.delta = (
            (self.first - self.last) / (steps - 1) if steps > 1 else 0.0
        )
        self.taken = 0

    def next_size(self) -> int:
        size = max(self.last, int(round(self.first - self.taken * self.delta)))
        self.taken += 1
        return size


class _AdaptiveCalculator(ChunkCalculator):
    """Per-execution ADAPT state: the selector plus window accumulators.

    ``deterministic = False``: chunk sizes depend on runtime feedback,
    so execution models use the scheduled-count protocol (exactly as
    for AWF-*/AF).
    """

    deterministic = False
    adaptive = True

    def __init__(
        self,
        name: str,
        n: int,
        p: int,
        candidates: Sequence[str] = _LADDER,
        window: Optional[int] = None,
        wait_coarsen: float = 0.2,
        wait_refine: float = 0.05,
        cov_refine: float = 0.5,
        min_dwell: int = 0,
        improve_threshold: float = 0.0,
    ):
        super().__init__(name, n, p)
        # the *given* order is the ladder (finest first by convention);
        # duplicates collapse to their first occurrence
        ladder = tuple(dict.fromkeys(candidates))
        unknown = set(ladder) - set(RULE_NAMES)
        if unknown:
            raise TechniqueError(
                f"{name}: unknown candidate rules {sorted(unknown)}; "
                f"available: {list(RULE_NAMES)}"
            )
        if not ladder:
            raise TechniqueError(f"{name}: needs at least one candidate rule")
        if min_dwell < 0:
            raise TechniqueError(f"{name}: min_dwell must be >= 0, got {min_dwell}")
        if improve_threshold < 0:
            raise TechniqueError(
                f"{name}: improve_threshold must be >= 0, got {improve_threshold}"
            )
        self.candidates = ladder
        #: adaptation window: observations before a switch decision
        self.window = window if window is not None else max(4, p)
        self.wait_coarsen = wait_coarsen
        self.wait_refine = wait_refine
        self.cov_refine = cov_refine
        self.min_dwell = int(min_dwell)
        self.improve_threshold = float(improve_threshold)
        self._mode_index = 0  # start at the first (finest) candidate
        #: every mode the selector has been in, in order (tests/reports)
        self.mode_history: List[str] = [self.candidates[0]]
        self.switch_count = 0
        self._scheduled = 0
        self._windows_in_mode = 0  # completed windows since the last switch
        self._tss_state: Optional[_TssRule] = None
        # observation-window accumulators
        self._win_wait = 0.0
        self._win_compute = 0.0
        self._win_obs = 0
        self._win_iter_sum = 0.0
        self._win_iter_sq = 0.0
        self._win_iter_n = 0

    # -- selector state -------------------------------------------------
    @property
    def mode(self) -> str:
        """The currently selected candidate rule."""
        return self.candidates[self._mode_index]

    def _switch(self, new_index: int) -> None:
        self._mode_index = new_index
        self.mode_history.append(self.mode)
        self.switch_count += 1
        self._windows_in_mode = 0
        self._tss_state = None  # a TSS rung re-anchors on entry

    def _maybe_adapt(self) -> None:
        if self._win_obs < self.window:
            return
        self._windows_in_mode += 1
        busy = self._win_wait + self._win_compute
        wait_fraction = self._win_wait / busy if busy > 0 else 0.0
        cov = 0.0
        if self._win_iter_n >= 2:
            mean = self._win_iter_sum / self._win_iter_n
            if mean > 0:
                var = max(
                    0.0, self._win_iter_sq / self._win_iter_n - mean * mean
                )
                cov = math.sqrt(var) / mean
        may_switch = self._windows_in_mode > self.min_dwell
        if (
            may_switch
            and wait_fraction > self.wait_coarsen + self.improve_threshold
            and self._mode_index + 1 < len(self.candidates)
        ):
            self._switch(self._mode_index + 1)
        elif (
            may_switch
            and cov > self.cov_refine + self.improve_threshold
            and wait_fraction < self.wait_refine
            and self._mode_index > 0
        ):
            self._switch(self._mode_index - 1)
        self._win_wait = 0.0
        self._win_compute = 0.0
        self._win_obs = 0
        self._win_iter_sum = 0.0
        self._win_iter_sq = 0.0
        self._win_iter_n = 0

    # -- feedback hooks -------------------------------------------------
    def record(
        self, pe: int, size: int, compute_time: float, overhead_time: float = 0.0
    ) -> None:
        if size <= 0:
            return
        per_iter = compute_time / size
        self._win_compute += compute_time + overhead_time
        self._win_iter_sum += per_iter
        self._win_iter_sq += per_iter * per_iter
        self._win_iter_n += 1
        self._win_obs += 1
        self._maybe_adapt()

    def record_wait(self, pe: int, wait_time: float) -> None:
        self._win_wait += wait_time

    # -- chunk dispensing ------------------------------------------------
    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        remaining = self.n - self._scheduled
        if remaining <= 0:
            return 0
        if self.mode == "TSS":
            if self._tss_state is None:
                self._tss_state = _TssRule(remaining, self.p)
            size = self._tss_state.next_size()
        else:
            size = _RULES[self.mode](remaining, self.p)
        size = max(1, min(int(size), remaining))
        self._scheduled += size
        return size

    @property
    def scheduled(self) -> int:
        return self._scheduled


class Adapt(Technique):
    """The ADAPT descriptor.

    The registry holds a default instance (full SS/FAC2/GSS ladder,
    default thresholds); a *configured* instance can be placed directly
    in a stack because :class:`~repro.core.hierarchy.LevelSpec` accepts
    Technique objects::

        HierarchicalSpec.of("GSS", Adapt(candidates=("FAC2", "GSS")))

    or spelt inline in any stack string (see :meth:`parse`)::

        HierarchicalSpec.parse("GSS+ADAPT[ss,fac2,tss]")
    """

    name = "ADAPT"
    adaptive = True
    description = (
        "Runtime-adaptive selector: starts at the finest candidate of "
        "its ladder (default SS->FAC2->GSS; any ordered subset of "
        "SS/FAC2/GSS/TSS via ADAPT[...]) and coarsens when chunk-fetch "
        "wait dominates, refining back when iteration-time CoV is high "
        "and fetching is cheap."
    )

    def __init__(
        self,
        candidates: Sequence[str] = _LADDER,
        window: Optional[int] = None,
        wait_coarsen: float = 0.2,
        wait_refine: float = 0.05,
        cov_refine: float = 0.5,
        min_dwell: int = 0,
        improve_threshold: float = 0.0,
    ):
        # fail at construction, not at the first queue refill
        _AdaptiveCalculator(
            self.name, 0, 1, candidates=candidates, window=window,
            wait_coarsen=wait_coarsen, wait_refine=wait_refine,
            cov_refine=cov_refine, min_dwell=min_dwell,
            improve_threshold=improve_threshold,
        )
        self.candidates = tuple(dict.fromkeys(candidates))
        self.window = window
        self.wait_coarsen = wait_coarsen
        self.wait_refine = wait_refine
        self.cov_refine = cov_refine
        self.min_dwell = int(min_dwell)
        self.improve_threshold = float(improve_threshold)
        if self._is_configured():
            self.name = self.spelling()  # instance attr shadows the class attr

    def _is_configured(self) -> bool:
        return (
            self.candidates != _LADDER
            or self.min_dwell != 0
            or self.improve_threshold != 0.0
            or self.window is not None
        )

    def spelling(self) -> str:
        """Canonical ``ADAPT[...]`` spelling of this configuration.

        Rule names are lower-case; non-default knobs append as
        ``key=value`` entries.  :meth:`parse` inverts this exactly, so
        the spelling round-trips through stack labels, cell-cache keys
        and the CLI.
        """
        entries = [rule.lower() for rule in self.candidates]
        if self.window is not None:
            entries.append(f"window={self.window}")
        if self.min_dwell:
            entries.append(f"dwell={self.min_dwell}")
        if self.improve_threshold:
            entries.append(f"improve={self.improve_threshold:g}")
        return "ADAPT[" + ",".join(entries) + "]"

    @classmethod
    def parse(cls, text: str) -> "Adapt":
        """Parse an ``ADAPT[...]`` ladder spelling.

        The bracket holds a comma-separated candidate ladder (ordered
        finest -> coarsest, case-insensitive: any of ``ss``, ``fac2``,
        ``gss``, ``tss``) plus optional ``key=value`` knobs:
        ``window=<int>`` (observation window), ``dwell=<int>``
        (``min_dwell``) and ``improve=<float>``
        (``improve_threshold``)::

            ADAPT[ss,fac2,tss]
            ADAPT[ss,fac2,gss,tss,dwell=2,improve=0.05]
        """
        stripped = text.strip()
        upper = stripped.upper()
        if not (upper.startswith("ADAPT[") and upper.endswith("]")):
            raise TechniqueError(f"not an ADAPT ladder spelling: {text!r}")
        body = stripped[len("ADAPT["):-1]
        rules: List[str] = []
        knobs = {}
        for entry in body.split(","):
            entry = entry.strip()
            if not entry:
                raise TechniqueError(f"empty entry in ADAPT ladder {text!r}")
            if "=" in entry:
                key, _, value = entry.partition("=")
                key = key.strip().lower()
                value = value.strip()
                try:
                    if key == "window":
                        knobs["window"] = int(value)
                    elif key == "dwell":
                        knobs["min_dwell"] = int(value)
                    elif key == "improve":
                        knobs["improve_threshold"] = float(value)
                    else:
                        raise TechniqueError(
                            f"unknown ADAPT knob {key!r} in {text!r}; "
                            f"knobs: window, dwell, improve"
                        )
                except ValueError as exc:
                    raise TechniqueError(
                        f"bad value for ADAPT knob {key!r} in {text!r}: {exc}"
                    ) from None
            else:
                rules.append(entry.upper())
        if not rules:
            raise TechniqueError(
                f"ADAPT ladder {text!r} names no candidate rules"
            )
        return cls(candidates=tuple(rules), **knobs)

    def make(self, n, p, **kwargs) -> ChunkCalculator:
        return _AdaptiveCalculator(
            self.name,
            n,
            p,
            candidates=self.candidates,
            window=self.window,
            wait_coarsen=self.wait_coarsen,
            wait_refine=self.wait_refine,
            cov_refine=self.cov_refine,
            min_dwell=self.min_dwell,
            improve_threshold=self.improve_threshold,
        )


__all__ = ["Adapt", "RULE_NAMES"]
