"""The ADAPT meta-technique: runtime selection of the chunk calculator.

"OpenMP Loop Scheduling Revisited" (Ciorba, Iwainsky & Buder, 2018)
makes the case that *no single* DLS technique wins across workloads and
machines — the right technique depends on the ratio of scheduling
overhead to load imbalance, which is only observable at runtime.  ADAPT
operationalises that argument per scheduling tier: every queue that
carries an ADAPT level watches two live signals,

* **chunk-fetch wait** — how long workers spend obtaining chunks (lock
  polling, refills, remote atomics), reported by the execution models
  through :meth:`~repro.core.technique_base.ChunkCalculator.record_wait`;
* **iteration-time CoV** — the coefficient of variation of observed
  per-iteration compute times, reported through ``record``,

and walks a fineness ladder (default ``SS -> FAC2 -> GSS``) in
response:

* it *starts at the finest candidate* (best load balance);
* when fetch wait dominates (``wait / (wait + compute)`` above the
  coarsen threshold over an observation window) it **coarsens** one
  rung — bigger chunks amortise the contended queue;
* when iteration times are highly variable (CoV above threshold) *and*
  fetching is cheap, it **refines** one rung — imbalance is the
  bigger enemy and the queue can afford the traffic.

The selector only ever picks from its ``candidates`` tuple, so an
installation that lacks a rule can simply omit it (the property suite
pins this).  Chunk sizes come from remaining-based closed forms of the
candidate rules, so coverage/positivity hold by the same argument as
for the fixed techniques.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.technique_base import (
    ChunkCalculator,
    Technique,
    TechniqueError,
    ceil_div,
)

#: candidate rules by fineness (finest first) — chunk size from
#: (remaining, p); the selector may only walk this ladder
_LADDER: Tuple[str, ...] = ("SS", "FAC2", "GSS")

_RULES = {
    "SS": lambda remaining, p: 1,
    "FAC2": lambda remaining, p: ceil_div(remaining, 2 * p),
    "GSS": lambda remaining, p: ceil_div(remaining, p),
}


class _AdaptiveCalculator(ChunkCalculator):
    """Per-execution ADAPT state: the selector plus window accumulators.

    ``deterministic = False``: chunk sizes depend on runtime feedback,
    so execution models use the scheduled-count protocol (exactly as
    for AWF-*/AF).
    """

    deterministic = False
    adaptive = True

    def __init__(
        self,
        name: str,
        n: int,
        p: int,
        candidates: Sequence[str] = _LADDER,
        window: Optional[int] = None,
        wait_coarsen: float = 0.2,
        wait_refine: float = 0.05,
        cov_refine: float = 0.5,
    ):
        super().__init__(name, n, p)
        ladder = tuple(c for c in _LADDER if c in candidates)
        unknown = set(candidates) - set(_LADDER)
        if unknown:
            raise TechniqueError(
                f"{name}: unknown candidate rules {sorted(unknown)}; "
                f"available: {list(_LADDER)}"
            )
        if not ladder:
            raise TechniqueError(f"{name}: needs at least one candidate rule")
        self.candidates = ladder
        #: adaptation window: observations before a switch decision
        self.window = window if window is not None else max(4, p)
        self.wait_coarsen = wait_coarsen
        self.wait_refine = wait_refine
        self.cov_refine = cov_refine
        self._mode_index = 0  # start at the finest candidate
        #: every mode the selector has been in, in order (tests/reports)
        self.mode_history: List[str] = [self.candidates[0]]
        self.switch_count = 0
        self._scheduled = 0
        # observation-window accumulators
        self._win_wait = 0.0
        self._win_compute = 0.0
        self._win_obs = 0
        self._win_iter_sum = 0.0
        self._win_iter_sq = 0.0
        self._win_iter_n = 0

    # -- selector state -------------------------------------------------
    @property
    def mode(self) -> str:
        """The currently selected candidate rule."""
        return self.candidates[self._mode_index]

    def _switch(self, new_index: int) -> None:
        self._mode_index = new_index
        self.mode_history.append(self.mode)
        self.switch_count += 1

    def _maybe_adapt(self) -> None:
        if self._win_obs < self.window:
            return
        busy = self._win_wait + self._win_compute
        wait_fraction = self._win_wait / busy if busy > 0 else 0.0
        cov = 0.0
        if self._win_iter_n >= 2:
            mean = self._win_iter_sum / self._win_iter_n
            if mean > 0:
                var = max(
                    0.0, self._win_iter_sq / self._win_iter_n - mean * mean
                )
                cov = math.sqrt(var) / mean
        if (
            wait_fraction > self.wait_coarsen
            and self._mode_index + 1 < len(self.candidates)
        ):
            self._switch(self._mode_index + 1)
        elif (
            cov > self.cov_refine
            and wait_fraction < self.wait_refine
            and self._mode_index > 0
        ):
            self._switch(self._mode_index - 1)
        self._win_wait = 0.0
        self._win_compute = 0.0
        self._win_obs = 0
        self._win_iter_sum = 0.0
        self._win_iter_sq = 0.0
        self._win_iter_n = 0

    # -- feedback hooks -------------------------------------------------
    def record(
        self, pe: int, size: int, compute_time: float, overhead_time: float = 0.0
    ) -> None:
        if size <= 0:
            return
        per_iter = compute_time / size
        self._win_compute += compute_time + overhead_time
        self._win_iter_sum += per_iter
        self._win_iter_sq += per_iter * per_iter
        self._win_iter_n += 1
        self._win_obs += 1
        self._maybe_adapt()

    def record_wait(self, pe: int, wait_time: float) -> None:
        self._win_wait += wait_time

    # -- chunk dispensing ------------------------------------------------
    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        remaining = self.n - self._scheduled
        if remaining <= 0:
            return 0
        size = _RULES[self.mode](remaining, self.p)
        size = max(1, min(int(size), remaining))
        self._scheduled += size
        return size

    @property
    def scheduled(self) -> int:
        return self._scheduled


class Adapt(Technique):
    """The ADAPT descriptor.

    The registry holds a default instance (full SS/FAC2/GSS ladder,
    default thresholds); a *configured* instance can be placed directly
    in a stack because :class:`~repro.core.hierarchy.LevelSpec` accepts
    Technique objects::

        HierarchicalSpec.of("GSS", Adapt(candidates=("FAC2", "GSS")))
    """

    name = "ADAPT"
    adaptive = True
    description = (
        "Runtime-adaptive selector: starts at the finest candidate (SS) "
        "and coarsens (SS->FAC2->GSS) when chunk-fetch wait dominates, "
        "refining back when iteration-time CoV is high and fetching is "
        "cheap."
    )

    def __init__(
        self,
        candidates: Sequence[str] = _LADDER,
        window: Optional[int] = None,
        wait_coarsen: float = 0.2,
        wait_refine: float = 0.05,
        cov_refine: float = 0.5,
    ):
        # fail at construction, not at the first queue refill
        _AdaptiveCalculator(
            self.name, 0, 1, candidates=candidates, window=window,
            wait_coarsen=wait_coarsen, wait_refine=wait_refine,
            cov_refine=cov_refine,
        )
        self.candidates = tuple(candidates)
        self.window = window
        self.wait_coarsen = wait_coarsen
        self.wait_refine = wait_refine
        self.cov_refine = cov_refine

    def make(self, n, p, **kwargs) -> ChunkCalculator:
        return _AdaptiveCalculator(
            self.name,
            n,
            p,
            candidates=self.candidates,
            window=self.window,
            wait_coarsen=self.wait_coarsen,
            wait_refine=self.wait_refine,
            cov_refine=self.cov_refine,
        )


__all__ = ["Adapt"]
