"""Chunks of loop iterations and schedule-correctness helpers.

A *chunk* is a half-open range ``[start, start+size)`` of loop-iteration
indices handed to one processing element at one scheduling step.  The
helpers here unroll a technique serially (ground truth for tests) and
verify the fundamental schedule invariants: full coverage of the
iteration space, no overlap, and positive sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.technique_base import ChunkCalculator


class ScheduleError(AssertionError):
    """A schedule violated coverage/overlap invariants."""


@dataclass(frozen=True)
class Chunk:
    """A scheduled unit of work.

    Attributes
    ----------
    step:
        The scheduling step at which this chunk was obtained (global
        ordering of grabs at one scheduling level).
    start, size:
        Half-open iteration range ``[start, start + size)``.
    pe:
        Processing element that obtained the chunk (worker rank or
        thread id), ``-1`` when not applicable (serial unrolling).
    """

    step: int
    start: int
    size: int
    pe: int = -1

    @property
    def end(self) -> int:
        return self.start + self.size

    def __post_init__(self) -> None:
        if self.size < 0 or self.start < 0:
            raise ValueError(f"malformed chunk {self!r}")

    def __len__(self) -> int:
        return self.size

    def split(self, at: int) -> "tuple[Chunk, Chunk]":
        """Split into two chunks after ``at`` iterations (test helper)."""
        if not 0 <= at <= self.size:
            raise ValueError(f"split point {at} outside chunk of size {self.size}")
        left = Chunk(self.step, self.start, at, self.pe)
        right = Chunk(self.step, self.start + at, self.size - at, self.pe)
        return left, right


def unroll(calculator: "ChunkCalculator", round_robin_pes: Optional[int] = None) -> List[Chunk]:
    """Serially unroll a calculator into its complete chunk list.

    This emulates a perfectly serialised self-scheduling execution:
    step ``i`` is grabbed before step ``i+1``.  For techniques whose
    chunk size depends on the requesting PE (WF, AWF-*), PEs take turns
    round-robin over ``round_robin_pes`` (defaults to the calculator's
    ``p``).

    Returns chunks exactly covering ``[0, n)``.
    """
    p = round_robin_pes if round_robin_pes is not None else calculator.p
    chunks: List[Chunk] = []
    start = 0
    step = 0
    guard = 0
    while start < calculator.n:
        pe = step % p
        size = calculator.size_at(step, pe=pe)
        if size <= 0:
            raise ScheduleError(
                f"{calculator!r} returned size {size} at step {step} with "
                f"{calculator.n - start} iterations remaining"
            )
        size = min(size, calculator.n - start)
        chunks.append(Chunk(step=step, start=start, size=size, pe=pe))
        start += size
        step += 1
        guard += 1
        if guard > 2 * calculator.n + 16:
            raise ScheduleError(f"unroll did not terminate for {calculator!r}")
    return chunks


def verify_schedule(chunks: Iterable[Chunk], n: int) -> None:
    """Raise :class:`ScheduleError` unless chunks tile ``[0, n)`` exactly.

    The chunks may arrive in any order (concurrent executions produce
    interleaved grabs); they are sorted by ``start`` before checking.
    """
    ordered = sorted(chunks, key=lambda c: c.start)
    cursor = 0
    for chunk in ordered:
        if chunk.size <= 0:
            raise ScheduleError(f"non-positive chunk {chunk}")
        if chunk.start != cursor:
            kind = "overlap" if chunk.start < cursor else "gap"
            raise ScheduleError(
                f"{kind} at iteration {min(cursor, chunk.start)}: "
                f"expected next start {cursor}, got {chunk}"
            )
        cursor = chunk.end
    if cursor != n:
        raise ScheduleError(f"schedule covers [0, {cursor}) but the loop has {n} iterations")


def chunk_sizes(chunks: Sequence[Chunk]) -> List[int]:
    """Sizes in step order (convenience for tests and reports)."""
    return [c.size for c in sorted(chunks, key=lambda c: c.step)]
