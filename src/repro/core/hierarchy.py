"""Multi-level scheduling composition.

A hierarchical DLS configuration is a **stack of scheduling levels** of
any depth >= 1.  Level 0 carves the global iteration space into
top-level *chunks*; every deeper level carves its parent's current
chunk into *sub-chunks* (the level schedules *within the parent chunk*,
with ``n = len(chunk)`` and ``p =`` the number of child units at that
level).  The paper's MPI+MPI approach is the depth-2 instance — an
**inter-node** technique paired with an **intra-node** technique,
written ``X+Y`` (e.g. ``GSS+STATIC``: GSS across nodes, STATIC within
a node) — but the same composition extends to the socket and NUMA
tiers sitting between node and core on modern clusters:
``GSS+FAC2+STATIC`` schedules GSS across nodes, FAC2 across the
sockets of each node, and STATIC across the cores of each socket,
while the depth-4 ``GSS+FAC2+FAC2+STATIC`` adds FAC2 across the NUMA
domains of each socket before the leaf splits a NUMA domain's cores.

:class:`HierarchicalSpec` validates and carries such a level stack;
the execution models in :mod:`repro.models` map levels onto machine
tiers (cluster -> node -> socket -> numa -> core) and instantiate
fresh calculators each time a tier's local queue is refilled.  The two-level
constructor :meth:`HierarchicalSpec.of` and the ``inter``/``intra``
accessors are kept as the compatibility surface for the paper's
``X+Y`` world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.technique_base import ChunkCalculator, IterationProfile, Technique
from repro.core.techniques import get_technique

#: anything accepted as one level of a stack
TechniqueLike = Union[str, Technique, "LevelSpec"]


@dataclass
class LevelSpec:
    """One scheduling level: a technique plus its optional parameters."""

    technique: Technique
    weights: Optional[Sequence[float]] = None
    profile: Optional[IterationProfile] = None
    #: minimum chunk size floor (OpenMP's ``schedule(kind, chunk)`` second arg)
    min_chunk: int = 1

    @classmethod
    def of(cls, technique: "Technique | str", **kwargs) -> "LevelSpec":
        if isinstance(technique, str):
            technique = get_technique(technique)
        return cls(technique=technique, **kwargs)

    def make_calculator(
        self, n: int, p: int, rng: Optional[np.random.Generator] = None,
        chunk_overhead: Optional[float] = None,
    ) -> ChunkCalculator:
        calc = self.technique.make(
            n,
            p,
            weights=self.weights,
            profile=self.profile,
            rng=rng,
            chunk_overhead=chunk_overhead,
        )
        if self.min_chunk > 1:
            return _MinChunkWrapper(calc, self.min_chunk)
        return calc


class _MinChunkWrapper(ChunkCalculator):
    """Clamp an inner calculator's sizes from below (guided,k semantics)."""

    def __init__(self, inner: ChunkCalculator, min_chunk: int):
        super().__init__(f"{inner.name}(min={min_chunk})", inner.n, inner.p)
        self.inner = inner
        self.min_chunk = int(min_chunk)
        self.deterministic = inner.deterministic
        self._scheduled = 0

    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        remaining = self.n - self._scheduled
        if remaining <= 0:
            return 0
        size = self.inner.size_at(step, pe=pe)
        size = max(self.min_chunk, size)
        size = min(size, remaining)
        self._scheduled += size
        return size

    def record(self, pe, size, compute_time, overhead_time=0.0) -> None:
        self.inner.record(pe, size, compute_time, overhead_time)

    def record_wait(self, pe, wait_time) -> None:
        self.inner.record_wait(pe, wait_time)

    # ADAPT selector surface: present exactly when the wrapped
    # calculator is a selector, so the models' duck-typed bookkeeping
    # (``hasattr(calc, "mode_history")``) sees through the wrapper.
    @property
    def mode_history(self):
        return self.inner.mode_history

    @property
    def mode(self):
        return self.inner.mode

    @property
    def switch_count(self):
        return self.inner.switch_count

    def start_at(self, step: int) -> int:  # pragma: no cover - defensive
        raise NotImplementedError(
            "min-chunk wrapped calculators are consumed sequentially; "
            "use the scheduled-count protocol"
        )


def split_stack(value: "TechniqueLike | None") -> list:
    """Split one technique argument into stack levels.

    The single parser behind every ``+``-joined stack surface
    (:meth:`HierarchicalSpec.parse`, :func:`repro.api.run_hierarchical`,
    the CLI's ``--techniques``): strings may be ``+``-joined stacks
    (``"GSS+FAC2"``), Technique/LevelSpec instances are single levels,
    None contributes nothing.
    """
    if value is None:
        return []
    if isinstance(value, str):
        parts = [part.strip() for part in value.split("+")]
        if any(not part for part in parts):
            raise ValueError(f"malformed technique stack {value!r}")
        return parts
    return [value]


def _as_level(technique: TechniqueLike, **kwargs) -> LevelSpec:
    if isinstance(technique, LevelSpec):
        if kwargs:
            raise TypeError(
                "cannot combine a LevelSpec level with extra level kwargs"
            )
        return technique
    return LevelSpec.of(technique, **kwargs)


class HierarchicalSpec:
    """A stack of scheduling levels (the paper's ``X+Y``, generalised).

    Construction forms, oldest first::

        HierarchicalSpec(inter=LevelSpec(...), intra=LevelSpec(...))  # 2-level
        HierarchicalSpec(levels=(l0, l1, l2))                         # any depth
        HierarchicalSpec.of("GSS", "STATIC", inter_profile=...)       # 2-level
        HierarchicalSpec.of_levels("GSS", "FAC2", "STATIC")           # any depth
        HierarchicalSpec.parse("GSS+FAC2+STATIC")                     # any depth

    ``inter`` is always ``levels[0]`` and ``intra`` is always
    ``levels[-1]``, so code written against the original two-level pair
    (the single-level baselines, the OpenMP schedule translation, the
    native runner) keeps working unchanged on deeper stacks.
    """

    levels: Tuple[LevelSpec, ...]

    def __init__(
        self,
        levels: Optional[Sequence[LevelSpec]] = None,
        *,
        inter: Optional[LevelSpec] = None,
        intra: Optional[LevelSpec] = None,
    ):
        if levels is not None:
            if inter is not None or intra is not None:
                raise TypeError("pass either levels= or inter=/intra=, not both")
            stack = tuple(levels)
        else:
            if inter is None or intra is None:
                raise TypeError(
                    "HierarchicalSpec needs levels= or both inter= and intra="
                )
            stack = (inter, intra)
        if not stack:
            raise ValueError("HierarchicalSpec needs at least one level")
        for index, level in enumerate(stack):
            if not isinstance(level, LevelSpec):
                raise TypeError(
                    f"level {index} is {type(level).__name__}, expected LevelSpec"
                )
        self.levels = stack

    # -- constructors ---------------------------------------------------
    @classmethod
    def of(cls, inter: TechniqueLike, intra: TechniqueLike, **kwargs) -> "HierarchicalSpec":
        """Two-level convenience constructor: ``HierarchicalSpec.of("GSS", "STATIC")``.

        Kept as the compatibility surface for the paper's ``X+Y`` pair;
        ``inter_*``/``intra_*`` prefixed kwargs parameterise the
        respective level (``inter_profile=...``, ``intra_weights=...``).
        """
        inter_kwargs = {
            k[len("inter_"):]: v for k, v in kwargs.items() if k.startswith("inter_")
        }
        intra_kwargs = {
            k[len("intra_"):]: v for k, v in kwargs.items() if k.startswith("intra_")
        }
        unknown = set(kwargs) - {
            *(f"inter_{k}" for k in inter_kwargs),
            *(f"intra_{k}" for k in intra_kwargs),
        }
        if unknown:
            raise TypeError(f"unknown HierarchicalSpec arguments: {sorted(unknown)}")
        return cls(
            levels=(
                _as_level(inter, **inter_kwargs),
                _as_level(intra, **intra_kwargs),
            )
        )

    @classmethod
    def of_levels(cls, *techniques: TechniqueLike, **kwargs) -> "HierarchicalSpec":
        """Arbitrary-depth constructor: one positional argument per level.

        Per-level parameters use ``level<i>_`` prefixes counting from the
        root (``level0_profile=...``); for readability the aliases
        ``inter_`` (level 0) and ``intra_`` (last level) also work at
        any depth.
        """
        if not techniques:
            raise ValueError("of_levels needs at least one technique")
        depth = len(techniques)
        per_level: Dict[int, Dict[str, object]] = {i: {} for i in range(depth)}
        for key, value in kwargs.items():
            if key.startswith("inter_"):
                per_level[0][key[len("inter_"):]] = value
            elif key.startswith("intra_"):
                per_level[depth - 1][key[len("intra_"):]] = value
            elif key.startswith("level"):
                prefix, _, param = key.partition("_")
                index_text = prefix[len("level"):]
                if not index_text.isdigit() or not param:
                    raise TypeError(f"unknown HierarchicalSpec argument {key!r}")
                index = int(index_text)
                if not 0 <= index < depth:
                    raise TypeError(
                        f"{key!r} addresses level {index} of a depth-{depth} stack"
                    )
                per_level[index][param] = value
            else:
                raise TypeError(f"unknown HierarchicalSpec argument {key!r}")
        return cls(
            levels=tuple(
                _as_level(technique, **per_level[i])
                for i, technique in enumerate(techniques)
            )
        )

    @classmethod
    def parse(cls, text: str, **kwargs) -> "HierarchicalSpec":
        """Parse a ``+``-joined stack label, e.g. ``"GSS+FAC2+STATIC"``.

        This is the CLI's ``--techniques`` syntax; a single name
        (``"GSS"``) yields a depth-1 stack.
        """
        return cls.of_levels(*split_stack(text), **kwargs)

    # -- introspection --------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def inter(self) -> LevelSpec:
        """The root (level 0) spec — across nodes in every model."""
        return self.levels[0]

    @property
    def intra(self) -> LevelSpec:
        """The leaf (last-level) spec.

        For depth-1 stacks this is the root itself; single-level
        baselines ignore it either way.
        """
        return self.levels[-1]

    @property
    def label(self) -> str:
        """Paper-style combination label, e.g. ``"GSS+STATIC"``."""
        return "+".join(level.technique.name for level in self.levels)

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HierarchicalSpec({self.label})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HierarchicalSpec):
            return NotImplemented
        return self.levels == other.levels

    # like the former @dataclass form: eq without hash
    __hash__ = None  # type: ignore[assignment]
