"""Two-level scheduling composition.

A hierarchical DLS configuration pairs an **inter-node** technique
(which carves the global iteration space into node-level *chunks*) with
an **intra-node** technique (which carves each chunk into worker-level
*sub-chunks*).  The paper writes this as ``X+Y`` — e.g. ``GSS+STATIC``
means GSS across nodes, STATIC within a node.

:class:`HierarchicalSpec` validates and carries such a pair plus its
per-level parameters; the execution models in :mod:`repro.models`
instantiate fresh intra-node calculators each time a node's local queue
is refilled (the intra-level schedules *within the current chunk*, with
``n = len(chunk)`` and ``p = workers per node``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.technique_base import ChunkCalculator, IterationProfile, Technique
from repro.core.techniques import get_technique


@dataclass
class LevelSpec:
    """One scheduling level: a technique plus its optional parameters."""

    technique: Technique
    weights: Optional[Sequence[float]] = None
    profile: Optional[IterationProfile] = None
    #: minimum chunk size floor (OpenMP's ``schedule(kind, chunk)`` second arg)
    min_chunk: int = 1

    @classmethod
    def of(cls, technique: "Technique | str", **kwargs) -> "LevelSpec":
        if isinstance(technique, str):
            technique = get_technique(technique)
        return cls(technique=technique, **kwargs)

    def make_calculator(
        self, n: int, p: int, rng: Optional[np.random.Generator] = None,
        chunk_overhead: Optional[float] = None,
    ) -> ChunkCalculator:
        calc = self.technique.make(
            n,
            p,
            weights=self.weights,
            profile=self.profile,
            rng=rng,
            chunk_overhead=chunk_overhead,
        )
        if self.min_chunk > 1:
            return _MinChunkWrapper(calc, self.min_chunk)
        return calc


class _MinChunkWrapper(ChunkCalculator):
    """Clamp an inner calculator's sizes from below (guided,k semantics)."""

    def __init__(self, inner: ChunkCalculator, min_chunk: int):
        super().__init__(f"{inner.name}(min={min_chunk})", inner.n, inner.p)
        self.inner = inner
        self.min_chunk = int(min_chunk)
        self.deterministic = inner.deterministic
        self._scheduled = 0

    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        remaining = self.n - self._scheduled
        if remaining <= 0:
            return 0
        size = self.inner.size_at(step, pe=pe)
        size = max(self.min_chunk, size)
        size = min(size, remaining)
        self._scheduled += size
        return size

    def record(self, pe, size, compute_time, overhead_time=0.0) -> None:
        self.inner.record(pe, size, compute_time, overhead_time)

    def start_at(self, step: int) -> int:  # pragma: no cover - defensive
        raise NotImplementedError(
            "min-chunk wrapped calculators are consumed sequentially; "
            "use the scheduled-count protocol"
        )


@dataclass
class HierarchicalSpec:
    """An ``inter+intra`` scheduling combination (the paper's ``X+Y``)."""

    inter: LevelSpec
    intra: LevelSpec

    @classmethod
    def of(cls, inter: "Technique | str", intra: "Technique | str", **kwargs) -> "HierarchicalSpec":
        """Convenience constructor: ``HierarchicalSpec.of("GSS", "STATIC")``."""
        inter_kwargs = {
            k[len("inter_"):]: v for k, v in kwargs.items() if k.startswith("inter_")
        }
        intra_kwargs = {
            k[len("intra_"):]: v for k, v in kwargs.items() if k.startswith("intra_")
        }
        unknown = set(kwargs) - {
            *(f"inter_{k}" for k in inter_kwargs),
            *(f"intra_{k}" for k in intra_kwargs),
        }
        if unknown:
            raise TypeError(f"unknown HierarchicalSpec arguments: {sorted(unknown)}")
        return cls(
            inter=LevelSpec.of(inter, **inter_kwargs),
            intra=LevelSpec.of(intra, **intra_kwargs),
        )

    @property
    def label(self) -> str:
        """Paper-style combination label, e.g. ``"GSS+STATIC"``."""
        return f"{self.inter.technique.name}+{self.intra.technique.name}"

    def __str__(self) -> str:
        return self.label
