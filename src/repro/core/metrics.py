"""Load-balance and overhead metrics.

The paper reports the *parallel execution time of the main loop*
(Figures 4-7).  For analysis and tests we additionally compute the
standard DLS quality metrics used throughout the cited literature:
coefficient of variation of PE finish times, max/mean load imbalance,
idle fraction, and the scheduling-overhead share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker accounting extracted from its simulated process."""

    name: str
    node: int
    finish_time: float
    compute_time: float
    overhead_time: float
    #: explicit idle + implicit event-wait time
    idle_time: float
    n_chunks: int
    n_iterations: int


@dataclass(frozen=True)
class LoadMetrics:
    """Aggregate quality metrics for one parallel loop execution."""

    #: the headline number: max worker finish time (loop start = 0)
    parallel_time: float
    #: coefficient of variation of worker finish (busy-until) times
    cov_finish: float
    #: max(compute_time) / mean(compute_time) — classic imbalance factor
    imbalance: float
    #: mean fraction of the parallel time workers spent idle/waiting
    idle_fraction: float
    #: mean fraction of the parallel time spent in scheduling overhead
    overhead_fraction: float
    #: total chunks obtained across all workers (both levels combined)
    total_chunks: int
    #: per-worker records, in rank order
    workers: tuple = field(default_factory=tuple, repr=False)

    def summary(self) -> str:
        return (
            f"T_par={self.parallel_time:.4g}s  cov={self.cov_finish:.3f}  "
            f"imb={self.imbalance:.3f}  idle={self.idle_fraction:.1%}  "
            f"ovh={self.overhead_fraction:.2%}  chunks={self.total_chunks}"
        )


def compute_metrics(workers: Sequence[WorkerStats]) -> LoadMetrics:
    """Reduce per-worker stats into :class:`LoadMetrics`.

    ``finish_time`` here is each worker's *last useful activity* time;
    the parallel time is their maximum.  A degenerate run (no workers or
    zero time) produces zeroed metrics rather than NaNs so callers can
    assert on it cleanly.
    """
    if not workers:
        return LoadMetrics(0.0, 0.0, 0.0, 0.0, 0.0, 0, ())
    finish = np.array([w.finish_time for w in workers])
    compute = np.array([w.compute_time for w in workers])
    overhead = np.array([w.overhead_time for w in workers])
    idle = np.array([w.idle_time for w in workers])

    t_par = float(finish.max())
    mean_finish = float(finish.mean())
    cov = float(finish.std() / mean_finish) if mean_finish > 0 else 0.0
    mean_compute = float(compute.mean())
    imbalance = float(compute.max() / mean_compute) if mean_compute > 0 else 0.0
    idle_fraction = float((idle / t_par).mean()) if t_par > 0 else 0.0
    overhead_fraction = float((overhead / t_par).mean()) if t_par > 0 else 0.0
    return LoadMetrics(
        parallel_time=t_par,
        cov_finish=cov,
        imbalance=imbalance,
        idle_fraction=idle_fraction,
        overhead_fraction=overhead_fraction,
        total_chunks=int(sum(w.n_chunks for w in workers)),
        workers=tuple(workers),
    )


def speedup_series(times: Dict[int, float]) -> Dict[int, float]:
    """Relative speedup over the smallest configuration in a scaling sweep."""
    if not times:
        return {}
    base_nodes = min(times)
    base = times[base_nodes]
    return {n: base / t if t > 0 else float("inf") for n, t in sorted(times.items())}


def parallel_efficiency(times: Dict[int, float]) -> Dict[int, float]:
    """Strong-scaling efficiency vs the smallest configuration."""
    speedups = speedup_series(times)
    if not speedups:
        return {}
    base_nodes = min(times)
    return {n: s * base_nodes / n for n, s in speedups.items()}
