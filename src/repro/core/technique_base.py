"""Technique and ChunkCalculator abstractions.

The *distributed chunk-calculation* approach (Eleliemy & Ciorba, PDP
2019 [15]) eliminates the master: each worker atomically increments the
*latest scheduling step* in an RMA window and computes its own chunk
from that step.  That works because for non-adaptive DLS techniques the
serial chunk sequence ``C_0, C_1, ...`` is a pure function of ``(N, P,
technique parameters)`` — every rank can derive the same sequence
locally and cheaply.

This module provides:

* :class:`Technique` — stateless descriptor + factory (one instance per
  named technique, held in the registry).
* :class:`ChunkCalculator` — a per-loop-execution object produced by
  :meth:`Technique.make`.  Non-adaptive calculators memoise the serial
  sequence and expose ``deterministic = True`` so execution models can
  use the step-counter-only protocol; adaptive calculators
  (``deterministic = False``) additionally consult runtime feedback
  recorded through :meth:`ChunkCalculator.record`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np


class TechniqueError(ValueError):
    """Bad technique parameters (missing profile, weights, ...)."""


@dataclass(frozen=True)
class IterationProfile:
    """Prior knowledge about iteration execution times.

    FAC, TAP and FSC assume the mean ``mu`` and standard deviation
    ``sigma`` of iteration times are known a priori (the paper, Sec. 2).
    Workloads provide this via :meth:`repro.workloads.base.Workload.profile`.
    """

    mu: float
    sigma: float
    #: per-scheduling-operation overhead estimate ``h`` (FSC needs it).
    h: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.mu <= 0 or self.sigma < 0 or self.h <= 0:
            raise TechniqueError(
                f"invalid profile mu={self.mu}, sigma={self.sigma}, h={self.h}"
            )

    @property
    def cov(self) -> float:
        """Coefficient of variation sigma/mu."""
        return self.sigma / self.mu


class ChunkCalculator:
    """Chunk-size oracle for one execution of one scheduling level.

    Subclasses implement :meth:`_next_size`, the remaining-based
    recurrence ``C_i = f(R_i, i)``; the base class memoises the
    resulting serial sequence together with its prefix sums so that
    ``size_at``/``start_at`` are O(1) amortised — this mirrors how the
    distributed chunk-calculation approach lets every rank evaluate the
    schedule locally.

    Attributes
    ----------
    deterministic:
        True when chunk sizes are a pure function of the scheduling
        step.  Execution models rely on this to choose between the
        single-counter protocol (deterministic) and the
        step-plus-scheduled-count protocol (adaptive / PE-dependent).
    """

    deterministic: bool = True

    def __init__(self, name: str, n: int, p: int):
        if n < 0:
            raise TechniqueError(f"negative iteration count {n}")
        if p < 1:
            raise TechniqueError(f"need at least one PE, got {p}")
        self.name = name
        self.n = int(n)
        self.p = int(p)
        self._sizes: List[int] = []
        self._prefix: List[int] = [0]

    # -- recurrence ----------------------------------------------------
    def _next_size(self, remaining: int, step: int) -> int:
        """Chunk size when ``remaining`` iterations are unscheduled at ``step``."""
        raise NotImplementedError

    def _extend_to(self, step: int) -> None:
        while len(self._sizes) <= step and self._prefix[-1] < self.n:
            remaining = self.n - self._prefix[-1]
            size = self._next_size(remaining, len(self._sizes))
            size = max(1, min(int(size), remaining))
            self._sizes.append(size)
            self._prefix.append(self._prefix[-1] + size)

    # -- public API ------------------------------------------------------
    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        """Size of the chunk at scheduling ``step`` (0 = loop exhausted).

        ``pe`` matters only for PE-dependent techniques (WF, AWF-*);
        deterministic techniques ignore it.
        """
        if step < 0:
            raise TechniqueError(f"negative scheduling step {step}")
        self._extend_to(step)
        if step < len(self._sizes):
            return self._sizes[step]
        return 0

    def start_at(self, step: int) -> int:
        """First iteration index of the chunk at ``step``.

        Only meaningful for deterministic calculators — the value is the
        prefix sum of the serial sequence, which is what a rank computes
        locally after fetch-and-incrementing the step counter.
        """
        if not self.deterministic:
            raise TechniqueError(
                f"{self.name} is adaptive/PE-dependent; start_at() is undefined"
            )
        self._extend_to(step)
        if step < len(self._prefix) - 1:
            return self._prefix[step]
        return self.n

    def record(
        self,
        pe: int,
        size: int,
        compute_time: float,
        overhead_time: float = 0.0,
    ) -> None:
        """Runtime feedback hook; default no-op (non-adaptive techniques)."""

    def total_steps(self) -> int:
        """Number of chunks in the serial unrolling (deterministic only)."""
        if not self.deterministic:
            raise TechniqueError(f"{self.name}: total_steps undefined for adaptive")
        self._extend_to(2 * self.n + 16)
        return len(self._sizes)

    def sequence(self) -> List[int]:
        """The full serial chunk-size sequence (deterministic only)."""
        self.total_steps()
        return list(self._sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, n={self.n}, p={self.p})"


class Technique:
    """Descriptor + factory for one DLS technique.

    Instances are stateless; per-execution state lives in the
    :class:`ChunkCalculator` returned by :meth:`make`.

    Attributes
    ----------
    name:
        Canonical upper-case name (``"GSS"``).
    openmp_clause:
        The OpenMP ``schedule`` clause implementing the same technique,
        or None when the (Intel) OpenMP runtime has no equivalent —
        reproduces the paper's Table 1 and drives which MPI+OpenMP
        combinations exist in Figures 4-7.
    openmp_extension_clause:
        Clause available only in the research LaPeSD-libGOMP runtime
        [31] (e.g. TSS, FAC2); None otherwise.
    adaptive:
        Uses runtime feedback (AWF-B/C/D/E, AF).
    pe_dependent:
        Chunk size depends on which PE grabs it (WF, AWF family).
    needs_profile / needs_weights:
        Requires an :class:`IterationProfile` / per-PE weights.
    """

    name: str = "?"
    openmp_clause: Optional[str] = None
    openmp_extension_clause: Optional[str] = None
    adaptive: bool = False
    pe_dependent: bool = False
    needs_profile: bool = False
    needs_weights: bool = False
    #: STATIC semantics: PE ``k`` owns chunk ``k`` outright (one
    #: scheduling round, no queue traffic) — cf. the paper's remark that
    #: STATIC at the inter-node level means a single scheduling round.
    pinned_per_pe: bool = False
    description: str = ""

    def make(
        self,
        n: int,
        p: int,
        *,
        weights: Optional[Sequence[float]] = None,
        profile: Optional[IterationProfile] = None,
        rng: Optional[np.random.Generator] = None,
        chunk_overhead: Optional[float] = None,
    ) -> ChunkCalculator:
        """Create a calculator for a loop of ``n`` iterations on ``p`` PEs."""
        raise NotImplementedError

    # -- shared validation helpers --------------------------------------
    def _require_profile(self, profile: Optional[IterationProfile]) -> IterationProfile:
        if profile is None:
            raise TechniqueError(f"{self.name} requires an IterationProfile (mu, sigma)")
        return profile

    def _require_weights(
        self, weights: Optional[Sequence[float]], p: int
    ) -> np.ndarray:
        if weights is None:
            # Homogeneous default: all PEs equally fast.
            return np.ones(p)
        arr = np.asarray(weights, dtype=float)
        if arr.shape != (p,):
            raise TechniqueError(
                f"{self.name}: weights must have shape ({p},), got {arr.shape}"
            )
        if np.any(arr <= 0):
            raise TechniqueError(f"{self.name}: weights must be positive")
        # Normalise so weights sum to p (w_k == 1 means nominal speed).
        return arr * (p / arr.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Technique({self.name})"


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    return -(-a // b)


def batch_index(step: int, p: int) -> int:
    """FAC-family batches consist of ``p`` equally-sized chunks."""
    return step // p


def check_batch_invariants(n: int, p: int) -> None:
    if n < 0 or p < 1:
        raise TechniqueError(f"invalid loop n={n}, p={p}")


__all__ = [
    "ChunkCalculator",
    "IterationProfile",
    "Technique",
    "TechniqueError",
    "batch_index",
    "ceil_div",
]
