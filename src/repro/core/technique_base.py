"""Technique and ChunkCalculator abstractions.

The *distributed chunk-calculation* approach (Eleliemy & Ciorba, PDP
2019 [15]) eliminates the master: each worker atomically increments the
*latest scheduling step* in an RMA window and computes its own chunk
from that step.  That works because for non-adaptive DLS techniques the
serial chunk sequence ``C_0, C_1, ...`` is a pure function of ``(N, P,
technique parameters)`` — every rank can derive the same sequence
locally and cheaply.

This module provides:

* :class:`Technique` — stateless descriptor + factory (one instance per
  named technique, held in the registry).
* :class:`ChunkCalculator` — a per-loop-execution object produced by
  :meth:`Technique.make`.  Non-adaptive calculators memoise the serial
  sequence and expose ``deterministic = True`` so execution models can
  use the step-counter-only protocol; adaptive calculators
  (``deterministic = False``) additionally consult runtime feedback
  recorded through :meth:`ChunkCalculator.record`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np


class TechniqueError(ValueError):
    """Bad technique parameters (missing profile, weights, ...)."""


@dataclass(frozen=True)
class IterationProfile:
    """Prior knowledge about iteration execution times.

    FAC, TAP and FSC assume the mean ``mu`` and standard deviation
    ``sigma`` of iteration times are known a priori (the paper, Sec. 2).
    Workloads provide this via :meth:`repro.workloads.base.Workload.profile`.
    """

    mu: float
    sigma: float
    #: per-scheduling-operation overhead estimate ``h`` (FSC needs it).
    h: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.mu <= 0 or self.sigma < 0 or self.h <= 0:
            raise TechniqueError(
                f"invalid profile mu={self.mu}, sigma={self.sigma}, h={self.h}"
            )

    @property
    def cov(self) -> float:
        """Coefficient of variation sigma/mu."""
        return self.sigma / self.mu


#: global memo of materialised serial sequences: the same
#: ``(technique, n, p, parameters)`` tuple recurs for every cell of a
#: figure sweep (every rank of every run derives the identical schedule),
#: so the recurrence is unrolled once per distinct key, process-wide.
_SEQUENCE_CACHE: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
_SEQUENCE_CACHE_MAX = 512


def clear_sequence_cache() -> None:
    """Drop all memoised chunk sequences (tests / memory control)."""
    _SEQUENCE_CACHE.clear()


class ChunkCalculator:
    """Chunk-size oracle for one execution of one scheduling level.

    Subclasses implement :meth:`_next_size`, the remaining-based
    recurrence ``C_i = f(R_i, i)``.  For deterministic calculators the
    base class materialises the *entire* serial sequence as a NumPy
    array together with its prefix sums on first use, so ``size_at`` /
    ``start_at`` / ``total_steps`` are O(1) array reads and
    :meth:`step_of` is a single ``searchsorted`` — this mirrors how the
    distributed chunk-calculation approach lets every rank evaluate the
    schedule locally.  Sequences are memoised process-wide per
    :meth:`_memo_key`, so repeated runs over the same ``(technique, n,
    p, profile)`` (every cell of a figure sweep) pay the recurrence
    exactly once.

    Attributes
    ----------
    deterministic:
        True when chunk sizes are a pure function of the scheduling
        step.  Execution models rely on this to choose between the
        single-counter protocol (deterministic) and the
        step-plus-scheduled-count protocol (adaptive / PE-dependent).
    """

    deterministic: bool = True

    def __init__(self, name: str, n: int, p: int):
        if n < 0:
            raise TechniqueError(f"negative iteration count {n}")
        if p < 1:
            raise TechniqueError(f"need at least one PE, got {p}")
        self.name = name
        self.n = int(n)
        self.p = int(p)
        #: materialised serial sequence + prefix sums (deterministic only)
        self._sizes_arr: Optional[np.ndarray] = None
        self._prefix_arr: Optional[np.ndarray] = None

    # -- recurrence ----------------------------------------------------
    def _next_size(self, remaining: int, step: int) -> int:
        """Chunk size when ``remaining`` iterations are unscheduled at ``step``."""
        raise NotImplementedError

    def _memo_key(self) -> Optional[tuple]:
        """Hashable identity of the serial sequence, or None.

        Subclasses whose sequence is a pure function of their
        constructor parameters return a key so materialised sequences
        are shared process-wide; the default (no sharing) is always
        safe.
        """
        return None

    def _materialize(self) -> np.ndarray:
        """Unroll the full serial sequence into arrays (once)."""
        key = self._memo_key()
        if key is not None:
            cached = _SEQUENCE_CACHE.get(key)
            if cached is not None:
                self._sizes_arr, self._prefix_arr = cached
                return self._sizes_arr
        sizes: List[int] = []
        total = 0
        n = self.n
        next_size = self._next_size
        while total < n:
            size = next_size(n - total, len(sizes))
            size = max(1, min(int(size), n - total))
            sizes.append(size)
            total += size
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        prefix_arr = np.concatenate(([0], np.cumsum(sizes_arr)))
        self._sizes_arr = sizes_arr
        self._prefix_arr = prefix_arr
        if key is not None:
            if len(_SEQUENCE_CACHE) >= _SEQUENCE_CACHE_MAX:
                _SEQUENCE_CACHE.clear()
            _SEQUENCE_CACHE[key] = (sizes_arr, prefix_arr)
        return sizes_arr

    # -- public API ------------------------------------------------------
    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        """Size of the chunk at scheduling ``step`` (0 = loop exhausted).

        ``pe`` matters only for PE-dependent techniques (WF, AWF-*);
        deterministic techniques ignore it.
        """
        if step < 0:
            raise TechniqueError(f"negative scheduling step {step}")
        sizes = self._sizes_arr
        if sizes is None:
            sizes = self._materialize()
        if step < sizes.size:
            return int(sizes[step])
        return 0

    def start_at(self, step: int) -> int:
        """First iteration index of the chunk at ``step``.

        Only meaningful for deterministic calculators — the value is the
        prefix sum of the serial sequence, which is what a rank computes
        locally after fetch-and-incrementing the step counter.
        """
        if not self.deterministic:
            raise TechniqueError(
                f"{self.name} is adaptive/PE-dependent; start_at() is undefined"
            )
        if self._sizes_arr is None:
            self._materialize()
        if step < self._sizes_arr.size:
            return int(self._prefix_arr[step])
        return self.n

    def step_of(self, iteration: int) -> int:
        """Scheduling step whose chunk covers ``iteration`` (O(log S)).

        A single ``searchsorted`` over the cached prefix sums
        (deterministic only).
        """
        if not self.deterministic:
            raise TechniqueError(
                f"{self.name} is adaptive/PE-dependent; step_of() is undefined"
            )
        if not 0 <= iteration < self.n:
            raise TechniqueError(
                f"iteration {iteration} outside loop of {self.n} iterations"
            )
        if self._prefix_arr is None:
            self._materialize()
        return int(np.searchsorted(self._prefix_arr, iteration, side="right")) - 1

    def record(
        self,
        pe: int,
        size: int,
        compute_time: float,
        overhead_time: float = 0.0,
    ) -> None:
        """Runtime feedback hook; default no-op (non-adaptive techniques)."""

    def record_wait(self, pe: int, wait_time: float) -> None:
        """Chunk-fetch wait feedback hook; default no-op.

        Execution models report how long a worker spent *obtaining* a
        chunk (lock polling, queue refill, remote atomics) separately
        from :meth:`record`'s compute time, because folding it into
        ``overhead_time`` would change the AWF-D/E weights the
        differential goldens pin.  Only the ADAPT meta-technique
        listens; for everything else this is a no-op.
        """

    def total_steps(self) -> int:
        """Number of chunks in the serial unrolling (deterministic only)."""
        if not self.deterministic:
            raise TechniqueError(f"{self.name}: total_steps undefined for adaptive")
        sizes = self._sizes_arr
        if sizes is None:
            sizes = self._materialize()
        return int(sizes.size)

    def sequence(self) -> List[int]:
        """The full serial chunk-size sequence (deterministic only)."""
        if not self.deterministic:
            raise TechniqueError(f"{self.name}: sequence undefined for adaptive")
        sizes = self._sizes_arr
        if sizes is None:
            sizes = self._materialize()
        return sizes.tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, n={self.n}, p={self.p})"


class Technique:
    """Descriptor + factory for one DLS technique.

    Instances are stateless; per-execution state lives in the
    :class:`ChunkCalculator` returned by :meth:`make`.

    Attributes
    ----------
    name:
        Canonical upper-case name (``"GSS"``).
    openmp_clause:
        The OpenMP ``schedule`` clause implementing the same technique,
        or None when the (Intel) OpenMP runtime has no equivalent —
        reproduces the paper's Table 1 and drives which MPI+OpenMP
        combinations exist in Figures 4-7.
    openmp_extension_clause:
        Clause available only in the research LaPeSD-libGOMP runtime
        [31] (e.g. TSS, FAC2); None otherwise.
    adaptive:
        Uses runtime feedback (AWF-B/C/D/E, AF).
    pe_dependent:
        Chunk size depends on which PE grabs it (WF, AWF family).
    needs_profile / needs_weights:
        Requires an :class:`IterationProfile` / per-PE weights.
    """

    name: str = "?"
    openmp_clause: Optional[str] = None
    openmp_extension_clause: Optional[str] = None
    adaptive: bool = False
    pe_dependent: bool = False
    needs_profile: bool = False
    needs_weights: bool = False
    #: STATIC semantics: PE ``k`` owns chunk ``k`` outright (one
    #: scheduling round, no queue traffic) — cf. the paper's remark that
    #: STATIC at the inter-node level means a single scheduling round.
    pinned_per_pe: bool = False
    description: str = ""

    def make(
        self,
        n: int,
        p: int,
        *,
        weights: Optional[Sequence[float]] = None,
        profile: Optional[IterationProfile] = None,
        rng: Optional[np.random.Generator] = None,
        chunk_overhead: Optional[float] = None,
    ) -> ChunkCalculator:
        """Create a calculator for a loop of ``n`` iterations on ``p`` PEs."""
        raise NotImplementedError

    # -- shared validation helpers --------------------------------------
    def _require_profile(self, profile: Optional[IterationProfile]) -> IterationProfile:
        if profile is None:
            raise TechniqueError(f"{self.name} requires an IterationProfile (mu, sigma)")
        return profile

    def _require_weights(
        self, weights: Optional[Sequence[float]], p: int
    ) -> np.ndarray:
        if weights is None:
            # Homogeneous default: all PEs equally fast.
            return np.ones(p)
        arr = np.asarray(weights, dtype=float)
        if arr.shape != (p,):
            raise TechniqueError(
                f"{self.name}: weights must have shape ({p},), got {arr.shape}"
            )
        if np.any(arr <= 0):
            raise TechniqueError(f"{self.name}: weights must be positive")
        # Normalise so weights sum to p (w_k == 1 means nominal speed).
        return arr * (p / arr.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Technique({self.name})"


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    return -(-a // b)


def batch_index(step: int, p: int) -> int:
    """FAC-family batches consist of ``p`` equally-sized chunks."""
    return step // p


def check_batch_invariants(n: int, p: int) -> None:
    if n < 0 or p < 1:
        raise TechniqueError(f"invalid loop n={n}, p={p}")


__all__ = [
    "ChunkCalculator",
    "IterationProfile",
    "Technique",
    "TechniqueError",
    "batch_index",
    "ceil_div",
    "clear_sequence_cache",
]
