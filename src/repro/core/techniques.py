"""The DLS technique roster.

Implements the paper's five evaluated techniques — STATIC, SS, GSS, TSS,
FAC2 — plus the wider family they are drawn from (paper Section 2 and
the authors' DLS4LB library): FSC, mFSC, TAP, TFSS, FAC, FISS, VISS,
WF, AWF, AWF-B/C/D/E, AF and RND.

Formulas follow the original publications:

* STATIC — one chunk of ``ceil(N/P)`` per PE.
* SS   — Tang & Yew 1986: chunk = 1.
* FSC  — Kruskal & Weiss 1985: fixed chunk
  ``(sqrt(2)*N*h / (sigma*P*sqrt(log P)))^(2/3)``.
* mFSC — profiling-free FSC variant: fixed chunk sized so the chunk
  *count* matches FAC2's batch structure (P chunks per halving batch),
  i.e. ``ceil(N / (P*ceil(log2(N/P))))``.
* GSS  — Polychronopoulos & Kuck 1987: ``C_i = ceil(R_i/P)``.
* TAP  — Lucco 1992 tapering: ``C_i = T_i + v^2/2 - v*sqrt(2*T_i + v^2/4)``
  with ``T_i = R_i/P`` and ``v = alpha*sigma/mu``; ``(mu, sigma)`` are
  estimated **at runtime** from completed chunks (``record``), with an
  optional a-priori profile as the prior.
* TSS  — Tzen & Ni 1993: linear decrement from ``F = ceil(N/(2P))`` to
  ``L = 1`` over ``S = ceil(2N/(F+L))`` steps.
* TFSS — Chronopoulos et al. 2001: batches of P chunks, each the mean
  of the next P TSS chunks.
* FAC  — Flynn Hummel, Schonberg & Flynn 1992 probabilistic factoring
  (needs sigma, mu).
* FAC2 — the practical variant: every batch schedules half the
  remainder, ``C_j = ceil(R_j/(2P))``.
* FISS — fixed-increase self-scheduling (LB4OMP roster): ``B`` stages
  of ``P`` equal chunks starting at ``C_0 = N/((2+B)P)`` and growing
  by the fixed increment ``b = 4N/((2+B)·B·(B-1)·P)`` per stage.
* VISS — variable-increase self-scheduling: FISS whose increment
  halves every stage, ``C_j = C_{j-1} + C_0/2^j``.
* WF   — Flynn Hummel et al. 1996 weighted factoring: FAC2 batch chunk
  scaled by the requesting PE's fixed weight.
* AWF  — Banicescu, Velusamy & Devaprasad 2003: WF with weights adapted
  between outer *time steps* of an iterative application.
* AWF-B/C/D/E — Cariño & Banicescu 2008 variants adapting weights
  during the loop: at batch (B, D) or chunk (C, E) boundaries, from
  compute time only (B, C) or compute + scheduling overhead (D, E).
* AF   — Banicescu & Liu 2000 adaptive factoring: FAC with per-PE
  (mu_k, sigma_k) estimated online from completed chunks.
* RND  — uniform random chunk in ``[N/(100P), N/(2P)]``
  (LaPeSD-libGOMP); **seeded-deterministic**: the whole sequence is a
  pure function of ``(N, P, seed)``, so RND memoises and flattens
  (dCC) like any other deterministic technique.
* ADAPT — runtime technique *selection* (see :mod:`repro.core.adaptive`):
  walks a configurable fineness ladder (default SS -> FAC2 -> GSS;
  ``ADAPT[ss,fac2,tss]`` spells a custom one) from observed
  chunk-fetch wait and iteration-time CoV.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.technique_base import (
    ChunkCalculator,
    IterationProfile,
    Technique,
    TechniqueError,
    ceil_div,
)

# ---------------------------------------------------------------------------
# deterministic calculators
# ---------------------------------------------------------------------------


class _FixedSizeCalculator(ChunkCalculator):
    """All chunks share one precomputed size (STATIC, SS, FSC, mFSC)."""

    def __init__(self, name: str, n: int, p: int, size: int):
        super().__init__(name, n, p)
        self._size = max(1, int(size))

    def _next_size(self, remaining: int, step: int) -> int:
        return self._size

    # O(1) overrides: avoid materialising N entries for SS on big loops.
    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        if step < 0:
            raise TechniqueError(f"negative scheduling step {step}")
        full, rest = divmod(self.n, self._size)
        total = full + (1 if rest else 0)
        if step >= total:
            return 0
        if step == total - 1 and rest:
            return rest
        return self._size

    def start_at(self, step: int) -> int:
        return min(self.n, step * self._size)

    def total_steps(self) -> int:
        return ceil_div(self.n, self._size) if self.n else 0

    def sequence(self) -> List[int]:
        return [self.size_at(i) for i in range(self.total_steps())]


class _GssCalculator(ChunkCalculator):
    def _next_size(self, remaining: int, step: int) -> int:
        return ceil_div(remaining, self.p)

    def _memo_key(self):
        return ("GSS", self.n, self.p)


class _TssCalculator(ChunkCalculator):
    """Linear decrement; also the basis for TFSS."""

    def __init__(self, name: str, n: int, p: int):
        super().__init__(name, n, p)
        self.first = max(1, ceil_div(n, 2 * p))
        self.last = 1
        self.steps = max(1, ceil_div(2 * n, self.first + self.last)) if n else 0
        self.delta = (
            (self.first - self.last) / (self.steps - 1) if self.steps > 1 else 0.0
        )

    def _next_size(self, remaining: int, step: int) -> int:
        return max(self.last, int(round(self.first - step * self.delta)))

    def _memo_key(self):
        # covers TFSS too: the subclass type disambiguates the key
        return (type(self).__name__, self.n, self.p)


class _TfssCalculator(_TssCalculator):
    """Batch mean of the underlying TSS sequence (closed form)."""

    def _next_size(self, remaining: int, step: int) -> int:
        batch = step // self.p
        # Mean of TSS sizes at steps batch*p .. batch*p + p-1:
        mean = self.first - self.delta * (batch * self.p + (self.p - 1) / 2.0)
        return max(self.last, int(round(mean)))


class _FacCalculator(ChunkCalculator):
    """Probabilistic factoring with a-priori (mu, sigma)."""

    def __init__(self, name: str, n: int, p: int, profile: IterationProfile):
        super().__init__(name, n, p)
        self.profile = profile
        self._batch_size: int = 0

    def _memo_key(self):
        return ("FAC", self.n, self.p, self.profile.mu, self.profile.sigma)

    def _next_size(self, remaining: int, step: int) -> int:
        if step % self.p == 0:
            ratio = self.profile.cov
            b = (self.p / (2.0 * math.sqrt(remaining))) * ratio if remaining else 0.0
            if step == 0:
                x = 1.0 + b * b + b * math.sqrt(b * b + 2.0)
            else:
                x = 2.0 + b * b + b * math.sqrt(b * b + 4.0)
            # x >= 1 by construction; sigma -> 0 gives x -> 1 for the
            # first batch, i.e. FAC degenerates towards STATIC.
            self._batch_size = max(1, int(math.ceil(remaining / (x * self.p))))
        return self._batch_size


class _Fac2Calculator(ChunkCalculator):
    def __init__(self, name: str, n: int, p: int):
        super().__init__(name, n, p)
        self._batch_size = 0

    def _next_size(self, remaining: int, step: int) -> int:
        if step % self.p == 0:
            self._batch_size = max(1, ceil_div(remaining, 2 * self.p))
        return self._batch_size

    def _memo_key(self):
        return ("FAC2", self.n, self.p)


class _StagedCalculator(ChunkCalculator):
    """Shared machinery for the stage-based FISS/VISS pair.

    The loop is planned as ``B`` *stages* of ``P`` equal chunks each
    (like FAC batches); the stage size starts small and grows by a
    technique-specific increment.  Integer rounding drift is absorbed
    by the base class: past the last planned stage the final stage size
    keeps being dispensed, clamped to the remainder.
    """

    def __init__(self, name: str, n: int, p: int, stages: Optional[int] = None):
        super().__init__(name, n, p)
        if stages is None:
            # mirror mFSC's batch count: one stage per halving of N/P
            stages = math.ceil(math.log2(n / p)) if n > p else 2
        self.stages = max(2, int(stages))

    def _stage_size(self, stage: int) -> float:
        raise NotImplementedError

    def _next_size(self, remaining: int, step: int) -> int:
        stage = min(step // self.p, self.stages - 1)
        return int(math.ceil(self._stage_size(stage)))

    def _memo_key(self):
        return (type(self).__name__, self.n, self.p, self.stages)


class _FissCalculator(_StagedCalculator):
    """Fixed-increase self-scheduling.

    ``C_0 = N/((2+B)P)`` and a constant per-stage increment
    ``b = 4N/((2+B)·B·(B-1)·P)`` — chosen so the planned stages sum to
    exactly ``N``: ``P·(B·C_0 + b·B(B-1)/2) = N``.
    """

    def _stage_size(self, stage: int) -> float:
        b = self.stages
        c0 = self.n / ((2 + b) * self.p)
        inc = 4.0 * self.n / ((2 + b) * b * (b - 1) * self.p)
        return c0 + stage * inc


class _VissCalculator(_StagedCalculator):
    """Variable-increase self-scheduling.

    FISS's ``C_0``, but the increment halves every stage:
    ``C_j = C_{j-1} + C_0/2^j``, i.e. closed-form
    ``C_j = C_0·(2 - 2^{-j})`` — sizes converge towards ``2·C_0``.
    """

    def _stage_size(self, stage: int) -> float:
        c0 = self.n / ((2 + self.stages) * self.p)
        return c0 * (2.0 - 0.5 ** stage)


class _TapCalculator(ChunkCalculator):
    """Lucco's tapering with runtime ``(mu, sigma)`` estimation.

    The variance margin ``v = alpha·sigma/mu`` is re-estimated from
    completed chunks reported through :meth:`record`; an optional
    a-priori :class:`IterationProfile` seeds the estimate, so the first
    chunks taper exactly as in the original a-priori formulation.
    Because the margin tracks runtime state the calculator is
    *adaptive* (scheduled-count protocol, no serial prefix, rejected by
    dCC).
    """

    deterministic = False
    adaptive = True

    def __init__(
        self,
        name: str,
        n: int,
        p: int,
        profile: Optional[IterationProfile] = None,
        alpha: float = 1.3,
    ):
        super().__init__(name, n, p)
        self.alpha = float(alpha)
        self._prior_cov = profile.cov if profile is not None else 0.0
        self._scheduled = 0
        self._count = 0
        self._sum_t = 0.0
        self._sum_t2 = 0.0

    def record(
        self, pe: int, size: int, compute_time: float, overhead_time: float = 0.0
    ) -> None:
        if size <= 0:
            return
        per_iter = compute_time / size
        self._count += 1
        self._sum_t += per_iter
        self._sum_t2 += per_iter * per_iter

    @property
    def cov(self) -> float:
        """Current sigma/mu estimate (the prior until two chunks report)."""
        if self._count < 2:
            return self._prior_cov
        mu = self._sum_t / self._count
        if mu <= 0:
            return self._prior_cov
        var = max(0.0, self._sum_t2 / self._count - mu * mu)
        return math.sqrt(var) / mu

    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        remaining = self.n - self._scheduled
        if remaining <= 0:
            return 0
        v = self.alpha * self.cov
        t = remaining / self.p
        size = t + v * v / 2.0 - v * math.sqrt(2.0 * t + v * v / 4.0)
        size = max(1, min(int(math.ceil(size)), remaining))
        self._scheduled += size
        return size

    @property
    def scheduled(self) -> int:
        return self._scheduled


# ---------------------------------------------------------------------------
# PE-dependent / adaptive calculators
# ---------------------------------------------------------------------------


class _WeightedCalculator(ChunkCalculator):
    """Shared machinery for WF/AWF-*: weighted FAC2-style grabs.

    Each ``size_at`` call *consumes* work: the calculator tracks the
    scheduled total internally because chunk sizes depend on who asks
    (so no serial prefix exists).  ``start_at`` is therefore disabled by
    ``deterministic = False`` — execution models use the
    scheduled-count protocol instead.
    """

    deterministic = False

    def __init__(self, name: str, n: int, p: int, weights: np.ndarray):
        super().__init__(name, n, p)
        self.weights = np.asarray(weights, dtype=float)
        self._scheduled = 0

    def current_weight(self, pe: int) -> float:
        return float(self.weights[pe])

    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        if pe is None:
            raise TechniqueError(f"{self.name} needs the requesting PE id")
        remaining = self.n - self._scheduled
        if remaining <= 0:
            return 0
        base = remaining / (2.0 * self.p)
        size = int(math.ceil(self.current_weight(pe) * base))
        size = max(1, min(size, remaining))
        self._scheduled += size
        return size

    @property
    def scheduled(self) -> int:
        return self._scheduled


class _AwfRuntimeCalculator(_WeightedCalculator):
    """AWF-B/C/D/E: weights adapted from runtime measurements.

    ``variant`` semantics (Cariño & Banicescu 2008):

    * B — adapt at *batch* boundaries, compute time only;
    * C — adapt at every *chunk*, compute time only;
    * D — batch boundaries, compute + scheduling overhead;
    * E — every chunk, compute + scheduling overhead.
    """

    adaptive = True

    def __init__(self, name: str, n: int, p: int, variant: str):
        super().__init__(name, n, p, np.ones(p))
        if variant not in ("B", "C", "D", "E"):
            raise TechniqueError(f"unknown AWF variant {variant!r}")
        self.variant = variant
        self._work = np.zeros(p)
        self._time = np.zeros(p)
        self._grabs_since_update = 0

    def _include_overhead(self) -> bool:
        return self.variant in ("D", "E")

    def _per_chunk_update(self) -> bool:
        return self.variant in ("C", "E")

    def record(
        self, pe: int, size: int, compute_time: float, overhead_time: float = 0.0
    ) -> None:
        self._work[pe] += size
        self._time[pe] += compute_time + (
            overhead_time if self._include_overhead() else 0.0
        )
        self._grabs_since_update += 1
        if self._per_chunk_update() or self._grabs_since_update >= self.p:
            self._refresh_weights()
            self._grabs_since_update = 0

    def _refresh_weights(self) -> None:
        measured = (self._time > 0) & (self._work > 0)
        if not np.any(measured):
            return
        rates = np.ones(self.p)
        rates[measured] = self._work[measured] / self._time[measured]
        # Unmeasured PEs get the mean measured rate (optimistic neutral).
        rates[~measured] = rates[measured].mean()
        self.weights = rates * (self.p / rates.sum())


class _AfCalculator(ChunkCalculator):
    """Adaptive factoring: FAC with per-PE (mu, sigma) estimated online.

    Until a PE has completed at least two chunks it falls back to the
    FAC2 halving rule, mirroring practical AF implementations that need
    a bootstrap phase.
    """

    deterministic = False
    adaptive = True

    def __init__(self, name: str, n: int, p: int):
        super().__init__(name, n, p)
        self._scheduled = 0
        self._count = np.zeros(p, dtype=int)
        self._sum_t = np.zeros(p)  # per-iteration times, accumulated
        self._sum_t2 = np.zeros(p)

    def record(
        self, pe: int, size: int, compute_time: float, overhead_time: float = 0.0
    ) -> None:
        if size <= 0:
            return
        per_iter = compute_time / size
        self._count[pe] += 1
        self._sum_t[pe] += per_iter
        self._sum_t2[pe] += per_iter * per_iter

    def _estimates(self, pe: int) -> Optional[tuple]:
        c = self._count[pe]
        if c < 2:
            return None
        mu = self._sum_t[pe] / c
        var = max(0.0, self._sum_t2[pe] / c - mu * mu)
        return mu, math.sqrt(var)

    def size_at(self, step: int, pe: Optional[int] = None) -> int:
        if pe is None:
            raise TechniqueError(f"{self.name} needs the requesting PE id")
        remaining = self.n - self._scheduled
        if remaining <= 0:
            return 0
        est = self._estimates(pe)
        if est is None or est[0] <= 0:
            size = ceil_div(remaining, 2 * self.p)  # FAC2 bootstrap
        else:
            mu, sigma = est
            b = (self.p / (2.0 * math.sqrt(remaining))) * (sigma / mu)
            x = 2.0 + b * b + b * math.sqrt(b * b + 4.0)
            size = int(math.ceil(remaining / (x * self.p)))
        size = max(1, min(size, remaining))
        self._scheduled += size
        return size

    @property
    def scheduled(self) -> int:
        return self._scheduled


class _RndCalculator(ChunkCalculator):
    """Random self-scheduling, seeded-deterministic.

    The whole sequence is a pure function of ``(n, p, seed)``: sizes
    are drawn from a private ``default_rng(seed)`` during
    materialisation, so RND memoises (and flattens under dCC) exactly
    like the closed-form techniques — every rank derives the identical
    schedule from the spec alone.
    """

    def __init__(self, name: str, n: int, p: int, seed: int):
        super().__init__(name, n, p)
        self.seed = int(seed)
        self.low = max(1, n // (100 * p)) if n else 1
        self.high = max(self.low, ceil_div(n, 2 * p)) if n else 1
        self._draw: Optional[np.random.Generator] = None

    def _next_size(self, remaining: int, step: int) -> int:
        if step == 0 or self._draw is None:
            self._draw = np.random.default_rng(self.seed)
        return int(self._draw.integers(self.low, self.high + 1))

    def _memo_key(self):
        return ("RND", self.n, self.p, self.seed)


# ---------------------------------------------------------------------------
# Technique descriptors
# ---------------------------------------------------------------------------


class Static(Technique):
    name = "STATIC"
    openmp_clause = "schedule(static)"
    pinned_per_pe = True
    description = "One chunk of ceil(N/P) per PE; lowest scheduling overhead."

    def make(self, n, p, **kwargs) -> ChunkCalculator:
        return _FixedSizeCalculator(self.name, n, p, ceil_div(max(n, 1), p))


class SelfScheduling(Technique):
    name = "SS"
    openmp_clause = "schedule(dynamic,1)"
    description = "Pure self-scheduling: chunk = 1; maximal balance, maximal overhead."

    def make(self, n, p, **kwargs) -> ChunkCalculator:
        return _FixedSizeCalculator(self.name, n, p, 1)


class Fsc(Technique):
    name = "FSC"
    needs_profile = True
    description = "Kruskal-Weiss fixed-size chunking from (mu, sigma, h)."

    def make(self, n, p, *, profile=None, chunk_overhead=None, **kwargs):
        prof = self._require_profile(profile)
        h = chunk_overhead if chunk_overhead is not None else prof.h
        if p < 2 or prof.sigma == 0.0 or n == 0:
            size = ceil_div(max(n, 1), p)
        else:
            size = (
                (math.sqrt(2.0) * n * h) / (prof.sigma * p * math.sqrt(math.log(p)))
            ) ** (2.0 / 3.0)
            if not math.isfinite(size) or size >= n:
                # vanishing sigma (or overwhelming h) drives the formula
                # to infinity: FSC degenerates to the static split, its
                # sigma -> 0 limit
                size = ceil_div(max(n, 1), p)
            size = max(1, int(math.ceil(size)))
        return _FixedSizeCalculator(self.name, n, p, size)


class MFsc(Technique):
    name = "mFSC"
    description = (
        "Profiling-free FSC: fixed chunk matching FAC2's chunk count "
        "(P chunks per halving batch)."
    )

    def make(self, n, p, **kwargs):
        if n <= p:
            size = 1
        else:
            batches = max(1, math.ceil(math.log2(n / p)))
            size = ceil_div(n, p * batches)
        return _FixedSizeCalculator(self.name, n, p, size)


class Gss(Technique):
    name = "GSS"
    openmp_clause = "schedule(guided,1)"
    description = "Guided self-scheduling: C_i = ceil(R_i/P)."

    def make(self, n, p, **kwargs):
        return _GssCalculator(self.name, n, p)


class Tap(Technique):
    name = "TAP"
    adaptive = True
    description = (
        "Lucco's tapering: GSS shrunk by a variance safety margin "
        "estimated at runtime (an a-priori profile seeds the estimate)."
    )

    def make(self, n, p, *, profile=None, **kwargs):
        return _TapCalculator(self.name, n, p, profile=profile)


class Tss(Technique):
    name = "TSS"
    openmp_extension_clause = "schedule(runtime) [LaPeSD-libGOMP tss]"
    description = "Trapezoid self-scheduling: linear chunk decrement."

    def make(self, n, p, **kwargs):
        return _TssCalculator(self.name, n, p)


class Tfss(Technique):
    name = "TFSS"
    description = "Trapezoid factoring: batches of P equal chunks, TSS means."

    def make(self, n, p, **kwargs):
        return _TfssCalculator(self.name, n, p)


class Fac(Technique):
    name = "FAC"
    needs_profile = True
    description = "Probabilistic factoring (Hummel et al.) from (mu, sigma)."

    def make(self, n, p, *, profile=None, **kwargs):
        return _FacCalculator(self.name, n, p, self._require_profile(profile))


class Fac2(Technique):
    name = "FAC2"
    openmp_extension_clause = "schedule(runtime) [LaPeSD-libGOMP fac2]"
    description = "Practical factoring: each batch schedules half the remainder."

    def make(self, n, p, **kwargs):
        return _Fac2Calculator(self.name, n, p)


class Fiss(Technique):
    name = "FISS"
    description = (
        "Fixed-increase self-scheduling: B stages of P chunks, sizes "
        "growing from N/((2+B)P) by a fixed increment."
    )

    def __init__(self, stages: Optional[int] = None):
        self.stages = stages

    def make(self, n, p, *, stages=None, **kwargs):
        return _FissCalculator(
            self.name, n, p, stages if stages is not None else self.stages
        )


class Viss(Technique):
    name = "VISS"
    description = (
        "Variable-increase self-scheduling: FISS whose stage increment "
        "halves every stage (C_j = C_{j-1} + C_0/2^j)."
    )

    def __init__(self, stages: Optional[int] = None):
        self.stages = stages

    def make(self, n, p, *, stages=None, **kwargs):
        return _VissCalculator(
            self.name, n, p, stages if stages is not None else self.stages
        )


class Wf(Technique):
    name = "WF"
    openmp_extension_clause = "schedule(runtime) [LaPeSD-libGOMP wf]"
    pe_dependent = True
    needs_weights = True
    description = "Weighted factoring: FAC2 chunks scaled by fixed PE weights."

    def make(self, n, p, *, weights=None, **kwargs):
        return _WeightedCalculator(self.name, n, p, self._require_weights(weights, p))


class Awf(Technique):
    name = "AWF"
    pe_dependent = True
    description = (
        "Adaptive weighted factoring: WF whose weights are refreshed "
        "between outer time steps (use calculator.weights assignment or "
        "record() feedback via AWF-B/C/D/E for intra-loop adaptation)."
    )

    def make(self, n, p, *, weights=None, **kwargs):
        return _WeightedCalculator(self.name, n, p, self._require_weights(weights, p))


def _make_awf_variant(variant: str) -> type:
    class _AwfVariant(Technique):
        name = f"AWF-{variant}"
        pe_dependent = True
        adaptive = True
        description = {
            "B": "AWF adapting weights at batch boundaries (compute time).",
            "C": "AWF adapting weights at every chunk (compute time).",
            "D": "AWF-B including scheduling overhead in the timings.",
            "E": "AWF-C including scheduling overhead in the timings.",
        }[variant]

        def make(self, n, p, **kwargs):
            return _AwfRuntimeCalculator(self.name, n, p, variant)

    _AwfVariant.__name__ = f"Awf{variant}"
    return _AwfVariant


AwfB = _make_awf_variant("B")
AwfC = _make_awf_variant("C")
AwfD = _make_awf_variant("D")
AwfE = _make_awf_variant("E")


class Af(Technique):
    name = "AF"
    pe_dependent = True
    adaptive = True
    description = "Adaptive factoring: FAC with per-PE (mu, sigma) estimated online."

    def make(self, n, p, **kwargs):
        return _AfCalculator(self.name, n, p)


class Rnd(Technique):
    name = "RND"
    openmp_extension_clause = "schedule(runtime) [LaPeSD-libGOMP random]"
    description = (
        "Random chunk in [N/(100P), N/(2P)]; the sequence is a pure "
        "function of (N, P, seed), so RND is deterministic given the spec."
    )

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def make(self, n, p, *, seed=None, rng=None, **kwargs):
        # ``rng`` is accepted (execution models pass their per-stream
        # generator to every level) but deliberately unused: the
        # sequence must derive from the spec alone so every rank — and
        # the dCC flattener — computes the identical schedule.
        return _RndCalculator(
            self.name, n, p, self.seed if seed is None else seed
        )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

from repro.core.adaptive import Adapt  # noqa: E402  (registry import)

TECHNIQUES: Dict[str, Technique] = {
    t.name: t
    for t in (
        Static(),
        SelfScheduling(),
        Fsc(),
        MFsc(),
        Gss(),
        Tap(),
        Tss(),
        Tfss(),
        Fac(),
        Fac2(),
        Fiss(),
        Viss(),
        Wf(),
        Awf(),
        AwfB(),
        AwfC(),
        AwfD(),
        AwfE(),
        Af(),
        Rnd(),
        Adapt(),
    )
}

#: The five techniques evaluated in the paper, in presentation order.
PAPER_TECHNIQUES = ("STATIC", "SS", "GSS", "TSS", "FAC2")

#: Intra-node techniques available through the *Intel* OpenMP runtime
#: (paper Table 1 / Section 5) — limits the MPI+OpenMP series in Figs 4-7.
INTEL_OPENMP_SUPPORTED = ("STATIC", "SS", "GSS")


def get_technique(name: str) -> Technique:
    """Look up a technique by (case-insensitive) name.

    ``ADAPT[...]`` spellings (e.g. ``"ADAPT[ss,fac2,tss]"``) construct
    a configured :class:`~repro.core.adaptive.Adapt` ladder instead of
    hitting the registry — this is what makes custom ladders usable in
    every stack-string surface (``HierarchicalSpec.parse``, the CLI's
    ``--techniques``, GridRunner sweeps).
    """
    stripped = name.strip()
    key = stripped.upper()
    if key.startswith("ADAPT[") and key.endswith("]"):
        return Adapt.parse(stripped)
    if key == "MFSC":
        key = "mFSC"
    technique = TECHNIQUES.get(key)
    if technique is None:
        known = ", ".join(sorted(TECHNIQUES))
        raise TechniqueError(f"unknown DLS technique {name!r}; known: {known}")
    return technique


def list_techniques() -> List[Dict[str, object]]:
    """Metadata rows (name, clause, flags) — regenerates paper Table 1."""
    rows = []
    for name in sorted(TECHNIQUES):
        t = TECHNIQUES[name]
        rows.append(
            {
                "name": t.name,
                "openmp_clause": t.openmp_clause,
                "openmp_extension_clause": t.openmp_extension_clause,
                "adaptive": t.adaptive,
                "pe_dependent": t.pe_dependent,
                "needs_profile": t.needs_profile,
                "needs_weights": t.needs_weights,
                "description": t.description,
            }
        )
    return rows
