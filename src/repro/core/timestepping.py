"""Time-stepped execution: AWF across outer application iterations.

Adaptive weighted factoring (Banicescu, Velusamy & Devaprasad 2003) was
designed for *iterative* scientific applications: the same parallel
loop executes once per time step, and the PE weights used by WF in step
``t+1`` are derived from the measured performance of steps ``0..t``.
The paper's Section 2 cites AWF as one of the derived techniques its
selected roster underpins; this module supplies the missing driver so
the library covers that use-case end to end.

:class:`TimeSteppedLoop` runs an execution model repeatedly, measures
each PE-group's effective rate (iterations per busy second), maintains
cumulative time-step-weighted averages, and feeds the refreshed weights
into the inter-node level for the next step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.models.base import ExecutionModel, RunResult
from repro.workloads.base import Workload


@dataclass
class TimeStepRecord:
    """Outcome of one time step."""

    step: int
    parallel_time: float
    weights_used: np.ndarray
    rates_measured: np.ndarray

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeStepRecord(step={self.step}, T={self.parallel_time:.4g}s, "
            f"weights={np.round(self.weights_used, 3)})"
        )


class TimeSteppedLoop:
    """Drive an iterative application with AWF weight refresh.

    Parameters
    ----------
    model / workload / cluster:
        As for a single :meth:`ExecutionModel.run`.
    inter / intra:
        Technique names; the inter level receives the adapted weights,
        so it should be a weighted technique (``WF``/``AWF``) — other
        techniques run unweighted and the driver only records rates.
    ppn:
        Workers per node.
    smoothing:
        Exponential-moving-average factor for rate updates in (0, 1];
        1.0 replaces old measurements entirely (the classic AWF uses
        the cumulative mean — ``smoothing=None`` selects that).
    """

    def __init__(
        self,
        model: ExecutionModel,
        workload: Workload,
        cluster: ClusterSpec,
        inter: str = "AWF",
        intra: str = "GSS",
        ppn: Optional[int] = None,
        smoothing: Optional[float] = None,
        seed: int = 0,
    ):
        self.model = model
        self.workload = workload
        self.cluster = cluster
        self.inter = inter
        self.intra = intra
        self.ppn = ppn if ppn is not None else min(n.cores for n in cluster.nodes)
        self.smoothing = smoothing
        self.seed = seed
        self.history: List[TimeStepRecord] = []
        #: PEs at the inter level: nodes for hierarchical models,
        #: individual workers for the flat/master-worker baselines
        self.n_pes = model.inter_pe_count(cluster, self.ppn)
        self._weights = np.ones(self.n_pes)
        self._rate_sum = np.zeros(self.n_pes)
        self._rate_count = 0
        self._ema: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """Current per-node weights (normalised to sum to n_nodes)."""
        return self._weights.copy()

    def run_step(self) -> RunResult:
        """Execute one time step and refresh the weights."""
        step = len(self.history)
        spec = HierarchicalSpec(
            inter=LevelSpec.of(self.inter, weights=self._weights),
            intra=LevelSpec.of(self.intra),
        )
        result = self.model.run(
            workload=self.workload,
            cluster=self.cluster,
            spec=spec,
            ppn=self.ppn,
            seed=self.seed + step,  # fresh noise draw per time step
            collect_chunks=False,
        )
        rates = self._measure_rates(result)
        self._update_weights(rates)
        self.history.append(
            TimeStepRecord(
                step=step,
                parallel_time=result.parallel_time,
                weights_used=spec.inter.weights.copy()
                if isinstance(spec.inter.weights, np.ndarray)
                else np.asarray(spec.inter.weights),
                rates_measured=rates,
            )
        )
        return result

    def run(self, n_steps: int) -> List[TimeStepRecord]:
        """Execute ``n_steps`` time steps; returns the history."""
        for _ in range(n_steps):
            self.run_step()
        return self.history

    # ------------------------------------------------------------------
    def _measure_rates(self, result: RunResult) -> np.ndarray:
        """Per-inter-PE iterations/second from the step's worker stats."""
        p = self.n_pes
        work = np.zeros(p)
        busy = np.zeros(p)
        workers = [w for w in result.metrics.workers if "master" not in w.name]
        if p == self.cluster.n_nodes:
            # hierarchical: aggregate workers by node
            for worker in workers:
                work[worker.node] += worker.n_iterations
                busy[worker.node] += worker.compute_time
        else:
            # flat/master-worker: one PE per worker, in rank order
            for pe, worker in enumerate(workers[:p]):
                work[pe] += worker.n_iterations
                busy[pe] += worker.compute_time
        rates = np.ones(p)
        measured = busy > 0
        rates[measured] = work[measured] / busy[measured]
        if measured.any():
            rates[~measured] = rates[measured].mean()
        return rates

    def _update_weights(self, rates: np.ndarray) -> None:
        if self.smoothing is None:
            # classic AWF: cumulative mean over all completed steps
            self._rate_sum += rates
            self._rate_count += 1
            mean = self._rate_sum / self._rate_count
        else:
            alpha = float(self.smoothing)
            if not 0.0 < alpha <= 1.0:
                raise ValueError("smoothing must be in (0, 1]")
            self._ema = (
                rates.copy() if self._ema is None
                else alpha * rates + (1 - alpha) * self._ema
            )
            mean = self._ema
        self._weights = mean * (len(mean) / mean.sum())

    # ------------------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"time-stepped {self.inter}+{self.intra} on "
            f"{self.cluster.n_nodes} nodes x {self.ppn}:",
        ]
        for record in self.history:
            lines.append(
                f"  step {record.step}: T={record.parallel_time:.4g}s  "
                f"weights={np.round(record.weights_used, 3).tolist()}"
            )
        return "\n".join(lines)
