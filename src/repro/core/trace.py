"""Execution traces and ASCII Gantt charts.

Collects per-worker activity intervals during a simulated run and can
render them as a text Gantt chart — which is how we regenerate the
paper's Figures 2 and 3 (the implicit-synchronisation illustration for
MPI+OpenMP vs the barrier-free MPI+MPI execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


#: activity categories, matching the legends of Figures 2 and 3
COMPUTE = "compute"
OBTAIN = "obtain"  # obtaining a new chunk via MPI
SYNC = "sync"  # implicit synchronisation (barrier wait)
IDLE = "idle"

_GLYPH = {COMPUTE: "#", OBTAIN: "o", SYNC: "=", IDLE: ".", None: " "}


@dataclass(frozen=True)
class Interval:
    worker: str
    start: float
    end: float
    kind: str
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only log of worker activity intervals.

    Execution models call :meth:`add` as workers move between states.
    Rendering collapses the intervals onto a fixed-width character grid;
    within one cell the *dominant* activity wins, which keeps the charts
    readable at any resolution.
    """

    def __init__(self) -> None:
        self.intervals: List[Interval] = []
        self.marks: List[Tuple[float, str]] = []

    def add(self, worker: str, start: float, end: float, kind: str, label: str = "") -> None:
        if end > start:
            self.intervals.append(Interval(worker, start, end, kind, label))

    def mark(self, time: float, label: str) -> None:
        """Record a global event (loop start/end, barrier release, ...)."""
        self.marks.append((time, label))

    # ------------------------------------------------------------------
    def workers(self) -> List[str]:
        seen: Dict[str, None] = {}
        for iv in self.intervals:
            seen.setdefault(iv.worker, None)
        return list(seen)

    def span(self) -> Tuple[float, float]:
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(iv.start for iv in self.intervals),
            max(iv.end for iv in self.intervals),
        )

    def total(self, kind: str, worker: Optional[str] = None) -> float:
        """Total time spent in ``kind`` (optionally for one worker)."""
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.kind == kind and (worker is None or iv.worker == worker)
        )

    def render_gantt(self, width: int = 100, legend: bool = True) -> str:
        """ASCII Gantt chart: one row per worker, time left to right.

        Glyphs: ``#`` compute, ``o`` obtaining a chunk via MPI,
        ``=`` (implicit) synchronisation wait, ``.`` idle.
        """
        t0, t1 = self.span()
        if t1 <= t0:
            return "(empty trace)"
        dt = (t1 - t0) / width
        rows: List[str] = []
        name_width = max((len(w) for w in self.workers()), default=4)
        for worker in self.workers():
            # accumulate dominant activity per cell
            cells: List[Dict[str, float]] = [dict() for _ in range(width)]
            for iv in self.intervals:
                if iv.worker != worker:
                    continue
                first = int((iv.start - t0) / dt)
                last = min(width - 1, int((iv.end - t0) / dt))
                for cell in range(max(0, first), last + 1):
                    cell_start = t0 + cell * dt
                    cell_end = cell_start + dt
                    overlap = min(iv.end, cell_end) - max(iv.start, cell_start)
                    if overlap > 0:
                        cells[cell][iv.kind] = cells[cell].get(iv.kind, 0.0) + overlap
            line = "".join(
                _GLYPH[max(c, key=c.get)] if c else " " for c in cells
            )
            rows.append(f"{worker:<{name_width}} |{line}|")
        header = f"{'':<{name_width}}  t={t0:.4g}s{'':>{max(0, width - 18)}}t={t1:.4g}s"
        out = [header, *rows]
        if legend:
            out.append(
                f"{'':<{name_width}}  legend: #=compute  o=obtain chunk via MPI  "
                "==implicit sync  .=idle"
            )
        return "\n".join(out)

    def sync_time_per_worker(self) -> Dict[str, float]:
        """Total implicit-synchronisation time per worker (Fig. 2 metric)."""
        return {w: self.total(SYNC, w) for w in self.workers()}

    def to_chrome_trace(self) -> List[dict]:
        """Export as Chrome trace-event objects (``chrome://tracing``,
        Perfetto).  One complete ('X') event per interval; workers map
        to thread ids, activity kinds to categories.  Times are emitted
        in microseconds as the format requires."""
        tids = {worker: tid for tid, worker in enumerate(self.workers())}
        events = [
            {
                "name": iv.label or iv.kind,
                "cat": iv.kind,
                "ph": "X",
                "ts": iv.start * 1e6,
                "dur": iv.duration * 1e6,
                "pid": 0,
                "tid": tids[iv.worker],
                "args": {"worker": iv.worker},
            }
            for iv in self.intervals
        ]
        events.extend(
            {
                "name": label,
                "ph": "i",
                "ts": time * 1e6,
                "pid": 0,
                "tid": 0,
                "s": "g",
            }
            for time, label in self.marks
        )
        return events

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` JSON to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_chrome_trace()))
