"""Experiment harness (S10): regenerate every table and figure.

The paper's evaluation artefacts map to this package as follows
(see DESIGN.md's per-experiment index):

* Table 1  -> :func:`repro.experiments.tables.table1`
* Figure 2/3 (sync illustration) -> :func:`repro.experiments.figures.run_sync_illustration`
* Figures 4-7 -> :func:`repro.experiments.figures.run_figure` with ids
  ``fig4a`` ... ``fig7b``
* In-text numbers (Sec. 5) -> :func:`repro.experiments.intext.run_intext`
* Ablations A-1..A-4 -> :mod:`repro.experiments.ablations`

All experiments run on the calibrated figure workloads from
:mod:`repro.experiments.workloads` and print paper-style series plus
qualitative *shape checks* that encode the paper's findings.
"""

from repro.experiments.figures import (
    FIGURES,
    FigureResult,
    FigureSpec,
    PlacementVariantResult,
    PlacementVariantSpec,
    placement_variant,
    run_figure,
    run_placement_variant,
    run_sync_illustration,
)
from repro.experiments.harness import Cell, GridRunner, simulate_cell
from repro.experiments.workloads import scale_from_env
from repro.experiments.tables import table1
from repro.experiments.workloads import figure_mandelbrot, figure_psia

__all__ = [
    "FIGURES",
    "Cell",
    "FigureResult",
    "FigureSpec",
    "GridRunner",
    "PlacementVariantResult",
    "PlacementVariantSpec",
    "figure_mandelbrot",
    "figure_psia",
    "placement_variant",
    "run_figure",
    "run_placement_variant",
    "run_sync_illustration",
    "scale_from_env",
    "simulate_cell",
    "table1",
]
