"""Ablation studies (A-1 .. A-4): the design choices DESIGN.md calls out.

These go beyond the paper's figures to quantify *why* the results look
the way they do:

* **A-1** lock-polling interval sweep — the single parameter behind the
  ``X+SS`` penalty (paper Sec. 5's MPI_Win_lock discussion / [38]).
* **A-2** execution-model comparison — hierarchical MPI+MPI vs flat
  distributed chunk calculation vs centralised master-worker.
* **A-3** the ``nowait`` future-work variant (paper Sec. 6): threads
  fetch chunks themselves instead of synchronising at a barrier.
* **A-4** workers-per-node sensitivity.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.api import run_hierarchical
from repro.cluster.costs import CostModel
from repro.cluster.machine import minihpc
from repro.core.hierarchy import HierarchicalSpec
from repro.experiments.workloads import figure_workload, scale_from_env
from repro.models import MpiOpenMpModel


def ablation_lockpoll(
    scale: Optional[str] = None,
    intervals: Tuple[float, ...] = (10e-6, 30e-6, 60e-6, 120e-6, 240e-6),
    nodes: int = 4,
    ppn: int = 16,
    seed: int = 0,
) -> str:
    """A-1: how the MPI_Win_lock polling interval drives the SS penalty."""
    workload = figure_workload("mandelbrot", scale or scale_from_env())
    cluster = minihpc(nodes, ppn)
    hybrid = run_hierarchical(
        workload, cluster, "FAC2", "SS", approach="mpi+openmp",
        ppn=ppn, seed=seed, collect_chunks=False,
    )
    lines = [
        "A-1: lock-polling interval sweep (FAC2+SS, "
        f"{nodes} nodes x {ppn} workers)",
        "=" * 64,
        f"MPI+OpenMP reference: {hybrid.parallel_time:.4g}s "
        "(atomic chunk grabs, no window locks)",
        "",
        f"{'poll interval':>14} {'MPI+MPI time':>13} {'penalty':>9} "
        f"{'poll wait':>11} {'attempts/acq':>13}",
        "-" * 64,
    ]
    for interval in intervals:
        costs = CostModel().with_overrides(**{"mpi.shm_poll_interval": interval})
        result = run_hierarchical(
            workload, cluster, "FAC2", "SS", approach="mpi+mpi",
            ppn=ppn, seed=seed, costs=costs, collect_chunks=False,
        )
        stats = result.counters["lock_stats"]
        acq = sum(s["acquisitions"] for s in stats.values())
        att = sum(s["attempts"] for s in stats.values())
        lines.append(
            f"{interval * 1e6:>11.0f} us {result.parallel_time:>12.4g}s "
            f"{result.parallel_time / hybrid.parallel_time:>8.2f}x "
            f"{result.counters['total_poll_wait']:>10.4g}s "
            f"{att / max(1, acq):>13.2f}"
        )
    lines.append(
        "\nfinding: the X+SS penalty grows with the polling interval - it is "
        "a lock-implementation artefact, exactly as the paper argues via [38]."
    )
    return "\n".join(lines)


def ablation_models(
    scale: Optional[str] = None,
    node_counts: Tuple[int, ...] = (2, 4, 8, 16),
    ppn: int = 16,
    seed: int = 0,
) -> str:
    """A-2: hierarchical vs flat vs centralised master-worker."""
    workload = figure_workload("mandelbrot", scale or scale_from_env())
    configs = [
        ("mpi+mpi", "GSS", "GSS"),
        ("mpi+openmp", "GSS", "GSS"),
        ("flat-mpi", "GSS", "GSS"),
        ("master-worker", "GSS", "GSS"),
    ]
    lines = [
        f"A-2: execution-model comparison (GSS, {ppn} workers/node)",
        "=" * 64,
        f"{'nodes':>6} | " + " | ".join(f"{a:>13}" for a, _, _ in configs),
        "-" * 72,
    ]
    data = {}
    for nodes in node_counts:
        row = [f"{nodes:>6}"]
        for approach, inter, intra in configs:
            result = run_hierarchical(
                workload, minihpc(nodes, ppn), inter, intra,
                approach=approach, ppn=ppn, seed=seed, collect_chunks=False,
            )
            data[(approach, nodes)] = result.parallel_time
            row.append(f"{result.parallel_time:>12.4g}s")
        lines.append(" | ".join(row))
    biggest = max(node_counts)
    hier = data[("mpi+mpi", biggest)]
    mw = data[("master-worker", biggest)]
    lines.append(
        f"\nfinding: at {biggest} nodes the hierarchical MPI+MPI approach is "
        f"{mw / hier:.2f}x faster than the centralised master-worker model "
        "(the bottleneck that motivated hierarchical DLS, paper Sec. 2)."
    )
    return "\n".join(lines)


def ablation_nowait(
    scale: Optional[str] = None,
    nodes: int = 4,
    ppn: int = 16,
    seed: int = 0,
) -> str:
    """A-3: the paper's Sec. 6 future-work variant — OpenMP ``nowait``
    with thread-initiated (serialised) MPI fetches."""
    workload = figure_workload("mandelbrot", scale or scale_from_env())
    cluster = minihpc(nodes, ppn)
    spec = HierarchicalSpec.of("GSS", "STATIC")
    rows = []
    for label, model in (
        ("MPI+OpenMP (barrier)", MpiOpenMpModel()),
        ("MPI+OpenMP (nowait self-fetch)", MpiOpenMpModel(nowait_selffetch=True)),
    ):
        result = model.run(
            workload=workload, cluster=cluster, spec=spec, ppn=ppn,
            seed=seed, collect_chunks=False,
        )
        rows.append((label, result.parallel_time))
    mpimpi = run_hierarchical(
        workload, cluster, "GSS", "STATIC", approach="mpi+mpi",
        ppn=ppn, seed=seed, collect_chunks=False,
    )
    rows.append(("MPI+MPI (proposed)", mpimpi.parallel_time))
    lines = [
        f"A-3: nowait future-work variant (GSS+STATIC, {nodes} nodes x {ppn})",
        "=" * 64,
    ]
    for label, t in rows:
        lines.append(f"  {label:<32} {t:.4g}s")
    barrier_t = rows[0][1]
    nowait_t = rows[1][1]
    lines.append(
        f"\nfinding: removing the implicit barrier recovers "
        f"{(barrier_t - nowait_t) / barrier_t:.0%} of the hybrid's time; the "
        "remaining gap to MPI+MPI is the serialised thread-level MPI access "
        "the paper predicted would complicate the nowait route (Sec. 3, 6)."
    )
    return "\n".join(lines)


def ablation_ppn(
    scale: Optional[str] = None,
    ppns: Tuple[int, ...] = (2, 4, 8, 16),
    nodes: int = 4,
    seed: int = 0,
) -> str:
    """A-4: workers-per-node sensitivity of both approaches."""
    workload = figure_workload("mandelbrot", scale or scale_from_env())
    lines = [
        f"A-4: workers-per-node sweep (GSS+STATIC / GSS+SS, {nodes} nodes)",
        "=" * 70,
        f"{'ppn':>4} | {'hybrid STATIC':>14} | {'mpimpi STATIC':>14} | "
        f"{'hybrid SS':>11} | {'mpimpi SS':>11}",
        "-" * 70,
    ]
    for ppn in ppns:
        cluster = minihpc(nodes, ppn)
        row = [f"{ppn:>4}"]
        for intra in ("STATIC", "SS"):
            for approach in ("mpi+openmp", "mpi+mpi"):
                result = run_hierarchical(
                    workload, cluster, "GSS", intra, approach=approach,
                    ppn=ppn, seed=seed, collect_chunks=False,
                )
                row.append(f"{result.parallel_time:>13.4g}s")
        lines.append(" | ".join(row))
    lines.append(
        "\nfinding: the SS lock-contention penalty grows with ppn (more "
        "pollers per window) while the STATIC advantage persists across ppn."
    )
    return "\n".join(lines)
