"""Figure definitions, shape checks, and paper-style reports.

``fig4`` .. ``fig7`` sweep the intra-node techniques (panels) over
cluster sizes for a fixed inter-node technique, for both applications
(``a`` = Mandelbrot, ``b`` = PSIA), exactly mirroring the paper's
Figures 4-7.  Each figure carries *shape checks* that encode the
paper's qualitative findings; the benchmark harness prints them as
PASS/FAIL lines and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.api import run_hierarchical
from repro.cluster.costs import COST_PRESETS
from repro.cluster.machine import heterogeneous, minihpc
from repro.core.hierarchy import split_stack
from repro.core.techniques import INTEL_OPENMP_SUPPORTED, PAPER_TECHNIQUES
from repro.experiments.harness import Cell, GridRunner, series
from repro.experiments.workloads import figure_workload, scale_from_env

#: plotted approaches: label -> (model name, intra-technique filter)
APPROACHES: List[Tuple[str, Callable[[str], bool]]] = [
    # the Intel OpenMP runtime the paper used only provides
    # static/dynamic/guided, so MPI+OpenMP series exist only for those
    # leaf schedules (for ``+``-joined stacks the leaf is what the
    # OpenMP ``schedule`` clause implements)
    ("mpi+openmp", lambda intra: split_stack(intra)[-1] in INTEL_OPENMP_SUPPORTED),
    ("mpi+mpi", lambda intra: True),
]


@dataclass(frozen=True)
class FigureSpec:
    """One paper figure: an application swept under one inter technique.

    ``intras`` entries may be ``+``-joined stacks (three- or four-level
    scheduling); ``sockets_per_node`` and ``numa_per_socket`` expose
    the machine tiers those stacks schedule at (1 = the paper's flat
    node model).
    """

    figure_id: str
    paper_ref: str
    app: str
    inter: str
    intras: Tuple[str, ...] = PAPER_TECHNIQUES
    node_counts: Tuple[int, ...] = (2, 4, 8, 16)
    ppn: int = 16
    sockets_per_node: int = 1
    numa_per_socket: int = 1

    @property
    def title(self) -> str:
        suffix = (
            f", {self.sockets_per_node} sockets/node"
            if self.sockets_per_node > 1
            else ""
        )
        if self.numa_per_socket > 1:
            suffix += f", {self.numa_per_socket} NUMA/socket"
        return (
            f"{self.paper_ref}: {self.app} with {self.inter} inter-node "
            f"scheduling ({self.ppn} workers/node{suffix})"
        )


def socket_variant(
    figure_id: str, sockets_per_node: int = 2, mid: str = "FAC2"
) -> FigureSpec:
    """Derive the three-level (X+mid+Y) variant of a paper figure.

    Same application, inter technique and grid as the original, but on
    ``sockets_per_node``-socket nodes (the physical miniHPC Xeons are
    dual-socket) with ``mid`` scheduling each node's chunk across its
    sockets: panel ``X+Y`` becomes ``X+mid+Y``.  Not part of the paper
    — an extension sweep enabled by the arbitrary-depth hierarchy::

        run_figure_spec(socket_variant("fig5a"))
    """
    base = FIGURES[figure_id]
    return replace(
        base,
        figure_id=f"{base.figure_id}-s{sockets_per_node}",
        paper_ref=f"{base.paper_ref} ({sockets_per_node}-socket extension)",
        intras=tuple(f"{mid}+{intra}" for intra in base.intras),
        sockets_per_node=sockets_per_node,
    )


def numa_variant(
    figure_id: str,
    sockets_per_node: int = 2,
    numa_per_socket: int = 2,
    mid: str = "FAC2",
    numa_mid: str = "FAC2",
) -> FigureSpec:
    """Derive the four-level (W+mid+numa_mid+Z) variant of a paper figure.

    The depth-4 analogue of :func:`socket_variant`: same application,
    inter technique and grid as the original, but on nodes with
    ``sockets_per_node`` sockets of ``numa_per_socket`` NUMA domains
    each; ``mid`` schedules each node's chunk across its sockets and
    ``numa_mid`` each socket's sub-chunk across its NUMA domains, so
    panel ``W+Z`` becomes ``W+mid+numa_mid+Z``.  Not part of the paper
    — the three-level-series extension sweep one tier deeper::

        run_figure_spec(numa_variant("fig5a"))
    """
    base = FIGURES[figure_id]
    return replace(
        base,
        figure_id=f"{base.figure_id}-s{sockets_per_node}m{numa_per_socket}",
        paper_ref=(
            f"{base.paper_ref} ({sockets_per_node}-socket x "
            f"{numa_per_socket}-NUMA extension)"
        ),
        intras=tuple(f"{mid}+{numa_mid}+{intra}" for intra in base.intras),
        sockets_per_node=sockets_per_node,
        numa_per_socket=numa_per_socket,
    )


#: extra fixed-technique panels appended by ``adaptive_variant(...,
#: full_roster=True)`` — the roster beyond the paper's original grids
FULL_ROSTER_EXTRAS = ("FISS", "VISS", "RND", "TAP")


def adaptive_variant(
    figure_id: str,
    sockets_per_node: int = 1,
    numa_per_socket: int = 1,
    mid: str = "FAC2",
    full_roster: bool = False,
    ladders: tuple = (),
) -> FigureSpec:
    """Derive the runtime-adaptive (``ADAPT`` leaf) variant of a figure.

    Adds an ``ADAPT`` panel to the original grid so the runtime
    selector can be compared against every fixed leaf technique under
    identical conditions.  With ``sockets_per_node``/``numa_per_socket``
    above 1 the fixed panels become ``mid``-joined stacks and ADAPT
    selects per socket/NUMA queue (one selector per tier-queue refill).
    Not part of the paper — the technique-selection extension sweep::

        run_figure_spec(adaptive_variant("fig5a"))

    ``full_roster=True`` also appends the post-paper fixed techniques
    (:data:`FULL_ROSTER_EXTRAS`: FISS, VISS, seeded RND, TAP), and
    ``ladders`` accepts configured selector spellings such as
    ``"ADAPT[ss,fac2,tss]"`` to compare candidate ladders side by
    side.  The plain ``ADAPT`` panel always stays last.

    MPI+OpenMP series are skipped for the ADAPT/ladder panels
    automatically: the runtime selector has no OpenMP ``schedule``
    clause, exactly like the paper's unsupported TSS/FAC2 intra
    techniques.
    """
    base = FIGURES[figure_id]
    extras = FULL_ROSTER_EXTRAS if full_roster else ()
    panels = (*base.intras, *extras, *ladders, "ADAPT")
    if sockets_per_node == 1 and numa_per_socket == 1:
        intras = panels
        suffix_id, suffix_ref = "-adapt", " (ADAPT runtime-selection extension)"
    else:
        prefix = mid if numa_per_socket == 1 else f"{mid}+{mid}"
        intras = tuple(f"{prefix}+{intra}" for intra in panels)
        suffix_id = f"-adapt-s{sockets_per_node}m{numa_per_socket}"
        suffix_ref = (
            f" (ADAPT extension, {sockets_per_node}-socket x "
            f"{numa_per_socket}-NUMA)"
        )
    if full_roster or ladders:
        suffix_id += "-roster"
        suffix_ref = suffix_ref.rstrip(")") + ", full roster)"
    return replace(
        base,
        figure_id=f"{base.figure_id}{suffix_id}",
        paper_ref=f"{base.paper_ref}{suffix_ref}",
        intras=intras,
        sockets_per_node=sockets_per_node,
        numa_per_socket=numa_per_socket,
    )


FIGURES: Dict[str, FigureSpec] = {}
for _fig, _inter in (("fig4", "STATIC"), ("fig5", "GSS"), ("fig6", "TSS"), ("fig7", "FAC2")):
    for _sub, _app in (("a", "mandelbrot"), ("b", "psia")):
        _id = f"{_fig}{_sub}"
        FIGURES[_id] = FigureSpec(
            figure_id=_id,
            paper_ref=f"Figure {_fig[3]}{_sub}",
            app=_app,
            inter=_inter,
        )


@dataclass
class ShapeCheck:
    """One qualitative acceptance criterion with its outcome."""

    description: str
    passed: bool
    detail: str = ""

    def line(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        out = f"  [{mark}] {self.description}"
        if self.detail:
            out += f"  ({self.detail})"
        return out


@dataclass
class FigureResult:
    spec: FigureSpec
    cells: List[Cell]
    checks: List[ShapeCheck] = field(default_factory=list)

    def series(self, approach: str, intra: str) -> Dict[int, float]:
        return series(self.cells, approach, intra)

    # ------------------------------------------------------------------
    def run_checks(self) -> List[ShapeCheck]:
        """Evaluate the paper's qualitative findings on this figure."""
        checks: List[ShapeCheck] = []
        spec = self.spec

        def ratio_at(intra: str, nodes: int) -> Optional[float]:
            hybrid = self.series("mpi+openmp", intra)
            mpimpi = self.series("mpi+mpi", intra)
            if nodes not in hybrid or nodes not in mpimpi or mpimpi[nodes] == 0:
                return None
            return hybrid[nodes] / mpimpi[nodes]

        # 1. strong scaling for every series
        for approach, supports in APPROACHES:
            for intra in spec.intras:
                if not supports(intra):
                    continue
                s = self.series(approach, intra)
                if len(s) >= 2:
                    first, last = s[min(s)], s[max(s)]
                    checks.append(
                        ShapeCheck(
                            f"{approach} {spec.inter}+{intra}: time shrinks "
                            f"{min(s)}->{max(s)} nodes",
                            passed=last < first,
                            detail=f"{first:.4g}s -> {last:.4g}s",
                        )
                    )

        # 2. X+SS: MPI+MPI is the poorest (lock polling)
        ss_ratios = [r for n in spec.node_counts if (r := ratio_at("SS", n))]
        if ss_ratios:
            worst = min(ss_ratios)
            checks.append(
                ShapeCheck(
                    f"{spec.inter}+SS: MPI+MPI slower than MPI+OpenMP "
                    "(lock-polling contention)",
                    passed=all(r < 1.0 for r in ss_ratios),
                    detail=f"hybrid/mpimpi ratios {['%.2f' % r for r in ss_ratios]}",
                )
            )

        # 3. X+STATIC: MPI+MPI wins for dynamic inter techniques on the
        #    strongly imbalanced Mandelbrot; for the mildly imbalanced
        #    PSIA the paper reports a small win at 2 nodes converging to
        #    parity at 16 (Sec. 5: "decreased load imbalance in PSIA");
        #    for Fig 4 (STATIC inter) both approaches tie.
        static_ratios = [r for n in spec.node_counts if (r := ratio_at("STATIC", n))]
        if static_ratios:
            if spec.inter == "STATIC":
                passed = all(0.85 < r < 1.25 for r in static_ratios)
                desc = "STATIC+STATIC: both approaches perform the same"
            elif spec.app == "mandelbrot":
                passed = max(static_ratios) > 1.15
                desc = (
                    f"{spec.inter}+STATIC: MPI+MPI clearly faster "
                    "(no implicit barrier)"
                )
            else:  # psia: small-or-no gap, but never a loss
                passed = static_ratios[0] > 0.95 and all(
                    r > 0.9 for r in static_ratios
                )
                desc = (
                    f"{spec.inter}+STATIC: MPI+MPI same or slightly better "
                    "(mild PSIA imbalance)"
                )
            checks.append(
                ShapeCheck(
                    desc,
                    passed=passed,
                    detail=f"hybrid/mpimpi ratios {['%.2f' % r for r in static_ratios]}",
                )
            )

        # 4. X+GSS parity-or-better for MPI+MPI (paper: same or better)
        gss_ratios = [r for n in spec.node_counts if (r := ratio_at("GSS", n))]
        if gss_ratios:
            floor = 0.9 if spec.app == "mandelbrot" else 0.92
            checks.append(
                ShapeCheck(
                    f"{spec.inter}+GSS: MPI+MPI same or better",
                    passed=all(r > floor for r in gss_ratios),
                    detail=f"hybrid/mpimpi ratios {['%.2f' % r for r in gss_ratios]}",
                )
            )

        self.checks = checks
        return checks

    # ------------------------------------------------------------------
    def to_text(self, shape_checks: bool = True) -> str:
        """Paper-style panel table: one panel per intra technique."""
        spec = self.spec
        lines = [spec.title, "=" * len(spec.title)]
        for intra in spec.intras:
            lines.append(f"\n-- intra-node: {intra} "
                         f"({spec.inter}+{intra}) --")
            header = f"{'nodes':>6} | " + " | ".join(
                f"{a:>12}" for a, _ in APPROACHES
            )
            lines.append(header)
            lines.append("-" * len(header))
            for nodes in spec.node_counts:
                row = [f"{nodes:>6}"]
                for approach, supports in APPROACHES:
                    if not supports(intra):
                        row.append(f"{'n/a':>12}")
                        continue
                    s = self.series(approach, intra)
                    value = f"{s[nodes]:.4g}s" if nodes in s else "?"
                    row.append(f"{value:>12}")
                lines.append(" | ".join(row))
        if shape_checks:
            lines.append("\nshape checks (paper Sec. 5 findings):")
            for check in self.checks or self.run_checks():
                lines.append(check.line())
        return "\n".join(lines)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in (self.checks or self.run_checks()))


def run_figure(
    figure_id: str,
    scale: Optional[str] = None,
    seed: int = 0,
    node_counts: Optional[Tuple[int, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> FigureResult:
    """Regenerate one of the paper's figures (``fig4a`` .. ``fig7b``).

    ``jobs > 1`` simulates independent grid cells on a process pool and
    ``cache_dir`` re-serves previously simulated cells from disk; both
    produce results identical to the serial path (see
    :mod:`repro.experiments.parallel`).
    """
    if figure_id not in FIGURES:
        raise KeyError(f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}")
    spec = FIGURES[figure_id]
    if node_counts is not None:
        spec = replace(spec, node_counts=tuple(node_counts))
    return run_figure_spec(
        spec, scale=scale, seed=seed, progress=progress, jobs=jobs,
        cache_dir=cache_dir,
    )


def run_figure_spec(
    spec: FigureSpec,
    scale: Optional[str] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> FigureResult:
    """Sweep an explicit :class:`FigureSpec` — including derived ones
    such as :func:`socket_variant` three-level extensions."""
    workload = figure_workload(spec.app, scale or scale_from_env())
    runner = GridRunner(
        workload=workload,
        ppn=spec.ppn,
        node_counts=spec.node_counts,
        seed=seed,
        cluster_factory=lambda n: minihpc(
            n,
            spec.ppn,
            sockets_per_node=spec.sockets_per_node,
            numa_per_socket=spec.numa_per_socket,
        ),
        progress=progress,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    cells = runner.sweep(spec.inter, spec.intras, APPROACHES)
    result = FigureResult(spec=spec, cells=cells)
    result.run_checks()
    return result


# ---------------------------------------------------------------------------
# placement sweep: leader vs optimized window homes (PR 5 extension)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementVariantSpec:
    """One placement comparison: a figure grid re-run on an *asymmetric*
    cluster, once with leader window homes and once with optimized ones.

    ``core_speeds`` are cycled over the nodes (the asymmetry: a slow
    node 0 makes the rank-0 leader home of the global RMA window a
    poor host), ``costs_preset`` names the
    :data:`repro.cluster.costs.COST_PRESETS` entry pricing the
    distance, and ``intras`` are full sub-stacks below ``inter`` (the
    depth decides which tier queues exist to place).
    """

    figure_id: str
    paper_ref: str
    app: str
    inter: str
    intras: Tuple[str, ...]
    node_counts: Tuple[int, ...] = (2, 4)
    ppn: int = 8
    sockets_per_node: int = 2
    numa_per_socket: int = 2
    core_speeds: Tuple[float, ...] = (0.6, 1.4)
    costs_preset: str = "calibrated"

    @property
    def title(self) -> str:
        """Human-readable header for the report."""
        return (
            f"{self.paper_ref}: {self.app} with {self.inter} inter-node "
            f"scheduling — leader vs optimized window placement "
            f"({self.ppn} workers/node, {self.sockets_per_node} sockets x "
            f"{self.numa_per_socket} NUMA, node speeds "
            f"{'/'.join(str(s) for s in self.core_speeds)}, "
            f"{self.costs_preset} costs)"
        )

    def cluster_factory(self, n_nodes: int):
        """The asymmetric cluster of ``n_nodes`` nodes for this sweep."""
        speeds = [
            self.core_speeds[i % len(self.core_speeds)] for i in range(n_nodes)
        ]
        return heterogeneous(
            core_counts=[self.ppn] * n_nodes,
            core_speeds=speeds,
            socket_counts=[self.sockets_per_node] * n_nodes,
            numa_counts=[self.numa_per_socket] * n_nodes,
            name=f"asym-{self.figure_id}",
        )


def placement_variant(
    figure_id: str,
    sockets_per_node: int = 2,
    numa_per_socket: int = 2,
    mid: str = "FAC2",
    node_counts: Tuple[int, ...] = (2, 4),
    ppn: int = 8,
    core_speeds: Tuple[float, ...] = (0.6, 1.4),
    costs_preset: str = "calibrated",
) -> PlacementVariantSpec:
    """Derive the placement comparison of a paper figure.

    Same application and inter technique as the original, but on an
    asymmetric cluster (heterogeneous node speeds, dual-socket x NUMA
    nodes) with each panel deepened to a depth-4 ``X+mid+mid+Y`` stack,
    swept twice — ``placement="leader"`` vs ``placement="optimized"`` —
    under a non-zero locality preset.  Not part of the paper: the
    penalty-aware queue-placement extension sweep::

        run_placement_variant(placement_variant("fig5a"))
    """
    base = FIGURES[figure_id]
    if numa_per_socket > 1:
        intras = tuple(f"{mid}+{mid}+{intra}" for intra in base.intras)
    elif sockets_per_node > 1:
        intras = tuple(f"{mid}+{intra}" for intra in base.intras)
    else:
        intras = base.intras
    return PlacementVariantSpec(
        figure_id=f"{base.figure_id}-placement",
        paper_ref=f"{base.paper_ref} (queue-placement extension)",
        app=base.app,
        inter=base.inter,
        intras=intras,
        node_counts=node_counts,
        ppn=ppn,
        sockets_per_node=sockets_per_node,
        numa_per_socket=numa_per_socket,
        core_speeds=core_speeds,
        costs_preset=costs_preset,
    )


@dataclass
class PlacementVariantResult:
    """Outcome of one placement comparison sweep."""

    spec: PlacementVariantSpec
    leader_cells: List[Cell]
    optimized_cells: List[Cell]
    checks: List[ShapeCheck] = field(default_factory=list)

    def cost_series(self, placement: str, intra: str) -> Dict[int, float]:
        """nodes -> measured priced placement cost for one panel."""
        cells = (
            self.leader_cells if placement == "leader" else self.optimized_cells
        )
        return {
            c.nodes: c.placement_cost
            for c in sorted(cells, key=lambda c: c.nodes)
            if c.intra == intra
        }

    def run_checks(self) -> List[ShapeCheck]:
        """Optimized homes must not cost more than leader homes, and at
        least one panel must show a real (>1%) reduction."""
        checks: List[ShapeCheck] = []
        best_gain = 0.0
        for intra in self.spec.intras:
            leader = self.cost_series("leader", intra)
            optimized = self.cost_series("optimized", intra)
            total_leader = sum(leader.values())
            total_optimized = sum(optimized.values())
            gain = (
                (total_leader - total_optimized) / total_leader
                if total_leader > 0
                else 0.0
            )
            best_gain = max(best_gain, gain)
            checks.append(
                ShapeCheck(
                    f"{self.spec.inter}+{intra}: optimized placement priced "
                    "cost <= leader",
                    passed=total_optimized <= total_leader * 1.0000001,
                    detail=(
                        f"{total_leader * 1e6:.1f}us -> "
                        f"{total_optimized * 1e6:.1f}us ({gain:+.1%})"
                    ),
                )
            )
        checks.append(
            ShapeCheck(
                "at least one panel cuts priced cost by > 1% "
                "(the optimizer moved a window that matters)",
                passed=best_gain > 0.01,
                detail=f"best reduction {best_gain:.1%}",
            )
        )
        self.checks = checks
        return checks

    def to_text(self) -> str:
        """Paper-style report: per-panel priced-cost and makespan table."""
        spec = self.spec
        lines = [spec.title, "=" * len(spec.title)]
        for intra in spec.intras:
            lines.append(f"\n-- {spec.inter}+{intra} --")
            header = (
                f"{'nodes':>6} | {'leader cost':>12} | {'optimized':>12} | "
                f"{'delta':>7} | {'leader T':>10} | {'optimized T':>11}"
            )
            lines.append(header)
            lines.append("-" * len(header))
            leader_t = {
                c.nodes: c.time for c in self.leader_cells if c.intra == intra
            }
            optimized_t = {
                c.nodes: c.time
                for c in self.optimized_cells
                if c.intra == intra
            }
            leader = self.cost_series("leader", intra)
            optimized = self.cost_series("optimized", intra)
            for nodes in spec.node_counts:
                lead, opt = leader.get(nodes), optimized.get(nodes)
                if lead is None or opt is None:
                    continue
                delta = (opt - lead) / lead if lead else 0.0
                lines.append(
                    f"{nodes:>6} | {lead * 1e6:>10.1f}us | {opt * 1e6:>10.1f}us"
                    f" | {delta:>+6.1%} | {leader_t[nodes]:>9.4g}s |"
                    f" {optimized_t[nodes]:>10.4g}s"
                )
        lines.append("\nshape checks (queue-placement extension):")
        for check in self.checks or self.run_checks():
            lines.append(check.line())
        return "\n".join(lines)

    @property
    def all_passed(self) -> bool:
        """Whether every placement shape check passed."""
        return all(c.passed for c in (self.checks or self.run_checks()))


def run_placement_variant(
    spec: "PlacementVariantSpec | str",
    scale: Optional[str] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> PlacementVariantResult:
    """Sweep one placement comparison (a :func:`placement_variant` spec
    or a figure id to derive it from) and evaluate its shape checks."""
    if isinstance(spec, str):
        spec = placement_variant(spec)
    workload = figure_workload(spec.app, scale or scale_from_env())
    costs = COST_PRESETS[spec.costs_preset]
    cells: Dict[str, List[Cell]] = {}
    for placement in ("leader", "optimized"):
        runner = GridRunner(
            workload=workload,
            ppn=spec.ppn,
            node_counts=spec.node_counts,
            seed=seed,
            cluster_factory=spec.cluster_factory,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            costs=costs,
            placement=placement,
        )
        cells[placement] = runner.sweep(
            spec.inter, spec.intras, [("mpi+mpi", lambda intra: True)]
        )
    result = PlacementVariantResult(
        spec=spec,
        leader_cells=cells["leader"],
        optimized_cells=cells["optimized"],
    )
    result.run_checks()
    return result


# ---------------------------------------------------------------------------
# fault sweep: makespan degradation vs failure count (PR 6 extension)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultVariantSpec:
    """One fault-resilience comparison: inter techniques swept under
    growing seeded crash-stop schedules on a fixed cluster.

    For each technique in ``inters`` and each count in ``crash_counts``
    the figure's application is simulated with
    :meth:`repro.cluster.faults.FaultModel.random_crashes` victims
    (crash times uniform over ``t_window`` seconds, at most ``ppn - 1``
    victims per node so recovery stays possible); count 0 is the
    fault-free baseline the degradation is measured against.
    """

    figure_id: str
    paper_ref: str
    app: str
    inters: Tuple[str, ...] = ("SS", "FAC2", "GSS", "ADAPT")
    intra: str = "SS"
    n_nodes: int = 4
    ppn: int = 8
    crash_counts: Tuple[int, ...] = (0, 1, 2, 4)
    t_window: Tuple[float, float] = (5e-4, 5e-3)
    fault_seed: int = 0

    @property
    def title(self) -> str:
        """Human-readable header for the report."""
        return (
            f"{self.paper_ref}: {self.app} under crash-stop failures — "
            f"{' vs '.join(self.inters)} inter-node scheduling "
            f"({self.n_nodes} nodes x {self.ppn} workers, crashes in "
            f"[{self.t_window[0]:g}s, {self.t_window[1]:g}s])"
        )


def fault_variant(
    figure_id: str,
    inters: Tuple[str, ...] = ("SS", "FAC2", "GSS", "ADAPT"),
    intra: str = "SS",
    n_nodes: int = 4,
    ppn: int = 8,
    crash_counts: Tuple[int, ...] = (0, 1, 2, 4),
    t_window: Tuple[float, float] = (5e-4, 5e-3),
    fault_seed: int = 0,
) -> FaultVariantSpec:
    """Derive the fault-resilience comparison of a paper figure.

    Same application as the original figure, but on a fixed cluster with
    the inter technique on the panels and the injected failure count on
    the x-axis.  Not part of the paper — the failure-aware scheduling
    extension sweep::

        run_fault_variant(fault_variant("fig5a"))
    """
    base = FIGURES[figure_id]
    return FaultVariantSpec(
        figure_id=f"{base.figure_id}-faults",
        paper_ref=f"{base.paper_ref} (fault-injection extension)",
        app=base.app,
        inters=inters,
        intra=intra,
        n_nodes=n_nodes,
        ppn=ppn,
        crash_counts=crash_counts,
        t_window=t_window,
        fault_seed=fault_seed,
    )


@dataclass(frozen=True)
class FaultCell:
    """One fault-sweep point: a technique under one crash schedule."""

    inter: str
    n_crashes: int
    time: float
    n_failures: int
    n_reexecuted: int
    n_failovers: int
    n_leases_broken: int


@dataclass
class FaultVariantResult:
    """Outcome of one fault-resilience comparison sweep."""

    spec: FaultVariantSpec
    cells: List[FaultCell]
    checks: List[ShapeCheck] = field(default_factory=list)

    def series(self, inter: str) -> Dict[int, float]:
        """crash count -> makespan for one technique panel."""
        return {
            c.n_crashes: c.time
            for c in sorted(self.cells, key=lambda c: c.n_crashes)
            if c.inter == inter
        }

    def degradation(self, inter: str, n_crashes: int) -> float:
        """Relative makespan increase of a faulted run over fault-free."""
        times = self.series(inter)
        baseline = times.get(0)
        if not baseline or n_crashes not in times:
            return 0.0
        return times[n_crashes] / baseline - 1.0

    def run_checks(self) -> List[ShapeCheck]:
        """Every faulted run must complete on the survivors with every
        injected crash observed, re-execute stranded work, and cost no
        less than the fault-free baseline (within noise)."""
        checks: List[ShapeCheck] = []
        worst = max(self.spec.crash_counts)
        for inter in self.spec.inters:
            mine = [c for c in self.cells if c.inter == inter]
            observed = all(c.n_failures >= c.n_crashes for c in mine)
            checks.append(
                ShapeCheck(
                    f"{inter}+{self.spec.intra}: every injected crash "
                    "observed, run completed on survivors",
                    passed=observed and len(mine) == len(self.spec.crash_counts),
                    detail=f"{len(mine)} runs",
                )
            )
            degradation = self.degradation(inter, worst)
            checks.append(
                ShapeCheck(
                    f"{inter}+{self.spec.intra}: {worst} crashes do not "
                    "beat the fault-free baseline",
                    passed=degradation >= -0.01,
                    detail=f"degradation {degradation:+.1%}",
                )
            )
        reexecuted = sum(c.n_reexecuted for c in self.cells)
        checks.append(
            ShapeCheck(
                "stranded chunks were re-executed somewhere in the sweep",
                passed=worst == 0 or reexecuted > 0,
                detail=f"{reexecuted} range(s) re-executed",
            )
        )
        self.checks = checks
        return checks

    def to_text(self) -> str:
        """Paper-style report: makespan vs failure count per technique."""
        spec = self.spec
        lines = [spec.title, "=" * len(spec.title)]
        header = (
            f"{'technique':>12} | {'crashes':>7} | {'T':>10} | "
            f"{'degr.':>7} | {'re-exec':>7} | {'failovers':>9} | {'leases':>6}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for inter in spec.inters:
            for cell in sorted(
                (c for c in self.cells if c.inter == inter),
                key=lambda c: c.n_crashes,
            ):
                lines.append(
                    f"{inter + '+' + spec.intra:>12} | {cell.n_crashes:>7} |"
                    f" {cell.time:>9.4g}s |"
                    f" {self.degradation(inter, cell.n_crashes):>+6.1%} |"
                    f" {cell.n_reexecuted:>7} | {cell.n_failovers:>9} |"
                    f" {cell.n_leases_broken:>6}"
                )
        lines.append("\nshape checks (fault-injection extension):")
        for check in self.checks or self.run_checks():
            lines.append(check.line())
        return "\n".join(lines)

    @property
    def all_passed(self) -> bool:
        """Whether every fault-sweep shape check passed."""
        return all(c.passed for c in (self.checks or self.run_checks()))


def run_fault_variant(
    spec: "FaultVariantSpec | str",
    scale: Optional[str] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> FaultVariantResult:
    """Sweep one fault-resilience comparison (a :func:`fault_variant`
    spec or a figure id to derive it from) and evaluate its checks."""
    from repro.cluster.faults import FaultModel

    if isinstance(spec, str):
        spec = fault_variant(spec)
    workload = figure_workload(spec.app, scale or scale_from_env())
    cluster = minihpc(spec.n_nodes, spec.ppn)
    cells: List[FaultCell] = []
    for inter in spec.inters:
        for n_crashes in spec.crash_counts:
            faults = (
                FaultModel.random_crashes(
                    n_crashes, spec.n_nodes, spec.ppn, spec.t_window,
                    seed=spec.fault_seed,
                )
                if n_crashes
                else None
            )
            result = run_hierarchical(
                workload,
                cluster,
                inter=inter,
                intra=spec.intra,
                approach="mpi+mpi",
                ppn=spec.ppn,
                seed=seed,
                collect_chunks=False,
                faults=faults,
            )
            cell = FaultCell(
                inter=inter,
                n_crashes=n_crashes,
                time=result.parallel_time,
                n_failures=int(result.counters.get("failures_injected", 0)),
                n_reexecuted=int(result.counters.get("chunks_reexecuted", 0)),
                n_failovers=int(result.counters.get("failovers", 0)),
                n_leases_broken=int(
                    result.counters.get("lock_leases_broken", 0)
                ),
            )
            cells.append(cell)
            if progress is not None:
                progress(
                    f"  {inter}+{spec.intra:<7} crashes={n_crashes:<2} "
                    f"T={cell.time:.4g}s re-exec={cell.n_reexecuted}"
                )
    result = FaultVariantResult(spec=spec, cells=cells)
    result.run_checks()
    return result


# ---------------------------------------------------------------------------
# dCC sweep: coordinator contention vs distributed chunk calculation (PR 7)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DccVariantSpec:
    """One coordinator-contention comparison: the centralised
    master-worker, the hierarchical mpi+mpi queues and distributed
    chunk calculation swept over growing node width (``ppn``).

    As ``ppn`` grows every worker of the coordinator approaches queues
    on one agent, while dCC pays exactly one remote atomic per chunk —
    the contention argument of arXiv 2101.07050, measured on the same
    simulated machine.
    """

    figure_id: str
    paper_ref: str
    app: str
    inter: str = "SS"
    intra: str = "SS"
    n_nodes: int = 4
    ppn_counts: Tuple[int, ...] = (4, 8, 16, 32)
    approaches: Tuple[str, ...] = ("master-worker", "mpi+mpi", "dcc")

    @property
    def title(self) -> str:
        """Human-readable header for the report."""
        return (
            f"{self.paper_ref}: {self.app} coordinator contention vs dCC — "
            f"{' vs '.join(self.approaches)} with {self.inter}+{self.intra} "
            f"on {self.n_nodes} nodes, ppn in {list(self.ppn_counts)}"
        )


def dcc_variant(
    figure_id: str,
    inter: str = "SS",
    intra: str = "SS",
    n_nodes: int = 4,
    ppn_counts: Tuple[int, ...] = (4, 8, 16, 32),
) -> DccVariantSpec:
    """Derive the dCC contention comparison of a paper figure.

    Same application as the original figure, on a fixed node count with
    workers-per-node on the x-axis.  Not part of the paper — the
    distributed-chunk-calculation extension sweep::

        run_dcc_variant(dcc_variant("fig5a"))
    """
    base = FIGURES[figure_id]
    return DccVariantSpec(
        figure_id=f"{base.figure_id}-dcc",
        paper_ref=f"{base.paper_ref} (dCC contention extension)",
        app=base.app,
        inter=inter,
        intra=intra,
        n_nodes=n_nodes,
        ppn_counts=ppn_counts,
    )


@dataclass(frozen=True)
class DccCell:
    """One contention-sweep point: an approach at one node width."""

    approach: str
    ppn: int
    time: float
    #: total atomics retired by the global RMA window (0 for approaches
    #: without one) and the scheduling steps dCC dispensed
    global_atomics: int
    dcc_steps: int
    #: measured distance-priced queue traffic in seconds
    placement_cost: float


@dataclass
class DccVariantResult:
    """Outcome of one coordinator-contention comparison sweep."""

    spec: DccVariantSpec
    cells: List[DccCell]
    checks: List[ShapeCheck] = field(default_factory=list)

    def series(self, approach: str) -> Dict[int, float]:
        """ppn -> makespan for one approach panel."""
        return {
            c.ppn: c.time
            for c in sorted(self.cells, key=lambda c: c.ppn)
            if c.approach == approach
        }

    def run_checks(self) -> List[ShapeCheck]:
        """dCC must complete every sweep point, retire exactly one
        atomic per dispensed step plus one exhausted fetch per rank,
        and not lose to the centralised coordinator at the widest
        node."""
        spec = self.spec
        checks: List[ShapeCheck] = []
        for approach in spec.approaches:
            mine = [c for c in self.cells if c.approach == approach]
            checks.append(
                ShapeCheck(
                    f"{approach}: one run per node width",
                    passed=len(mine) == len(spec.ppn_counts),
                    detail=f"{len(mine)}/{len(spec.ppn_counts)} runs",
                )
            )
        dcc_cells = [c for c in self.cells if c.approach == "dcc"]
        accounting = all(
            c.global_atomics == c.dcc_steps + spec.n_nodes * c.ppn
            for c in dcc_cells
        )
        checks.append(
            ShapeCheck(
                "dcc: atomics == dispensed steps + one exhausted fetch "
                "per rank",
                passed=bool(dcc_cells) and accounting,
                detail=f"{len(dcc_cells)} widths checked",
            )
        )
        if "master-worker" in spec.approaches and dcc_cells:
            widest = max(spec.ppn_counts)
            t_dcc = self.series("dcc").get(widest)
            t_coord = self.series("master-worker").get(widest)
            ok = (
                t_dcc is not None
                and t_coord is not None
                and t_dcc <= t_coord * 1.01
            )
            checks.append(
                ShapeCheck(
                    f"dcc does not lose to the coordinator at ppn={widest}",
                    passed=ok,
                    detail=(
                        f"T_dcc={t_dcc:.4g}s vs T_mw={t_coord:.4g}s"
                        if t_dcc is not None and t_coord is not None
                        else "missing cells"
                    ),
                )
            )
        self.checks = checks
        return checks

    def to_text(self) -> str:
        """Paper-style report: makespan vs node width per approach."""
        spec = self.spec
        lines = [spec.title, "=" * len(spec.title)]
        header = (
            f"{'approach':>13} | {'ppn':>4} | {'T':>10} | "
            f"{'atomics':>8} | {'steps':>6} | {'priced traffic':>14}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for approach in spec.approaches:
            for cell in sorted(
                (c for c in self.cells if c.approach == approach),
                key=lambda c: c.ppn,
            ):
                lines.append(
                    f"{approach:>13} | {cell.ppn:>4} | {cell.time:>9.4g}s |"
                    f" {cell.global_atomics:>8} | {cell.dcc_steps:>6} |"
                    f" {cell.placement_cost * 1e6:>12.1f}us"
                )
        lines.append("\nshape checks (dCC contention extension):")
        for check in self.checks or self.run_checks():
            lines.append(check.line())
        return "\n".join(lines)

    @property
    def all_passed(self) -> bool:
        """Whether every contention-sweep shape check passed."""
        return all(c.passed for c in (self.checks or self.run_checks()))


def run_dcc_variant(
    spec: "DccVariantSpec | str",
    scale: Optional[str] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> DccVariantResult:
    """Sweep one coordinator-contention comparison (a :func:`dcc_variant`
    spec or a figure id to derive it from) and evaluate its checks."""
    if isinstance(spec, str):
        spec = dcc_variant(spec)
    workload = figure_workload(spec.app, scale or scale_from_env())
    cells: List[DccCell] = []
    for approach in spec.approaches:
        for ppn in spec.ppn_counts:
            result = run_hierarchical(
                workload,
                minihpc(spec.n_nodes, ppn),
                inter=spec.inter,
                intra=spec.intra,
                approach=approach,
                ppn=ppn,
                seed=seed,
                collect_chunks=False,
            )
            cell = DccCell(
                approach=approach,
                ppn=ppn,
                time=result.parallel_time,
                global_atomics=int(result.counters.get("global_atomics", 0)),
                dcc_steps=int(result.counters.get("dcc_steps", 0)),
                placement_cost=float(
                    result.counters.get("placement_cost_s", 0.0)
                ),
            )
            cells.append(cell)
            if progress is not None:
                progress(
                    f"  {approach:<13} ppn={ppn:<3} T={cell.time:.4g}s "
                    f"atomics={cell.global_atomics}"
                )
    result = DccVariantResult(spec=spec, cells=cells)
    result.run_checks()
    return result


def run_sync_illustration(scale: str = "quick", seed: int = 0) -> str:
    """Regenerate Figures 2 and 3: the implicit-synchronisation Gantt
    charts for MPI+OpenMP vs MPI+MPI on one node-pair slice."""
    workload = figure_workload("mandelbrot", scale)
    out = []
    results = {}
    # FAC2 at the inter level gives multiple scheduling rounds even on a
    # single node (each batch takes half the remainder), so the per-chunk
    # implicit barrier of Figure 2 appears repeatedly, as in the paper.
    for approach, fig in (("mpi+openmp", "Figure 2"), ("mpi+mpi", "Figure 3")):
        result = run_hierarchical(
            workload,
            minihpc(1, 8),
            inter="FAC2",
            intra="STATIC",
            approach=approach,
            ppn=8,
            seed=seed,
            collect_trace=True,
            collect_chunks=False,
        )
        results[approach] = result
        sync_total = sum(result.trace.sync_time_per_worker().values())
        out.append(
            f"{fig} ({approach}): t_end={result.parallel_time:.4g}s, "
            f"total implicit-sync time={sync_total:.4g}s"
        )
        out.append(result.trace.render_gantt(width=88))
        out.append("")
    t_omp = results["mpi+openmp"].parallel_time
    t_mpi = results["mpi+mpi"].parallel_time
    verdict = "PASS" if t_mpi < t_omp else "FAIL"
    out.append(
        f"[{verdict}] t'_end ({t_mpi:.4g}s, MPI+MPI) < t_end ({t_omp:.4g}s, "
        "MPI+OpenMP) as illustrated by the paper's Figures 2/3"
    )
    return "\n".join(out)
