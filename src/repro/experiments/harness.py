"""Grid runner: sweep (approach x intra x nodes) cells for one figure.

Runs are independent simulations, so the runner can fan them out over a
process pool (``jobs``) and serve repeats from a content-addressed
on-disk cache (``cache_dir``) — see :mod:`repro.experiments.parallel`.
Within one process it caches nothing across cells except the workload
object (which is the expensive part) and collects results into a tidy
list for the report layer.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.api import run_hierarchical
from repro.cluster.costs import CostModel
from repro.cluster.machine import ClusterSpec, minihpc
from repro.models.base import RunResult
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Cell:
    """One grid cell: a single simulated execution.

    ``inter``/``intra`` are technique *stacks*: either may be a
    ``+``-joined multi-level string (``intra="FAC2+STATIC"`` schedules
    sockets then cores within each inter-node chunk), so a sweep can
    mix two- and three-level configurations in one grid.
    """

    approach: str
    inter: str
    intra: str
    nodes: int
    time: float
    overhead_fraction: float
    idle_fraction: float
    cov: float
    n_events: int
    wall_seconds: float
    #: measured distance-priced queue traffic (seconds): shared-window
    #: locality penalties + global-window atomic service time — the
    #: quantity window *placement* can change (0 for models that do not
    #: report it, and under the distance-blind default costs the
    #: shared-window share is 0)
    placement_cost: float = 0.0
    #: faults injected into this cell's simulation (0 for fault-free
    #: sweeps) and work ranges re-executed by survivors after crashes
    n_failures: int = 0
    n_reexecuted: int = 0

    @property
    def label(self) -> str:
        return f"{self.inter}+{self.intra}"

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-ready form (the cache / report interchange layer)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Cell":
        return cls(**payload)

    def same_result(self, other: "Cell") -> bool:
        """Equality of everything the simulation determines.

        ``wall_seconds`` measures the host machine, not the simulated
        system, so it is excluded — it is the one field allowed to vary
        between a serial run, a parallel run, and a cache hit.
        """
        mine, theirs = self.to_dict(), other.to_dict()
        mine.pop("wall_seconds")
        theirs.pop("wall_seconds")
        return mine == theirs


def simulate_cell(
    workload: Workload,
    cluster: ClusterSpec,
    approach: str,
    inter: str,
    intra: str,
    nodes: int,
    ppn: int,
    seed: int,
    costs: Optional[CostModel] = None,
    placement: Union[str, Mapping[Any, int]] = "leader",
    faults: Optional[Any] = None,
    dcc: bool = False,
    engine: str = "scalar",
) -> Cell:
    """Run one cell's simulation (shared by serial path and pool workers).

    ``costs`` overrides the cost model (None = package default),
    ``placement`` the window-home policy, ``faults`` the fault
    schedule (a :class:`repro.cluster.faults.FaultModel` or None), and
    ``dcc`` reroutes mpi+mpi stacks through the
    distributed-chunk-calculation model — all default to the
    historical behaviour, so pre-existing sweeps are untouched.
    ``engine`` selects the execution engine ("scalar" | "cohort");
    eligible cohort cells produce bit-identical results faster, so the
    choice deliberately does not enter the cell cache key.
    """
    t0 = time.perf_counter()
    result: RunResult = run_hierarchical(
        workload,
        cluster,
        inter=inter,
        intra=intra,
        approach=approach,
        ppn=ppn,
        seed=seed,
        collect_chunks=False,
        costs=costs,
        placement=placement,
        faults=faults,
        dcc=dcc,
        engine=engine,
    )
    wall = time.perf_counter() - t0
    return Cell(
        approach=approach,
        inter=inter,
        intra=intra,
        nodes=nodes,
        time=result.parallel_time,
        overhead_fraction=result.metrics.overhead_fraction,
        idle_fraction=result.metrics.idle_fraction,
        cov=result.metrics.cov_finish,
        n_events=result.n_events,
        wall_seconds=wall,
        placement_cost=float(result.counters.get("placement_cost_s", 0.0)),
        n_failures=int(result.counters.get("failures_injected", 0)),
        n_reexecuted=int(result.counters.get("chunks_reexecuted", 0)),
    )


@dataclass
class GridRunner:
    """Sweeps scheduling combinations over cluster sizes.

    Parameters mirror the paper's setup: 16 workers per node, node
    counts {2, 4, 8, 16}, inter technique fixed per figure, intra
    techniques on the panels.  ``jobs > 1`` fans independent cells out
    over a process pool; ``cache_dir`` serves previously simulated
    cells from disk (results are identical either way — see
    :mod:`repro.experiments.parallel`).

    Multi-level stacks sweep like any other panel: pass a socketed
    ``cluster_factory`` (e.g. ``lambda n: minihpc(n, 16,
    sockets_per_node=2)``) and ``+``-joined intra stacks
    (``intras=["STATIC", "FAC2+STATIC"]``) to compare two- and
    three-level scheduling of the same figure grid; add
    ``numa_per_socket=2`` to the factory and a second mid technique
    (``intras=["FAC2+FAC2+STATIC"]``) for four-level NUMA sweeps.
    """

    workload: Workload
    ppn: int = 16
    node_counts: Tuple[int, ...] = (2, 4, 8, 16)
    seed: int = 0
    cluster_factory: Optional[Callable[[int], ClusterSpec]] = None
    progress: Optional[Callable[[str], None]] = None
    jobs: int = 1
    cache_dir: Optional[str] = None
    #: cost-model override for every cell (None = package default)
    costs: Optional[CostModel] = None
    #: window-placement policy for every cell ("leader" | "optimized" |
    #: explicit map) — mpi+mpi cells only; see repro.cluster.placement_opt
    placement: Union[str, Mapping[Any, int]] = "leader"
    #: fault schedule injected into every cell (None = fault-free);
    #: requires failure-aware approaches — see repro.cluster.faults
    faults: Optional[Any] = None
    #: reroute every mpi+mpi cell through the distributed-chunk-
    #: calculation model (same composed schedule, single global counter)
    dcc: bool = False
    #: execution engine for every cell ("scalar" | "cohort"); cohort
    #: batches rank-symmetric events and is bit-identical on eligible
    #: cells, so it shares the scalar cell cache (not part of cell_key)
    engine: str = "scalar"
    #: filled by :meth:`sweep`: {"cells", "simulated", "cache_hits"}
    last_sweep_stats: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.cluster_factory is None:
            self.cluster_factory = lambda n: minihpc(n, self.ppn)

    def run_cell(self, approach: str, inter: str, intra: str, nodes: int) -> Cell:
        """Simulate one (approach, inter, intra, nodes) cell inline."""
        cell = simulate_cell(
            self.workload,
            self.cluster_factory(nodes),
            approach,
            inter,
            intra,
            nodes,
            self.ppn,
            self.seed,
            costs=self.costs,
            placement=self.placement,
            faults=self.faults,
            dcc=self.dcc,
            engine=self.engine,
        )
        self._report(cell)
        return cell

    def _report(self, cell: Cell, cached: bool = False) -> None:
        if self.progress is not None:
            suffix = "cached" if cached else f"{cell.wall_seconds:.1f}s wall"
            self.progress(
                f"  {cell.approach:<11} {cell.inter}+{cell.intra:<7} "
                f"nodes={cell.nodes:<3} T={cell.time:.4g}s  ({suffix})"
            )

    def sweep(
        self,
        inter: str,
        intras: Iterable[str],
        approaches: Iterable[Tuple[str, Callable[[str], bool]]],
    ) -> List[Cell]:
        """Run the full panel grid.

        ``approaches`` is a list of (approach, intra-filter) pairs; the
        filter reproduces runtime restrictions (the Intel OpenMP stack
        cannot run TSS/FAC2 at the intra level — paper Sec. 5).
        """
        from repro.experiments.parallel import (
            CellCache,
            cell_key,
            run_cells,
            workload_fingerprint,
        )

        specs: List[Tuple[str, str, str, int]] = [
            (approach, inter, intra, nodes)
            for intra in intras
            for approach, supports in approaches
            if supports(intra)
            for nodes in self.node_counts
        ]
        clusters = [self.cluster_factory(nodes) for *_rest, nodes in specs]

        cache = CellCache(self.cache_dir) if self.cache_dir else None
        cells: List[Optional[Cell]] = [None] * len(specs)
        keys: List[Optional[str]] = [None] * len(specs)
        if cache is not None:
            fingerprint = workload_fingerprint(self.workload)
            for index, (spec, cluster) in enumerate(zip(specs, clusters)):
                keys[index] = cell_key(
                    fingerprint, cluster, *spec, self.ppn, self.seed,
                    costs=self.costs, placement=self.placement,
                    faults=self.faults, dcc=self.dcc,
                )
                cells[index] = cache.get(keys[index])
                if cells[index] is not None:
                    self._report(cells[index], cached=True)

        missing = [i for i, cell in enumerate(cells) if cell is None]

        def on_result(position: int, cell: Cell) -> None:
            # Streamed as each simulation completes (completion order
            # under a pool) so --verbose shows liveness on long sweeps.
            index = missing[position]
            cells[index] = cell
            if cache is not None:
                cache.put(keys[index], cell)
            self._report(cell)

        run_cells(
            self.workload,
            [specs[i] for i in missing],
            [clusters[i] for i in missing],
            self.ppn,
            self.seed,
            self.jobs,
            on_result=on_result,
            costs=self.costs,
            placement=self.placement,
            faults=self.faults,
            dcc=self.dcc,
            engine=self.engine,
        )

        self.last_sweep_stats = {
            "cells": len(specs),
            "simulated": len(missing),
            "cache_hits": len(specs) - len(missing),
        }
        return cells


def series(cells: List[Cell], approach: str, intra: str) -> Dict[int, float]:
    """Extract one plotted line: nodes -> parallel time."""
    return {
        c.nodes: c.time
        for c in sorted(cells, key=lambda c: c.nodes)
        if c.approach == approach and c.intra == intra
    }
