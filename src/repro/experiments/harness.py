"""Grid runner: sweep (approach x intra x nodes) cells for one figure.

Runs are independent simulations; the runner caches nothing across
cells except the workload object (which is the expensive part) and
collects results into a tidy list for the report layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.api import run_hierarchical
from repro.cluster.machine import ClusterSpec, minihpc
from repro.experiments.workloads import scale_from_env
from repro.models.base import RunResult
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Cell:
    """One grid cell: a single simulated execution."""

    approach: str
    inter: str
    intra: str
    nodes: int
    time: float
    overhead_fraction: float
    idle_fraction: float
    cov: float
    n_events: int
    wall_seconds: float

    @property
    def label(self) -> str:
        return f"{self.inter}+{self.intra}"


@dataclass
class GridRunner:
    """Sweeps scheduling combinations over cluster sizes.

    Parameters mirror the paper's setup: 16 workers per node, node
    counts {2, 4, 8, 16}, inter technique fixed per figure, intra
    techniques on the panels.
    """

    workload: Workload
    ppn: int = 16
    node_counts: Tuple[int, ...] = (2, 4, 8, 16)
    seed: int = 0
    cluster_factory: Callable[[int], ClusterSpec] = None
    progress: Optional[Callable[[str], None]] = None

    def __post_init__(self):
        if self.cluster_factory is None:
            self.cluster_factory = lambda n: minihpc(n, self.ppn)

    def run_cell(self, approach: str, inter: str, intra: str, nodes: int) -> Cell:
        t0 = time.perf_counter()
        result: RunResult = run_hierarchical(
            self.workload,
            self.cluster_factory(nodes),
            inter=inter,
            intra=intra,
            approach=approach,
            ppn=self.ppn,
            seed=self.seed,
            collect_chunks=False,
        )
        wall = time.perf_counter() - t0
        cell = Cell(
            approach=approach,
            inter=inter,
            intra=intra,
            nodes=nodes,
            time=result.parallel_time,
            overhead_fraction=result.metrics.overhead_fraction,
            idle_fraction=result.metrics.idle_fraction,
            cov=result.metrics.cov_finish,
            n_events=result.n_events,
            wall_seconds=wall,
        )
        if self.progress is not None:
            self.progress(
                f"  {approach:<11} {inter}+{intra:<7} nodes={nodes:<3} "
                f"T={result.parallel_time:.4g}s  ({wall:.1f}s wall)"
            )
        return cell

    def sweep(
        self,
        inter: str,
        intras: Iterable[str],
        approaches: Iterable[Tuple[str, Callable[[str], bool]]],
    ) -> List[Cell]:
        """Run the full panel grid.

        ``approaches`` is a list of (approach, intra-filter) pairs; the
        filter reproduces runtime restrictions (the Intel OpenMP stack
        cannot run TSS/FAC2 at the intra level — paper Sec. 5).
        """
        cells: List[Cell] = []
        for intra in intras:
            for approach, supports in approaches:
                if not supports(intra):
                    continue
                for nodes in self.node_counts:
                    cells.append(self.run_cell(approach, inter, intra, nodes))
        return cells


def series(cells: List[Cell], approach: str, intra: str) -> Dict[int, float]:
    """Extract one plotted line: nodes -> parallel time."""
    return {
        c.nodes: c.time
        for c in sorted(cells, key=lambda c: c.nodes)
        if c.approach == approach and c.intra == intra
    }
