"""In-text number reproduction (E-N1 / E-N2).

Section 5 of the paper quotes absolute seconds for the GSS+STATIC
combination.  We reproduce them by scaling the calibrated figure
workloads so that total work matches the paper's implied core-seconds
(parallel time x workers at the smallest system size for the MPI+MPI
run), then comparing every quoted number against our simulation.

Absolute agreement is not expected (our substrate is a simulator and
the paper's kernel parameters are unpublished); the point of this
experiment is to record paper-vs-measured side by side, including the
win/lose direction of every comparison (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.api import run_hierarchical
from repro.cluster.machine import minihpc
from repro.experiments.workloads import figure_mandelbrot, figure_psia


@dataclass(frozen=True)
class InTextNumber:
    """One quoted measurement from the paper's Section 5."""

    experiment: str
    app: str
    approach: str
    combination: str
    nodes: int
    paper_seconds: float


#: Every absolute number quoted in the paper's evaluation text.
PAPER_NUMBERS: List[InTextNumber] = [
    InTextNumber("E-N1", "mandelbrot", "mpi+mpi", "GSS+STATIC", 2, 19.6),
    InTextNumber("E-N1", "mandelbrot", "mpi+mpi", "GSS+STATIC", 16, 3.1),
    InTextNumber("E-N1", "mandelbrot", "mpi+openmp", "GSS+STATIC", 2, 61.5),
    InTextNumber("E-N1", "mandelbrot", "mpi+openmp", "GSS+STATIC", 16, 4.5),
    InTextNumber("E-N2", "psia", "mpi+mpi", "GSS+STATIC", 2, 233.0),
    InTextNumber("E-N2", "psia", "mpi+openmp", "GSS+STATIC", 2, 245.0),
]

#: paper workers per node
PPN = 16


def _calibrated_workload(app: str, scale: str):
    """Scale the figure workload so MPI+MPI GSS+STATIC at 2 nodes would
    land near the paper's quoted seconds under ideal balance."""
    anchor = next(
        n for n in PAPER_NUMBERS
        if n.app == app and n.approach == "mpi+mpi" and n.nodes == 2
    )
    total = anchor.paper_seconds * 2 * PPN  # implied core-seconds
    if app == "mandelbrot":
        return figure_mandelbrot(scale, total_seconds=total)
    return figure_psia(scale, total_seconds=total)


def run_intext(scale: str = "default", seed: int = 0) -> str:
    """Run every quoted configuration and tabulate paper vs measured."""
    lines = [
        "In-text numbers (paper Sec. 5) - paper vs simulated",
        "=" * 60,
        f"{'exp':<6} {'app':<11} {'approach':<11} {'combo':<12} "
        f"{'nodes':>5} {'paper':>8} {'ours':>9} {'ratio':>6}",
        "-" * 74,
    ]
    measured = {}
    for number in PAPER_NUMBERS:
        workload = _calibrated_workload(number.app, scale)
        result = run_hierarchical(
            workload,
            minihpc(number.nodes, PPN),
            inter="GSS",
            intra="STATIC",
            approach=number.approach,
            ppn=PPN,
            seed=seed,
            collect_chunks=False,
        )
        ours = result.parallel_time
        measured[(number.app, number.approach, number.nodes)] = ours
        ratio = ours / number.paper_seconds
        lines.append(
            f"{number.experiment:<6} {number.app:<11} {number.approach:<11} "
            f"{number.combination:<12} {number.nodes:>5} "
            f"{number.paper_seconds:>7.1f}s {ours:>8.2f}s {ratio:>6.2f}"
        )

    # qualitative directions the paper emphasises
    lines.append("")
    lines.append("directional checks:")

    def check(cond: bool, text: str) -> None:
        lines.append(f"  [{'PASS' if cond else 'FAIL'}] {text}")

    def info(cond: bool, text: str) -> None:
        # observed-but-not-asserted: recorded deviations (EXPERIMENTS.md)
        lines.append(f"  [{'INFO:holds' if cond else 'INFO:deviates'}] {text}")

    mm2 = measured[("mandelbrot", "mpi+mpi", 2)]
    mo2 = measured[("mandelbrot", "mpi+openmp", 2)]
    mm16 = measured[("mandelbrot", "mpi+mpi", 16)]
    mo16 = measured[("mandelbrot", "mpi+openmp", 16)]
    check(mm2 < mo2, "Mandelbrot GSS+STATIC @2 nodes: MPI+MPI faster (paper: 19.6 vs 61.5)")
    check(mm16 < mo16, "Mandelbrot GSS+STATIC @16 nodes: MPI+MPI faster (paper: 3.1 vs 4.5)")
    info(
        (mo2 / mm2) > (mo16 / mm16),
        "Mandelbrot: the gap narrows from 2 to 16 nodes (paper: 3.1x -> 1.45x; "
        "our simulator keeps granularity effects dominant at 16 nodes, so the "
        "gap need not narrow — recorded as a known deviation)",
    )
    pm2 = measured[("psia", "mpi+mpi", 2)]
    po2 = measured[("psia", "mpi+openmp", 2)]
    check(pm2 < po2 * 1.02, "PSIA GSS+STATIC @2 nodes: MPI+MPI same or faster (paper: 233 vs 245)")
    check(
        (po2 / pm2) < (mo2 / mm2),
        "PSIA gap smaller than Mandelbrot gap (less load imbalance)",
    )
    return "\n".join(lines)
