"""Parallel cell execution and a content-addressed result cache.

The figure sweeps are embarrassingly parallel: every ``(approach, inter,
intra, nodes)`` cell is an independent, deterministic simulation.  This
module supplies the two layers the :class:`~repro.experiments.harness.
GridRunner` uses to exploit that:

* :func:`run_cells` — a ``ProcessPoolExecutor`` fan-out over cell
  specs.  The (potentially large) workload cost vector is shipped to
  each worker exactly once via the pool initializer, stripped of its
  unpicklable executor closure — the simulator only reads costs.
  Because each cell is simulated with its own freshly seeded
  :class:`~repro.sim.engine.Simulator`, parallel results are identical
  to a serial sweep, cell for cell (``wall_seconds``, which measures
  the host machine, is the only field that may differ).
* :class:`CellCache` — an on-disk JSON cache keyed by a SHA-256 digest
  of everything a cell's result depends on: the workload fingerprint
  (name + cost bytes), the cluster spec, approach, inter/intra
  techniques, node count, ppn and seed.  A second sweep over the same
  inputs runs zero simulations; changing any input (a different seed, a
  rescaled workload) changes the digest and misses cleanly.

In the spirit of the paper's distributed-chunk-calculation argument,
this removes the serial coordinator from figure regeneration: work that
does not depend on other work does not wait for it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.costs import CostModel, DEFAULT_COSTS
from repro.cluster.machine import ClusterSpec
from repro.cluster.noise import MILD_NOISE
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.faults import FaultModel
    from repro.experiments.harness import Cell

#: (approach, inter, intra, nodes) — one grid cell to simulate
CellSpec = Tuple[str, str, str, int]

#: a window-placement argument as accepted by ``simulate_cell``
PlacementArg = Union[str, Mapping]

# v6: the technique roster changed semantics — RND is now
# seeded-deterministic (same key, different schedule than the
# rng-consuming v5 behaviour), TAP estimates (mu, sigma) at runtime,
# FISS/VISS joined the roster, and configurable ADAPT ladders
# (``ADAPT[ss,fac2,tss]`` spellings) appear verbatim in the
# inter/intra key fields — pre-roster cells must never be reused.
# v5: keys carry the dcc flag (an mpi+mpi stack rerouted through the
# distributed-chunk-calculation model simulates a different protocol
# from the same spec, so the two must never collide).  v4 added fault
# counters (n_failures / n_reexecuted) and the fault-model signature;
# v3 NUMA-tier cluster signatures, placement_cost, and the
# cost-model/placement key fields.
CACHE_FORMAT_VERSION = 6


# ---------------------------------------------------------------------------
# fingerprints and cache keys
# ---------------------------------------------------------------------------
def workload_fingerprint(workload: Workload) -> str:
    """Content hash of a workload: its name plus exact cost bytes.

    Any change to the iteration costs — different scale, different
    kernel parameters, a rescaled copy — changes the fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(workload.name.encode("utf-8"))
    digest.update(str(workload.n).encode("ascii"))
    # The dtype is part of the identity: byte-identical buffers of
    # different dtypes (an int64 array vs its float64 reinterpretation)
    # describe different cost vectors and must not share a key.
    digest.update(workload.costs.dtype.str.encode("ascii"))
    digest.update(workload.costs.tobytes())
    return digest.hexdigest()


def cluster_signature(cluster: ClusterSpec) -> List:
    """JSON-friendly identity of a cluster spec (names excluded)."""
    return [
        [
            [node.cores, node.core_speed, node.sockets, node.numa_per_socket]
            for node in cluster.nodes
        ],
        cluster.network_latency,
        cluster.network_bandwidth,
    ]


def placement_signature(placement: PlacementArg) -> object:
    """JSON-friendly identity of a window-placement argument."""
    if isinstance(placement, str):
        return placement
    return sorted((repr(key), int(rank)) for key, rank in placement.items())


def model_signature() -> Dict[str, object]:
    """Identity of the cost/noise models the simulation resolves to.

    ``simulate_cell`` always runs with the package defaults, but those
    defaults are code: a PR that tunes a cost constant (say the
    lock-poll interval behind the paper's X+SS result) changes every
    simulated number, and the cache must miss — without anyone
    remembering to bump ``CACHE_FORMAT_VERSION``.
    """
    return {"costs": asdict(DEFAULT_COSTS), "noise": asdict(MILD_NOISE)}


def cell_key(
    workload_fp: str,
    cluster: ClusterSpec,
    approach: str,
    inter: str,
    intra: str,
    nodes: int,
    ppn: int,
    seed: int,
    costs: Optional[CostModel] = None,
    placement: PlacementArg = "leader",
    faults: Optional["FaultModel"] = None,
    dcc: bool = False,
) -> str:
    """Content-addressed cache key for one grid cell.

    ``costs`` is the sweep's cost-model *override* (None = the package
    default, whose identity is already folded in via
    :func:`model_signature`); ``placement`` the window-home policy;
    ``faults`` the fault schedule (an *inactive* model keys identically
    to ``None`` — both produce the fault-free event stream); ``dcc``
    reroutes mpi+mpi stacks through the distributed-chunk-calculation
    model (a different protocol, hence part of the key).
    """
    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "workload": workload_fp,
            "cluster": cluster_signature(cluster),
            "models": model_signature(),
            "approach": approach,
            "inter": inter,
            "intra": intra,
            "nodes": nodes,
            "ppn": ppn,
            "seed": seed,
            "costs": None if costs is None else asdict(costs),
            "placement": placement_signature(placement),
            "faults": None if faults is None else faults.signature(),
            "dcc": bool(dcc),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CellCache:
    """Directory of ``<key>.json`` files holding serialized Cells.

    The cache is safe to share between processes (writers publish via
    ``mkstemp`` + atomic ``os.replace``; readers only ever see complete
    files) and between threads of one process: the ``hits``/``misses``/
    ``quarantined``/``reaped`` statistics are guarded by a single lock
    so a threaded server can hammer one instance from many handlers
    without losing counts.  The read path itself stays lock-free — the
    lock covers only the counter increments, never the file I/O.
    """

    #: ``*.tmp`` files older than this (seconds) are leftovers of a
    #: writer that died between ``mkstemp`` and ``os.replace``; younger
    #: ones may belong to an in-flight racing sweep and are never touched
    REAP_AGE_S = 3600.0

    def __init__(self, root: str, reap_age_s: float = REAP_AGE_S):
        self.root = root
        if os.path.exists(root) and not os.path.isdir(root):
            raise NotADirectoryError(
                f"cell cache path {root!r} exists and is not a directory"
            )
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: corrupt or stale-format files moved aside (never re-read)
        self.quarantined = 0
        #: orphaned temp files deleted on init (crashed writers)
        self.reaped = 0
        self._stats_lock = threading.Lock()
        self._reap_stale_tmp(reap_age_s)

    def _reap_stale_tmp(self, reap_age_s: float) -> None:
        """Delete temp files orphaned by writers that died mid-``put``.

        A process killed between ``mkstemp`` and ``os.replace`` leaves
        its ``*.tmp`` behind forever.  Age-gating the reap means a slow
        writer racing this init keeps its in-flight file: anything
        younger than ``reap_age_s`` is presumed live.
        """
        cutoff = time.time() - reap_age_s
        for name in os.listdir(self.root):
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.root, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
                    self.reaped += 1
            except OSError:
                pass  # vanished under us (racing reaper) — fine

    def _count(self, stat: str) -> None:
        with self._stats_lock:
            setattr(self, stat, getattr(self, stat) + 1)

    def stats(self) -> Dict[str, int]:
        """Consistent snapshot of the hit/miss/quarantine/reap counters."""
        with self._stats_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "quarantined": self.quarantined,
                "reaped": self.reaped,
            }

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def _quarantine(self, key: str) -> None:
        """Move a bad cache file aside so it is diagnosable but can
        never satisfy (or repeatedly fail) a future lookup."""
        path = self._path(key)
        try:
            os.replace(path, path + ".corrupt")
            self._count("quarantined")
        except OSError:
            pass  # already gone (racing sweep) — nothing to preserve

    def get(self, key: str) -> Optional["Cell"]:
        from repro.experiments.harness import Cell

        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self._count("misses")
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # truncated write, disk hiccup, or hand-edited garbage
            self._quarantine(key)
            self._count("misses")
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_FORMAT_VERSION:
            # stale format: quarantine rather than delete, so a version
            # rollback can still inspect (but never silently reuse) it
            self._quarantine(key)
            self._count("misses")
            return None
        try:
            return_value = Cell.from_dict(payload["cell"])
        except (KeyError, TypeError):
            # schema drift within the same version number (should not
            # happen, but a corrupt payload must not kill the sweep)
            self._quarantine(key)
            self._count("misses")
            return None
        self._count("hits")
        return return_value

    def put(self, key: str, cell: "Cell") -> None:
        # Atomic publish: concurrent writers (parallel sweeps sharing a
        # cache directory) each rename a complete temp file into place.
        payload = {"version": CACHE_FORMAT_VERSION, "key": key, "cell": cell.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".json"))


# ---------------------------------------------------------------------------
# process-pool fan-out
# ---------------------------------------------------------------------------
def _strip_executor(workload: Workload) -> Workload:
    """Pickle-safe copy: drop the executor closure (simulation-only)."""
    if workload.executor is None:
        return workload
    return Workload(
        name=workload.name,
        costs=workload.costs,
        meta=dict(workload.meta),
        executor=None,
    )


# Per-worker context, installed once by the pool initializer so the cost
# vector crosses the process boundary a single time per worker.
_WORKER_CTX: Optional[Tuple] = None


def _init_worker(
    workload: Workload,
    ppn: int,
    seed: int,
    costs: Optional[CostModel] = None,
    placement: PlacementArg = "leader",
    faults: Optional["FaultModel"] = None,
    dcc: bool = False,
    engine: str = "scalar",
) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (workload, ppn, seed, costs, placement, faults, dcc, engine)


def _run_cell_in_worker(task: Tuple[CellSpec, ClusterSpec]) -> "Cell":
    from repro.experiments.harness import simulate_cell

    (approach, inter, intra, nodes), cluster = task
    workload, ppn, seed, costs, placement, faults, dcc, engine = _WORKER_CTX
    return simulate_cell(
        workload, cluster, approach, inter, intra, nodes, ppn, seed,
        costs=costs, placement=placement, faults=faults, dcc=dcc,
        engine=engine,
    )


def run_cells(
    workload: Workload,
    specs: Sequence[CellSpec],
    clusters: Sequence[ClusterSpec],
    ppn: int,
    seed: int,
    jobs: int,
    on_result: Optional[Callable[[int, "Cell"], None]] = None,
    costs: Optional[CostModel] = None,
    placement: PlacementArg = "leader",
    faults: Optional["FaultModel"] = None,
    dcc: bool = False,
    engine: str = "scalar",
    retries: int = 2,
    retry_backoff: float = 0.1,
) -> List["Cell"]:
    """Simulate ``specs`` (with matching ``clusters``) on ``jobs`` processes.

    Results come back in input order.  ``on_result(index, cell)`` fires
    as each cell completes (completion order under a pool) so callers
    can stream progress.  ``jobs`` is capped at the number of cells;
    ``jobs <= 1`` falls back to inline execution.  ``costs``/
    ``placement``/``faults`` apply to every cell (see
    :func:`repro.experiments.harness.simulate_cell`).

    A crashed or OOM-killed pool worker does not abort the sweep: the
    affected cells are re-run *inline* (in this process, where a
    deterministic simulation error would reproduce and raise honestly),
    up to ``retries`` rounds with exponential backoff starting at
    ``retry_backoff`` seconds.  Only an error that also fails inline
    propagates to the caller.
    """
    from repro.experiments.harness import simulate_cell

    def run_inline(index: int) -> "Cell":
        spec, cluster = specs[index], clusters[index]
        cell = simulate_cell(
            workload, cluster, *spec, ppn, seed,
            costs=costs, placement=placement, faults=faults, dcc=dcc,
            engine=engine,
        )
        if on_result is not None:
            on_result(index, cell)
        return cell

    if jobs <= 1 or len(specs) <= 1:
        return [run_inline(index) for index in range(len(specs))]

    shippable = _strip_executor(workload)
    tasks = list(zip(specs, clusters))
    results: List[Optional["Cell"]] = [None] * len(tasks)
    pool_errors: List[BaseException] = []
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(specs)),
            initializer=_init_worker,
            initargs=(shippable, ppn, seed, costs, placement, faults, dcc,
                      engine),
        ) as pool:
            futures = {
                pool.submit(_run_cell_in_worker, task): index
                for index, task in enumerate(tasks)
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except BrokenProcessPool as error:
                    # the pool is dead; every unfinished future will
                    # raise the same thing — stop draining and fall
                    # through to the inline retry
                    pool_errors.append(error)
                    break
                except BaseException as error:  # worker raised or died
                    pool_errors.append(error)
                    continue
                if on_result is not None:
                    on_result(index, results[index])
    except BrokenProcessPool as error:  # raised from pool shutdown
        pool_errors.append(error)

    survivors = [i for i, cell in enumerate(results) if cell is None]
    for attempt in range(retries):
        if not survivors:
            break
        if pool_errors:
            time.sleep(retry_backoff * (2 ** attempt))
        still_missing = []
        for index in survivors:
            try:
                results[index] = run_inline(index)
            except Exception:
                if attempt + 1 >= retries:
                    raise
                still_missing.append(index)
        survivors = still_missing
    return results
