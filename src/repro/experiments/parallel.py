"""Parallel cell execution and a content-addressed result cache.

The figure sweeps are embarrassingly parallel: every ``(approach, inter,
intra, nodes)`` cell is an independent, deterministic simulation.  This
module supplies the two layers the :class:`~repro.experiments.harness.
GridRunner` uses to exploit that:

* :func:`run_cells` — a ``ProcessPoolExecutor`` fan-out over cell
  specs.  The (potentially large) workload cost vector is shipped to
  each worker exactly once via the pool initializer, stripped of its
  unpicklable executor closure — the simulator only reads costs.
  Because each cell is simulated with its own freshly seeded
  :class:`~repro.sim.engine.Simulator`, parallel results are identical
  to a serial sweep, cell for cell (``wall_seconds``, which measures
  the host machine, is the only field that may differ).
* :class:`CellCache` — an on-disk JSON cache keyed by a SHA-256 digest
  of everything a cell's result depends on: the workload fingerprint
  (name + cost bytes), the cluster spec, approach, inter/intra
  techniques, node count, ppn and seed.  A second sweep over the same
  inputs runs zero simulations; changing any input (a different seed, a
  rescaled workload) changes the digest and misses cleanly.

In the spirit of the paper's distributed-chunk-calculation argument,
this removes the serial coordinator from figure regeneration: work that
does not depend on other work does not wait for it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.costs import CostModel, DEFAULT_COSTS
from repro.cluster.machine import ClusterSpec
from repro.cluster.noise import MILD_NOISE
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import Cell

#: (approach, inter, intra, nodes) — one grid cell to simulate
CellSpec = Tuple[str, str, str, int]

#: a window-placement argument as accepted by ``simulate_cell``
PlacementArg = Union[str, Mapping]

# v3: cluster signatures carry the NUMA tier (previously omitted —
# four-level sweeps over different numa_per_socket would have collided),
# cells carry placement_cost, and keys carry the per-sweep cost-model
# override plus the window-placement policy
CACHE_FORMAT_VERSION = 3


# ---------------------------------------------------------------------------
# fingerprints and cache keys
# ---------------------------------------------------------------------------
def workload_fingerprint(workload: Workload) -> str:
    """Content hash of a workload: its name plus exact cost bytes.

    Any change to the iteration costs — different scale, different
    kernel parameters, a rescaled copy — changes the fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(workload.name.encode("utf-8"))
    digest.update(str(workload.n).encode("ascii"))
    digest.update(workload.costs.tobytes())
    return digest.hexdigest()


def cluster_signature(cluster: ClusterSpec) -> List:
    """JSON-friendly identity of a cluster spec (names excluded)."""
    return [
        [
            [node.cores, node.core_speed, node.sockets, node.numa_per_socket]
            for node in cluster.nodes
        ],
        cluster.network_latency,
        cluster.network_bandwidth,
    ]


def placement_signature(placement: PlacementArg) -> object:
    """JSON-friendly identity of a window-placement argument."""
    if isinstance(placement, str):
        return placement
    return sorted((repr(key), int(rank)) for key, rank in placement.items())


def model_signature() -> Dict[str, object]:
    """Identity of the cost/noise models the simulation resolves to.

    ``simulate_cell`` always runs with the package defaults, but those
    defaults are code: a PR that tunes a cost constant (say the
    lock-poll interval behind the paper's X+SS result) changes every
    simulated number, and the cache must miss — without anyone
    remembering to bump ``CACHE_FORMAT_VERSION``.
    """
    return {"costs": asdict(DEFAULT_COSTS), "noise": asdict(MILD_NOISE)}


def cell_key(
    workload_fp: str,
    cluster: ClusterSpec,
    approach: str,
    inter: str,
    intra: str,
    nodes: int,
    ppn: int,
    seed: int,
    costs: Optional[CostModel] = None,
    placement: PlacementArg = "leader",
) -> str:
    """Content-addressed cache key for one grid cell.

    ``costs`` is the sweep's cost-model *override* (None = the package
    default, whose identity is already folded in via
    :func:`model_signature`); ``placement`` the window-home policy.
    """
    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "workload": workload_fp,
            "cluster": cluster_signature(cluster),
            "models": model_signature(),
            "approach": approach,
            "inter": inter,
            "intra": intra,
            "nodes": nodes,
            "ppn": ppn,
            "seed": seed,
            "costs": None if costs is None else asdict(costs),
            "placement": placement_signature(placement),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CellCache:
    """Directory of ``<key>.json`` files holding serialized Cells."""

    def __init__(self, root: str):
        self.root = root
        if os.path.exists(root) and not os.path.isdir(root):
            raise NotADirectoryError(
                f"cell cache path {root!r} exists and is not a directory"
            )
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional["Cell"]:
        from repro.experiments.harness import Cell

        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return Cell.from_dict(payload["cell"])

    def put(self, key: str, cell: "Cell") -> None:
        # Atomic publish: concurrent writers (parallel sweeps sharing a
        # cache directory) each rename a complete temp file into place.
        payload = {"version": CACHE_FORMAT_VERSION, "key": key, "cell": cell.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".json"))


# ---------------------------------------------------------------------------
# process-pool fan-out
# ---------------------------------------------------------------------------
def _strip_executor(workload: Workload) -> Workload:
    """Pickle-safe copy: drop the executor closure (simulation-only)."""
    if workload.executor is None:
        return workload
    return Workload(
        name=workload.name,
        costs=workload.costs,
        meta=dict(workload.meta),
        executor=None,
    )


# Per-worker context, installed once by the pool initializer so the cost
# vector crosses the process boundary a single time per worker.
_WORKER_CTX: Optional[Tuple[Workload, int, int, Optional[CostModel], PlacementArg]] = None


def _init_worker(
    workload: Workload,
    ppn: int,
    seed: int,
    costs: Optional[CostModel] = None,
    placement: PlacementArg = "leader",
) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (workload, ppn, seed, costs, placement)


def _run_cell_in_worker(task: Tuple[CellSpec, ClusterSpec]) -> "Cell":
    from repro.experiments.harness import simulate_cell

    (approach, inter, intra, nodes), cluster = task
    workload, ppn, seed, costs, placement = _WORKER_CTX
    return simulate_cell(
        workload, cluster, approach, inter, intra, nodes, ppn, seed,
        costs=costs, placement=placement,
    )


def run_cells(
    workload: Workload,
    specs: Sequence[CellSpec],
    clusters: Sequence[ClusterSpec],
    ppn: int,
    seed: int,
    jobs: int,
    on_result: Optional[Callable[[int, "Cell"], None]] = None,
    costs: Optional[CostModel] = None,
    placement: PlacementArg = "leader",
) -> List["Cell"]:
    """Simulate ``specs`` (with matching ``clusters``) on ``jobs`` processes.

    Results come back in input order.  ``on_result(index, cell)`` fires
    as each cell completes (completion order under a pool) so callers
    can stream progress.  ``jobs`` is capped at the number of cells;
    ``jobs <= 1`` falls back to inline execution.  ``costs``/
    ``placement`` apply to every cell (see
    :func:`repro.experiments.harness.simulate_cell`).
    """
    from repro.experiments.harness import simulate_cell

    if jobs <= 1 or len(specs) <= 1:
        cells = []
        for index, (spec, cluster) in enumerate(zip(specs, clusters)):
            cell = simulate_cell(
                workload, cluster, *spec, ppn, seed,
                costs=costs, placement=placement,
            )
            if on_result is not None:
                on_result(index, cell)
            cells.append(cell)
        return cells
    shippable = _strip_executor(workload)
    tasks = list(zip(specs, clusters))
    results: List[Optional["Cell"]] = [None] * len(tasks)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(specs)),
        initializer=_init_worker,
        initargs=(shippable, ppn, seed, costs, placement),
    ) as pool:
        futures = {
            pool.submit(_run_cell_in_worker, task): index
            for index, task in enumerate(tasks)
        }
        for future in as_completed(futures):
            index = futures[future]
            results[index] = future.result()
            if on_result is not None:
                on_result(index, results[index])
    return results
