"""Table regeneration.

The paper has one table: Table 1, the mapping between DLS techniques
and OpenMP ``schedule`` clauses.  We regenerate it from the technique
registry (plus the LaPeSD-libGOMP extension rows the paper's Section 2
discusses) so the mapping is *derived from code*, not hand-written.
"""

from __future__ import annotations

from typing import List

from repro.core.techniques import TECHNIQUES


#: the rows the paper's Table 1 shows, in its order
PAPER_TABLE1_ROWS = ("STATIC", "SS", "GSS")


def table1(include_extensions: bool = True) -> str:
    """Render Table 1 (optionally with the research-runtime extensions)."""
    lines = [
        "Table 1: Mapping between the DLS techniques and the OpenMP "
        "schedule clause options",
        "",
        f"{'DLS technique':<16} {'OpenMP schedule clause':<28}",
        "-" * 44,
    ]
    for name in PAPER_TABLE1_ROWS:
        technique = TECHNIQUES[name]
        lines.append(f"{technique.name:<16} {technique.openmp_clause:<28}")
    if include_extensions:
        lines.append("")
        lines.append("LaPeSD-libGOMP research extensions (paper Sec. 2, [31]):")
        for name, technique in sorted(TECHNIQUES.items()):
            if technique.openmp_extension_clause:
                lines.append(
                    f"{technique.name:<16} {technique.openmp_extension_clause:<40}"
                )
    return "\n".join(lines)


def table1_rows() -> List[dict]:
    """Structured form of Table 1 for tests."""
    return [
        {
            "technique": name,
            "clause": TECHNIQUES[name].openmp_clause,
        }
        for name in PAPER_TABLE1_ROWS
    ]
