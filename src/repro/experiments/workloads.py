"""Calibrated figure workloads.

These builders pin down the exact kernels behind Figures 4-7.  The
paper does not publish its Mandelbrot/PSIA configuration, so the
reproduction fixes parameters with two goals (see EXPERIMENTS.md):

* **Mandelbrot** — strong, spatially structured imbalance.  We compute
  the lower half-plane ``y in [-1.25, 0)`` so per-row cost *increases*
  along the row-major loop: the dense rows land in the smaller, later
  chunks of the decreasing-chunk techniques, which is the structure
  under which the hierarchical barrier effects are visible (if the
  whole dense band sits inside GSS's giant first chunk, a single
  sub-chunk becomes the critical path for *both* approaches and every
  combination degenerates to a tie).
* **PSIA** — mild imbalance (cov ~0.5 vs Mandelbrot's ~2.0) with
  *shuffled* iteration order, reproducing the paper's observation that
  the MPI+MPI advantages/penalties are less pronounced for PSIA.

Granularity (mean iteration cost ~50-70 us) is chosen so that the MPI
shared-memory lock path (~5 us + polling) is visible for ``X+SS`` but
negligible for coarse techniques — the paper's central trade-off.

Workloads are cached per scale: building the Mandelbrot escape counts
and the PSIA k-d tree neighbourhoods is much more expensive than a
single simulated run.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.workloads.base import Workload
from repro.workloads.mandelbrot import mandelbrot_workload
from repro.workloads.psia import psia_workload

#: figure region: lower half-plane => cost increases along the loop
FIGURE_REGION = (-2.5, 1.0, -1.25, 0.0)

#: named scales: (mandelbrot size, psia points)
SCALES: Dict[str, Tuple[int, int]] = {
    "tiny": (64, 4096),      # CI smoke
    "quick": (128, 16384),   # tests
    "default": (256, 65536),  # benchmark figures
    "full": (512, 262144),   # high-resolution figures (slow)
}

_CACHE: Dict[Tuple[str, str], Workload] = {}


def scale_from_env(default: str = "default") -> str:
    """Figure scale from ``REPRO_SCALE`` (tiny/quick/default/full)."""
    scale = os.environ.get("REPRO_SCALE", default).lower()
    if scale not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {scale!r}")
    return scale


def figure_mandelbrot(scale: str = "default", total_seconds: Optional[float] = None) -> Workload:
    """The Mandelbrot workload behind Figures 4a-7a."""
    key = ("mandelbrot", scale, total_seconds)
    if key not in _CACHE:
        size, _ = SCALES[scale]
        wl = mandelbrot_workload(
            width=size,
            height=size,
            max_iter=512,
            region=FIGURE_REGION,
            iter_time=0.5e-6,
            base_time=0.5e-6,
        )
        if total_seconds is not None:
            wl = wl.scaled_to(total_seconds, name=wl.name)
        _CACHE[key] = wl
    return _CACHE[key]


def figure_psia(scale: str = "default", total_seconds: Optional[float] = None) -> Workload:
    """The PSIA workload behind Figures 4b-7b."""
    key = ("psia", scale, total_seconds)
    if key not in _CACHE:
        _, n_points = SCALES[scale]
        # point_time keeps PSIA coarser-grained than Mandelbrot (mean
        # ~150 us vs ~47 us): spin images are full neighbourhood scans,
        # and the paper's PSIA results show milder scheduling effects.
        wl = psia_workload(
            n_points=n_points,
            support_radius=0.2,
            cluster_fraction=0.25,
            cluster_spread=0.5,
            point_time=0.18e-6,
            base_time=5.0e-6,
            seed=1234,
        )
        if total_seconds is not None:
            wl = wl.scaled_to(total_seconds, name=wl.name)
        _CACHE[key] = wl
    return _CACHE[key]


def figure_workload(app: str, scale: str = "default") -> Workload:
    """Dispatch by application name (``mandelbrot`` / ``psia``)."""
    app = app.lower()
    if app == "mandelbrot":
        return figure_mandelbrot(scale)
    if app == "psia":
        return figure_psia(scale)
    raise ValueError(f"unknown figure application {app!r}")


def clear_cache() -> None:
    """Drop cached workloads (tests use this to bound memory)."""
    _CACHE.clear()
