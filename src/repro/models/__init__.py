"""Execution models (S7): how hierarchical DLS actually runs.

* :class:`~repro.models.mpi_mpi.MpiMpiModel` — the paper's proposed
  MPI+MPI approach: a global RMA work queue plus a per-node
  shared-memory local queue; ``ppn`` MPI processes per node; the
  fastest free process refills the local queue; no barriers anywhere.
* :class:`~repro.models.mpi_openmp.MpiOpenMpModel` — the baseline
  hybrid: one MPI process per node, a simulated OpenMP team per
  process, implicit barrier after every chunk.
* :class:`~repro.models.flat_mpi.FlatMpiModel` — non-hierarchical
  distributed chunk calculation (every rank goes straight to the
  global queue; Eleliemy & Ciorba PDP 2019), an ablation showing what
  the local queue buys.
* :class:`~repro.models.master_worker.MasterWorkerModel` — the classic
  centralised master-worker (DLB-tool style, two-sided messages), the
  historical baseline whose bottleneck motivated hierarchies.
* :class:`~repro.models.dcc.DccModel` — distributed chunk calculation
  (arXiv 2101.07050): the level stack is flattened ahead of time and
  every rank resolves its own chunk from one fetch-and-incremented
  counter — no coordinator, no queues, no locks on the hot path.
"""

from repro.models.base import ExecutionModel, RunResult
from repro.models.dcc import DccModel
from repro.models.flat_mpi import FlatMpiModel
from repro.models.master_worker import MasterWorkerModel
from repro.models.mpi_mpi import MpiMpiModel
from repro.models.mpi_openmp import MpiOpenMpModel

__all__ = [
    "DccModel",
    "ExecutionModel",
    "FlatMpiModel",
    "MasterWorkerModel",
    "MpiMpiModel",
    "MpiOpenMpModel",
    "RunResult",
]
