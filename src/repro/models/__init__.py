"""Execution models (S7): how hierarchical DLS actually runs.

* :class:`~repro.models.mpi_mpi.MpiMpiModel` — the paper's proposed
  MPI+MPI approach: a global RMA work queue plus a per-node
  shared-memory local queue; ``ppn`` MPI processes per node; the
  fastest free process refills the local queue; no barriers anywhere.
* :class:`~repro.models.mpi_openmp.MpiOpenMpModel` — the baseline
  hybrid: one MPI process per node, a simulated OpenMP team per
  process, implicit barrier after every chunk.
* :class:`~repro.models.flat_mpi.FlatMpiModel` — non-hierarchical
  distributed chunk calculation (every rank goes straight to the
  global queue; Eleliemy & Ciorba PDP 2019), an ablation showing what
  the local queue buys.
* :class:`~repro.models.master_worker.MasterWorkerModel` — the classic
  centralised master-worker (DLB-tool style, two-sided messages), the
  historical baseline whose bottleneck motivated hierarchies.
"""

from repro.models.base import ExecutionModel, RunResult
from repro.models.flat_mpi import FlatMpiModel
from repro.models.master_worker import MasterWorkerModel
from repro.models.mpi_mpi import MpiMpiModel
from repro.models.mpi_openmp import MpiOpenMpModel

__all__ = [
    "ExecutionModel",
    "FlatMpiModel",
    "MasterWorkerModel",
    "MpiMpiModel",
    "MpiOpenMpModel",
    "RunResult",
]
