"""Shared machinery for execution models.

Each model builds a simulated run of one parallel loop: a simulator, an
MPI world over a cluster, per-worker speed factors (node speed x static
core noise), jittered execution times, and a uniform
:class:`RunResult`.  The chunk-dispensing protocols of the distributed
chunk-calculation approach (deterministic step counter vs adaptive
scheduled-count, and pinned STATIC) live here because every model needs
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.costs import CostModel, DEFAULT_COSTS
from repro.cluster.machine import ClusterSpec
from repro.cluster.noise import MILD_NOISE, NoiseModel
from repro.core.chunking import Chunk, verify_schedule
from repro.core.hierarchy import HierarchicalSpec
from repro.core.metrics import LoadMetrics, WorkerStats, compute_metrics
from repro.core.technique_base import ChunkCalculator
from repro.core.trace import Trace
from repro.sim.engine import Simulator
from repro.sim.primitives import Overhead
from repro.smpi.rma import Window
from repro.smpi.world import MpiWorld, RankCtx
from repro.workloads.base import Workload


@dataclass
class RunResult:
    """Outcome of one simulated loop execution."""

    approach: str
    workload: str
    spec_label: str
    n_nodes: int
    ppn: int
    seed: int
    #: the headline number (paper Figures 4-7): loop parallel time
    parallel_time: float
    metrics: LoadMetrics
    #: inter-node level chunks (step, start, size, pe=node)
    chunks: List[Chunk] = field(default_factory=list, repr=False)
    #: worker-level sub-chunk assignments (present if collect_chunks)
    subchunks: List[Chunk] = field(default_factory=list, repr=False)
    #: chunk lists per scheduling level, root first (present if
    #: collect_chunks).  ``level_chunks[0]`` is ``chunks`` and
    #: ``level_chunks[-1]`` is ``subchunks`` for two-level runs; deeper
    #: stacks expose their intermediate tiers (e.g. per-socket chunks)
    #: in between.  Every level-``i+1`` chunk lies inside exactly one
    #: level-``i`` chunk — the containment invariant the property suite
    #: checks.
    level_chunks: List[List[Chunk]] = field(default_factory=list, repr=False)
    trace: Optional[Trace] = field(default=None, repr=False)
    #: runtime counters (lock contention, atomics, fetches, ...)
    counters: Dict[str, Any] = field(default_factory=dict)
    n_events: int = 0

    @property
    def workers(self) -> int:
        return self.metrics and len(self.metrics.workers)

    def describe(self) -> str:
        return (
            f"{self.approach:<12} {self.spec_label:<14} {self.workload:<18} "
            f"nodes={self.n_nodes:<3} ppn={self.ppn:<3} "
            f"T={self.parallel_time:.4g}s"
        )


class ExecutionModel:
    """Base class: model-specific ``_execute`` over shared scaffolding."""

    name: str = "?"
    #: whether the model consults the ``placement=`` knob (window-home
    #: optimisation); models that leave it False accept only the
    #: ``"leader"`` default and raise otherwise, so a requested
    #: optimisation can never be silently ignored
    supports_placement: bool = False

    def inter_pe_count(self, cluster: ClusterSpec, ppn: int) -> int:
        """Number of PEs at the inter (first) scheduling level.

        Hierarchical models schedule across *nodes*; the flat and
        master-worker baselines schedule across individual workers.
        Drivers like :class:`repro.core.timestepping.TimeSteppedLoop`
        use this to size per-PE weight vectors.
        """
        return cluster.n_nodes

    def run(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        spec: HierarchicalSpec,
        ppn: Optional[int] = None,
        seed: int = 0,
        collect_trace: bool = False,
        collect_chunks: bool = True,
        costs: Optional[CostModel] = None,
        noise: Optional[NoiseModel] = None,
        verify: bool = True,
        placement: Any = "leader",
    ) -> RunResult:
        """Simulate one loop execution; see :func:`repro.api.run_hierarchical`."""
        if (
            not self.supports_placement
            and not (isinstance(placement, str) and placement == "leader")
        ):
            raise ValueError(
                f"{self.name} places windows at tier leaders only; "
                f"placement={placement!r} requires the mpi+mpi model"
            )
        run = _Run(
            model=self,
            workload=workload,
            cluster=cluster,
            spec=spec,
            ppn=ppn,
            seed=seed,
            collect_trace=collect_trace,
            collect_chunks=collect_chunks,
            costs=costs or DEFAULT_COSTS,
            noise=noise or MILD_NOISE,
            placement=placement,
        )
        self._execute(run)
        return run.finish(verify=verify)

    # subclasses implement: build rank mains, launch, record stats ------
    def _execute(self, run: "_Run") -> None:
        raise NotImplementedError


class _Run:
    """Mutable state for one simulated execution."""

    def __init__(
        self,
        model: ExecutionModel,
        workload: Workload,
        cluster: ClusterSpec,
        spec: HierarchicalSpec,
        ppn: Optional[int],
        seed: int,
        collect_trace: bool,
        collect_chunks: bool,
        costs: CostModel,
        noise: NoiseModel,
        placement: Any = "leader",
    ):
        self.model = model
        self.workload = workload
        self.cluster = cluster
        self.spec = spec
        self.seed = seed
        self.costs = costs
        self.noise = noise
        #: window-placement knob ("leader" | "optimized" | explicit map)
        self.placement = placement
        self.collect_chunks = collect_chunks
        self.sim = Simulator(seed=seed)
        self.trace: Optional[Trace] = Trace() if collect_trace else None
        self.ppn = ppn if ppn is not None else min(n.cores for n in cluster.nodes)
        # static per-core speed factors: node nominal speed x silicon noise
        rng = self.sim.rng(f"core-noise.{noise.seed_tag}")
        per_core = noise.core_factor(rng, cluster.n_nodes * self.ppn)
        nominal = np.repeat([n.core_speed for n in cluster.nodes], self.ppn)
        self.core_speed = nominal * per_core  # indexed by node * ppn + core
        self._jitter_rng = self.sim.rng(f"chunk-jitter.{noise.seed_tag}")
        # recorded outcomes
        self.chunks: List[Chunk] = []
        self.subchunks: List[Chunk] = []
        #: chunks of intermediate scheduling levels (level index -> list);
        #: level 0 lands in ``chunks`` and the leaf in ``subchunks``
        self.mid_chunks: Dict[int, List[Chunk]] = {}
        #: number of scheduling levels the model actually composed
        #: (models set this; single-level baselines use 1)
        self.n_sched_levels = 2
        self.worker_stats: List[WorkerStats] = []
        self.counters: Dict[str, Any] = {}
        self.executed_iterations = 0

    # -- timing helpers --------------------------------------------------
    def speed_of(self, node: int, core: int) -> float:
        return float(self.core_speed[node * self.ppn + core])

    def exec_time(self, start: int, size: int, node: int, core: int) -> float:
        """Simulated duration of iterations [start, start+size) on a core."""
        nominal = self.workload.block_cost(start, size)
        jitter = self.noise.chunk_jitter(self._jitter_rng)
        return nominal * jitter / self.speed_of(node, core)

    # -- recording --------------------------------------------------------
    def record_chunk(self, step: int, start: int, size: int, pe: int) -> None:
        if self.collect_chunks:
            self.chunks.append(Chunk(step=step, start=start, size=size, pe=pe))

    def record_level_chunk(
        self, level: int, step: int, start: int, size: int, pe: int
    ) -> None:
        """Record a chunk carved at scheduling ``level`` (0 = root).

        Root chunks land in :attr:`chunks` exactly as before; chunks of
        intermediate levels (the socket tier of a three-level stack) go
        to per-level lists surfaced as ``RunResult.level_chunks``.
        The leaf level is recorded through :meth:`record_subchunk`.
        """
        if level == 0:
            self.record_chunk(step, start, size, pe)
        elif self.collect_chunks:
            self.mid_chunks.setdefault(level, []).append(
                Chunk(step=step, start=start, size=size, pe=pe)
            )

    def record_subchunk(self, step: int, start: int, size: int, pe: int) -> None:
        self.executed_iterations += size
        if self.collect_chunks:
            self.subchunks.append(Chunk(step=step, start=start, size=size, pe=pe))

    def record_worker(
        self,
        name: str,
        node: int,
        finish_time: float,
        process,
        n_chunks: int,
        n_iterations: int,
    ) -> None:
        self.worker_stats.append(
            WorkerStats(
                name=name,
                node=node,
                finish_time=finish_time,
                compute_time=process.compute_time,
                overhead_time=process.overhead_time,
                idle_time=process.idle_time + process.wait_time,
                n_chunks=n_chunks,
                n_iterations=n_iterations,
            )
        )

    # -- finalisation ------------------------------------------------------
    def finish(self, verify: bool = True) -> RunResult:
        if verify and self.executed_iterations != self.workload.n:
            raise AssertionError(
                f"{self.model.name}: executed {self.executed_iterations} of "
                f"{self.workload.n} iterations — scheduling bug"
            )
        if verify and self.collect_chunks and self.subchunks:
            verify_schedule(self.subchunks, self.workload.n)
        metrics = compute_metrics(self.worker_stats)
        if self.collect_chunks:
            if self.n_sched_levels <= 1:
                level_chunks = [self.subchunks]
            else:
                level_chunks = [
                    self.chunks,
                    *(
                        self.mid_chunks.get(level, [])
                        for level in range(1, self.n_sched_levels - 1)
                    ),
                    self.subchunks,
                ]
        else:
            level_chunks = []
        return RunResult(
            approach=self.model.name,
            workload=self.workload.name,
            spec_label=self.spec.label,
            n_nodes=self.cluster.n_nodes,
            ppn=self.ppn,
            seed=self.seed,
            parallel_time=metrics.parallel_time,
            metrics=metrics,
            chunks=self.chunks,
            subchunks=self.subchunks,
            level_chunks=level_chunks,
            trace=self.trace,
            counters=self.counters,
            n_events=self.sim.n_events_processed,
        )


class GlobalQueue:
    """The distributed chunk-calculation *global work queue*.

    Wraps an RMA window with the two dispensing protocols:

    * **deterministic** techniques: a single ``MPI_Fetch_and_op`` on the
      ``step`` counter; size and start derive locally from the step
      (closed form / memoised serial sequence);
    * **adaptive / PE-dependent** techniques: fetch-and-increment the
      step, compute the size from the calculator's runtime state, then
      fetch-and-add the size to the ``scheduled`` counter — the fetched
      old value is the chunk start.  Interleavings hand out relabelled
      but still disjoint, covering ranges;
    * **pinned** STATIC: PE ``pe`` takes exactly chunk ``pe`` without
      touching the window (one scheduling round, as in the paper).
    """

    def __init__(
        self,
        world: MpiWorld,
        calc: ChunkCalculator,
        n: int,
        host_rank: int = 0,
        pinned: bool = False,
    ):
        self.world = world
        self.calc = calc
        self.n = n
        self.pinned = pinned
        self.window: Window = world.create_window(
            host_rank, {"step": 0, "scheduled": 0}
        )
        self._pinned_taken: Dict[int, bool] = {}

    def next_chunk(self, ctx: RankCtx, pe: int):
        """Obtain the next chunk for ``pe``; returns (step, start, size)
        with size == 0 when the loop is exhausted (generator)."""
        chunk_calc_cost = self.world.costs.chunk_calc
        if self.pinned:
            yield Overhead(chunk_calc_cost)
            if self._pinned_taken.get(pe):
                return (-1, self.n, 0)
            self._pinned_taken[pe] = True
            size = self.calc.size_at(pe)
            start = self.calc.start_at(pe)
            return (pe, start, min(size, self.n - start))
        if self.calc.deterministic:
            step = yield from self.window.fetch_and_op(ctx, "step", 1)
            yield Overhead(chunk_calc_cost)
            size = self.calc.size_at(step)
            if size <= 0:
                return (step, self.n, 0)
            start = self.calc.start_at(step)
            return (step, start, size)
        # adaptive: step counter + scheduled-count protocol
        step = yield from self.window.fetch_and_op(ctx, "step", 1)
        yield Overhead(chunk_calc_cost)
        size = self.calc.size_at(step, pe=pe)
        if size <= 0:
            return (step, self.n, 0)
        start = yield from self.window.fetch_and_op(ctx, "scheduled", size)
        size = max(0, min(size, self.n - start))
        return (step, start, size)
