"""Shared machinery for execution models.

Each model builds a simulated run of one parallel loop: a simulator, an
MPI world over a cluster, per-worker speed factors (node speed x static
core noise), jittered execution times, and a uniform
:class:`RunResult`.  The chunk-dispensing protocols of the distributed
chunk-calculation approach (deterministic step counter vs adaptive
scheduled-count, and pinned STATIC) live here because every model needs
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.costs import CostModel, DEFAULT_COSTS
from repro.cluster.faults import FaultModel
from repro.cluster.machine import ClusterSpec
from repro.cluster.noise import MILD_NOISE, NoiseModel
from repro.core.chunking import Chunk, verify_schedule
from repro.core.hierarchy import HierarchicalSpec
from repro.core.metrics import LoadMetrics, WorkerStats, compute_metrics
from repro.core.technique_base import ChunkCalculator
from repro.core.trace import Trace
from repro.sim.engine import Simulator, drain
from repro.sim.primitives import Overhead, Timeout
from repro.smpi.rma import Window
from repro.smpi.world import MpiWorld, RankCtx
from repro.workloads.base import Workload


@dataclass
class RunResult:
    """Outcome of one simulated loop execution."""

    approach: str
    workload: str
    spec_label: str
    n_nodes: int
    ppn: int
    seed: int
    #: the headline number (paper Figures 4-7): loop parallel time
    parallel_time: float
    metrics: LoadMetrics
    #: inter-node level chunks (step, start, size, pe=node)
    chunks: List[Chunk] = field(default_factory=list, repr=False)
    #: worker-level sub-chunk assignments (present if collect_chunks)
    subchunks: List[Chunk] = field(default_factory=list, repr=False)
    #: chunk lists per scheduling level, root first (present if
    #: collect_chunks).  ``level_chunks[0]`` is ``chunks`` and
    #: ``level_chunks[-1]`` is ``subchunks`` for two-level runs; deeper
    #: stacks expose their intermediate tiers (e.g. per-socket chunks)
    #: in between.  Every level-``i+1`` chunk lies inside exactly one
    #: level-``i`` chunk — the containment invariant the property suite
    #: checks.
    level_chunks: List[List[Chunk]] = field(default_factory=list, repr=False)
    trace: Optional[Trace] = field(default=None, repr=False)
    #: runtime counters (lock contention, atomics, fetches, ...)
    counters: Dict[str, Any] = field(default_factory=dict)
    n_events: int = 0

    @property
    def workers(self) -> int:
        return self.metrics and len(self.metrics.workers)

    def describe(self) -> str:
        return (
            f"{self.approach:<12} {self.spec_label:<14} {self.workload:<18} "
            f"nodes={self.n_nodes:<3} ppn={self.ppn:<3} "
            f"T={self.parallel_time:.4g}s"
        )


class ExecutionModel:
    """Base class: model-specific ``_execute`` over shared scaffolding."""

    name: str = "?"
    #: whether the model consults the ``placement=`` knob (window-home
    #: optimisation); models that leave it False accept only the
    #: ``"leader"`` default and raise otherwise, so a requested
    #: optimisation can never be silently ignored
    supports_placement: bool = False
    #: whether the model implements failure-aware scheduling (claims
    #: ledger + recovery); models that leave it False reject an *active*
    #: fault model instead of silently losing iterations
    supports_faults: bool = False

    def inter_pe_count(self, cluster: ClusterSpec, ppn: int) -> int:
        """Number of PEs at the inter (first) scheduling level.

        Hierarchical models schedule across *nodes*; the flat and
        master-worker baselines schedule across individual workers.
        Drivers like :class:`repro.core.timestepping.TimeSteppedLoop`
        use this to size per-PE weight vectors.
        """
        return cluster.n_nodes

    def run(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        spec: HierarchicalSpec,
        ppn: Optional[int] = None,
        seed: int = 0,
        collect_trace: bool = False,
        collect_chunks: bool = True,
        costs: Optional[CostModel] = None,
        noise: Optional[NoiseModel] = None,
        verify: bool = True,
        placement: Any = "leader",
        faults: Optional[FaultModel] = None,
        max_sim_time: Optional[float] = None,
        engine: str = "scalar",
    ) -> RunResult:
        """Simulate one loop execution; see :func:`repro.api.run_hierarchical`.

        ``engine`` selects the event-execution strategy: ``"scalar"``
        (the classic one-process-per-rank discrete-event loop) or
        ``"cohort"`` (the rank-aggregated macro-event engine of
        :mod:`repro.sim.cohorts`, which is bit-exact on eligible
        deterministic configurations and falls back to the scalar path
        whole-run otherwise).
        """
        engine_name = str(engine).strip().lower()
        if engine_name not in ("scalar", "cohort"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'scalar' or 'cohort'"
            )
        if (
            not self.supports_placement
            and not (isinstance(placement, str) and placement == "leader")
        ):
            raise ValueError(
                f"{self.name} places windows at tier leaders only; "
                f"placement={placement!r} requires the mpi+mpi model"
            )
        if faults is not None and faults.active and not self.supports_faults:
            raise ValueError(
                f"{self.name} has no failure-aware scheduling path; an "
                f"active fault model requires the mpi+mpi, flat-mpi or "
                f"master-worker model"
            )
        run = _Run(
            model=self,
            workload=workload,
            cluster=cluster,
            spec=spec,
            ppn=ppn,
            seed=seed,
            collect_trace=collect_trace,
            collect_chunks=collect_chunks,
            costs=costs or DEFAULT_COSTS,
            noise=noise or MILD_NOISE,
            placement=placement,
            faults=faults,
            max_sim_time=max_sim_time,
        )
        if engine_name == "cohort":
            from repro.sim.cohorts import execute_cohort

            execute_cohort(self, run)
        else:
            self._execute(run)
        return run.finish(verify=verify)

    # subclasses implement: build rank mains, launch, record stats ------
    def _execute(self, run: "_Run") -> None:
        raise NotImplementedError


class _Run:
    """Mutable state for one simulated execution."""

    def __init__(
        self,
        model: ExecutionModel,
        workload: Workload,
        cluster: ClusterSpec,
        spec: HierarchicalSpec,
        ppn: Optional[int],
        seed: int,
        collect_trace: bool,
        collect_chunks: bool,
        costs: CostModel,
        noise: NoiseModel,
        placement: Any = "leader",
        faults: Optional[FaultModel] = None,
        max_sim_time: Optional[float] = None,
    ):
        self.model = model
        self.workload = workload
        self.cluster = cluster
        self.spec = spec
        self.seed = seed
        self.costs = costs
        self.noise = noise
        #: window-placement knob ("leader" | "optimized" | explicit map)
        self.placement = placement
        #: fault schedule (None, or an inactive model, keeps every code
        #: path bit-identical to the fault-free engine)
        self.faults = faults
        self.faults_active = faults is not None and faults.active
        #: engine watchdog deadline in simulated seconds (None = off)
        self.max_sim_time = max_sim_time
        self.collect_chunks = collect_chunks
        self.sim = Simulator(seed=seed)
        self.trace: Optional[Trace] = Trace() if collect_trace else None
        self.ppn = ppn if ppn is not None else min(n.cores for n in cluster.nodes)
        # static per-core speed factors: node nominal speed x silicon noise
        rng = self.sim.rng(f"core-noise.{noise.seed_tag}")
        per_core = noise.core_factor(rng, cluster.n_nodes * self.ppn)
        nominal = np.repeat([n.core_speed for n in cluster.nodes], self.ppn)
        self.core_speed = nominal * per_core  # indexed by node * ppn + core
        self._jitter_rng = self.sim.rng(f"chunk-jitter.{noise.seed_tag}")
        # recorded outcomes
        self.chunks: List[Chunk] = []
        self.subchunks: List[Chunk] = []
        #: chunks of intermediate scheduling levels (level index -> list);
        #: level 0 lands in ``chunks`` and the leaf in ``subchunks``
        self.mid_chunks: Dict[int, List[Chunk]] = {}
        #: number of scheduling levels the model actually composed
        #: (models set this; single-level baselines use 1)
        self.n_sched_levels = 2
        self.worker_stats: List[WorkerStats] = []
        self.counters: Dict[str, Any] = {}
        self.executed_iterations = 0
        # -- failure-aware scheduling state (inert when faults_active
        # is False: nothing below is ever consulted) ------------------
        #: claims ledger: rank -> list of in-flight (step, start, size)
        #: ranges that rank has fetched/taken but not yet deposited or
        #: executed.  Every transition in/out happens with no yield in
        #: between, so a crash (which lands only at yields) always sees
        #: a consistent ledger.
        self.claims: Dict[int, List[Tuple[int, int, int]]] = {}
        #: reclaimed ranges awaiting re-execution (flat protocols:
        #: flat-mpi, depth-1 mpi+mpi, master-worker)
        self.orphans: List[Tuple[int, int, int]] = []
        #: ranks confirmed crash-stopped (filled by the injector)
        self.dead_ranks: set = set()
        self.fault_counters: Dict[str, int] = {
            "failures_injected": 0,
            "chunks_reexecuted": 0,
            "failovers": 0,
            "lock_leases_broken": 0,
        }
        if self.faults_active:
            self.faults.validate(cluster.n_nodes * self.ppn)
            self.fault_counters["failures_injected"] += len(
                self.faults.slowdowns
            ) + len(self.faults.stalls)
            self._pending_stalls: Dict[int, list] = {
                rank: self.faults.stalls_of(rank)
                for rank in {s.rank for s in self.faults.stalls}
            }
        else:
            self._pending_stalls = {}

    # -- timing helpers --------------------------------------------------
    def speed_of(self, node: int, core: int) -> float:
        return float(self.core_speed[node * self.ppn + core])

    def exec_time(self, start: int, size: int, node: int, core: int) -> float:
        """Simulated duration of iterations [start, start+size) on a core."""
        nominal = self.workload.block_cost(start, size)
        jitter = self.noise.chunk_jitter(self._jitter_rng)
        duration = nominal * jitter / self.speed_of(node, core)
        if self.faults_active:
            # Fault factors apply *after* the jitter draw so the RNG
            # stream consumption (and thus every other rank's noise) is
            # unchanged by the fault model.
            rank = node * self.ppn + core
            duration /= self.faults.speed_factor(rank, self.sim.now)
            stalls = self._pending_stalls.get(rank)
            if stalls:
                # consume every stall overlapping this execution; adding
                # the stall extends the chunk, which may swallow the
                # next stall too
                while stalls and stalls[0].time <= self.sim.now + duration:
                    duration += stalls.pop(0).duration
        return duration

    # -- failure-aware bookkeeping ---------------------------------------
    def claim(self, rank: int, step: int, start: int, size: int) -> None:
        """Register an in-flight range owned by ``rank`` (no-op unless
        faults are active; callers guarantee no yield since the range
        was fetched/taken)."""
        if self.faults_active and size > 0:
            self.claims.setdefault(rank, []).append((step, start, size))

    def release_claim(self, rank: int, step: int, start: int, size: int) -> None:
        """Drop a claim once its range was deposited or executed."""
        if not self.faults_active:
            return
        ranges = self.claims.get(rank)
        if ranges:
            try:
                ranges.remove((step, start, size))
            except ValueError:
                pass

    # -- recording --------------------------------------------------------
    def record_chunk(self, step: int, start: int, size: int, pe: int) -> None:
        if self.collect_chunks:
            self.chunks.append(Chunk(step=step, start=start, size=size, pe=pe))

    def record_level_chunk(
        self, level: int, step: int, start: int, size: int, pe: int
    ) -> None:
        """Record a chunk carved at scheduling ``level`` (0 = root).

        Root chunks land in :attr:`chunks` exactly as before; chunks of
        intermediate levels (the socket tier of a three-level stack) go
        to per-level lists surfaced as ``RunResult.level_chunks``.
        The leaf level is recorded through :meth:`record_subchunk`.
        """
        if level == 0:
            self.record_chunk(step, start, size, pe)
        elif self.collect_chunks:
            self.mid_chunks.setdefault(level, []).append(
                Chunk(step=step, start=start, size=size, pe=pe)
            )

    def record_subchunk(self, step: int, start: int, size: int, pe: int) -> None:
        self.executed_iterations += size
        if self.collect_chunks:
            self.subchunks.append(Chunk(step=step, start=start, size=size, pe=pe))

    def record_worker(
        self,
        name: str,
        node: int,
        finish_time: float,
        process,
        n_chunks: int,
        n_iterations: int,
    ) -> None:
        self.worker_stats.append(
            WorkerStats(
                name=name,
                node=node,
                finish_time=finish_time,
                compute_time=process.compute_time,
                overhead_time=process.overhead_time,
                idle_time=process.idle_time + process.wait_time,
                n_chunks=n_chunks,
                n_iterations=n_iterations,
            )
        )

    # -- finalisation ------------------------------------------------------
    def finish(self, verify: bool = True) -> RunResult:
        if verify and self.executed_iterations != self.workload.n:
            raise AssertionError(
                f"{self.model.name}: executed {self.executed_iterations} of "
                f"{self.workload.n} iterations — scheduling bug"
            )
        if verify and self.collect_chunks and self.subchunks:
            verify_schedule(self.subchunks, self.workload.n)
        if self.faults is not None:
            self.counters.update(self.fault_counters)
            self.counters["dead_ranks"] = sorted(self.dead_ranks)
        metrics = compute_metrics(self.worker_stats)
        if self.collect_chunks:
            if self.n_sched_levels <= 1:
                level_chunks = [self.subchunks]
            else:
                level_chunks = [
                    self.chunks,
                    *(
                        self.mid_chunks.get(level, [])
                        for level in range(1, self.n_sched_levels - 1)
                    ),
                    self.subchunks,
                ]
        else:
            level_chunks = []
        return RunResult(
            approach=self.model.name,
            workload=self.workload.name,
            spec_label=self.spec.label,
            n_nodes=self.cluster.n_nodes,
            ppn=self.ppn,
            seed=self.seed,
            parallel_time=metrics.parallel_time,
            metrics=metrics,
            chunks=self.chunks,
            subchunks=self.subchunks,
            level_chunks=level_chunks,
            trace=self.trace,
            counters=self.counters,
            n_events=self.sim.n_events_processed,
        )


class GlobalQueue:
    """The distributed chunk-calculation *global work queue*.

    Wraps an RMA window with the two dispensing protocols:

    * **deterministic** techniques: a single ``MPI_Fetch_and_op`` on the
      ``step`` counter; size and start derive locally from the step
      (closed form / memoised serial sequence);
    * **adaptive / PE-dependent** techniques: fetch-and-increment the
      step, compute the size from the calculator's runtime state, then
      fetch-and-add the size to the ``scheduled`` counter — the fetched
      old value is the chunk start.  Interleavings hand out relabelled
      but still disjoint, covering ranges;
    * **pinned** STATIC: PE ``pe`` takes exactly chunk ``pe`` without
      touching the window (one scheduling round, as in the paper).
    """

    def __init__(
        self,
        world: MpiWorld,
        calc: ChunkCalculator,
        n: int,
        host_rank: int = 0,
        pinned: bool = False,
        run: "Optional[_Run]" = None,
    ):
        self.world = world
        self.calc = calc
        self.n = n
        self.pinned = pinned
        self.window: Window = world.create_window(
            host_rank, {"step": 0, "scheduled": 0}
        )
        self._pinned_taken: Dict[int, bool] = {}
        #: owning run — enables the claims ledger under active faults;
        #: None (or an inactive fault model) leaves every path untouched
        self._run = run

    def resolve_step(self, step: int) -> "Tuple[int, int, int]":
        """Resolve a fetched ``step`` to ``(step, start, size)`` locally.

        The deterministic dispensing rule shared by the scalar and
        cohort engines: size and start derive from the step alone, and
        a calculator materialised for a larger loop than this queue
        serves never hands out iterations beyond ``n``.  ``size == 0``
        signals exhaustion (with ``start == n``).
        """
        size = self.calc.size_at(step)
        if size <= 0:
            return (step, self.n, 0)
        start = self.calc.start_at(step)
        size = min(size, self.n - start)
        if size <= 0:
            return (step, self.n, 0)
        return (step, start, size)

    def next_chunk(self, ctx: RankCtx, pe: int):
        """Obtain the next chunk for ``pe``; returns (step, start, size)
        with size == 0 when the loop is exhausted (generator)."""
        chunk_calc_cost = self.world.costs.chunk_calc
        run = self._run
        claims_on = run is not None and run.faults_active
        if self.pinned:
            yield Overhead(chunk_calc_cost)
            if self._pinned_taken.get(pe):
                return (-1, self.n, 0)
            self._pinned_taken[pe] = True
            size = self.calc.size_at(pe)
            start = self.calc.start_at(pe)
            size = min(size, self.n - start)
            if claims_on:
                run.claim(ctx.rank, pe, start, size)
            return (pe, start, size)
        if self.calc.deterministic:
            if claims_on:
                # The range of step S is fixed the instant the atomic
                # commits; claim it *inside* the atomic's critical
                # section (no yield in between) so a crash during the
                # fetch's return latency cannot strand the range.
                calc = self.calc
                rank = ctx.rank
                n_total = self.n

                def committed(old: int) -> None:
                    begin = calc.start_at(old)
                    carved = min(calc.size_at(old), n_total - begin)
                    if carved > 0:
                        run.claim(rank, old, begin, carved)

                step = yield from self.window.fetch_and_op(
                    ctx, "step", 1, on_commit=committed
                )
            else:
                step = yield from self.window.fetch_and_op(ctx, "step", 1)
            yield Overhead(chunk_calc_cost)
            return self.resolve_step(step)
        # adaptive: step counter + scheduled-count protocol
        step = yield from self.window.fetch_and_op(ctx, "step", 1)
        yield Overhead(chunk_calc_cost)
        size = self.calc.size_at(step, pe=pe)
        if size <= 0:
            return (step, self.n, 0)
        if claims_on:
            # Same reasoning as above: the [old, old+size) range is
            # reserved the instant the ``scheduled`` atomic commits.
            rank, n_total = ctx.rank, self.n

            def reserved(old: int) -> None:
                run.claim(rank, step, old, max(0, min(size, n_total - old)))

            start = yield from self.window.fetch_and_op(
                ctx, "scheduled", size, on_commit=reserved
            )
        else:
            start = yield from self.window.fetch_and_op(ctx, "scheduled", size)
        size = max(0, min(size, self.n - start))
        return (step, start, size)


# ---------------------------------------------------------------------------
# fault injection scaffolding (shared by the failure-aware models)
# ---------------------------------------------------------------------------


def _fault_injector(run: _Run, world: MpiWorld, recover):
    """Engine process that executes the fault schedule (generator).

    Crash-stop events become first-class simulation events: at each
    crash time the victim's process is killed (its generator is closed,
    so in-flight atomics complete and the rank goes silent), and one
    ``detection_latency`` later the model's ``recover(rank)`` generator
    runs — breaking leases, failing over windows and re-depositing the
    victim's claimed ranges.  Fail-slow and stall events need no
    injector action (they are consulted passively by
    :meth:`_Run.exec_time`).
    """
    faults = run.faults
    timeline = []
    for crash in faults.crash_timeline():
        timeline.append((crash.time, 0, crash.rank))
        timeline.append((crash.time + faults.detection_latency, 1, crash.rank))
    timeline.sort(key=lambda event: (event[0], event[1], event[2]))
    now = 0.0
    for time, kind, rank in timeline:
        if time > now:
            yield Timeout(time - now)
            now = time
        if kind == 0:
            process = world.contexts[rank].process
            if process is not None and run.sim.kill(process):
                run.dead_ranks.add(rank)
                run.fault_counters["failures_injected"] += 1
        elif rank in run.dead_ranks and recover is not None:
            yield from recover(rank)


def run_world(run: _Run, world: MpiWorld, main, recover=None, name_prefix="rank"):
    """Launch rank mains, arm fault injection if active, and drain.

    The fault-free path is exactly ``world.run`` — same call sequence,
    same event stream.  With an active fault model the ranks are
    launched first, then the injector process is spawned (so rank spawn
    order — which defines execution order at t=0 — is unchanged), and
    the drain tolerates crash-stopped processes (``kill`` marks them
    not-alive).
    """
    if not run.faults_active:
        return world.run(main, name_prefix, max_sim_time=run.max_sim_time)
    processes = world.launch(main, name_prefix)
    run.sim.spawn(_fault_injector(run, world, recover), name="fault-injector")
    drain(run.sim, processes, max_sim_time=run.max_sim_time)
    return processes
