"""Distributed chunk calculation (dCC): coordinator-free self-scheduling.

The follow-up to the paper's hierarchical design (Eleliemy & Ciorba,
"A Distributed Chunk Calculation Approach for Self-scheduling on
Distributed-memory Systems", arXiv 2101.07050) removes the work-queue
coordinator entirely.  The **whole** scheduling state is one integer —
the latest scheduling step — hosted in a single RMA window.  To obtain
work, a rank (MPI process index) issues one ``MPI_Fetch_and_op(step,
+1)`` and resolves its chunk **locally**:

* the hierarchical level stack is *flattened* ahead of time into the
  serial leaf-chunk sequence (level 0 carves the loop, each deeper
  level carves its parent's chunks), materialised once as start/size
  arrays via the memoised chunk-sequence machinery of
  :mod:`repro.core.technique_base`;
* the fetched step indexes those arrays — an O(1) lookup, no
  coordinator queue, no per-tier locks on the hot path.

Compared to :class:`~repro.models.mpi_mpi.MpiMpiModel` the produced
chunk *set* is identical for deterministic stacks (the differential
tests pin this); only the dynamic assignment of chunks to ranks
differs.  What changes is the traffic: every chunk costs one remote
atomic (latency in seconds each way plus serialised target
processing), so the single counter window sees ``total chunks``
atomics instead of the hierarchy's ``top-level chunks`` — cheap for
moderate worker counts, and contended exactly like the flat global
queue when thousands of workers hammer one NIC.  Any deterministic
technique flattens — STATIC, SS, GSS, TSS, FAC2, mFSC, TFSS, FISS,
VISS, and seeded RND (whose schedule is a pure function of the spec,
so every rank materialises the same sequence).  Adaptive or
PE-dependent techniques (TAP, AWF-*, AF, WF, ADAPT and ``ADAPT[...]``
ladders) need runtime feedback and therefore cannot be flattened;
requesting them raises ``ValueError``.

Fault tolerance reuses the failure-aware machinery: each fetched
step's range is claimed inside the atomic's critical section
(``on_commit``), a dead rank's claims are re-deposited as orphans, and
the counter window fails over to the lowest live rank when its host
dies.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core import trace as trace_mod
from repro.models.base import ExecutionModel, _Run, run_world
from repro.sim.primitives import ComputeOnce, Overhead, Timeout
from repro.smpi.world import MpiWorld, RankCtx

#: scheduling depth ceiling, mirroring the mpi+mpi tier mapping
#: cluster->node, node->socket, socket->numa, numa->core
MAX_LEVELS = 4


def _level_fanouts(run: _Run, world: MpiWorld) -> List[int]:
    """Child count per scheduling level under the machine-tier mapping.

    Mirrors :class:`~repro.models.mpi_mpi.MpiMpiModel`: depth 1
    schedules all ranks against the root technique; depth 2 nodes then
    cores; depth 3 adds the socket tier; depth 4 the NUMA tier.  dCC
    flattens the stack ahead of time, so every group of a tier must
    have the same child count — heterogeneous tiers would make the
    flattened sequence depend on which group received which chunk.
    """
    depth = run.spec.depth
    if depth == 1:
        return [world.size]
    placement = world.placement
    per_node_sockets = [
        placement.sockets_on_node(node) for node in range(run.cluster.n_nodes)
    ]
    fanouts = [run.cluster.n_nodes]
    if depth == 2:
        return fanouts + [run.ppn]

    def uniform(counts: List[int], tier: str) -> int:
        if len(set(counts)) != 1:
            raise ValueError(
                f"dcc flattens the level stack ahead of time and needs a "
                f"uniform machine: {tier} group sizes differ ({sorted(set(counts))})"
            )
        return counts[0]

    n_sockets = uniform(
        [len(sockets) for sockets in per_node_sockets], "socket-per-node"
    )
    fanouts.append(n_sockets)
    socket_groups = [
        (node, socket)
        for node, sockets in enumerate(per_node_sockets)
        for socket in sockets
    ]
    if depth == 3:
        members = uniform(
            [len(placement.ranks_on_socket(*key)) for key in socket_groups],
            "ranks-per-socket",
        )
        return fanouts + [members]
    numa_groups = [
        (node, socket, numa)
        for node, socket in socket_groups
        for numa in placement.numas_on_socket(node, socket)
    ]
    fanouts.append(
        uniform(
            [len(placement.numas_on_socket(*key)) for key in socket_groups],
            "numa-per-socket",
        )
    )
    fanouts.append(
        uniform(
            [len(placement.ranks_on_numa(*key)) for key in numa_groups],
            "ranks-per-numa",
        )
    )
    return fanouts


def _flatten_schedule(run: _Run, world: MpiWorld) -> List[Tuple[int, int]]:
    """Materialise the stack's serial leaf sequence as (start, size) pairs.

    Level 0 carves ``[0, n)`` with the root technique; each deeper
    level independently carves every parent chunk with a fresh
    calculator over (chunk size, tier fanout) — exactly the carving a
    hierarchical run performs at deposit time, minus the dynamic
    assignment.  Inner calculators for equal (technique, size, fanout)
    triples hit the process-wide memoised sequence cache, so flattening
    a large loop costs one unrolling per *distinct* chunk size, not one
    per chunk.
    """
    for index, level in enumerate(run.spec.levels):
        technique = level.technique
        if technique.adaptive or technique.pe_dependent:
            raise ValueError(
                f"dcc resolves chunks locally from a pre-materialised "
                f"sequence; adaptive/PE-dependent technique "
                f"{technique.name!r} at level {index} needs runtime "
                f"feedback — use approach='mpi+mpi' for it"
            )
    fanouts = _level_fanouts(run, world)
    segments: List[Tuple[int, int]] = [(0, run.workload.n)]
    for index, fanout in enumerate(fanouts):
        level = run.spec.levels[index]
        carved: List[Tuple[int, int]] = []
        for start, size in segments:
            calc = level.make_calculator(
                size,
                fanout,
                rng=run.sim.rng(f"dcc-rnd.l{index}"),
                chunk_overhead=run.costs.chunk_calc,
            )
            if not calc.deterministic:
                raise ValueError(
                    f"dcc requires deterministic chunk sequences; "
                    f"{level.technique.name!r} at level {index} is not"
                )
            # Sequential size_at unroll rather than calc.sequence():
            # min-chunk wrapped calculators are consumed step by step.
            offset = start
            end = start + size
            step = 0
            while offset < end:
                nominal = calc.size_at(step)
                if nominal <= 0:
                    raise ValueError(
                        f"{level.technique.name!r} returned size {nominal} "
                        f"at step {step} with {end - offset} iterations left"
                    )
                chunk = min(nominal, end - offset)
                carved.append((offset, chunk))
                offset += chunk
                step += 1
        segments = carved
    return segments


class DccModel(ExecutionModel):
    """Distributed chunk calculation over one global step counter."""

    name = "dcc"
    supports_placement = True
    supports_faults = True

    def inter_pe_count(self, cluster, ppn: int) -> int:
        """Every rank schedules against the counter directly."""
        return cluster.n_nodes * ppn

    def _execute(self, run: _Run) -> None:
        depth = run.spec.depth
        if depth > MAX_LEVELS:
            raise ValueError(
                f"dcc maps scheduling levels onto machine tiers "
                f"cluster->node->socket->numa->core and therefore supports "
                f"at most {MAX_LEVELS} levels; got a depth-{depth} stack "
                f"({run.spec.label})"
            )
        run.n_sched_levels = depth
        world = MpiWorld(
            run.sim,
            run.cluster,
            ppn=run.ppn,
            costs=run.costs,
            faults=run.faults if run.faults_active else None,
        )
        schedule = _flatten_schedule(run, world)
        starts = [start for start, _ in schedule]
        sizes = [size for _, size in schedule]
        n_steps = len(schedule)
        # Counter-window placement: the optimizer prices the window
        # against a depth-1 view of the stack because *every* rank
        # talks to the counter directly (there are no tier queues to
        # absorb traffic).
        host = 0
        plan = None
        if not (isinstance(run.placement, str) and run.placement == "leader"):
            from repro.cluster.placement_opt import resolve_placement
            from repro.core.hierarchy import HierarchicalSpec

            plan = resolve_placement(
                run.placement,
                HierarchicalSpec(levels=(run.spec.inter,)),
                run.workload.n,
                run.cluster,
                run.ppn,
                run.costs,
            )
            if plan is not None:
                host = plan.global_host
        window = world.create_window(host, {"step": 0})
        chunk_calc_cost = run.costs.chunk_calc
        claims_on = run.faults_active
        finish_times = {}
        chunk_counts = {}
        iter_counts = {}

        def next_step(ctx: RankCtx):
            """Fetch-and-increment the counter; claim inside the atomic."""
            if claims_on:
                rank = ctx.rank

                def committed(old: int) -> None:
                    if old < n_steps:
                        run.claim(rank, old, starts[old], sizes[old])

                step = yield from window.fetch_and_op(
                    ctx, "step", 1, on_commit=committed
                )
            else:
                step = yield from window.fetch_and_op(ctx, "step", 1)
            yield Overhead(chunk_calc_cost)
            return step

        def worker(ctx: RankCtx):
            n_chunks = 0
            n_iters = 0
            while True:
                t_obtain = run.sim.now
                if claims_on and run.orphans:
                    # adopt a dead rank's reclaimed range (claim before
                    # the bookkeeping read so it cannot be lost twice)
                    step, start, size = run.orphans.pop(0)
                    run.claim(ctx.rank, step, start, size)
                    yield from window.get(ctx, "step")
                else:
                    step = yield from next_step(ctx)
                    if step >= n_steps:
                        if (
                            not claims_on
                            or run.executed_iterations >= run.workload.n
                        ):
                            break
                        # orphans may still arrive while dead ranks
                        # await detection: poll instead of exiting
                        yield Timeout(run.costs.mpi.shm_poll_interval)
                        continue
                    start, size = starts[step], sizes[step]
                if run.trace is not None and run.sim.now > t_obtain:
                    run.trace.add(
                        ctx.name(), t_obtain, run.sim.now, trace_mod.OBTAIN
                    )
                run.record_chunk(step, start, size, pe=ctx.rank)
                duration = run.exec_time(start, size, ctx.node, ctx.core)
                t0 = run.sim.now
                yield ComputeOnce(duration)  # jittered: unique per chunk
                if run.trace is not None:
                    run.trace.add(ctx.name(), t0, run.sim.now, trace_mod.COMPUTE)
                run.record_subchunk(step, start, size, pe=ctx.rank)
                run.release_claim(ctx.rank, step, start, size)
                n_chunks += 1
                n_iters += size
            finish_times[ctx.rank] = run.sim.now
            chunk_counts[ctx.rank] = n_chunks
            iter_counts[ctx.rank] = n_iters

        def recover(dead_rank: int):
            """Re-host the counter if its host died; orphan the victim's
            claimed ranges so survivors re-execute them."""
            if window.host_rank == dead_rank:
                live = [r for r in range(world.size) if world.rank_alive(r)]
                if live:
                    window.fail_over(live[0])
                    run.fault_counters["failovers"] += 1
            for step, start, size in run.claims.pop(dead_rank, ()):
                if size > 0:
                    run.orphans.append((step, start, size))
                    run.fault_counters["chunks_reexecuted"] += 1
            return
            yield  # pragma: no cover - marks this function as a generator

        processes = run_world(run, world, worker, recover=recover)
        for process, ctx in zip(processes, world.contexts):
            end = process.end_time if process.end_time is not None else run.sim.now
            run.record_worker(
                name=ctx.name(),
                node=ctx.node,
                finish_time=finish_times.get(ctx.rank, end),
                process=process,
                n_chunks=chunk_counts.get(ctx.rank, 0),
                n_iterations=iter_counts.get(ctx.rank, 0),
            )
        collect_dcc_counters(run, window, n_steps, plan)


def collect_dcc_counters(run: _Run, window, n_steps: int, plan=None) -> None:
    """Fill ``run.counters`` for a dCC run (shared scalar/cohort tail).

    Placement accounting: the counter window is the only shared
    object, so the priced queue traffic is exactly its atomic
    service time (no tier locks exist to add penalties).
    """
    run.counters["dcc_steps"] = n_steps
    run.counters["global_atomics"] = window.n_atomics
    run.counters["remote_atomics"] = window.n_remote_atomics
    run.counters["lock_penalty_s"] = 0.0
    run.counters["global_atomic_time_s"] = window.total_atomic_time_s
    run.counters["placement_cost_s"] = window.total_atomic_time_s
    run.counters["placement"] = (
        run.placement if isinstance(run.placement, str) else "explicit"
    )
    run.counters["window_homes"] = {"global": window.host_rank}
    if plan is not None:
        run.counters["placement_moved"] = plan.moved
        run.counters["placement_objective_s"] = plan.objective
