"""Non-hierarchical baseline: flat distributed chunk calculation.

Every MPI process obtains its chunks directly from the global RMA work
queue using the *inter*-level technique with ``P = total workers`` — the
approach of Eleliemy & Ciorba (PDP 2019 [15]) that the paper's
hierarchical scheme extends.  There is no local queue, so every chunk
request crosses the network (except for ranks co-located with the
window host), and fine-grained techniques hammer the single atomic
unit at the host — the scalability gap that motivates the hierarchy
(ablation A-2).

Only the root level of the spec is used (there is only one scheduling
level); any deeper levels of the stack are ignored, exactly as the
``intra`` half of a two-level pair always was.
"""

from __future__ import annotations

from repro.core import trace as trace_mod
from repro.models.base import ExecutionModel, GlobalQueue, _Run, run_world
from repro.sim.primitives import Compute, ComputeOnce, Timeout
from repro.smpi.world import MpiWorld, RankCtx


class FlatMpiModel(ExecutionModel):
    """Flat (single-level) distributed chunk calculation."""

    name = "flat-mpi"
    supports_faults = True

    def inter_pe_count(self, cluster, ppn: int) -> int:
        return cluster.n_nodes * ppn

    def _execute(self, run: _Run) -> None:
        run.n_sched_levels = 1
        world = MpiWorld(
            run.sim,
            run.cluster,
            ppn=run.ppn,
            costs=run.costs,
            faults=run.faults if run.faults_active else None,
        )
        total_workers = world.size
        calc = run.spec.inter.make_calculator(
            run.workload.n,
            total_workers,
            rng=run.sim.rng("inter-rnd"),
            chunk_overhead=run.costs.chunk_calc,
        )
        queue = GlobalQueue(
            world,
            calc,
            run.workload.n,
            host_rank=0,
            pinned=run.spec.inter.technique.pinned_per_pe,
            run=run,
        )
        finish_times = {}
        chunk_counts = {}
        iter_counts = {}

        def worker(ctx: RankCtx):
            n_chunks = 0
            n_iters = 0
            while True:
                t_obtain = run.sim.now
                if run.faults_active and run.orphans:
                    # adopt a dead rank's reclaimed range (claim before
                    # the bookkeeping read so it cannot be lost twice)
                    step, start, size = run.orphans.pop(0)
                    run.claim(ctx.rank, step, start, size)
                    yield from queue.window.get(ctx, "step")
                else:
                    step, start, size = yield from queue.next_chunk(
                        ctx, pe=ctx.rank
                    )
                if size <= 0:
                    if (
                        not run.faults_active
                        or run.executed_iterations >= run.workload.n
                    ):
                        break
                    # orphans may still arrive while dead ranks await
                    # detection: poll instead of exiting
                    yield Timeout(run.costs.mpi.shm_poll_interval)
                    continue
                if run.trace is not None and run.sim.now > t_obtain:
                    run.trace.add(
                        ctx.name(), t_obtain, run.sim.now, trace_mod.OBTAIN
                    )
                run.record_chunk(step, start, size, pe=ctx.rank)
                duration = run.exec_time(start, size, ctx.node, ctx.core)
                t0 = run.sim.now
                yield ComputeOnce(duration)  # jittered: unique per chunk, skip interning
                if run.trace is not None:
                    run.trace.add(ctx.name(), t0, run.sim.now, trace_mod.COMPUTE)
                calc.record(ctx.rank, size, compute_time=duration)
                run.record_subchunk(step, start, size, pe=ctx.rank)
                run.release_claim(ctx.rank, step, start, size)
                n_chunks += 1
                n_iters += size
            finish_times[ctx.rank] = run.sim.now
            chunk_counts[ctx.rank] = n_chunks
            iter_counts[ctx.rank] = n_iters

        def recover(dead_rank: int):
            """Reclaim the victim's claims into the shared orphan pool
            and re-host the global window if the victim held it."""
            if queue.window.host_rank == dead_rank:
                live = [r for r in range(world.size) if world.rank_alive(r)]
                if live:
                    queue.window.fail_over(live[0])
                    run.fault_counters["failovers"] += 1
            stranded = list(run.claims.pop(dead_rank, ()))
            if queue.pinned and not queue._pinned_taken.get(dead_rank):
                queue._pinned_taken[dead_rank] = True
                size = queue.calc.size_at(dead_rank)
                if size > 0:
                    start = queue.calc.start_at(dead_rank)
                    stranded.append(
                        (dead_rank, start, min(size, queue.n - start))
                    )
            for step, start, size in stranded:
                if size > 0:
                    run.orphans.append((step, start, size))
                    run.fault_counters["chunks_reexecuted"] += 1
            return
            yield  # pragma: no cover - marks this function as a generator

        processes = run_world(run, world, worker, recover=recover)
        for process, ctx in zip(processes, world.contexts):
            end = process.end_time if process.end_time is not None else run.sim.now
            run.record_worker(
                name=ctx.name(),
                node=ctx.node,
                finish_time=finish_times.get(ctx.rank, end),
                process=process,
                n_chunks=chunk_counts.get(ctx.rank, 0),
                n_iterations=iter_counts.get(ctx.rank, 0),
            )
        run.counters["global_atomics"] = queue.window.n_atomics
        run.counters["remote_atomics"] = queue.window.n_remote_atomics
