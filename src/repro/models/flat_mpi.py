"""Non-hierarchical baseline: flat distributed chunk calculation.

Every MPI process obtains its chunks directly from the global RMA work
queue using the *inter*-level technique with ``P = total workers`` — the
approach of Eleliemy & Ciorba (PDP 2019 [15]) that the paper's
hierarchical scheme extends.  There is no local queue, so every chunk
request crosses the network (except for ranks co-located with the
window host), and fine-grained techniques hammer the single atomic
unit at the host — the scalability gap that motivates the hierarchy
(ablation A-2).

Only the root level of the spec is used (there is only one scheduling
level); any deeper levels of the stack are ignored, exactly as the
``intra`` half of a two-level pair always was.
"""

from __future__ import annotations

from repro.core import trace as trace_mod
from repro.models.base import ExecutionModel, GlobalQueue, _Run
from repro.sim.primitives import Compute, ComputeOnce
from repro.smpi.world import MpiWorld, RankCtx


class FlatMpiModel(ExecutionModel):
    """Flat (single-level) distributed chunk calculation."""

    name = "flat-mpi"

    def inter_pe_count(self, cluster, ppn: int) -> int:
        return cluster.n_nodes * ppn

    def _execute(self, run: _Run) -> None:
        run.n_sched_levels = 1
        world = MpiWorld(run.sim, run.cluster, ppn=run.ppn, costs=run.costs)
        total_workers = world.size
        calc = run.spec.inter.make_calculator(
            run.workload.n,
            total_workers,
            rng=run.sim.rng("inter-rnd"),
            chunk_overhead=run.costs.chunk_calc,
        )
        queue = GlobalQueue(
            world,
            calc,
            run.workload.n,
            host_rank=0,
            pinned=run.spec.inter.technique.pinned_per_pe,
        )
        finish_times = {}
        chunk_counts = {}
        iter_counts = {}

        def worker(ctx: RankCtx):
            n_chunks = 0
            n_iters = 0
            while True:
                t_obtain = run.sim.now
                step, start, size = yield from queue.next_chunk(ctx, pe=ctx.rank)
                if size <= 0:
                    break
                if run.trace is not None and run.sim.now > t_obtain:
                    run.trace.add(
                        ctx.name(), t_obtain, run.sim.now, trace_mod.OBTAIN
                    )
                run.record_chunk(step, start, size, pe=ctx.rank)
                duration = run.exec_time(start, size, ctx.node, ctx.core)
                t0 = run.sim.now
                yield ComputeOnce(duration)  # jittered: unique per chunk, skip interning
                if run.trace is not None:
                    run.trace.add(ctx.name(), t0, run.sim.now, trace_mod.COMPUTE)
                calc.record(ctx.rank, size, compute_time=duration)
                run.record_subchunk(step, start, size, pe=ctx.rank)
                n_chunks += 1
                n_iters += size
            finish_times[ctx.rank] = run.sim.now
            chunk_counts[ctx.rank] = n_chunks
            iter_counts[ctx.rank] = n_iters

        processes = world.run(worker)
        for process, ctx in zip(processes, world.contexts):
            run.record_worker(
                name=ctx.name(),
                node=ctx.node,
                finish_time=finish_times[ctx.rank],
                process=process,
                n_chunks=chunk_counts[ctx.rank],
                n_iterations=iter_counts[ctx.rank],
            )
        run.counters["global_atomics"] = queue.window.n_atomics
        run.counters["remote_atomics"] = queue.window.n_remote_atomics
