"""Centralised master-worker baseline (DLB-tool style).

The historical implementation strategy for DLS on distributed memory
(Cariño & Banicescu's DLB tool [10], DLBL [11]): one dedicated master
rank receives work requests over two-sided messages, computes each
chunk with the selected technique, and replies with the assignment.

Characteristics the ablation (A-2) exposes:

* request/response latency on every chunk (two messages);
* the master serialises *all* chunk calculations — with many workers
  and fine-grained techniques it becomes the bottleneck the paper's
  Section 2 describes;
* one worker slot is lost to the dedicated master (rank 0 does not
  execute iterations), mirroring HDSS [13] rather than the DLB tool's
  participating master.

Only the root level of the spec is used (single-level scheduling); any
deeper levels of the stack are ignored.
"""

from __future__ import annotations

from repro.core import trace as trace_mod
from repro.models.base import ExecutionModel, _Run, run_world
from repro.sim.primitives import Compute, ComputeOnce, Overhead
from repro.smpi.p2p import Message
from repro.smpi.world import MpiWorld, RankCtx

#: message tags
TAG_REQUEST = 1
TAG_ASSIGN = 2


class MasterWorkerModel(ExecutionModel):
    """Classic two-sided master-worker self-scheduling."""

    name = "master-worker"
    supports_faults = True

    def inter_pe_count(self, cluster, ppn: int) -> int:
        return cluster.n_nodes * ppn - 1  # rank 0 is the dedicated master

    def _execute(self, run: _Run) -> None:
        run.n_sched_levels = 1
        if run.faults_active and 0 in run.faults.crashed_ranks:
            raise ValueError(
                "master-worker cannot survive a crash of rank 0 (the "
                "dedicated master is a single point of failure); crash a "
                "worker rank instead, or use the mpi+mpi model"
            )
        world = MpiWorld(
            run.sim,
            run.cluster,
            ppn=run.ppn,
            costs=run.costs,
            faults=run.faults if run.faults_active else None,
        )
        n_workers = world.size - 1
        if n_workers < 1:
            raise ValueError("master-worker needs at least 2 ranks")
        calc = run.spec.inter.make_calculator(
            run.workload.n,
            n_workers,
            rng=run.sim.rng("inter-rnd"),
            chunk_overhead=run.costs.chunk_calc,
        )
        n = run.workload.n
        finish_times = {}
        chunk_counts = {}
        iter_counts = {}

        def master(ctx: RankCtx):
            scheduled = 0
            step = 0
            done_sent = 0
            while done_sent < n_workers:
                source, _ = yield from ctx.recv_any(TAG_REQUEST)
                if scheduled >= n:
                    yield from ctx.send(source, TAG_ASSIGN, None)
                    done_sent += 1
                    continue
                # chunk calculation happens *at the master*, serialised
                yield Overhead(run.costs.chunk_calc)
                size = calc.size_at(step, pe=(source - 1) % n_workers)
                size = max(1, min(size, n - scheduled))
                assignment = (step, scheduled, size)
                run.record_chunk(step, scheduled, size, pe=source)
                scheduled += size
                step += 1
                yield from ctx.send(source, TAG_ASSIGN, assignment)
            finish_times[ctx.rank] = run.sim.now
            chunk_counts[ctx.rank] = 0
            iter_counts[ctx.rank] = 0

        def master_ft(ctx: RankCtx):
            # Failure-aware master: requesters are parked in ``waiting``
            # and served orphaned (reclaimed) ranges before fresh chunks;
            # a worker is retired with ``None`` only once the whole
            # iteration space is scheduled AND no range is still in
            # flight (claimed or orphaned), so a late crash can always be
            # re-served.  The fault injector announces each confirmed
            # death with a ``"__dead__"`` request from the victim.
            scheduled = 0
            step = 0
            done_sent = 0
            n_live = n_workers
            waiting = []
            while done_sent < n_live:
                source, payload = yield from ctx.recv_any(TAG_REQUEST)
                if payload == "__dead__":
                    n_live -= 1
                    if source in waiting:
                        waiting.remove(source)
                else:
                    waiting.append(source)
                # reclaimed ranges first: no chunk calculation needed,
                # and claiming before any yield keeps the ledger tight
                while waiting and run.orphans:
                    w = waiting.pop(0)
                    if not world.rank_alive(w):
                        continue
                    assignment = run.orphans.pop(0)
                    run.claim(w, *assignment)
                    yield from ctx.send(w, TAG_ASSIGN, assignment)
                while waiting and scheduled < n:
                    w = waiting.pop(0)
                    if not world.rank_alive(w):
                        continue
                    yield Overhead(run.costs.chunk_calc)
                    if not world.rank_alive(w):
                        # died during the calculation; the range was not
                        # carved yet, so just drop the request
                        continue
                    size = calc.size_at(step, pe=(w - 1) % n_workers)
                    size = max(1, min(size, n - scheduled))
                    run.claim(w, step, scheduled, size)
                    run.record_chunk(step, scheduled, size, pe=w)
                    assignment = (step, scheduled, size)
                    scheduled += size
                    step += 1
                    yield from ctx.send(w, TAG_ASSIGN, assignment)
                if (
                    scheduled >= n
                    and not run.orphans
                    and not any(run.claims.values())
                ):
                    while waiting:
                        w = waiting.pop(0)
                        if not world.rank_alive(w):
                            continue
                        yield from ctx.send(w, TAG_ASSIGN, None)
                        done_sent += 1
            finish_times[ctx.rank] = run.sim.now
            chunk_counts[ctx.rank] = 0
            iter_counts[ctx.rank] = 0

        def worker(ctx: RankCtx):
            n_chunks = 0
            n_iters = 0
            while True:
                t_obtain = run.sim.now
                yield from ctx.send(0, TAG_REQUEST, None)
                assignment = yield from ctx.recv(0, TAG_ASSIGN)
                if assignment is None:
                    break
                step, start, size = assignment
                if run.trace is not None and run.sim.now > t_obtain:
                    run.trace.add(
                        ctx.name(), t_obtain, run.sim.now, trace_mod.OBTAIN
                    )
                duration = run.exec_time(start, size, ctx.node, ctx.core)
                t0 = run.sim.now
                yield ComputeOnce(duration)  # jittered: unique per chunk, skip interning
                if run.trace is not None:
                    run.trace.add(ctx.name(), t0, run.sim.now, trace_mod.COMPUTE)
                calc.record((ctx.rank - 1) % n_workers, size, compute_time=duration)
                run.record_subchunk(step, start, size, pe=ctx.rank)
                run.release_claim(ctx.rank, step, start, size)
                n_chunks += 1
                n_iters += size
            finish_times[ctx.rank] = run.sim.now
            chunk_counts[ctx.rank] = n_chunks
            iter_counts[ctx.rank] = n_iters

        def main(ctx: RankCtx):
            if ctx.rank == 0:
                if run.faults_active:
                    yield from master_ft(ctx)
                else:
                    yield from master(ctx)
            else:
                yield from worker(ctx)

        def recover(dead_rank: int):
            """Move the victim's claims to the orphan pool and wake the
            master with a death notice (zero-latency local delivery —
            the detection delay was already charged by the injector)."""
            stranded = list(run.claims.pop(dead_rank, ()))
            for step, start, size in stranded:
                if size > 0:
                    run.orphans.append((step, start, size))
                    run.fault_counters["chunks_reexecuted"] += 1
            world._mailboxes[0].deliver_after(
                0.0,
                Message(source=dead_rank, tag=TAG_REQUEST, payload="__dead__"),
            )
            return
            yield  # pragma: no cover - marks this function as a generator

        processes = run_world(run, world, main, recover=recover)
        for process, ctx in zip(processes, world.contexts):
            end = process.end_time if process.end_time is not None else run.sim.now
            run.record_worker(
                name=ctx.name() + (".master" if ctx.rank == 0 else ""),
                node=ctx.node,
                finish_time=finish_times.get(ctx.rank, end),
                process=process,
                n_chunks=chunk_counts.get(ctx.rank, 0),
                n_iterations=iter_counts.get(ctx.rank, 0),
            )
        run.counters["messages"] = sum(
            box.n_delivered for box in world._mailboxes
        )
