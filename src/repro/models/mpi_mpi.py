"""The paper's contribution: hierarchical DLS with the MPI+MPI approach.

Architecture (paper Section 3, Figure 1):

* one **global work queue** — an RMA window holding the latest
  scheduling step and total scheduled iterations (distributed chunk
  calculation, no master);
* one **local work queue per machine tier group** — an MPI-3
  shared-memory window (``MPI_Win_allocate_shared``) guarded by
  exclusive ``MPI_Win_lock``/``MPI_Win_unlock`` (lock *polling*!) and
  ``MPI_Win_sync``;
* ``ppn`` MPI processes per node, each one an independent worker:

  1. lock the local queue and try to take a *sub-chunk* via the
     queue's DLS technique;
  2. if the local queue is dry, obtain a *chunk* from the parent tier
     (recursively, up to the global queue) while holding the lock,
     deposit the chunk, take the first sub-chunk;
  3. execute, repeat.

Nobody waits for anybody: the responsibility for refilling is not
pinned to a coordinator — whichever process drains a queue first
(the *fastest* process) refills it, and several processes may refill
concurrently (each queue holds a list of ranges).  There is no implicit
barrier at any point, which is exactly what Figure 3 illustrates.

The paper composes exactly two levels (global queue across nodes +
one local queue per node).  This implementation generalises the same
protocol to an **arbitrary-depth level stack** mapped onto the machine
tiers cluster -> node -> socket -> numa -> core:

* depth 1 — every rank fetches directly from the global queue
  (the flat distributed-chunk-calculation baseline, in-protocol);
* depth 2 — the paper's configuration, bit-identical to the original
  two-level implementation;
* depth 3 — a per-socket queue nests inside the per-node queue
  (``GSS+FAC2+STATIC``): each socket queue has its own window *and its
  own lock*, so the fine-grained leaf grabs of a wide node contend on
  ``cores_per_socket`` peers instead of all ``ppn`` — socket-aware
  local queues cut the simulated lock-polling contention that makes
  ``X+SS`` poor on wide nodes;
* depth 4 — a per-NUMA-domain queue nests inside the per-socket queue
  (``W+X+Y+Z``, e.g. ``GSS+FAC2+FAC2+STATIC``): again each NUMA
  window carries its own lock, so leaf contention drops to
  ``cores_per_numa`` peers and refill traffic climbs the tier tree
  numa -> socket -> node -> global.

A spec deeper than the machine's tier count raises ``ValueError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import trace as trace_mod
from repro.core.technique_base import ChunkCalculator
from repro.models.base import ExecutionModel, GlobalQueue, _Run, run_world
from repro.sim.primitives import ComputeOnce, Timeout
from repro.smpi.shm import SharedWindow
from repro.smpi.world import MpiWorld, RankCtx

#: maximum scheduling depth:
#: cluster->node, node->socket, socket->numa, numa->core
MAX_LEVELS = 4


@dataclass
class _QueuedChunk:
    """One deposited chunk in a tier's local work queue."""

    #: scheduling step of the *parent* level that carved this chunk
    src_step: int
    start: int
    size: int
    taken: int = 0
    local_step: int = 0
    calc: Optional[ChunkCalculator] = None
    #: feedback chain for runtime-adaptive ancestors: (calculator, pe)
    #: pairs from the immediate parent up to the global queue
    ancestors: Tuple[Tuple[ChunkCalculator, int], ...] = ()

    @property
    def remaining(self) -> int:
        return self.size - self.taken

    @property
    def inter_step(self) -> int:
        """Historical alias from the two-level implementation."""
        return self.src_step


class _LocalQueue:
    """Python-side view of one tier group's shared-memory work queue.

    All mutating methods must be called while the caller holds the
    shared window's lock; the simulated access costs are charged by
    the caller through ``SharedWindow.access``.

    ``parent`` is the queue one tier up (None when the parent is the
    global RMA queue); ``parent_pe`` is this queue's child index within
    its parent (the node index at tier 1, the socket's position within
    its node at tier 2, the NUMA domain's position within its socket at
    tier 3) — the ``pe`` argument for PE-dependent parent techniques.
    """

    def __init__(
        self,
        run: _Run,
        level: int,
        n_children: int,
        shm: SharedWindow,
        rng_stream: str,
        parent: "Optional[_LocalQueue]",
        parent_pe: int,
        global_queue: Optional[GlobalQueue] = None,
    ):
        self.run = run
        #: index into ``spec.levels`` of the technique carving deposits
        self.level = level
        self.n_children = n_children
        self.shm = shm
        self.rng_stream = rng_stream
        self.parent = parent
        self.parent_pe = parent_pe
        self.global_queue = global_queue
        # "no refill will ever arrive again" flag; named after the
        # two-level implementation where the only parent was the global
        # queue, and kept for window-layout compatibility
        shm.cells.setdefault("global_done", 0)
        self.ranges: List[_QueuedChunk] = []
        shm.state["queue"] = self.ranges  # visible to tests/inspection
        #: ADAPT calculators this queue instantiated (selector reporting)
        self.adaptive_calcs: List[ChunkCalculator] = []

    def deposit(
        self,
        src_step: int,
        start: int,
        size: int,
        ancestors: Tuple[Tuple[ChunkCalculator, int], ...],
    ) -> None:
        calc = self.run.spec.levels[self.level].make_calculator(
            size,
            self.n_children,
            rng=self.run.sim.rng(self.rng_stream),
            chunk_overhead=self.run.costs.chunk_calc,
        )
        if hasattr(calc, "mode_history"):  # ADAPT selector bookkeeping
            self.adaptive_calcs.append(calc)
        self.ranges.append(
            _QueuedChunk(
                src_step=src_step,
                start=start,
                size=size,
                calc=calc,
                ancestors=ancestors,
            )
        )

    def take(self, child: int):
        """Take the next sub-chunk, or None if the queue is dry.

        Returns ``(head, start, size, step)`` — ``step`` is captured
        here, under the caller's lock, because ``head.local_step`` keeps
        advancing once the lock is released (another child may take from
        the same head while the caller is still in its unlock/sync
        yields).
        """
        while self.ranges:
            head = self.ranges[0]
            step = head.local_step
            size = head.calc.size_at(step, pe=child)
            size = min(size, head.remaining)
            if size <= 0:
                self.ranges.pop(0)
                continue
            sub_start = head.start + head.taken
            head.taken += size
            head.local_step += 1
            if head.remaining == 0:
                self.ranges.pop(0)
            return head, sub_start, size, step
        return None


def _queue_key_order(key) -> Tuple:
    """Canonical sort key for tier-queue keys (ints and tuples mix)."""
    return key if isinstance(key, tuple) else (key,)


def sorted_queue_items(local_queues: Dict[object, _LocalQueue]):
    """Tier queues in canonical (node, socket, numa) order.

    Counter accrual must not depend on dict insertion order (which
    follows rank/window registration order), so every reduction over
    the queues walks this canonical ordering.  For the historical
    construction order the two coincide, keeping all sums bit-exact.
    """
    return sorted(local_queues.items(), key=lambda item: _queue_key_order(item[0]))


def collect_queue_counters(
    run: _Run,
    queue: GlobalQueue,
    local_queues: Dict[object, _LocalQueue],
    plan=None,
) -> None:
    """Fill ``run.counters`` from the global queue + tier windows.

    Shared by the scalar and cohort engines so both report identical
    counters: atomics, lock contention, placement accounting
    (``lock_penalty_s`` + ``global_atomic_time_s`` — the
    distance-priced share of the queue traffic), window homes, and the
    ADAPT selector ledgers.  All floating-point reductions walk the
    canonical queue order of :func:`sorted_queue_items`, independent of
    event-ID tie-breaks and registration order.
    """
    queues = sorted_queue_items(local_queues)
    run.counters["global_atomics"] = queue.window.n_atomics
    run.counters["remote_atomics"] = queue.window.n_remote_atomics
    run.counters["lock_stats"] = {
        key: lq.shm.contention_stats() for key, lq in queues
    }
    run.counters["total_poll_wait"] = sum(
        lq.shm.total_poll_wait for _, lq in queues
    )
    run.counters["lock_acquisitions"] = sum(
        lq.shm.n_acquisitions for _, lq in queues
    )
    # --- placement accounting: the distance-priced share of the
    # queue traffic (what choosing window homes can change).
    # ``lock_penalty_s`` sums the locality penalties actually
    # charged on every shared window (lock attempts, unlocks,
    # loads, accesses); ``global_atomic_time_s`` is the full
    # service time of the global RMA window's atomics (latency +
    # target processing + penalty).  Their sum is the measured
    # placement objective reported by the placement sweeps.
    lock_penalty = sum(lq.shm.total_penalty_s for _, lq in queues)
    run.counters["lock_penalty_s"] = lock_penalty
    run.counters["global_atomic_time_s"] = queue.window.total_atomic_time_s
    run.counters["placement_cost_s"] = (
        lock_penalty + queue.window.total_atomic_time_s
    )
    run.counters["placement"] = (
        run.placement if isinstance(run.placement, str) else "explicit"
    )
    run.counters["window_homes"] = {
        "global": queue.window.host_rank,
        **{key: lq.shm.home_rank for key, lq in queues},
    }
    if plan is not None:
        run.counters["placement_moved"] = plan.moved
        run.counters["placement_objective_s"] = plan.objective
    # ADAPT selector reporting: every selector instantiated at any
    # tier (plus a root-level one) contributes its switch ledger
    adapt_calcs = [
        calc for _, lq in queues for calc in lq.adaptive_calcs
    ]
    if hasattr(queue.calc, "mode_history"):
        adapt_calcs.append(queue.calc)
    if adapt_calcs:
        modes: Dict[str, int] = {}
        for calc in adapt_calcs:
            modes[calc.mode] = modes.get(calc.mode, 0) + 1
        run.counters["adapt_switches"] = sum(
            calc.switch_count for calc in adapt_calcs
        )
        run.counters["adapt_final_modes"] = modes


class MpiMpiModel(ExecutionModel):
    """Hierarchical DLS via MPI+MPI (the proposed approach)."""

    name = "mpi+mpi"
    supports_placement = True
    supports_faults = True

    def _execute(self, run: _Run) -> None:
        depth = run.spec.depth
        if depth > MAX_LEVELS:
            raise ValueError(
                f"mpi+mpi maps scheduling levels onto machine tiers "
                f"cluster->node->socket->numa->core and therefore supports "
                f"at most {MAX_LEVELS} levels; got a depth-{depth} stack "
                f"({run.spec.label})"
            )
        run.n_sched_levels = depth
        # window placement: None = historical leader homes (fast path,
        # bit-exact); a plan moves the global host and/or window homes
        plan = None
        if not (isinstance(run.placement, str) and run.placement == "leader"):
            from repro.cluster.placement_opt import resolve_placement

            plan = resolve_placement(
                run.placement,
                run.spec,
                run.workload.n,
                run.cluster,
                run.ppn,
                run.costs,
            )
        world = MpiWorld(
            run.sim,
            run.cluster,
            ppn=run.ppn,
            costs=run.costs,
            faults=run.faults if run.faults_active else None,
        )
        inter_pes = world.size if depth == 1 else run.cluster.n_nodes
        inter_calc = run.spec.inter.make_calculator(
            run.workload.n,
            inter_pes,
            rng=run.sim.rng("inter-rnd"),
            chunk_overhead=run.costs.chunk_calc,
        )
        queue = GlobalQueue(
            world,
            inter_calc,
            run.workload.n,
            host_rank=0 if plan is None else plan.global_host,
            pinned=run.spec.inter.technique.pinned_per_pe,
            run=run,
        )
        local_queues = self._build_queues(run, world, queue, depth, plan)
        finish_times = {}
        chunk_counts = {}
        iter_counts = {}

        def worker(ctx: RankCtx):
            if depth == 1:
                yield from self._flat_worker_loop(
                    run, ctx, queue, finish_times, chunk_counts, iter_counts,
                )
            else:
                leaf, child = self._leaf_of(run, world, local_queues, ctx, depth)
                yield from self._worker_loop(
                    run, ctx, leaf, child, finish_times,
                    chunk_counts, iter_counts,
                )

        recover = self._make_recover(run, world, queue, local_queues, depth)
        processes = run_world(run, world, worker, recover=recover)
        for process, ctx in zip(processes, world.contexts):
            # a crash-stopped rank never reaches the loop epilogue: fall
            # back to its death time and zero chunk counts
            end = process.end_time if process.end_time is not None else run.sim.now
            run.record_worker(
                name=ctx.name(),
                node=ctx.node,
                finish_time=finish_times.get(ctx.rank, end),
                process=process,
                n_chunks=chunk_counts.get(ctx.rank, 0),
                n_iterations=iter_counts.get(ctx.rank, 0),
            )
        if run.faults_active:
            run.fault_counters["lock_leases_broken"] = sum(
                lq.shm.n_leases_broken
                for _, lq in sorted_queue_items(local_queues)
            )
        collect_queue_counters(run, queue, local_queues, plan)

    # ------------------------------------------------------------------
    def _build_queues(
        self,
        run: _Run,
        world: MpiWorld,
        queue: GlobalQueue,
        depth: int,
        plan=None,
    ) -> Dict[object, _LocalQueue]:
        """Create one local queue per tier group (tier 1: nodes, tier 2:
        sockets, tier 3: NUMA domains), wired into a refill tree rooted
        at the global queue.  ``plan`` (a
        :class:`~repro.cluster.placement_opt.PlacementPlan`) overrides
        each window's home rank; None keeps the leader defaults."""
        if depth == 1:
            return {}
        home_of = (lambda key: None) if plan is None else plan.home_of
        placement = world.placement
        local_queues: Dict[object, _LocalQueue] = {}
        for node in range(run.cluster.n_nodes):
            sockets = placement.sockets_on_node(node)
            n_children = run.ppn if depth == 2 else len(sockets)
            local_queues[node] = _LocalQueue(
                run,
                level=1,
                n_children=n_children,
                shm=world.create_shared_window(node, {}, home_rank=home_of(node)),
                rng_stream=f"intra-rnd.n{node}",
                parent=None,
                parent_pe=node,
                global_queue=queue,
            )
            if depth < 3:
                continue
            for position, socket in enumerate(sockets):
                members = placement.ranks_on_socket(node, socket)
                numas = placement.numas_on_socket(node, socket)
                socket_children = len(members) if depth == 3 else len(numas)
                local_queues[(node, socket)] = _LocalQueue(
                    run,
                    level=2,
                    n_children=socket_children,
                    shm=world.create_shared_window(
                        (node, socket), {}, home_rank=home_of((node, socket))
                    ),
                    rng_stream=f"intra-rnd.n{node}.s{socket}",
                    parent=local_queues[node],
                    parent_pe=position,
                )
                if depth < 4:
                    continue
                for numa_position, numa in enumerate(numas):
                    numa_members = placement.ranks_on_numa(node, socket, numa)
                    local_queues[(node, socket, numa)] = _LocalQueue(
                        run,
                        level=3,
                        n_children=len(numa_members),
                        shm=world.create_shared_window(
                            (node, socket, numa),
                            {},
                            home_rank=home_of((node, socket, numa)),
                        ),
                        rng_stream=f"intra-rnd.n{node}.s{socket}.m{numa}",
                        parent=local_queues[(node, socket)],
                        parent_pe=numa_position,
                    )
        return local_queues

    def _leaf_of(
        self,
        run: _Run,
        world: MpiWorld,
        local_queues: Dict[object, _LocalQueue],
        ctx: RankCtx,
        depth: int,
    ) -> Tuple[_LocalQueue, int]:
        """The queue a rank grabs sub-chunks from, and its child index."""
        if depth == 2:
            return local_queues[ctx.node], ctx.local_rank
        if depth == 3:
            return local_queues[(ctx.node, ctx.socket)], ctx.socket_rank
        return (
            local_queues[(ctx.node, ctx.socket, ctx.numa)],
            ctx.numa_rank,
        )

    # ------------------------------------------------------------------
    # failure recovery (driven by the fault injector at detection time)
    # ------------------------------------------------------------------
    @staticmethod
    def _group_ranks(world: MpiWorld, key) -> List[int]:
        """The member ranks of the tier group a queue key names."""
        placement = world.placement
        if isinstance(key, tuple):
            if len(key) == 2:
                return placement.ranks_on_socket(*key)
            return placement.ranks_on_numa(*key)
        return placement.ranks_on_node(key)

    @staticmethod
    def _descendant_keys(local_queues: Dict[object, _LocalQueue], key) -> List[object]:
        """``key`` plus every queue key nested inside its tier group."""
        prefix = key if isinstance(key, tuple) else (key,)
        found = []
        for other in local_queues:
            tup = other if isinstance(other, tuple) else (other,)
            if tup[: len(prefix)] == prefix:
                found.append(other)
        return found

    def _reopen(self, local_queues: Dict[object, _LocalQueue], key) -> None:
        """Clear ``global_done`` on ``key``'s queue and all descendants.

        Always called *after* the re-deposit: pollers check the queue
        contents before the drained flag, so a concurrent refill
        re-marking the flag can never hide the deposited work.
        """
        for other in self._descendant_keys(local_queues, key):
            local_queues[other].shm.cells["global_done"] = 0

    def _nearest_live_queue(
        self,
        world: MpiWorld,
        local_queues: Dict[object, _LocalQueue],
        dead_rank: int,
    ):
        """The re-deposit target: the queue with at least one live
        member whose home is closest to the dead rank (locality-tier
        distance of the PR-4 cost model), preferring shallower tiers
        (wider sharing) on ties."""
        best = None
        for key, lq in local_queues.items():
            if not any(
                world.rank_alive(r) for r in self._group_ranks(world, key)
            ):
                continue
            home = lq.shm.home_rank
            tier_value = (
                4 if home is None
                else world.interconnect.distance(dead_rank, home).value
            )
            order = (tier_value, lq.level, str(key))
            if best is None or order < best[0]:
                best = (order, key, lq)
        if best is None:
            return None
        return best[1], best[2]

    def _make_recover(
        self,
        run: _Run,
        world: MpiWorld,
        queue: GlobalQueue,
        local_queues: Dict[object, _LocalQueue],
        depth: int,
    ):
        """Build the per-dead-rank recovery generator for the injector."""

        def recover(dead_rank: int):
            # 1. coordinator failover: windows homed/hosted on the dead
            # rank move to the next live rank of their tier group
            for key, lq in local_queues.items():
                if lq.shm.home_rank == dead_rank:
                    live = [
                        r
                        for r in self._group_ranks(world, key)
                        if world.rank_alive(r)
                    ]
                    if live:
                        lq.shm.fail_over(live[0])
                        run.fault_counters["failovers"] += 1
            if queue.window.host_rank == dead_rank:
                live = [r for r in range(world.size) if world.rank_alive(r)]
                if live:
                    queue.window.fail_over(live[0])
                    run.fault_counters["failovers"] += 1
            # 2. reclaim: the dead rank's in-flight claims, plus the
            # remaining contents of any queue whose whole group died,
            # plus a pinned STATIC chunk the victim never fetched
            stranded = list(run.claims.pop(dead_rank, ()))
            if depth == 1 and queue.pinned and not queue._pinned_taken.get(
                dead_rank
            ):
                queue._pinned_taken[dead_rank] = True
                size = queue.calc.size_at(dead_rank)
                if size > 0:
                    start = queue.calc.start_at(dead_rank)
                    stranded.append((dead_rank, start, min(size, queue.n - start)))
            for key, lq in local_queues.items():
                members = self._group_ranks(world, key)
                if any(world.rank_alive(r) for r in members):
                    continue
                for qc in lq.ranges:
                    if qc.remaining > 0:
                        stranded.append(
                            (qc.src_step, qc.start + qc.taken, qc.remaining)
                        )
                # in-place clear: the list is aliased by shm.state["queue"]
                lq.ranges.clear()
                if (
                    isinstance(key, int)
                    and queue.pinned
                    and not queue._pinned_taken.get(key)
                ):
                    # the dead node group never fetched its pinned chunk
                    queue._pinned_taken[key] = True
                    size = queue.calc.size_at(key)
                    if size > 0:
                        start = queue.calc.start_at(key)
                        stranded.append((key, start, min(size, queue.n - start)))
            # 3. re-deposit each range into the nearest live queue (or
            # the orphan pool for depth-1 runs, which have no tiers)
            target = self._nearest_live_queue(world, local_queues, dead_rank)
            for step, start, size in stranded:
                if size <= 0:
                    continue
                if target is None:
                    run.orphans.append((step, start, size))
                else:
                    key, lq = target
                    lq.deposit(step, start, size, ancestors=())
                    self._reopen(local_queues, key)
                run.fault_counters["chunks_reexecuted"] += 1
            return
            yield  # pragma: no cover - marks this function as a generator

        return recover

    # ------------------------------------------------------------------
    def _take_from(self, run: _Run, ctx: RankCtx, q: _LocalQueue, child: int):
        """Take the next sub-chunk from ``q`` (generator).

        Returns ``(head, start, size)`` or None once the queue is dry
        *and* no ancestor can supply more work.  When the queue is dry
        but live, the caller refills it in place — holding the window
        lock across the parent fetch (paper Fig. 1 steps 1-2): other
        local processes keep polling the lock meanwhile instead of
        waiting for a designated coordinator.  The parent fetch recurses
        through the tier queues up to the global RMA queue.
        """
        shm = q.shm
        while True:
            yield from shm.lock(ctx)
            yield from shm.access(ctx, n=3)  # head pointers + counters
            sub = q.take(child)
            if sub is not None:
                # claim the taken range before the unlock yields: a
                # crash between take and execution must find it in the
                # ledger (no-op when faults are off)
                run.claim(ctx.rank, sub[3], sub[1], sub[2])
                yield from shm.unlock(ctx)
                yield from shm.sync(ctx)
                return sub
            if shm.cells["global_done"]:
                yield from shm.unlock(ctx)
                return None
            # ---- this process is currently the fastest: refill --------
            if q.parent is None:
                step, start, size = yield from q.global_queue.next_chunk(
                    ctx, pe=q.parent_pe
                )
                ancestors = ((q.global_queue.calc, q.parent_pe),)
            else:
                parent_sub = yield from self._take_from(
                    run, ctx, q.parent, q.parent_pe
                )
                if parent_sub is None:
                    step, start, size = -1, 0, 0
                    ancestors = ()
                else:
                    head, start, size, step = parent_sub
                    ancestors = ((head.calc, q.parent_pe), *head.ancestors)
            yield from shm.access(ctx, n=3)
            if size > 0:
                q.deposit(step, start, size, ancestors)
                # ownership moved from this rank's claim into the queue
                # (whole-group adoption covers the queue from here on)
                run.release_claim(ctx.rank, step, start, size)
                run.record_level_chunk(q.level - 1, step, start, size, q.parent_pe)
                sub = q.take(child)
                if sub is not None:
                    run.claim(ctx.rank, sub[3], sub[1], sub[2])
            else:
                shm.cells["global_done"] = 1
            yield from shm.unlock(ctx)
            yield from shm.sync(ctx)
            if sub is not None:
                return sub
            # parent exhausted while we refilled: loop once more to
            # observe the drained flag under the lock, then terminate

    # ------------------------------------------------------------------
    def _worker_loop(
        self,
        run: _Run,
        ctx: RankCtx,
        leaf: _LocalQueue,
        child: int,
        finish_times,
        chunk_counts,
        iter_counts,
    ):
        sim = run.sim
        trace = run.trace
        worker_name = ctx.name()
        n_chunks = 0
        n_iters = 0

        while True:
            # ---- stages 1-2: obtain a sub-chunk (refilling as needed) --
            t_obtain = sim.now
            sub = yield from self._take_from(run, ctx, leaf, child)
            if sub is None:
                if (
                    not run.faults_active
                    or run.executed_iterations >= run.workload.n
                ):
                    break
                # Failure-aware termination: the tier tree looks drained,
                # but a dead rank's reclaimed chunks may still be
                # re-deposited (the recovery clears ``global_done`` on
                # the target queue and its descendants).  Poll until
                # every iteration is accounted for somewhere.
                yield Timeout(run.costs.mpi.shm_poll_interval)
                continue

            # ---- stage 3: execute the sub-chunk -------------------------
            head, sub_start, sub_size, _step = sub
            if trace is not None and sim.now > t_obtain:
                trace.add(worker_name, t_obtain, sim.now, trace_mod.OBTAIN)
            # chunk-fetch wait feeds the ADAPT selectors along the
            # refill path (a no-op for every other technique — a
            # separate channel from record() so AWF-D/E stay bit-exact)
            obtain_wait = sim.now - t_obtain
            head.calc.record_wait(child, obtain_wait)
            for calc, pe in head.ancestors:
                calc.record_wait(pe, obtain_wait)
            duration = run.exec_time(sub_start, sub_size, ctx.node, ctx.core)
            t0 = sim.now
            yield ComputeOnce(duration)  # jittered: unique per chunk, skip interning
            if trace is not None:
                trace.add(worker_name, t0, sim.now, trace_mod.COMPUTE)
            # runtime feedback flows to every level along the refill
            # path, leaf first — adaptive techniques (AWF-*, AF) adapt
            # at whichever level they are placed, not just the root
            head.calc.record(child, sub_size, compute_time=duration)
            for calc, pe in head.ancestors:
                calc.record(pe, sub_size, compute_time=duration)
            # `head.local_step - 1` (not the `_step` captured at take
            # time) reproduces the original implementation's recording
            # bit-for-bit — the differential goldens pin it
            run.record_subchunk(head.local_step - 1, sub_start, sub_size, pe=ctx.rank)
            run.release_claim(ctx.rank, _step, sub_start, sub_size)
            n_chunks += 1
            n_iters += sub_size

        finish_times[ctx.rank] = sim.now
        chunk_counts[ctx.rank] = n_chunks
        iter_counts[ctx.rank] = n_iters

    # ------------------------------------------------------------------
    def _flat_worker_loop(
        self, run: _Run, ctx: RankCtx, queue: GlobalQueue,
        finish_times, chunk_counts, iter_counts,
    ):
        """Depth-1 stacks: every rank fetches from the global queue."""
        sim = run.sim
        trace = run.trace
        n_chunks = 0
        n_iters = 0
        while True:
            t_obtain = sim.now
            if run.faults_active and run.orphans:
                # a dead rank's reclaimed range: adopt it (claim before
                # the bookkeeping access so a crash mid-adoption cannot
                # lose it a second time), then pay one window read
                step, start, size = run.orphans.pop(0)
                run.claim(ctx.rank, step, start, size)
                yield from queue.window.get(ctx, "step")
            else:
                step, start, size = yield from queue.next_chunk(ctx, pe=ctx.rank)
            if size <= 0:
                if (
                    not run.faults_active
                    or run.executed_iterations >= run.workload.n
                ):
                    break
                # orphans may still arrive while dead ranks await
                # detection: poll instead of exiting
                yield Timeout(run.costs.mpi.shm_poll_interval)
                continue
            if trace is not None and sim.now > t_obtain:
                trace.add(ctx.name(), t_obtain, sim.now, trace_mod.OBTAIN)
            queue.calc.record_wait(ctx.rank, sim.now - t_obtain)
            run.record_chunk(step, start, size, pe=ctx.rank)
            duration = run.exec_time(start, size, ctx.node, ctx.core)
            t0 = sim.now
            yield ComputeOnce(duration)  # jittered: unique per chunk, skip interning
            if trace is not None:
                trace.add(ctx.name(), t0, sim.now, trace_mod.COMPUTE)
            queue.calc.record(ctx.rank, size, compute_time=duration)
            run.record_subchunk(step, start, size, pe=ctx.rank)
            run.release_claim(ctx.rank, step, start, size)
            n_chunks += 1
            n_iters += size
        finish_times[ctx.rank] = sim.now
        chunk_counts[ctx.rank] = n_chunks
        iter_counts[ctx.rank] = n_iters
