"""The paper's contribution: hierarchical DLS with the MPI+MPI approach.

Architecture (paper Section 3, Figure 1):

* one **global work queue** — an RMA window holding the latest
  scheduling step and total scheduled iterations (distributed chunk
  calculation, no master);
* one **local work queue per node** — an MPI-3 shared-memory window
  (``MPI_Win_allocate_shared``) guarded by exclusive
  ``MPI_Win_lock``/``MPI_Win_unlock`` (lock *polling*!) and
  ``MPI_Win_sync``;
* ``ppn`` MPI processes per node, each one an independent worker:

  1. lock the local queue and try to take a *sub-chunk* via the
     intra-node DLS technique;
  2. if the local queue is dry, unlock, obtain a *chunk* from the
     global queue via the inter-node DLS technique, re-lock, deposit
     the chunk, take the first sub-chunk;
  3. execute, repeat.

Nobody waits for anybody: the responsibility for refilling is not
pinned to a coordinator — whichever process drains the queue first
(the *fastest* process) refills it, and several processes may refill
concurrently (the queue holds a list of ranges).  There is no implicit
barrier at any point, which is exactly what Figure 3 illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import trace as trace_mod
from repro.core.technique_base import ChunkCalculator
from repro.models.base import ExecutionModel, GlobalQueue, _Run
from repro.sim.primitives import Compute, ComputeOnce
from repro.smpi.shm import SharedWindow
from repro.smpi.world import MpiWorld, RankCtx


@dataclass
class _QueuedChunk:
    """One deposited chunk in a node's local work queue."""

    inter_step: int
    start: int
    size: int
    taken: int = 0
    local_step: int = 0
    calc: Optional[ChunkCalculator] = None

    @property
    def remaining(self) -> int:
        return self.size - self.taken


class _LocalQueue:
    """Python-side view of one node's shared-memory work queue.

    All mutating methods must be called while the caller holds the
    shared window's lock; the simulated access costs are charged by
    the caller through ``SharedWindow.access``.
    """

    def __init__(self, run: _Run, node: int, shm: SharedWindow):
        self.run = run
        self.node = node
        self.shm = shm
        shm.cells.setdefault("global_done", 0)
        self.ranges: List[_QueuedChunk] = []
        shm.state["queue"] = self.ranges  # visible to tests/inspection

    def deposit(self, inter_step: int, start: int, size: int) -> None:
        calc = self.run.spec.intra.make_calculator(
            size,
            self.run.ppn,
            rng=self.run.sim.rng(f"intra-rnd.n{self.node}"),
            chunk_overhead=self.run.costs.chunk_calc,
        )
        self.ranges.append(
            _QueuedChunk(inter_step=inter_step, start=start, size=size, calc=calc)
        )

    def take(self, local_rank: int):
        """Take the next sub-chunk, or None if the queue is dry."""
        while self.ranges:
            head = self.ranges[0]
            size = head.calc.size_at(head.local_step, pe=local_rank)
            size = min(size, head.remaining)
            if size <= 0:
                self.ranges.pop(0)
                continue
            sub_start = head.start + head.taken
            head.taken += size
            head.local_step += 1
            if head.remaining == 0:
                self.ranges.pop(0)
            return head, sub_start, size
        return None


class MpiMpiModel(ExecutionModel):
    """Hierarchical DLS via MPI+MPI (the proposed approach)."""

    name = "mpi+mpi"

    def _execute(self, run: _Run) -> None:
        world = MpiWorld(run.sim, run.cluster, ppn=run.ppn, costs=run.costs)
        inter_calc = run.spec.inter.make_calculator(
            run.workload.n,
            run.cluster.n_nodes,
            rng=run.sim.rng("inter-rnd"),
            chunk_overhead=run.costs.chunk_calc,
        )
        queue = GlobalQueue(
            world,
            inter_calc,
            run.workload.n,
            host_rank=0,
            pinned=run.spec.inter.technique.pinned_per_pe,
        )
        local_queues = {
            node: _LocalQueue(run, node, world.create_shared_window(node, {}))
            for node in range(run.cluster.n_nodes)
        }
        finish_times = {}
        chunk_counts = {}
        iter_counts = {}

        def worker(ctx: RankCtx):
            yield from self._worker_loop(
                run, ctx, queue, local_queues[ctx.node], finish_times,
                chunk_counts, iter_counts,
            )

        processes = world.run(worker)
        for process, ctx in zip(processes, world.contexts):
            run.record_worker(
                name=ctx.name(),
                node=ctx.node,
                finish_time=finish_times[ctx.rank],
                process=process,
                n_chunks=chunk_counts[ctx.rank],
                n_iterations=iter_counts[ctx.rank],
            )
        run.counters["global_atomics"] = queue.window.n_atomics
        run.counters["remote_atomics"] = queue.window.n_remote_atomics
        run.counters["lock_stats"] = {
            node: lq.shm.contention_stats() for node, lq in local_queues.items()
        }
        run.counters["total_poll_wait"] = sum(
            lq.shm.total_poll_wait for lq in local_queues.values()
        )
        run.counters["lock_acquisitions"] = sum(
            lq.shm.n_acquisitions for lq in local_queues.values()
        )

    # ------------------------------------------------------------------
    def _worker_loop(
        self,
        run: _Run,
        ctx: RankCtx,
        queue: GlobalQueue,
        local: _LocalQueue,
        finish_times,
        chunk_counts,
        iter_counts,
    ):
        shm = local.shm
        sim = run.sim
        trace = run.trace
        worker_name = ctx.name()
        n_chunks = 0
        n_iters = 0

        while True:
            # ---- stage 1: try the local shared queue -------------------
            t_obtain = sim.now
            yield from shm.lock(ctx)
            yield from shm.access(ctx, n=3)  # head pointers + counters
            sub = local.take(ctx.local_rank)
            if sub is None:
                if shm.cells["global_done"]:
                    yield from shm.unlock(ctx)
                    break
                # ---- stage 2: this process is currently the fastest ----
                # It refills the local queue itself, holding the window
                # lock across the global fetch (paper Fig. 1 steps 1-2):
                # other local processes keep polling the lock meanwhile
                # instead of waiting for a designated coordinator.
                step, start, size = yield from queue.next_chunk(ctx, pe=ctx.node)
                yield from shm.access(ctx, n=3)
                if size > 0:
                    local.deposit(step, start, size)
                    run.record_chunk(step, start, size, pe=ctx.node)
                    sub = local.take(ctx.local_rank)
                else:
                    shm.cells["global_done"] = 1
                yield from shm.unlock(ctx)
                yield from shm.sync(ctx)
                if sub is None:
                    continue
            else:
                yield from shm.unlock(ctx)
                yield from shm.sync(ctx)

            # ---- stage 3: execute the sub-chunk -------------------------
            head, sub_start, sub_size = sub
            if trace is not None and sim.now > t_obtain:
                trace.add(worker_name, t_obtain, sim.now, trace_mod.OBTAIN)
            duration = run.exec_time(sub_start, sub_size, ctx.node, ctx.core)
            t0 = sim.now
            yield ComputeOnce(duration)  # jittered: unique per chunk, skip interning
            if trace is not None:
                trace.add(worker_name, t0, sim.now, trace_mod.COMPUTE)
            head.calc.record(ctx.local_rank, sub_size, compute_time=duration)
            queue.calc.record(ctx.node, sub_size, compute_time=duration)
            run.record_subchunk(head.local_step - 1, sub_start, sub_size, pe=ctx.rank)
            n_chunks += 1
            n_iters += sub_size

        finish_times[ctx.rank] = sim.now
        chunk_counts[ctx.rank] = n_chunks
        iter_counts[ctx.rank] = n_iters
