"""The baseline: hierarchical DLS with the hybrid MPI+OpenMP approach.

One MPI process per compute node participates in the distributed chunk
calculation (same global work queue as the MPI+MPI model).  Each chunk
is executed by the process's OpenMP team using the selected
``schedule`` clause; the **implicit barrier** that terminates every
worksharing loop forces all threads to wait for the slowest one before
the master can request the next chunk (paper Figure 2) — that idle
time is the cost the MPI+MPI approach eliminates.

The intra-node technique is translated to an OpenMP schedule through
:meth:`repro.somp.schedule.ScheduleSpec.from_technique`.  With
``intel_runtime=True`` (matching the paper's software stack) only
STATIC/SS/GSS are accepted; TSS/FAC2 raise
:class:`~repro.somp.schedule.UnsupportedScheduleError` exactly as they
were unavailable in the paper's MPI+OpenMP experiments.

``nowait_selffetch=True`` switches to the paper's Section 6
future-work variant: threads skip the barrier and fetch chunks
themselves under a serialising mutex (ablation A-3).

Three-level stacks (``X+Y+Z``) map onto **nested OpenMP parallelism**:
one MPI process per node, an outer worksharing level over the node's
sockets (one persistent *socket driver* + thread team per socket), and
the leaf ``schedule`` clause within each socket team.  Each global
chunk is carved across sockets by the middle technique
(self-scheduled — whichever socket driver drains the outer queue grabs
next), and the outer worksharing loop ends in its own implicit barrier
across sockets, just as the inner loops barrier across threads.  Depth
2 executes the exact code path of the original two-level model.

Four-level stacks (``W+X+Y+Z``) nest once more: each socket sub-chunk
is carved by the level-2 technique across the socket's **NUMA
domains** (one persistent *NUMA driver* + thread team per NUMA
domain), with the leaf ``schedule`` clause inside each NUMA team and a
per-socket implicit barrier across NUMA domains after every socket
sub-chunk.  Depth 3 executes the exact code path of the original
three-level implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.interconnect import Tier, tier_between
from repro.core.technique_base import ChunkCalculator
from repro.models.base import ExecutionModel, GlobalQueue, _Run
from repro.sim.primitives import Overhead
from repro.sim.resources import Barrier
from repro.smpi.world import MpiWorld, RankCtx
from repro.somp.schedule import ScheduleSpec
from repro.somp.team import OmpTeam


def _team_barrier_penalty(run: "_Run", node_spec, cores) -> float:
    """Locality surcharge of a thread team's implicit barrier.

    The team's span is the widest tier between its first core and any
    other member (classified by the cascade's single owner,
    :func:`repro.cluster.interconnect.tier_between`): a team spanning
    several sockets pays the same-node tier penalty per barrier,
    spanning several NUMA domains of one socket pays the same-socket
    penalty, and a single-NUMA team pays nothing.  Zero with the
    default (distance-blind) cost knobs.
    """
    cores = list(cores)
    first = (0, node_spec.socket_of_core(cores[0]), node_spec.numa_of_core(cores[0]))
    tier = max(
        tier_between(
            first, (0, node_spec.socket_of_core(core), node_spec.numa_of_core(core))
        )
        for core in cores
    )
    return run.costs.mpi.tier_atomic_penalty(tier)


@dataclass
class _OuterRound:
    """One global chunk being carved across a node's sockets."""

    src_step: int
    start: int
    size: int
    calc: ChunkCalculator
    counter: int = 0
    scheduled: int = 0
    grabs: Dict[int, int] = field(default_factory=dict)

    def grab(self, socket_pos: int):
        """Self-scheduled outer grab: (step, abs_start, size) or None."""
        remaining = self.size - self.scheduled
        if remaining <= 0:
            return None
        size = self.calc.size_at(self.counter, pe=socket_pos)
        if size <= 0:
            return None
        size = min(size, remaining)
        out = (self.counter, self.start + self.scheduled, size)
        self.scheduled += size
        self.counter += 1
        self.grabs[socket_pos] = self.grabs.get(socket_pos, 0) + 1
        return out


class MpiOpenMpModel(ExecutionModel):
    """Hierarchical DLS via hybrid MPI+OpenMP (the existing approach)."""

    name = "mpi+openmp"

    def __init__(self, intel_runtime: bool = False, nowait_selffetch: bool = False):
        #: restrict schedules to the Intel runtime's static/dynamic/guided
        self.intel_runtime = intel_runtime
        #: use the nowait future-work execution style (ablation A-3)
        self.nowait_selffetch = nowait_selffetch

    # -- shared setup --------------------------------------------------
    def _setup(self, run: _Run):
        """One MPI process per node + the global queue + the leaf
        ``schedule`` clause (identical for depth 2 and depth 3)."""
        world = MpiWorld(run.sim, run.cluster, ppn=1, costs=run.costs)
        inter_calc = run.spec.inter.make_calculator(
            run.workload.n,
            run.cluster.n_nodes,
            rng=run.sim.rng("inter-rnd"),
            chunk_overhead=run.costs.chunk_calc,
        )
        queue = GlobalQueue(
            world,
            inter_calc,
            run.workload.n,
            host_rank=0,
            pinned=run.spec.inter.technique.pinned_per_pe,
        )
        leaf = run.spec.intra  # the last level drives the schedule clause
        omp_spec = ScheduleSpec.from_technique(
            leaf.technique.name,
            extensions=not self.intel_runtime,
        )
        if leaf.min_chunk > 1:
            omp_spec = ScheduleSpec(omp_spec.kind, leaf.min_chunk)
        return world, inter_calc, queue, omp_spec

    @staticmethod
    def _team_thread_stats(team: OmpTeam):
        """Aggregate per-thread executed/grab counts over a team's phases."""
        executed: Dict[int, int] = {}
        grabs: Dict[int, int] = {}
        for phase in team.phases:
            for tid, n_it in phase.executed_per_thread.items():
                executed[tid] = executed.get(tid, 0) + n_it
            for tid, n_g in phase.grabs.items():
                grabs[tid] = grabs.get(tid, 0) + n_g
        return executed, grabs

    def _execute(self, run: _Run) -> None:
        depth = run.spec.depth
        if depth in (3, 4):
            if self.nowait_selffetch:
                raise ValueError(
                    "the nowait self-fetch variant (ablation A-3) is "
                    "defined for two-level stacks only; got "
                    f"{run.spec.label}"
                )
            if depth == 3:
                self._execute_three_level(run)
            else:
                self._execute_four_level(run)
            return
        if depth != 2:
            raise ValueError(
                "mpi+openmp composes one MPI level with OpenMP worksharing: "
                "use a depth-2 stack (node -> core), a depth-3 stack "
                "(node -> socket -> core) or a depth-4 stack "
                f"(node -> socket -> numa -> core); got depth {depth} "
                f"({run.spec.label})"
            )
        world, inter_calc, queue, omp_spec = self._setup(run)
        n_threads = run.ppn

        teams: dict[int, OmpTeam] = {}
        finish_times: dict[int, float] = {}

        def node_main(ctx: RankCtx):
            node_spec = run.cluster.node_of(ctx.node)
            team = OmpTeam(
                run.sim,
                n_threads,
                run.costs,
                name=f"n{ctx.node}",
                weights=None,
                rng=run.sim.rng(f"omp-rnd.n{ctx.node}"),
                trace=run.trace,
                barrier_penalty=_team_barrier_penalty(
                    run, node_spec, range(n_threads)
                ),
            )
            teams[ctx.node] = team

            def body_time(start: int, size: int, tid: int) -> float:
                run.record_subchunk(0, start, size, pe=ctx.node * n_threads + tid)
                return run.exec_time(start, size, ctx.node, tid)

            if self.nowait_selffetch:
                yield from self._selffetch_main(run, ctx, queue, team, omp_spec, body_time)
            else:
                while True:
                    step, start, size = yield from queue.next_chunk(ctx, pe=ctx.node)
                    if size <= 0:
                        break
                    run.record_chunk(step, start, size, pe=ctx.node)
                    t0 = run.sim.now
                    yield from team.parallel_for(start, size, omp_spec, body_time)
                    # runtime feedback for adaptive inter-node techniques:
                    # the node processed `size` iterations in (now - t0)
                    inter_calc.record(ctx.node, size, compute_time=run.sim.now - t0)
            finish_times[ctx.node] = run.sim.now
            team.shutdown()

        world.run(node_main)

        # Per-worker stats: each OpenMP thread is a worker.  Thread 0 is
        # the rank process itself.
        for ctx in world.contexts:
            team = teams[ctx.node]
            rank_process = ctx.process
            thread_processes = [rank_process, *team.threads]
            executed, grabs = self._team_thread_stats(team)
            for tid, process in enumerate(thread_processes):
                run.record_worker(
                    name=f"n{ctx.node}.t{tid}",
                    node=ctx.node,
                    finish_time=finish_times[ctx.node],
                    process=process,
                    n_chunks=grabs.get(tid, 0),
                    n_iterations=executed.get(tid, 0),
                )
        run.counters["global_atomics"] = queue.window.n_atomics
        run.counters["remote_atomics"] = queue.window.n_remote_atomics
        run.counters["omp_phases"] = sum(len(t.phases) for t in teams.values())
        run.counters["omp_grabs"] = sum(
            t.stats()["total_grabs"] for t in teams.values()
        )

    # ------------------------------------------------------------------
    def _execute_three_level(self, run: _Run) -> None:
        """Nested OpenMP: outer worksharing over sockets, inner per socket.

        Per node and per global chunk, the socket drivers self-schedule
        the middle technique's sub-chunks over their teams and then meet
        at the outer implicit barrier; the rank process (driver of the
        first socket) fetches the next global chunk only after that
        barrier — the node-level analogue of the paper's Figure 2.
        """
        run.n_sched_levels = 3
        world, inter_calc, queue, omp_spec = self._setup(run)
        n_threads = run.ppn

        #: (node, socket) -> team, plus per-node bookkeeping for stats
        teams: Dict[tuple, OmpTeam] = {}
        socket_cores: Dict[tuple, List[int]] = {}
        finish_times: Dict[int, float] = {}
        outer_rounds = [0]

        def node_main(ctx: RankCtx):
            sim = run.sim
            node = ctx.node
            node_spec = run.cluster.node_of(node)
            groups: Dict[int, List[int]] = {}
            for core in range(n_threads):
                groups.setdefault(node_spec.socket_of_core(core), []).append(core)
            sockets = sorted(groups)
            n_sockets = len(sockets)
            node_teams: List[OmpTeam] = []
            for socket in sockets:
                team = OmpTeam(
                    sim,
                    len(groups[socket]),
                    run.costs,
                    name=f"n{node}.s{socket}",
                    weights=None,
                    rng=sim.rng(f"omp-rnd.n{node}.s{socket}"),
                    trace=run.trace,
                    barrier_penalty=_team_barrier_penalty(
                        run, node_spec, groups[socket]
                    ),
                )
                teams[(node, socket)] = team
                socket_cores[(node, socket)] = groups[socket]
                node_teams.append(team)
            outer_barrier = Barrier(sim, n_sockets, name=f"omp-outer.n{node}")
            gate_box = {"gate": sim.event(f"omp-outer.n{node}.round0")}
            omp = run.costs.omp
            # the outer worksharing barrier synchronises across sockets
            outer_penalty = (
                run.costs.mpi.tier_atomic_penalty(Tier.SAME_NODE)
                if n_sockets > 1
                else 0.0
            )

            def body_time_for(socket_pos: int):
                cores = socket_cores[(node, sockets[socket_pos])]

                def body_time(start: int, size: int, tid: int) -> float:
                    core = cores[tid]
                    run.record_subchunk(0, start, size, pe=node * n_threads + core)
                    return run.exec_time(start, size, node, core)

                return body_time

            body_times = [body_time_for(pos) for pos in range(n_sockets)]

            def drive_round(socket_pos: int, round_: _OuterRound):
                """One socket driver's share of one global chunk."""
                team = node_teams[socket_pos]
                while True:
                    # outer worksharing grab: atomic capture + middle
                    # technique's chunk formula
                    yield Overhead(omp.atomic + run.costs.chunk_calc)
                    grabbed = round_.grab(socket_pos)
                    if grabbed is None:
                        break
                    step, sub_start, sub_size = grabbed
                    run.record_level_chunk(1, step, sub_start, sub_size, pe=socket_pos)
                    t0 = sim.now
                    yield from team.parallel_for(
                        sub_start, sub_size, omp_spec, body_times[socket_pos]
                    )
                    round_.calc.record(
                        socket_pos, sub_size, compute_time=sim.now - t0
                    )
                # the outer worksharing loop's own implicit barrier
                yield Overhead(omp.barrier_time(n_sockets) + outer_penalty)
                yield from outer_barrier.wait()

            def driver_main(socket_pos: int):
                gate = gate_box["gate"]
                while True:
                    round_ = yield gate
                    gate = gate_box["gate"]
                    if round_ is None:
                        return
                    yield from drive_round(socket_pos, round_)

            driver_processes = [
                sim.spawn(driver_main(pos), name=f"n{node}.s{sockets[pos]}.drv")
                for pos in range(1, n_sockets)
            ]
            for pos, process in enumerate(driver_processes, start=1):
                teams[(node, sockets[pos])].driver_process = process

            round_index = 0
            while True:
                step, start, size = yield from queue.next_chunk(ctx, pe=node)
                if size <= 0:
                    break
                run.record_chunk(step, start, size, pe=node)
                mid_calc = run.spec.levels[1].make_calculator(
                    size,
                    n_sockets,
                    rng=sim.rng(f"mid-rnd.n{node}"),
                    chunk_overhead=run.costs.chunk_calc,
                )
                round_ = _OuterRound(
                    src_step=step, start=start, size=size, calc=mid_calc
                )
                round_index += 1
                outer_rounds[0] += 1
                gate, gate_box["gate"] = gate_box["gate"], sim.event(
                    f"omp-outer.n{node}.round{round_index}"
                )
                gate.trigger(round_)
                t0 = sim.now
                yield from drive_round(0, round_)
                # runtime feedback for adaptive inter-node techniques
                inter_calc.record(node, size, compute_time=sim.now - t0)
            finish_times[node] = sim.now
            gate_box["gate"].trigger(None)
            for team in node_teams:
                team.shutdown()

        world.run(node_main)

        # Per-worker stats: each OpenMP thread of each socket team is a
        # worker.  Thread 0 of the first socket's team is the rank
        # process itself; thread 0 of every other team is its driver.
        for ctx in world.contexts:
            node = ctx.node
            node_keys = sorted(k for k in teams if k[0] == node)
            for position, key in enumerate(node_keys):
                team = teams[key]
                driver = ctx.process if position == 0 else team.driver_process
                thread_processes = [driver, *team.threads]
                executed, grabs = self._team_thread_stats(team)
                for tid, process in enumerate(thread_processes):
                    run.record_worker(
                        name=f"n{node}.s{key[1]}.t{tid}",
                        node=node,
                        finish_time=finish_times[node],
                        process=process,
                        n_chunks=grabs.get(tid, 0),
                        n_iterations=executed.get(tid, 0),
                    )
        run.counters["global_atomics"] = queue.window.n_atomics
        run.counters["remote_atomics"] = queue.window.n_remote_atomics
        run.counters["omp_phases"] = sum(len(t.phases) for t in teams.values())
        run.counters["omp_grabs"] = sum(
            t.stats()["total_grabs"] for t in teams.values()
        )
        run.counters["omp_outer_rounds"] = outer_rounds[0]

    # ------------------------------------------------------------------
    def _execute_four_level(self, run: _Run) -> None:
        """Doubly-nested OpenMP: sockets, then NUMA domains, then threads.

        The depth-3 structure repeated one tier down: per node and per
        global chunk, the socket drivers self-schedule the level-1
        technique's sub-chunks; each socket sub-chunk is then carved by
        the level-2 technique across the socket's NUMA domains, whose
        persistent *NUMA drivers* self-schedule grabs onto their thread
        teams (one :class:`OmpTeam` per NUMA domain) running the leaf
        ``schedule`` clause.  Each nesting level ends in its own
        implicit barrier: NUMA drivers meet at a per-socket barrier
        after every socket sub-chunk, sockets meet at the per-node
        barrier after every global chunk.
        """
        run.n_sched_levels = 4
        world, inter_calc, queue, omp_spec = self._setup(run)
        n_threads = run.ppn

        #: (node, socket, numa) -> team, plus bookkeeping for stats
        teams: Dict[tuple, OmpTeam] = {}
        numa_cores: Dict[tuple, List[int]] = {}
        finish_times: Dict[int, float] = {}
        outer_rounds = [0]
        inner_rounds = [0]

        def node_main(ctx: RankCtx):
            sim = run.sim
            node = ctx.node
            node_spec = run.cluster.node_of(node)
            #: socket -> numa -> [cores] (placement-occupied tiers only)
            groups: Dict[int, Dict[int, List[int]]] = {}
            for core in range(n_threads):
                socket = node_spec.socket_of_core(core)
                numa = node_spec.numa_of_core(core)
                groups.setdefault(socket, {}).setdefault(numa, []).append(core)
            sockets = sorted(groups)
            n_sockets = len(sockets)
            socket_numas = {socket: sorted(groups[socket]) for socket in sockets}
            for socket in sockets:
                for numa in socket_numas[socket]:
                    team = OmpTeam(
                        sim,
                        len(groups[socket][numa]),
                        run.costs,
                        name=f"n{node}.s{socket}.m{numa}",
                        weights=None,
                        rng=sim.rng(f"omp-rnd.n{node}.s{socket}.m{numa}"),
                        trace=run.trace,
                        barrier_penalty=_team_barrier_penalty(
                            run, node_spec, groups[socket][numa]
                        ),
                    )
                    teams[(node, socket, numa)] = team
                    numa_cores[(node, socket, numa)] = groups[socket][numa]
            omp = run.costs.omp
            # cross-socket / cross-NUMA surcharges for the nested
            # worksharing barriers (zero with default knobs)
            outer_penalty = (
                run.costs.mpi.tier_atomic_penalty(Tier.SAME_NODE)
                if n_sockets > 1
                else 0.0
            )
            inner_penalties = {
                socket: (
                    run.costs.mpi.tier_atomic_penalty(Tier.SAME_SOCKET)
                    if len(socket_numas[socket]) > 1
                    else 0.0
                )
                for socket in sockets
            }
            outer_barrier = Barrier(sim, n_sockets, name=f"omp-outer.n{node}")
            outer_gate = {"gate": sim.event(f"omp-outer.n{node}.round0")}
            inner_barriers = {
                socket: Barrier(
                    sim,
                    len(socket_numas[socket]),
                    name=f"omp-inner.n{node}.s{socket}",
                )
                for socket in sockets
            }
            inner_gates = {
                socket: {"gate": sim.event(f"omp-inner.n{node}.s{socket}.round0")}
                for socket in sockets
            }
            inner_counters = {socket: 0 for socket in sockets}

            def body_time_for(socket: int, numa: int):
                cores = numa_cores[(node, socket, numa)]

                def body_time(start: int, size: int, tid: int) -> float:
                    core = cores[tid]
                    run.record_subchunk(0, start, size, pe=node * n_threads + core)
                    return run.exec_time(start, size, node, core)

                return body_time

            body_times = {
                (socket, numa): body_time_for(socket, numa)
                for socket in sockets
                for numa in socket_numas[socket]
            }

            def drive_numa_round(socket: int, numa_pos: int, round_: _OuterRound):
                """One NUMA driver's share of one socket sub-chunk."""
                numa = socket_numas[socket][numa_pos]
                team = teams[(node, socket, numa)]
                while True:
                    yield Overhead(omp.atomic + run.costs.chunk_calc)
                    grabbed = round_.grab(numa_pos)
                    if grabbed is None:
                        break
                    step, sub_start, sub_size = grabbed
                    run.record_level_chunk(2, step, sub_start, sub_size, pe=numa_pos)
                    t0 = sim.now
                    yield from team.parallel_for(
                        sub_start, sub_size, omp_spec, body_times[(socket, numa)]
                    )
                    round_.calc.record(
                        numa_pos, sub_size, compute_time=sim.now - t0
                    )
                # the inner worksharing loop's own implicit barrier
                yield Overhead(
                    omp.barrier_time(len(socket_numas[socket]))
                    + inner_penalties[socket]
                )
                yield from inner_barriers[socket].wait()

            def numa_driver_main(socket: int, numa_pos: int):
                gate = inner_gates[socket]["gate"]
                while True:
                    round_ = yield gate
                    gate = inner_gates[socket]["gate"]
                    if round_ is None:
                        return
                    yield from drive_numa_round(socket, numa_pos, round_)

            def drive_socket_round(socket_pos: int, round_: _OuterRound):
                """One socket driver's share of one global chunk: grab
                socket sub-chunks, carve each across the NUMA teams."""
                socket = sockets[socket_pos]
                n_numa = len(socket_numas[socket])
                while True:
                    yield Overhead(omp.atomic + run.costs.chunk_calc)
                    grabbed = round_.grab(socket_pos)
                    if grabbed is None:
                        break
                    step, sub_start, sub_size = grabbed
                    run.record_level_chunk(1, step, sub_start, sub_size, pe=socket_pos)
                    numa_calc = run.spec.levels[2].make_calculator(
                        sub_size,
                        n_numa,
                        rng=sim.rng(f"numa-rnd.n{node}.s{socket}"),
                        chunk_overhead=run.costs.chunk_calc,
                    )
                    inner = _OuterRound(
                        src_step=step, start=sub_start, size=sub_size,
                        calc=numa_calc,
                    )
                    inner_counters[socket] += 1
                    inner_rounds[0] += 1
                    gate, inner_gates[socket]["gate"] = (
                        inner_gates[socket]["gate"],
                        sim.event(
                            f"omp-inner.n{node}.s{socket}"
                            f".round{inner_counters[socket]}"
                        ),
                    )
                    gate.trigger(inner)
                    t0 = sim.now
                    yield from drive_numa_round(socket, 0, inner)
                    round_.calc.record(
                        socket_pos, sub_size, compute_time=sim.now - t0
                    )
                # the outer worksharing loop's own implicit barrier
                yield Overhead(omp.barrier_time(n_sockets) + outer_penalty)
                yield from outer_barrier.wait()

            def socket_driver_main(socket_pos: int):
                gate = outer_gate["gate"]
                while True:
                    round_ = yield gate
                    gate = outer_gate["gate"]
                    if round_ is None:
                        return
                    yield from drive_socket_round(socket_pos, round_)

            # the rank process drives socket 0 / NUMA 0; every other tier
            # group gets a persistent driver process (thread 0 of its team)
            teams[(node, sockets[0], socket_numas[sockets[0]][0])].driver_process = (
                ctx.process
            )
            for pos in range(1, n_sockets):
                socket = sockets[pos]
                process = sim.spawn(
                    socket_driver_main(pos), name=f"n{node}.s{socket}.drv"
                )
                teams[(node, socket, socket_numas[socket][0])].driver_process = (
                    process
                )
            for socket in sockets:
                for numa_pos in range(1, len(socket_numas[socket])):
                    numa = socket_numas[socket][numa_pos]
                    process = sim.spawn(
                        numa_driver_main(socket, numa_pos),
                        name=f"n{node}.s{socket}.m{numa}.drv",
                    )
                    teams[(node, socket, numa)].driver_process = process

            round_index = 0
            while True:
                step, start, size = yield from queue.next_chunk(ctx, pe=node)
                if size <= 0:
                    break
                run.record_chunk(step, start, size, pe=node)
                mid_calc = run.spec.levels[1].make_calculator(
                    size,
                    n_sockets,
                    rng=sim.rng(f"mid-rnd.n{node}"),
                    chunk_overhead=run.costs.chunk_calc,
                )
                round_ = _OuterRound(
                    src_step=step, start=start, size=size, calc=mid_calc
                )
                round_index += 1
                outer_rounds[0] += 1
                gate, outer_gate["gate"] = outer_gate["gate"], sim.event(
                    f"omp-outer.n{node}.round{round_index}"
                )
                gate.trigger(round_)
                t0 = sim.now
                yield from drive_socket_round(0, round_)
                # runtime feedback for adaptive inter-node techniques
                inter_calc.record(node, size, compute_time=sim.now - t0)
            finish_times[node] = sim.now
            outer_gate["gate"].trigger(None)
            for socket in sockets:
                inner_gates[socket]["gate"].trigger(None)
            for socket in sockets:
                for numa in socket_numas[socket]:
                    teams[(node, socket, numa)].shutdown()

        world.run(node_main)

        # Per-worker stats: each OpenMP thread of each NUMA team is a
        # worker; thread 0 of every team is its driver (the rank process
        # for the very first team of each node).
        for ctx in world.contexts:
            node = ctx.node
            node_keys = sorted(k for k in teams if k[0] == node)
            for key in node_keys:
                team = teams[key]
                thread_processes = [team.driver_process, *team.threads]
                executed, grabs = self._team_thread_stats(team)
                for tid, process in enumerate(thread_processes):
                    run.record_worker(
                        name=f"n{node}.s{key[1]}.m{key[2]}.t{tid}",
                        node=node,
                        finish_time=finish_times[node],
                        process=process,
                        n_chunks=grabs.get(tid, 0),
                        n_iterations=executed.get(tid, 0),
                    )
        run.counters["global_atomics"] = queue.window.n_atomics
        run.counters["remote_atomics"] = queue.window.n_remote_atomics
        run.counters["omp_phases"] = sum(len(t.phases) for t in teams.values())
        run.counters["omp_grabs"] = sum(
            t.stats()["total_grabs"] for t in teams.values()
        )
        run.counters["omp_outer_rounds"] = outer_rounds[0]
        run.counters["omp_inner_rounds"] = inner_rounds[0]

    # ------------------------------------------------------------------
    def _selffetch_main(self, run, ctx, queue, team, omp_spec, body_time):
        """Ablation A-3: threads fetch chunks themselves (nowait style)."""

        def fetch():
            step, start, size = yield from queue.next_chunk(ctx, pe=ctx.node)
            if size <= 0:
                return None
            run.record_chunk(step, start, size, pe=ctx.node)
            return (start, size)

        yield from team.parallel_region_selffetch(omp_spec, body_time, fetch)
