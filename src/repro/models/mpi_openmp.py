"""The baseline: hierarchical DLS with the hybrid MPI+OpenMP approach.

One MPI process per compute node participates in the distributed chunk
calculation (same global work queue as the MPI+MPI model).  Each chunk
is executed by the process's OpenMP team using the selected
``schedule`` clause; the **implicit barrier** that terminates every
worksharing loop forces all threads to wait for the slowest one before
the master can request the next chunk (paper Figure 2) — that idle
time is the cost the MPI+MPI approach eliminates.

The intra-node technique is translated to an OpenMP schedule through
:meth:`repro.somp.schedule.ScheduleSpec.from_technique`.  With
``intel_runtime=True`` (matching the paper's software stack) only
STATIC/SS/GSS are accepted; TSS/FAC2 raise
:class:`~repro.somp.schedule.UnsupportedScheduleError` exactly as they
were unavailable in the paper's MPI+OpenMP experiments.

``nowait_selffetch=True`` switches to the paper's Section 6
future-work variant: threads skip the barrier and fetch chunks
themselves under a serialising mutex (ablation A-3).
"""

from __future__ import annotations

from repro.models.base import ExecutionModel, GlobalQueue, _Run
from repro.smpi.world import MpiWorld, RankCtx
from repro.somp.schedule import ScheduleSpec
from repro.somp.team import OmpTeam


class MpiOpenMpModel(ExecutionModel):
    """Hierarchical DLS via hybrid MPI+OpenMP (the existing approach)."""

    name = "mpi+openmp"

    def __init__(self, intel_runtime: bool = False, nowait_selffetch: bool = False):
        #: restrict schedules to the Intel runtime's static/dynamic/guided
        self.intel_runtime = intel_runtime
        #: use the nowait future-work execution style (ablation A-3)
        self.nowait_selffetch = nowait_selffetch

    def _execute(self, run: _Run) -> None:
        # one MPI process per node; its team has `ppn` threads
        world = MpiWorld(run.sim, run.cluster, ppn=1, costs=run.costs)
        n_threads = run.ppn
        inter_calc = run.spec.inter.make_calculator(
            run.workload.n,
            run.cluster.n_nodes,
            rng=run.sim.rng("inter-rnd"),
            chunk_overhead=run.costs.chunk_calc,
        )
        queue = GlobalQueue(
            world,
            inter_calc,
            run.workload.n,
            host_rank=0,
            pinned=run.spec.inter.technique.pinned_per_pe,
        )
        omp_spec = ScheduleSpec.from_technique(
            run.spec.intra.technique.name,
            extensions=not self.intel_runtime,
        )
        if run.spec.intra.min_chunk > 1:
            omp_spec = ScheduleSpec(omp_spec.kind, run.spec.intra.min_chunk)

        teams: dict[int, OmpTeam] = {}
        finish_times: dict[int, float] = {}

        def node_main(ctx: RankCtx):
            team = OmpTeam(
                run.sim,
                n_threads,
                run.costs,
                name=f"n{ctx.node}",
                weights=None,
                rng=run.sim.rng(f"omp-rnd.n{ctx.node}"),
                trace=run.trace,
            )
            teams[ctx.node] = team

            def body_time(start: int, size: int, tid: int) -> float:
                run.record_subchunk(0, start, size, pe=ctx.node * n_threads + tid)
                return run.exec_time(start, size, ctx.node, tid)

            if self.nowait_selffetch:
                yield from self._selffetch_main(run, ctx, queue, team, omp_spec, body_time)
            else:
                while True:
                    step, start, size = yield from queue.next_chunk(ctx, pe=ctx.node)
                    if size <= 0:
                        break
                    run.record_chunk(step, start, size, pe=ctx.node)
                    t0 = run.sim.now
                    yield from team.parallel_for(start, size, omp_spec, body_time)
                    # runtime feedback for adaptive inter-node techniques:
                    # the node processed `size` iterations in (now - t0)
                    inter_calc.record(ctx.node, size, compute_time=run.sim.now - t0)
            finish_times[ctx.node] = run.sim.now
            team.shutdown()

        world.run(node_main)

        # Per-worker stats: each OpenMP thread is a worker.  Thread 0 is
        # the rank process itself.
        for ctx in world.contexts:
            team = teams[ctx.node]
            rank_process = ctx.process
            thread_processes = [rank_process, *team.threads]
            executed = {}
            grabs = {}
            for phase in team.phases:
                for tid, n_it in phase.executed_per_thread.items():
                    executed[tid] = executed.get(tid, 0) + n_it
                for tid, n_g in phase.grabs.items():
                    grabs[tid] = grabs.get(tid, 0) + n_g
            for tid, process in enumerate(thread_processes):
                run.record_worker(
                    name=f"n{ctx.node}.t{tid}",
                    node=ctx.node,
                    finish_time=finish_times[ctx.node],
                    process=process,
                    n_chunks=grabs.get(tid, 0),
                    n_iterations=executed.get(tid, 0),
                )
        run.counters["global_atomics"] = queue.window.n_atomics
        run.counters["remote_atomics"] = queue.window.n_remote_atomics
        run.counters["omp_phases"] = sum(len(t.phases) for t in teams.values())
        run.counters["omp_grabs"] = sum(
            t.stats()["total_grabs"] for t in teams.values()
        )

    # ------------------------------------------------------------------
    def _selffetch_main(self, run, ctx, queue, team, omp_spec, body_time):
        """Ablation A-3: threads fetch chunks themselves (nowait style)."""

        def fetch():
            step, start, size = yield from queue.next_chunk(ctx, pe=ctx.node)
            if size <= 0:
                return None
            run.record_chunk(step, start, size, pe=ctx.node)
            return (start, size)

        yield from team.parallel_region_selffetch(omp_spec, body_time, fetch)
