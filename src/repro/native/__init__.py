"""Native backend (S9): really execute workloads on Python threads.

The simulator predicts timing; this backend actually *runs* the
workload kernels (Mandelbrot escape counts, spin-image generation)
under the very same :class:`~repro.core.technique_base.Technique`
chunk calculators, using shared-counter work queues protected by
real locks — a faithful single-machine analogue of the paper's
shared-memory work queue.

Use it for correctness validation (every iteration executed exactly
once, results identical to serial execution) and for demonstrating the
API on a laptop.  It is *not* a performance vehicle: CPython's GIL
serialises pure-Python sections (NumPy kernels release the GIL, so
modest real speedups do occur).
"""

from repro.native.runner import NativeResult, NativeRunner

__all__ = ["NativeResult", "NativeRunner"]
