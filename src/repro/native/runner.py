"""Really-parallel execution of workloads with DLS chunk calculators.

Two execution modes mirror the paper's architectures on one machine:

* **flat** — all workers share one work queue (a counter + the
  technique calculator behind one lock), i.e. the distributed
  chunk-calculation approach collapsed onto shared memory;
* **hierarchical** — workers form groups; each group has a local queue
  refilled from the global queue by whichever group member drains it
  first — exactly the MPI+MPI design with threads standing in for MPI
  processes and a ``threading.Lock`` standing in for ``MPI_Win_lock``.

Every grab goes through the same :class:`ChunkCalculator` objects the
simulator uses, so schedule correctness properties proven in the
simulator transfer to real executions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.chunking import Chunk, verify_schedule
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.workloads.base import Workload


@dataclass
class NativeResult:
    """Outcome of one real execution."""

    workload: str
    mode: str
    n_workers: int
    wall_seconds: float
    #: chunks in grab order (worker-level)
    chunks: List[Chunk]
    #: per-worker executed iteration counts
    per_worker_iterations: Dict[int, int]
    #: per-worker busy seconds (sum of kernel times)
    per_worker_busy: Dict[int, float]
    #: concatenated kernel outputs, indexable by iteration (if collected)
    outputs: Optional[Dict[int, Any]] = field(default=None, repr=False)

    @property
    def total_iterations(self) -> int:
        return sum(self.per_worker_iterations.values())

    def verify(self, n: int) -> None:
        """Assert the execution tiled the iteration space exactly."""
        verify_schedule(self.chunks, n)


class _GlobalQueue:
    """Lock-protected (calculator, step, scheduled) triple."""

    def __init__(self, calc, n: int):
        self.calc = calc
        self.n = n
        self.step = 0
        self.scheduled = 0
        self.lock = threading.Lock()

    def next_chunk(self, pe: int) -> Optional[Tuple[int, int, int]]:
        with self.lock:
            if self.scheduled >= self.n:
                return None
            size = self.calc.size_at(self.step, pe=pe)
            if size <= 0:
                return None
            size = min(size, self.n - self.scheduled)
            out = (self.step, self.scheduled, size)
            self.step += 1
            self.scheduled += size
            return out


class _LocalQueue:
    """Per-group queue: the shared-memory local work queue analogue."""

    def __init__(self, spec: LevelSpec, group_size: int):
        self.spec = spec
        self.group_size = group_size
        self.lock = threading.Lock()
        self.ranges: List[Dict[str, Any]] = []
        self.global_done = False

    def deposit(self, start: int, size: int) -> None:
        self.ranges.append(
            {
                "start": start,
                "size": size,
                "taken": 0,
                "step": 0,
                "calc": self.spec.make_calculator(size, self.group_size),
            }
        )

    def take(self, local_pe: int) -> Optional[Tuple[int, int]]:
        while self.ranges:
            head = self.ranges[0]
            remaining = head["size"] - head["taken"]
            if remaining <= 0:
                self.ranges.pop(0)
                continue
            size = head["calc"].size_at(head["step"], pe=local_pe)
            size = min(size, remaining)
            if size <= 0:
                self.ranges.pop(0)
                continue
            start = head["start"] + head["taken"]
            head["taken"] += size
            head["step"] += 1
            return (start, size)
        return None


class NativeRunner:
    """Run a workload's real kernels under DLS scheduling on threads."""

    def __init__(
        self,
        workload: Workload,
        n_workers: int = 4,
        collect_outputs: bool = False,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if workload.executor is None:
            raise ValueError(
                f"workload {workload.name!r} has no real executor; the native "
                "backend runs kernels, not cost models"
            )
        self.workload = workload
        self.n_workers = n_workers
        self.collect_outputs = collect_outputs

    # ------------------------------------------------------------------
    def run_flat(self, technique: "str | Any", **level_kwargs: Any) -> NativeResult:
        """Single-level self-scheduling across all workers."""
        spec = LevelSpec.of(technique, **level_kwargs)
        calc = spec.make_calculator(
            self.workload.n, self.n_workers, rng=np.random.default_rng(0)
        )
        queue = _GlobalQueue(calc, self.workload.n)

        def worker_loop(pe: int, record) -> None:
            while True:
                grabbed = queue.next_chunk(pe)
                if grabbed is None:
                    return
                step, start, size = grabbed
                record(pe, step, start, size)

        return self._execute("flat", worker_loop)

    def run_hierarchical(
        self,
        spec: HierarchicalSpec,
        n_groups: int,
    ) -> NativeResult:
        """Two-level scheduling: groups with local queues (MPI+MPI style).

        Deeper stacks project onto the native thread pool's two tiers:
        the root level (``spec.inter``) feeds the global queue and the
        leaf level (``spec.intra``) carves each group's deposits —
        intermediate levels have no thread-pool tier to map to here and
        are exercised by the simulator models instead.
        """
        if self.n_workers % n_groups != 0:
            raise ValueError(
                f"{self.n_workers} workers cannot form {n_groups} equal groups"
            )
        group_size = self.n_workers // n_groups
        inter_calc = spec.inter.make_calculator(
            self.workload.n, n_groups, rng=np.random.default_rng(0)
        )
        queue = _GlobalQueue(inter_calc, self.workload.n)
        locals_ = [_LocalQueue(spec.intra, group_size) for _ in range(n_groups)]

        def worker_loop(pe: int, record) -> None:
            group = pe // group_size
            local_pe = pe % group_size
            local = locals_[group]
            while True:
                with local.lock:
                    sub = local.take(local_pe)
                    if sub is None:
                        if local.global_done:
                            return
                        grabbed = queue.next_chunk(group)
                        if grabbed is None:
                            local.global_done = True
                            return
                        _step, start, size = grabbed
                        local.deposit(start, size)
                        sub = local.take(local_pe)
                        if sub is None:  # pragma: no cover - defensive
                            continue
                start, size = sub
                record(pe, -1, start, size)

        return self._execute("hierarchical", worker_loop)

    # ------------------------------------------------------------------
    def _execute(self, mode: str, worker_loop) -> NativeResult:
        chunks: List[Chunk] = []
        chunks_lock = threading.Lock()
        per_iter: Dict[int, int] = {pe: 0 for pe in range(self.n_workers)}
        per_busy: Dict[int, float] = {pe: 0.0 for pe in range(self.n_workers)}
        outputs: Optional[Dict[int, Any]] = {} if self.collect_outputs else None
        errors: List[BaseException] = []

        def record(pe: int, step: int, start: int, size: int) -> None:
            t0 = time.perf_counter()
            result = self.workload.execute(start, size)
            per_busy[pe] += time.perf_counter() - t0
            per_iter[pe] += size
            with chunks_lock:
                chunks.append(Chunk(step=max(step, 0), start=start, size=size, pe=pe))
                if outputs is not None:
                    outputs[start] = result

        def runner(pe: int) -> None:
            try:
                worker_loop(pe, record)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(pe,), name=f"native-w{pe}")
            for pe in range(self.n_workers)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        if errors:
            raise errors[0]
        result = NativeResult(
            workload=self.workload.name,
            mode=mode,
            n_workers=self.n_workers,
            wall_seconds=wall,
            chunks=chunks,
            per_worker_iterations=per_iter,
            per_worker_busy=per_busy,
            outputs=outputs,
        )
        result.verify(self.workload.n)
        return result
