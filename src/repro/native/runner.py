"""Really-parallel execution of workloads with DLS chunk calculators.

Two execution modes mirror the paper's architectures on one machine:

* **flat** — all workers share one work queue (a counter + the
  technique calculator behind one lock), i.e. the distributed
  chunk-calculation approach collapsed onto shared memory;
* **hierarchical** — workers form groups; each group has a local queue
  refilled from the global queue by whichever group member drains it
  first — exactly the MPI+MPI design with threads standing in for MPI
  processes and a ``threading.Lock`` standing in for ``MPI_Win_lock``.

The hierarchical mode is **topology-aware**: pass ``topology=`` (a
:class:`~repro.cluster.machine.NodeSpec` or
:class:`~repro.cluster.machine.ClusterSpec`) and the groups are formed
from the machine's placement — socket/NUMA-contiguous worker blocks,
one local queue *per machine-tier group* with its own lock, mirroring
the simulator's per-level queues (per-node, per-socket, per-NUMA
shared windows).  A depth-``d`` spec then maps onto the machine tiers
exactly as :class:`repro.models.MpiMpiModel` maps it, so properties
proven in the simulator transfer to real threaded runs of the same
stack.  The legacy ``n_groups`` form (flat modular striping) remains
for untopologised runs.

Every grab goes through the same :class:`ChunkCalculator` objects the
simulator uses, so schedule correctness properties proven in the
simulator transfer to real executions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.cluster.costs import CostModel, DEFAULT_COSTS
from repro.cluster.interconnect import Tier, tier_between
from repro.cluster.machine import ClusterSpec, NodeSpec
from repro.core.chunking import Chunk, verify_schedule
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.workloads.base import Workload

#: a leaf/interior tier-group key: the machine path of the group, e.g.
#: ``(node,)``, ``(node, socket)`` or ``(node, socket, numa)``
GroupKey = Tuple[int, ...]


def _leaf_tier(path_a: GroupKey, path_b: GroupKey) -> Tier:
    """Locality tier between two workers' leaf machine paths.

    Paths are ``(socket, numa)`` for a :class:`NodeSpec` topology
    (single-node: prepend node 0) and ``(node, socket, numa)`` for a
    :class:`ClusterSpec`; classification delegates to the cascade's
    single owner, :func:`repro.cluster.interconnect.tier_between`.
    """
    if len(path_a) == 2:
        path_a, path_b = (0, *path_a), (0, *path_b)
    return tier_between(path_a, path_b)


@dataclass
class NativeResult:
    """Outcome of one real execution."""

    workload: str
    mode: str
    n_workers: int
    wall_seconds: float
    #: chunks in grab order (worker-level)
    chunks: List[Chunk]
    #: per-worker executed iteration counts
    per_worker_iterations: Dict[int, int]
    #: per-worker busy seconds (sum of kernel times)
    per_worker_busy: Dict[int, float]
    #: concatenated kernel outputs, indexable by iteration (if collected)
    outputs: Optional[Dict[int, Any]] = field(default=None, repr=False)
    #: topology-aware runs only: leaf tier-group key -> member worker ids
    groups: Optional[Dict[GroupKey, List[int]]] = field(default=None, repr=False)
    #: topology-aware runs only: tier-group key -> deposited (start, size)
    #: ranges, in deposit order (every queue tier, not just leaves)
    group_deposits: Optional[Dict[GroupKey, List[Tuple[int, int]]]] = field(
        default=None, repr=False
    )
    #: topology-aware runs only: tier-group key -> {worker: lock
    #: acquisitions} — how often each worker took each tier queue's lock
    group_lock_acquisitions: Optional[Dict[GroupKey, Dict[int, int]]] = field(
        default=None, repr=False
    )
    #: topology-aware runs only: the simulated locality cost of those
    #: acquisitions under the run's cost model — each lock grab priced
    #: at the tier-atomic penalty between the worker's core and the
    #: queue's home NUMA domain.  Zero with default (distance-blind)
    #: knobs; under a NUMA-penalty preset this is the number the
    #: flat-vs-per-NUMA queue-placement benchmark compares.
    simulated_lock_penalty_s: Optional[float] = None
    #: topology-aware runs only: tier-group key -> the (node, socket,
    #: numa)-style leaf path whose NUMA domain homes that queue's
    #: memory (leader first-touch by default; the ``placement=`` knob
    #: of :meth:`NativeRunner.run_hierarchical` can move it)
    group_homes: Optional[Dict[GroupKey, GroupKey]] = field(
        default=None, repr=False
    )

    @property
    def total_iterations(self) -> int:
        return sum(self.per_worker_iterations.values())

    def verify(self, n: int) -> None:
        """Assert the execution tiled the iteration space exactly."""
        verify_schedule(self.chunks, n)


class _GlobalQueue:
    """Lock-protected (calculator, step, scheduled) triple."""

    def __init__(self, calc, n: int):
        self.calc = calc
        self.n = n
        self.step = 0
        self.scheduled = 0
        self.lock = threading.Lock()

    def next_chunk(self, pe: int) -> Optional[Tuple[int, int, int]]:
        with self.lock:
            if self.scheduled >= self.n:
                return None
            size = self.calc.size_at(self.step, pe=pe)
            if size <= 0:
                return None
            size = min(size, self.n - self.scheduled)
            out = (self.step, self.scheduled, size)
            self.step += 1
            self.scheduled += size
            return out


class _LocalQueue:
    """Per-group queue: the shared-memory local work queue analogue.

    ``parent``/``parent_pe`` wire tier queues into a refill tree for
    topology-aware runs — ``parent`` is the queue one machine tier up
    (None when the parent is the global queue) and ``parent_pe`` this
    queue's child index within it, exactly like the simulator's
    ``_LocalQueue``.  The legacy flat-striping mode uses a single tier
    with no parent.  Each queue owns its own lock (the per-tier
    ``MPI_Win_lock`` analogue) and logs its deposits for the
    group-containment tests.
    """

    def __init__(
        self,
        spec: LevelSpec,
        group_size: int,
        parent: "Optional[_LocalQueue]" = None,
        parent_pe: int = 0,
        key: Optional[GroupKey] = None,
    ):
        self.spec = spec
        self.group_size = group_size
        self.lock = threading.Lock()
        self.ranges: List[Dict[str, Any]] = []
        self.global_done = False
        self.parent = parent
        self.parent_pe = parent_pe
        self.key = key
        self.deposits: List[Tuple[int, int]] = []
        #: worker pe -> times that worker acquired this queue's lock
        self.acquisitions: Dict[int, int] = {}

    def deposit(self, start: int, size: int) -> None:
        self.deposits.append((start, size))
        self.ranges.append(
            {
                "start": start,
                "size": size,
                "taken": 0,
                "step": 0,
                "calc": self.spec.make_calculator(size, self.group_size),
            }
        )

    def take(self, local_pe: int) -> Optional[Tuple[int, int]]:
        while self.ranges:
            head = self.ranges[0]
            remaining = head["size"] - head["taken"]
            if remaining <= 0:
                self.ranges.pop(0)
                continue
            size = head["calc"].size_at(head["step"], pe=local_pe)
            size = min(size, remaining)
            if size <= 0:
                self.ranges.pop(0)
                continue
            start = head["start"] + head["taken"]
            head["taken"] += size
            head["step"] += 1
            return (start, size)
        return None


class NativeRunner:
    """Run a workload's real kernels under DLS scheduling on threads."""

    def __init__(
        self,
        workload: Workload,
        n_workers: int = 4,
        collect_outputs: bool = False,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if workload.executor is None:
            raise ValueError(
                f"workload {workload.name!r} has no real executor; the native "
                "backend runs kernels, not cost models"
            )
        self.workload = workload
        self.n_workers = n_workers
        self.collect_outputs = collect_outputs

    # ------------------------------------------------------------------
    def run_flat(self, technique: "str | Any", **level_kwargs: Any) -> NativeResult:
        """Single-level self-scheduling across all workers."""
        spec = LevelSpec.of(technique, **level_kwargs)
        calc = spec.make_calculator(
            self.workload.n, self.n_workers, rng=np.random.default_rng(0)
        )
        queue = _GlobalQueue(calc, self.workload.n)

        def worker_loop(pe: int, record) -> None:
            while True:
                grabbed = queue.next_chunk(pe)
                if grabbed is None:
                    return
                step, start, size = grabbed
                record(pe, step, start, size)

        return self._execute("flat", worker_loop)

    def run_hierarchical(
        self,
        spec: HierarchicalSpec,
        n_groups: Optional[int] = None,
        *,
        topology: Union[NodeSpec, ClusterSpec, None] = None,
        costs: Optional[CostModel] = None,
        placement: Union[str, Dict[GroupKey, Any]] = "leader",
    ) -> NativeResult:
        """Multi-level scheduling: groups with local queues (MPI+MPI style).

        Two group-forming policies:

        * ``topology=`` (a :class:`NodeSpec` or :class:`ClusterSpec`) —
          **topology-aware**: workers bind to machine cores in placement
          order and one local queue exists per occupied machine-tier
          group, each with its own lock.  A :class:`NodeSpec` exposes
          the tiers node -> socket -> numa (the node is the global
          queue; depth <= 3), a :class:`ClusterSpec` exposes
          cluster -> node -> socket -> numa (depth <= 4), so a depth-4
          ``W+X+Y+Z`` stack runs through the same refill tree as the
          simulator's :class:`~repro.models.MpiMpiModel`.
        * ``n_groups`` — legacy flat modular striping: worker ``w``
          belongs to group ``w // (n_workers / n_groups)``; only
          ``spec.inter`` and ``spec.intra`` are used (intermediate
          levels have no tier to map to).

        ``costs`` (topology mode only) prices the run's tier-queue lock
        traffic through the simulator's cost model: the result reports
        ``simulated_lock_penalty_s``, each lock grab charged the
        tier-atomic penalty between the grabbing worker's core and the
        queue's home NUMA domain — the native-side counterpart of the
        simulator's poll-wait accounting.

        ``placement`` (topology mode only) chooses each queue's home
        NUMA domain for that pricing: ``"leader"`` (first-touch by the
        group's first worker, the historical rule), ``"optimized"``
        (the :mod:`repro.cluster.placement_opt` decision rule — move
        only when the priced ledger prediction is strictly cheaper), or
        an explicit ``{group key -> worker index | leaf path}``
        mapping.  The chosen homes are reported as ``group_homes``.
        """
        if topology is not None:
            if n_groups is not None:
                raise TypeError("pass either n_groups or topology=, not both")
            return self._run_hierarchical_topology(
                spec, topology, costs, placement
            )
        if not (isinstance(placement, str) and placement == "leader"):
            raise TypeError("placement= requires topology= (tier-aware groups)")
        if costs is not None:
            raise TypeError("costs= requires topology= (tier-aware groups)")
        if n_groups is None:
            raise TypeError(
                "run_hierarchical needs n_groups (flat striping) or "
                "topology= (socket/NUMA-aware groups)"
            )
        if self.n_workers % n_groups != 0:
            raise ValueError(
                f"{self.n_workers} workers cannot form {n_groups} equal groups"
            )
        group_size = self.n_workers // n_groups
        inter_calc = spec.inter.make_calculator(
            self.workload.n, n_groups, rng=np.random.default_rng(0)
        )
        queue = _GlobalQueue(inter_calc, self.workload.n)
        locals_ = [_LocalQueue(spec.intra, group_size) for _ in range(n_groups)]

        def worker_loop(pe: int, record) -> None:
            group = pe // group_size
            local_pe = pe % group_size
            local = locals_[group]
            while True:
                with local.lock:
                    sub = local.take(local_pe)
                    if sub is None:
                        if local.global_done:
                            return
                        grabbed = queue.next_chunk(group)
                        if grabbed is None:
                            local.global_done = True
                            return
                        _step, start, size = grabbed
                        local.deposit(start, size)
                        sub = local.take(local_pe)
                        if sub is None:  # pragma: no cover - defensive
                            continue
                start, size = sub
                record(pe, -1, start, size)

        return self._execute("hierarchical", worker_loop)

    # ------------------------------------------------------------------
    def _run_hierarchical_topology(
        self,
        spec: HierarchicalSpec,
        topology: Union[NodeSpec, ClusterSpec],
        costs: Optional[CostModel] = None,
        placement: Union[str, Dict[GroupKey, Any]] = "leader",
    ) -> NativeResult:
        """Topology-aware hierarchical mode: placement-derived groups."""
        slots = self._tier_paths(topology)
        if self.n_workers > len(slots):
            raise ValueError(
                f"{self.n_workers} workers oversubscribe the topology's "
                f"{len(slots)} cores"
            )
        # workers bind to the placement prefix, like ppn < cores in the
        # simulator: tier groups follow the placement, not the raw machine
        slots = slots[: self.n_workers]
        depth = spec.depth
        max_depth = 1 + len(slots[0])
        if not 2 <= depth <= max_depth:
            raise ValueError(
                f"a {type(topology).__name__} topology maps stacks of depth "
                f"2..{max_depth}; got a depth-{depth} stack ({spec.label})"
            )

        n_tiers = depth - 1
        tier_keys: List[List[GroupKey]] = []
        for tier in range(n_tiers):
            keys: List[GroupKey] = []
            for path in slots:
                if path[tier] not in keys:
                    keys.append(path[tier])
            tier_keys.append(keys)
        leaf_members: Dict[GroupKey, List[int]] = {}
        for worker, path in enumerate(slots):
            leaf_members.setdefault(path[n_tiers - 1], []).append(worker)

        inter_calc = spec.inter.make_calculator(
            self.workload.n, len(tier_keys[0]), rng=np.random.default_rng(0)
        )
        queue = _GlobalQueue(inter_calc, self.workload.n)
        queues: Dict[GroupKey, _LocalQueue] = {}
        for tier, keys in enumerate(tier_keys):
            for key in keys:
                if tier + 1 < n_tiers:
                    n_children = sum(
                        1
                        for child in tier_keys[tier + 1]
                        if child[: len(key)] == key
                    )
                else:
                    n_children = len(leaf_members[key])
                siblings = [k for k in keys if k[:-1] == key[:-1]]
                queues[key] = _LocalQueue(
                    spec.levels[tier + 1],
                    n_children,
                    parent=queues[key[:-1]] if tier > 0 else None,
                    parent_pe=siblings.index(key),
                    key=key,
                )

        def worker_loop(pe: int, record) -> None:
            leaf = queues[slots[pe][n_tiers - 1]]
            child = leaf_members[leaf.key].index(pe)
            while True:
                sub = self._take_tiered(leaf, queue, child, worker=pe)
                if sub is None:
                    return
                start, size = sub
                record(pe, -1, start, size)

        result = self._execute("hierarchical", worker_loop)
        result.groups = {key: list(v) for key, v in leaf_members.items()}
        result.group_deposits = {
            key: list(q.deposits) for key, q in queues.items()
        }
        result.group_lock_acquisitions = {
            key: dict(q.acquisitions) for key, q in queues.items()
        }
        # price the lock traffic through the (possibly tiered) cost
        # model: each queue's memory defaults to its lowest-numbered
        # member's NUMA domain (first-touch), like the simulator's
        # SharedWindow homes; the placement knob can move it
        leaf_paths = [path[-1] for path in slots]
        mpi = (costs or DEFAULT_COSTS).mpi
        group_members = {
            key: [w for w, path in enumerate(slots) if path[len(key) - 1] == key]
            for key in queues
        }
        homes = self._native_homes(placement, group_members, leaf_paths, mpi)
        penalty = 0.0
        for key, q in queues.items():
            home = homes[key]
            for worker, n_acquired in q.acquisitions.items():
                penalty += n_acquired * mpi.tier_atomic_penalty(
                    _leaf_tier(leaf_paths[worker], home)
                )
        result.simulated_lock_penalty_s = penalty
        result.group_homes = homes
        return result

    @staticmethod
    def _native_homes(
        placement: Union[str, Dict[GroupKey, Any]],
        group_members: Dict[GroupKey, List[int]],
        leaf_paths: List[GroupKey],
        mpi,
    ) -> Dict[GroupKey, GroupKey]:
        """Resolve each queue's home NUMA path for the priced ledger.

        ``"leader"`` homes every queue with its first member's leaf
        path; ``"optimized"`` applies the
        :mod:`repro.cluster.placement_opt` decision rule with uniform
        per-member weights (every worker is expected to grab its queues
        equally often) — a candidate domain replaces the leader only
        when its predicted tier-atomic cost is strictly cheaper; an
        explicit mapping pins homes by worker index or leaf path.
        """
        homes: Dict[GroupKey, GroupKey] = {}
        if not isinstance(placement, str):
            unknown = set(placement) - set(group_members)
            if unknown:
                raise ValueError(
                    f"placement map names unknown groups {sorted(unknown)}; "
                    f"known groups: {sorted(group_members)}"
                )
        for key, members in group_members.items():
            leader = leaf_paths[members[0]]
            if isinstance(placement, str):
                if placement == "leader":
                    homes[key] = leader
                    continue
                if placement != "optimized":
                    raise ValueError(
                        f"unknown placement {placement!r}; choose 'leader', "
                        "'optimized' or an explicit mapping"
                    )

                # same strict-improvement decision rule as the
                # simulator's solver, so sim and native agree on moves
                from repro.cluster.placement_opt import _improves

                def cost_of(home: GroupKey) -> float:
                    return sum(
                        mpi.tier_atomic_penalty(_leaf_tier(leaf_paths[w], home))
                        for w in members
                    )

                best, best_cost = leader, cost_of(leader)
                for candidate in dict.fromkeys(leaf_paths[w] for w in members):
                    cost = cost_of(candidate)
                    if _improves(cost, best_cost):
                        best, best_cost = candidate, cost
                homes[key] = best
                continue
            choice = placement.get(key)
            if choice is None:
                homes[key] = leader
            elif isinstance(choice, int):
                if choice not in members:
                    raise ValueError(
                        f"worker {choice} is not a member of group {key!r}"
                    )
                homes[key] = leaf_paths[choice]
            else:
                path = tuple(choice)
                if path not in {leaf_paths[w] for w in members}:
                    raise ValueError(
                        f"leaf path {path!r} is outside group {key!r}"
                    )
                homes[key] = path
        return homes

    @staticmethod
    def _tier_paths(
        topology: Union[NodeSpec, ClusterSpec],
    ) -> List[Tuple[GroupKey, ...]]:
        """Per-core machine paths, one prefix tuple per tier.

        A :class:`NodeSpec` machine contributes ``((socket,), (socket,
        numa))`` per core (the node itself is the global queue); a
        :class:`ClusterSpec` contributes ``((node,), (node, socket),
        (node, socket, numa))``.
        """
        if isinstance(topology, NodeSpec):
            return [
                (
                    (topology.socket_of_core(core),),
                    (topology.socket_of_core(core), topology.numa_of_core(core)),
                )
                for core in range(topology.cores)
            ]
        if isinstance(topology, ClusterSpec):
            paths: List[Tuple[GroupKey, ...]] = []
            for node_index, node in enumerate(topology.nodes):
                for core in range(node.cores):
                    socket = node.socket_of_core(core)
                    numa = node.numa_of_core(core)
                    paths.append(
                        (
                            (node_index,),
                            (node_index, socket),
                            (node_index, socket, numa),
                        )
                    )
            return paths
        raise TypeError(
            f"topology must be a NodeSpec or ClusterSpec, "
            f"got {type(topology).__name__}"
        )

    def _take_tiered(
        self, q: _LocalQueue, global_queue: _GlobalQueue, child: int,
        worker: int,
    ) -> Optional[Tuple[int, int]]:
        """Take from ``q``, refilling through the tier tree when dry.

        The caller-side analogue of the simulator's ``_take_from``: the
        worker holds ``q``'s lock across the parent fetch (paper Fig. 1
        steps 1-2), and the parent fetch recurses — acquiring the
        parent's own lock — up to the global queue.  Lock order is
        strictly child -> parent, so the tiered locks cannot deadlock.
        ``worker`` identifies the physical worker for the per-queue
        lock-acquisition ledger (the simulated-cost report).
        """
        with q.lock:
            q.acquisitions[worker] = q.acquisitions.get(worker, 0) + 1
            while True:
                sub = q.take(child)
                if sub is not None:
                    return sub
                if q.global_done:
                    return None
                if q.parent is None:
                    grabbed = global_queue.next_chunk(q.parent_pe)
                    if grabbed is None:
                        q.global_done = True
                        return None
                    _step, start, size = grabbed
                else:
                    parent_sub = self._take_tiered(
                        q.parent, global_queue, q.parent_pe, worker
                    )
                    if parent_sub is None:
                        q.global_done = True
                        return None
                    start, size = parent_sub
                q.deposit(start, size)

    # ------------------------------------------------------------------
    def _execute(self, mode: str, worker_loop) -> NativeResult:
        chunks: List[Chunk] = []
        chunks_lock = threading.Lock()
        per_iter: Dict[int, int] = {pe: 0 for pe in range(self.n_workers)}
        per_busy: Dict[int, float] = {pe: 0.0 for pe in range(self.n_workers)}
        outputs: Optional[Dict[int, Any]] = {} if self.collect_outputs else None
        errors: List[BaseException] = []

        def record(pe: int, step: int, start: int, size: int) -> None:
            t0 = time.perf_counter()
            result = self.workload.execute(start, size)
            per_busy[pe] += time.perf_counter() - t0
            per_iter[pe] += size
            with chunks_lock:
                chunks.append(Chunk(step=max(step, 0), start=start, size=size, pe=pe))
                if outputs is not None:
                    outputs[start] = result

        def runner(pe: int) -> None:
            try:
                worker_loop(pe, record)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(pe,), name=f"native-w{pe}")
            for pe in range(self.n_workers)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        if errors:
            raise errors[0]
        result = NativeResult(
            workload=self.workload.name,
            mode=mode,
            n_workers=self.n_workers,
            wall_seconds=wall,
            chunks=chunks,
            per_worker_iterations=per_iter,
            per_worker_busy=per_busy,
            outputs=outputs,
        )
        result.verify(self.workload.n)
        return result
