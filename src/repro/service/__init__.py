"""Sweep-as-a-service: a concurrent HTTP job server over the cell cache.

The :mod:`repro.experiments.parallel` subsystem already content-
addresses every grid cell and fans misses out over a process pool —
the shape of a service.  This package adds the long-lived front end:

* :class:`~repro.service.spec.SweepSpec` — a JSON sweep request
  (workload name/params, cluster shape, approach × technique × nodes
  grid, seed, costs/placement/faults/dcc — everything
  :func:`~repro.experiments.parallel.cell_key` discriminates).
* :class:`~repro.service.jobs.CellExecutor` — a bounded process pool
  layered under an in-process *in-flight registry*: concurrent requests
  wanting the same cell share one simulation (exactly-once), and every
  completed cell is published to the shared on-disk
  :class:`~repro.experiments.parallel.CellCache`.
* :class:`~repro.service.server.SweepServer` — a stdlib
  ``ThreadingHTTPServer`` speaking ``POST /sweep`` (NDJSON streaming),
  ``GET /metrics``, ``GET /healthz`` and ``POST /shutdown``; run it
  with ``repro-serve`` / ``python -m repro.service`` / ``repro serve``.

See ``docs/SERVICE.md`` for the HTTP API and dedup semantics.
"""

from repro.service.jobs import CellExecutor, CellJob
from repro.service.server import SweepServer, create_server, main
from repro.service.spec import SpecError, SweepSpec

__all__ = [
    "CellExecutor",
    "CellJob",
    "SpecError",
    "SweepSpec",
    "SweepServer",
    "create_server",
    "main",
]
