"""``python -m repro.service`` — the ``repro-serve`` entry point."""

import sys

from repro.service.server import main

if __name__ == "__main__":
    sys.exit(main())
