"""Cell execution for the job server: process pool + in-flight dedup.

The server's concurrency story has three layers, resolved in order for
every requested cell:

1. the shared on-disk :class:`~repro.experiments.parallel.CellCache`
   (hit → no work at all);
2. the **in-flight registry** — an in-process map ``cell_key →
   Future`` so concurrent requests wanting the same cell attach to one
   already-running simulation instead of starting a second (the
   cross-request analogue of the cache: exactly-once under concurrent
   duplicates);
3. a bounded :class:`~concurrent.futures.ProcessPoolExecutor` that
   actually simulates misses, reusing
   :func:`~repro.experiments.harness.simulate_cell` — the same worker
   entry ``run_cells`` fans out over.

Completion publishes to the cache *before* releasing the registry
entry, so at any instant a duplicate request finds the cell in at
least one of the two layers — there is no window in which it would
re-simulate.

Workers receive only JSON-sized payloads: the sweep spec names its
workload (``app``/``scale``), and each worker process rebuilds it once
via the per-process workload cache — the large cost vector never
crosses the pipe.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.experiments.parallel import CellCache
from repro.service.spec import SweepSpec


@dataclass(frozen=True)
class CellJob:
    """One cell to simulate: its sweep spec plus the grid coordinates."""

    key: str
    spec: SweepSpec
    approach: str
    inter: str
    intra: str
    nodes: int

    def payload(self) -> Dict[str, Any]:
        """Pickle-light form shipped to the pool worker."""
        return {
            "sweep": self.spec.to_json(),
            "approach": self.approach,
            "inter": self.inter,
            "intra": self.intra,
            "nodes": self.nodes,
        }


def run_cell_job(payload: Dict[str, Any]):
    """Pool-worker entry: resolve the spec locally and simulate one cell.

    Module-level (picklable) on purpose.  The workload is rebuilt from
    its name via the per-process cache in
    :mod:`repro.experiments.workloads`, so repeated jobs in one worker
    pay the construction cost once.
    """
    from repro.experiments.harness import simulate_cell

    spec = SweepSpec.from_json(payload["sweep"])
    nodes = payload["nodes"]
    return simulate_cell(
        spec.workload(),
        spec.cluster(nodes),
        payload["approach"],
        payload["inter"],
        payload["intra"],
        nodes,
        spec.ppn,
        spec.seed,
        costs=spec.cost_model(),
        placement=spec.placement,
        faults=spec.fault_model(),
        dcc=spec.dcc,
    )


class CellExecutor:
    """Bounded process pool + in-flight registry over a shared cache.

    One instance is shared by every handler thread of the server.  All
    mutable state (registry, statistics) is guarded by one lock; the
    pool's own thread-safety covers submission.
    """

    def __init__(self, cache: Optional[CellCache], jobs: int = 2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.max_workers = jobs
        self._pool = ProcessPoolExecutor(max_workers=jobs)
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._started = time.monotonic()
        # lifetime counters (under _lock)
        self.simulated = 0  # cells actually submitted to the pool
        self.completed = 0  # pool simulations finished (ok or errored)
        self.dedup_hits = 0  # requests attached to an in-flight future
        self.cache_hits = 0  # requests served from the on-disk cache
        self.errors = 0  # pool simulations that raised

    # ------------------------------------------------------------------
    def resolve(self, job: CellJob) -> Tuple[Future, str]:
        """Resolve one cell to a Future plus its source.

        Source is ``"cache"`` (already done, Future is pre-completed),
        ``"inflight"`` (another request is simulating it right now —
        attach) or ``"simulated"`` (this call submitted it).  The
        cache probe happens under the registry lock so check-then-
        register is atomic: two racing duplicates can never both
        submit.
        """
        with self._lock:
            published = self._inflight.get(job.key)
            if published is not None:
                self.dedup_hits += 1
                return published, "inflight"
            if self.cache is not None:
                cell = self.cache.get(job.key)
                if cell is not None:
                    self.cache_hits += 1
                    done: Future = Future()
                    done.set_result(cell)
                    return done, "cache"
            # The registry holds a *publish-gated* future, not the raw
            # pool future: it resolves only after the cache put and the
            # registry release, so anything waiting on it (a streaming
            # handler, an attached duplicate) observes a fully
            # published cell.  Pool waiters wake before done-callbacks
            # run, so gating is what makes "trailer received ⇒ cells
            # cached" true.
            published = Future()
            self._inflight[job.key] = published
            try:
                raw = self._pool.submit(run_cell_job, job.payload())
            except BaseException:  # pool shut down — do not leak the key
                self._inflight.pop(job.key, None)
                raise
            self.simulated += 1
        raw.add_done_callback(
            lambda fut, key=job.key, out=published: self._on_done(key, fut, out)
        )
        return published, "simulated"

    def _on_done(self, key: str, raw: Future, published: Future) -> None:
        """Publish to the cache, release the registry, resolve waiters.

        Order matters: once the key leaves the registry a duplicate
        request must find the cell on disk, so the ``put`` happens
        first.  Failed simulations are never cached — the key is simply
        released and a later request will retry.
        """
        error = raw.exception()
        if error is None and self.cache is not None:
            try:
                self.cache.put(key, raw.result())
            except OSError:
                pass  # cache directory vanished / disk full — results still stream
        with self._lock:
            self._inflight.pop(key, None)
            self.completed += 1
            if error is not None:
                self.errors += 1
        if error is not None:
            published.set_exception(error)
        else:
            published.set_result(raw.result())

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Snapshot of executor + cache counters for ``GET /metrics``."""
        with self._lock:
            in_flight = len(self._inflight)
            snapshot = {
                "in_flight": in_flight,
                # cells submitted but not yet holding a worker slot
                # (estimate: the pool does not expose its queue)
                "queue_depth": max(0, in_flight - self.max_workers),
                "max_workers": self.max_workers,
                "simulated": self.simulated,
                "completed": self.completed,
                "dedup_hits": self.dedup_hits,
                "cache_hits": self.cache_hits,
                "errors": self.errors,
                "uptime_s": time.monotonic() - self._started,
            }
        snapshot["cells_per_s"] = (
            snapshot["completed"] / snapshot["uptime_s"]
            if snapshot["uptime_s"] > 0
            else 0.0
        )
        snapshot["cache"] = self.cache.stats() if self.cache is not None else None
        return snapshot

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool (in-flight simulations finish if ``wait``)."""
        self._pool.shutdown(wait=wait)
