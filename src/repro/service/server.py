"""The HTTP front end: ``POST /sweep`` streaming NDJSON, ``GET /metrics``.

Stdlib only (``http.server``): one ``ThreadingHTTPServer`` whose
handler threads share a single :class:`~repro.service.jobs.CellExecutor`
(bounded process pool + in-flight registry) and one on-disk
:class:`~repro.experiments.parallel.CellCache`.  Responses to
``POST /sweep`` are newline-delimited JSON written as each cell lands
(completion order, indices map lines back to the requested grid), with
``Connection: close`` framing so any HTTP client can consume the
stream incrementally.

Endpoints::

    POST /sweep     sweep spec JSON in, NDJSON cell stream out
    GET  /metrics   executor/cache/queue counters as JSON
    GET  /healthz   liveness probe
    POST /shutdown  finish open streams, stop accepting, exit cleanly

Run with ``repro-serve``, ``python -m repro.service`` or ``repro
serve``; see ``docs/SERVICE.md`` for the request schema and a worked
curl example.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from concurrent.futures import as_completed
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.experiments.parallel import CellCache
from repro.service.jobs import CellExecutor, CellJob
from repro.service.spec import SpecError, SweepSpec

#: default TCP port (fits "repro" on a phone keypad, more or less)
DEFAULT_PORT = 8752


class SweepServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the executor and request stats."""

    daemon_threads = True  # a stuck client must not block shutdown

    def __init__(self, address, executor: CellExecutor, quiet: bool = False):
        super().__init__(address, SweepHandler)
        self.executor = executor
        self.quiet = quiet
        self.started = time.monotonic()
        self._stats_lock = threading.Lock()
        self.n_requests = 0
        self.n_sweeps = 0
        self.n_bad_requests = 0

    def count(self, stat: str) -> None:
        """Thread-safe increment of a request counter."""
        with self._stats_lock:
            setattr(self, stat, getattr(self, stat) + 1)

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` document."""
        with self._stats_lock:
            requests = {
                "total": self.n_requests,
                "sweeps": self.n_sweeps,
                "bad": self.n_bad_requests,
            }
        payload = self.executor.metrics()
        payload["requests"] = requests
        payload["uptime_s"] = time.monotonic() - self.started
        return payload

    def stop(self) -> None:
        """Stop the accept loop from any thread (idempotent)."""
        threading.Thread(target=self.shutdown, daemon=True).start()


class SweepHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints; one instance per connection."""

    server_version = "repro-serve/1.0"
    # HTTP/1.0 close-delimited framing: the NDJSON stream needs neither
    # a Content-Length up front nor chunked encoding — clients read
    # until the server closes the connection.
    protocol_version = "HTTP/1.0"

    server: SweepServer  # narrowed for type checkers

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self.server.count("n_requests")
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            self._send_json(200, self.server.metrics())
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self.server.count("n_requests")
        if self.path == "/shutdown":
            self._send_json(200, {"status": "shutting down"})
            self.server.stop()
        elif self.path == "/sweep":
            self._handle_sweep()
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

    # ------------------------------------------------------------------
    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise SpecError("request body required (Content-Length missing or 0)")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise SpecError(f"request body is not valid JSON: {error}") from error

    def _handle_sweep(self) -> None:
        try:
            spec = SweepSpec.from_json(self._read_body())
            jobs = [
                CellJob(key, spec, approach, inter, intra, nodes)
                for key, (approach, inter, intra, nodes) in zip(
                    spec.cell_keys(), spec.grid()
                )
            ]
        except SpecError as error:
            self.server.count("n_bad_requests")
            self._send_json(400, {"error": str(error)})
            return
        self.server.count("n_sweeps")

        # Resolve every cell up front: duplicates (within this request
        # or across concurrent ones) attach to one future, cache hits
        # come back pre-completed.
        resolved = [self.server.executor.resolve(job) for job in jobs]
        by_future: Dict[Any, List[int]] = {}
        for index, (future, _source) in enumerate(resolved):
            by_future.setdefault(future, []).append(index)

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()

        sources = {"cache": 0, "inflight": 0, "simulated": 0}
        for _future, source in resolved:
            sources[source] += 1
        n_errors = 0
        for future in as_completed(list(by_future)):
            for index in by_future[future]:
                job, (_f, source) = jobs[index], resolved[index]
                line: Dict[str, Any] = {
                    "index": index,
                    "approach": job.approach,
                    "inter": job.inter,
                    "intra": job.intra,
                    "nodes": job.nodes,
                    "key": job.key,
                    "source": source,
                }
                try:
                    line["cell"] = future.result().to_dict()
                except Exception as error:  # simulation failed in the worker
                    line["error"] = f"{type(error).__name__}: {error}"
                    n_errors += 1
                try:
                    self.wfile.write((json.dumps(line, sort_keys=True) + "\n").encode("utf-8"))
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return  # client went away; simulations finish for the cache
        trailer = {
            "done": True,
            "cells": len(jobs),
            "sources": sources,
            "errors": n_errors,
        }
        try:
            self.wfile.write((json.dumps(trailer, sort_keys=True) + "\n").encode("utf-8"))
        except (BrokenPipeError, ConnectionResetError):
            pass


def create_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    jobs: int = 2,
    cache_dir: Optional[str] = None,
    quiet: bool = False,
) -> SweepServer:
    """Build a ready-to-serve :class:`SweepServer` (``port=0`` = ephemeral)."""
    cache = CellCache(cache_dir) if cache_dir else None
    executor = CellExecutor(cache, jobs=jobs)
    return SweepServer((host, port), executor, quiet=quiet)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-serve`` — run the sweep server until SIGINT or /shutdown."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="serve sweep requests over the shared cell cache "
                    "(POST /sweep, GET /metrics — see docs/SERVICE.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="simulation worker processes (default 2)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared content-addressed cell cache directory "
                             "(omit to serve without an on-disk cache)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logging")
    args = parser.parse_args(argv)

    server = create_server(
        args.host, args.port, jobs=args.jobs, cache_dir=args.cache_dir,
        quiet=args.quiet,
    )
    host, port = server.server_address[:2]
    print(
        f"repro-serve listening on http://{host}:{port} "
        f"(jobs={args.jobs}, cache={args.cache_dir or 'none'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.executor.shutdown()
    print("repro-serve: clean shutdown", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
