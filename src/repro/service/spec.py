"""Sweep request specs: the JSON surface of the job server.

A :class:`SweepSpec` is a declarative description of one grid sweep —
the same inputs :class:`~repro.experiments.harness.GridRunner` takes as
Python objects, restricted to JSON-expressible forms so a remote client
can post them: workloads are named (``{"app": "mandelbrot", "scale":
"tiny"}``), cost models are preset names, fault schedules are the CLI's
``crash:R@T`` strings.  Everything that
:func:`~repro.experiments.parallel.cell_key` discriminates is here, so
a service cell and a local ``GridRunner`` cell with the same inputs
share one cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cluster.costs import COST_PRESETS, CostModel
from repro.cluster.machine import ClusterSpec, minihpc
from repro.workloads.base import Workload

#: applications a service request may name (the calibrated figure kernels)
KNOWN_APPS = ("mandelbrot", "psia")

#: execution models a service request may name
KNOWN_APPROACHES = ("mpi+mpi", "mpi+openmp", "flat-mpi", "master-worker", "dcc")


class SpecError(ValueError):
    """A sweep request that cannot be executed (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    """Raise :class:`SpecError` with ``message`` unless ``condition``."""
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class SweepSpec:
    """One validated sweep request (the body of ``POST /sweep``).

    The grid is the cross product ``approaches x intras x node_counts``
    under the fixed ``inter`` technique — exactly
    :meth:`repro.experiments.harness.GridRunner.sweep` without the
    per-approach intra filters (a service client states the grid it
    wants explicitly).
    """

    app: str
    scale: str
    inter: str
    intras: Tuple[str, ...]
    approaches: Tuple[str, ...] = ("mpi+mpi",)
    node_counts: Tuple[int, ...] = (2, 4)
    ppn: int = 16
    sockets: int = 1
    numa: int = 1
    seed: int = 0
    costs: Optional[str] = None
    placement: str = "leader"
    faults: Optional[str] = None
    dcc: bool = False

    @classmethod
    def from_json(cls, payload: Any) -> "SweepSpec":
        """Validate a decoded JSON body into a spec (or raise SpecError)."""
        _require(isinstance(payload, Mapping), "request body must be a JSON object")
        known = set(cls.__dataclass_fields__)
        # grouped spellings plus the singular aliases of the list fields
        known |= {"workload", "cluster", "intra", "approach", "nodes"}
        unknown = set(payload) - known
        _require(not unknown, f"unknown field(s): {sorted(unknown)}")

        workload = payload.get("workload", {})
        _require(isinstance(workload, Mapping), "'workload' must be an object")
        app = str(workload.get("app", payload.get("app", "mandelbrot"))).lower()
        scale = str(workload.get("scale", payload.get("scale", "tiny"))).lower()
        _require(app in KNOWN_APPS, f"unknown workload app {app!r}; known: {list(KNOWN_APPS)}")
        from repro.experiments.workloads import SCALES

        _require(scale in SCALES, f"unknown scale {scale!r}; known: {sorted(SCALES)}")

        cluster = payload.get("cluster", {})
        _require(isinstance(cluster, Mapping), "'cluster' must be an object")

        def _int(source: Mapping, name: str, default: int, floor: int = 1) -> int:
            value = source.get(name, default)
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= floor,
                f"'{name}' must be an integer >= {floor}",
            )
            return value

        ppn = _int(cluster, "ppn", _int(payload, "ppn", 16))
        sockets = _int(cluster, "sockets", _int(payload, "sockets", 1))
        numa = _int(cluster, "numa", _int(payload, "numa", 1))

        inter = payload.get("inter")
        _require(isinstance(inter, str) and inter, "'inter' (technique stack) is required")
        intras = payload.get("intras", payload.get("intra"))
        if isinstance(intras, str):
            intras = [intras]
        _require(
            isinstance(intras, (list, tuple)) and intras
            and all(isinstance(t, str) and t for t in intras),
            "'intras' must be a non-empty list of technique names",
        )
        approaches = payload.get("approaches", payload.get("approach", ["mpi+mpi"]))
        if isinstance(approaches, str):
            approaches = [approaches]
        _require(
            isinstance(approaches, (list, tuple)) and approaches,
            "'approaches' must be a non-empty list",
        )
        for approach in approaches:
            _require(
                approach in KNOWN_APPROACHES,
                f"unknown approach {approach!r}; known: {list(KNOWN_APPROACHES)}",
            )
        node_counts = payload.get("node_counts", payload.get("nodes", [2, 4]))
        if isinstance(node_counts, int):
            node_counts = [node_counts]
        _require(
            isinstance(node_counts, (list, tuple)) and node_counts
            and all(isinstance(n, int) and not isinstance(n, bool) and n >= 1
                    for n in node_counts),
            "'node_counts' must be a non-empty list of integers >= 1",
        )

        seed = payload.get("seed", 0)
        _require(isinstance(seed, int) and not isinstance(seed, bool), "'seed' must be an integer")
        costs = payload.get("costs")
        if costs is not None:
            _require(
                isinstance(costs, str) and costs in COST_PRESETS,
                f"'costs' must be one of {sorted(COST_PRESETS)}",
            )
        placement = payload.get("placement", "leader")
        _require(
            placement in ("leader", "optimized"),
            "'placement' must be 'leader' or 'optimized'",
        )
        faults = payload.get("faults")
        if faults is not None:
            _require(isinstance(faults, str) and faults, "'faults' must be a spec string")
            from repro.cluster.faults import FaultModel

            try:
                FaultModel.parse(faults)
            except ValueError as error:
                raise SpecError(f"bad 'faults' spec: {error}") from error
        dcc = payload.get("dcc", False)
        _require(isinstance(dcc, bool), "'dcc' must be a boolean")

        return cls(
            app=app,
            scale=scale,
            inter=inter,
            intras=tuple(intras),
            approaches=tuple(approaches),
            node_counts=tuple(node_counts),
            ppn=ppn,
            sockets=sockets,
            numa=numa,
            seed=seed,
            costs=costs,
            placement=placement,
            faults=faults,
            dcc=dcc,
        )

    # ------------------------------------------------------------------
    # resolution to simulator objects (server- and worker-side)
    # ------------------------------------------------------------------
    def workload(self) -> Workload:
        """Build (or fetch the per-process cached) named workload."""
        from repro.experiments.workloads import figure_workload

        return figure_workload(self.app, self.scale)

    def cluster(self, nodes: int) -> ClusterSpec:
        """The homogeneous cluster this sweep simulates at ``nodes``."""
        return minihpc(
            nodes, self.ppn, sockets_per_node=self.sockets, numa_per_socket=self.numa
        )

    def cost_model(self) -> Optional[CostModel]:
        """Resolve the preset name (``None``/"default" = package default)."""
        if self.costs is None or self.costs == "default":
            return None
        return COST_PRESETS[self.costs]

    def fault_model(self):
        """Parse the fault schedule string (``None`` = fault-free)."""
        if self.faults is None:
            return None
        from repro.cluster.faults import FaultModel

        return FaultModel.parse(self.faults)

    def grid(self) -> List[Tuple[str, str, str, int]]:
        """Expand to ``(approach, inter, intra, nodes)`` cell specs."""
        return [
            (approach, self.inter, intra, nodes)
            for approach in self.approaches
            for intra in self.intras
            for nodes in self.node_counts
        ]

    def cell_keys(self) -> List[str]:
        """Content-addressed key per grid cell, in :meth:`grid` order.

        Uses the same :func:`~repro.experiments.parallel.cell_key`
        digest as ``GridRunner``, so service results and local sweeps
        share cache entries.
        """
        from repro.experiments.parallel import cell_key, workload_fingerprint

        fingerprint = workload_fingerprint(self.workload())
        costs = self.cost_model()
        faults = self.fault_model()
        return [
            cell_key(
                fingerprint, self.cluster(nodes), approach, inter, intra,
                nodes, self.ppn, self.seed,
                costs=costs, placement=self.placement, faults=faults, dcc=self.dcc,
            )
            for approach, inter, intra, nodes in self.grid()
        ]

    def to_json(self) -> Dict[str, Any]:
        """Round-trippable JSON form (what a pool worker receives)."""
        return {
            "workload": {"app": self.app, "scale": self.scale},
            "cluster": {"ppn": self.ppn, "sockets": self.sockets, "numa": self.numa},
            "inter": self.inter,
            "intras": list(self.intras),
            "approaches": list(self.approaches),
            "node_counts": list(self.node_counts),
            "seed": self.seed,
            "costs": self.costs,
            "placement": self.placement,
            "faults": self.faults,
            "dcc": self.dcc,
        }
