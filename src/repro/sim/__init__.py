"""Discrete-event simulation engine (substrate S1).

This package provides a deterministic, generator-based discrete-event
simulator in the style of SimPy, purpose-built for modelling parallel
machines: simulated *processes* are Python generators that ``yield``
:class:`~repro.sim.primitives.Command` objects (compute delays, event
waits, resource acquisitions) to the :class:`~repro.sim.engine.Simulator`.

Design notes
------------
* **Determinism.** Ties in the event heap are broken by a monotonically
  increasing sequence number, and all randomness flows through named
  :meth:`~repro.sim.engine.Simulator.rng` streams derived from the
  simulation seed, so a run is a pure function of its inputs.
* **Time accounting.** Delays carry a *kind* (``compute`` / ``overhead`` /
  ``idle``) so that higher layers can attribute elapsed time to useful
  work, scheduling overhead, or idleness without instrumenting call
  sites twice.
* **Composability.** Processes call helper coroutines with ``yield from``;
  commands bubble up to the engine transparently.
"""

from repro.sim.engine import ProcessFailure, Process, Simulator
from repro.sim.primitives import (
    Command,
    Compute,
    Delay,
    DelayKind,
    Overhead,
    SimEvent,
    Timeout,
)
from repro.sim.resources import Barrier, Lock, Semaphore, Store

__all__ = [
    "Barrier",
    "Command",
    "Compute",
    "Delay",
    "DelayKind",
    "Lock",
    "Overhead",
    "Process",
    "ProcessFailure",
    "Semaphore",
    "SimEvent",
    "Simulator",
    "Store",
    "Timeout",
]
