"""Rank-aggregated cohort engine for very large simulated MPI jobs.

The scalar engine of :mod:`repro.sim.engine` simulates every MPI
process (identified by its *rank*) as a Python generator and pays a
heap transaction per yield, which caps practical sweeps at a few
thousand ranks.  This module provides the ``engine="cohort"``
execution path: rank-symmetric spans of the event stream are condensed
into *macro events* on a :class:`~repro.sim.engine.CohortLane`, and
ranks whose futures are symmetric advance together as **cohorts** —
NumPy-backed groups that split lazily only at divergence points (lock
contention winners vs losers, the serialised global-atomic FIFO,
chunk-dependent compute durations).  Times are simulated seconds
throughout; all indices are MPI ranks unless a name says node.

Where the condensation is exact
-------------------------------
On *eligible* configurations the macro interpreter replays the scalar
event stream bit-for-bit — same chunk sets, same floating-point
accumulation order for every per-rank and per-window statistic, same
tie-breaking — because each macro is anchored at the simulated second
its scalar counterpart would land and ordered by ``(time, push time,
sequence)`` exactly like the scalar heap.  The only intentional
difference is ``RunResult.n_events``, which counts macro events (the
whole point is that there are far fewer of them).

Eligibility (checked by :func:`cohort_blockers`) requires the run to be
free of the divergence sources the interpreter does not condense:

* model: ``mpi+mpi`` at depth 1-2, or ``dcc`` (any depth it accepts);
* techniques: deterministic, non-adaptive, not PE-dependent, not
  pinned-per-PE, ``min_chunk == 1`` at every level;
* noise: no per-core speed scatter and no per-chunk jitter
  (``NO_NOISE``) — per-core homogeneity is what makes ranks symmetric;
* no active faults, ``placement="leader"``, no trace collection, no
  watchdog, zero locality-tier penalty knobs, and
  ``shm_lock_attempt > shm_unlock`` (the default cost model), which
  pins the lock-attempt-vs-release tie-break.

Anything else falls back to the scalar path **whole-run** (the
``engine="cohort"`` result is then trivially bit-exact, including
``n_events``).  There is no approximate mode: where cohorts would have
to guess, we split; where splitting cannot reproduce the scalar
stream, we fall back.

The split points in the fast path
---------------------------------
* **lock contention** — a tier group's ranks poll their shared
  window's lock; the winner splits off into the critical section while
  the losers stay a polling cohort whose jittered retries are
  fast-forwarded arithmetically (batched RNG draws, consumed in the
  per-window chronological order the scalar engine would use);
* **global-queue serialisation** — refills queue on the RMA window's
  hidden FIFO unit; service is resolved in arrival order with plain
  arithmetic instead of generator resumes;
* **compute divergence** — chunk execution times differ by chunk, so
  ranks leave the compute phase at distinct macro times and re-enter
  the polling cohort individually.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.interconnect import Tier
from repro.sim.engine import CohortLane

__all__ = ["cohort_blockers", "execute_cohort"]


#: batch size for pre-drawn lock-poll jitter factors.  Batched
#: ``Generator.uniform`` draws are bit-identical to the same number of
#: sequential scalar draws (pinned by the property suite), so buffering
#: only amortises RNG call overhead — it cannot change a single value.
_JITTER_BATCH = 256


class _JitterBuffer:
    """Batched view of one shared window's lock-poll jitter stream.

    Draws ``uniform(0.5, 1.5)`` factors in blocks and hands them out
    one at a time, preserving the exact values (and generator state) of
    sequential scalar draws.
    """

    __slots__ = ("_rng", "_buf", "_idx")

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        #: starts empty (not None) so exhaustion is always an IndexError
        self._buf: list = []
        self._idx = 0

    def next(self) -> float:
        """The next jitter factor, bit-identical to a scalar draw."""
        buf = self._buf
        if self._idx >= len(buf):
            # ``tolist`` converts to native floats (exact doubles) so
            # the hot loop never pays np.float64 arithmetic.
            buf = self._buf = self._rng.uniform(
                0.5, 1.5, size=_JITTER_BATCH
            ).tolist()
            self._idx = 0
        value = buf[self._idx]
        self._idx += 1
        return value


class _Rank:
    """Per-rank accumulator mirroring :class:`repro.sim.engine.Process`.

    Overhead and compute seconds accrue term-by-term in each rank's
    protocol order, so the floating-point sums equal the scalar
    engine's per-process accounting exactly.
    """

    __slots__ = (
        "rank",
        "node",
        "core",
        "child",
        "compute_time",
        "overhead_time",
        "finish_time",
        "n_chunks",
        "n_iters",
        "attempts",
    )

    def __init__(self, rank: int, node: int, core: int, child: int):
        self.rank = rank
        self.node = node
        self.core = core
        self.child = child
        self.compute_time = 0.0
        self.overhead_time = 0.0
        self.finish_time = 0.0
        self.n_chunks = 0
        self.n_iters = 0
        #: failed+successful lock attempts of the *current* lock() call
        self.attempts = 0

    def __lt__(self, other: "_Rank") -> bool:
        """Rank-order tie-break for heap entries.

        Lock-heap entries are ``(attempt_time, rank)`` pairs.  The one
        systematic tie — every rank arriving at ``t=0`` with the same
        first attempt time — ordered by push order before, which *is*
        rank order, so nothing changes there.  Past it, attempt times
        are sums of independent jitter draws, so an exact float tie
        between distinct ranks is measure-zero — and on such a tie the
        scalar engine's own event sequence numbers would decide, an
        ordering neither representation can reproduce anyway.
        Breaking the (deterministic) tie by rank id keeps the heap
        total-ordered without paying a per-entry sequence counter.
        """
        return self.rank < other.rank

    # The metrics layer reads Process-like accessors via record_worker.
    @property
    def idle_time(self) -> float:
        """Timeout-kind idle seconds (always zero on eligible paths)."""
        return 0.0

    @property
    def wait_time(self) -> float:
        """Implicit blocked seconds, computed exactly like the scalar
        engine: ``elapsed - compute - overhead - idle`` clamped at 0."""
        elapsed = self.finish_time - 0.0
        return max(0.0, elapsed - self.compute_time - self.overhead_time - 0.0)


class _NodeLock:
    """One tier group's polled exclusive lock, cohort style.

    The polling ranks form a cohort represented as a heap of
    ``(attempt_time, rank)`` entries (ties break by rank id, see
    :meth:`_Rank.__lt__`).  While the lock is held the cohort's failed
    attempts are *deferred*; they are realised in per-window
    chronological order by :meth:`fast_forward` the moment the release
    time becomes known — every jitter draw, poll-wait accrual and
    attempt count lands exactly where the scalar engine puts it.  The
    winner splits off; the rest stay in the cohort.

    (A calendar-bucket queue keyed on ``int(attempt / width)`` with
    width below half the minimum poll step was prototyped here and
    lost: the extra per-attempt Python bytecode — bucket index math,
    dict probes, per-bucket sorts — costs more than the C-level
    ``heapreplace`` it replaces at the ~64-waiter heap sizes this
    engine sees.)
    """

    __slots__ = ("key", "shm", "jitter", "heap", "holder", "version", "check_time")

    def __init__(self, key, shm, jitter: _JitterBuffer):
        self.key = key
        self.shm = shm
        self.jitter = jitter
        self.heap: List[Tuple[float, Any]] = []
        self.holder: Optional[_Rank] = None
        #: invalidates superseded CHECK macros (lazy cancellation)
        self.version = 0
        #: time of the currently scheduled CHECK, None when none/held
        self.check_time: Optional[float] = None


class _GlobalFifo:
    """The RMA window's hidden atomic-service unit, cohort style.

    Arrival order is the FIFO order (exactly the scalar ``Lock``
    semantics: release hands off at commit time, so service runs
    back-to-back).  Commits are therefore resolved with plain
    arithmetic; per-commit statistics accrue in commit order.
    """

    __slots__ = ("busy", "queue")

    def __init__(self):
        self.busy = False
        self.queue: List[Any] = []


# macro codes (payload layouts are driver-private)
_M_CHECK = 1
_M_TAKE = 2
_M_GARRIVE = 3
_M_GCOMMIT = 4
_M_RESOLVE = 5
_M_DEPOSIT = 6
_M_UNLOCK_TAKEN = 7
_M_UNLOCK_EXIT = 8
_M_UNLOCK_EMPTY = 9
_M_CDONE = 10


def cohort_blockers(model, run) -> List[str]:
    """Why this run cannot take the condensed fast path (empty = it can).

    Returns human-readable blocker descriptions; the run falls back to
    the scalar engine whole-run when any are present.  Pure check — no
    simulation state is touched.
    """
    blockers: List[str] = []
    depth = run.spec.depth
    if model.name == "mpi+mpi":
        if depth > 2:
            blockers.append(
                f"mpi+mpi depth {depth} (fast path covers depth 1-2)"
            )
    elif model.name != "dcc":
        blockers.append(f"model {model.name!r} (fast path covers mpi+mpi, dcc)")
    for index, level in enumerate(run.spec.levels):
        tech = level.technique
        if tech.adaptive or tech.pe_dependent:
            blockers.append(f"adaptive/PE-dependent {tech.name!r} at level {index}")
        if tech.pinned_per_pe:
            blockers.append(f"pinned STATIC at level {index}")
        if level.min_chunk > 1:
            blockers.append(f"min_chunk={level.min_chunk} at level {index}")
    if run.noise.per_core_sigma > 0.0 or run.noise.jitter_sigma > 0.0:
        blockers.append("execution-time noise (per-core scatter / chunk jitter)")
    if not bool(np.all(run.core_speed == run.core_speed[0])):
        blockers.append("heterogeneous core speeds")
    if run.faults_active:
        blockers.append("active fault model")
    if not (isinstance(run.placement, str) and run.placement == "leader"):
        blockers.append(f"placement={run.placement!r}")
    if run.trace is not None:
        blockers.append("trace collection")
    if run.max_sim_time is not None:
        blockers.append("engine watchdog (max_sim_time)")
    mpi = run.costs.mpi
    if (
        mpi.remote_numa_load_penalty != 0.0
        or mpi.remote_numa_atomic_penalty != 0.0
        or mpi.cross_socket_penalty != 0.0
    ):
        blockers.append("non-zero locality-tier penalty knobs")
    if not mpi.shm_lock_attempt > mpi.shm_unlock:
        blockers.append("shm_lock_attempt <= shm_unlock (tie-break unpinned)")
    if mpi.shm_poll_interval < 0.0:
        blockers.append("negative shm_poll_interval (poll steps must advance)")
    return blockers


def execute_cohort(model, run) -> None:
    """Execute ``run`` under the rank-aggregated cohort engine.

    Entry point used by :meth:`repro.models.base.ExecutionModel.run`
    for ``engine="cohort"``.  Eligible configurations go through the
    macro interpreter (bit-exact except ``n_events``); everything else
    runs ``model._execute`` unchanged, so the result — including
    ``n_events`` — is the scalar result.
    """
    if cohort_blockers(model, run):
        model._execute(run)
        return
    if model.name == "dcc":
        _run_dcc(model, run)
    elif run.spec.depth == 1:
        _run_flat(model, run)
    else:
        _run_depth2(model, run)


# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------


def _atomic_profile(world, host_rank: int, rank: int) -> Tuple[float, float, bool]:
    """``(latency, processing, remote)`` of one rank's priced atomic.

    Mirrors :meth:`repro.smpi.rma.Window._priced_atomic` with the
    zero-penalty knobs eligibility guarantees: network-remote origins
    pay ``network_latency`` seconds each way plus ``rma_atomic``
    processing; everyone else pays ``shm_atomic``.
    """
    mpi = world.costs.mpi
    tier = world.interconnect.distance(rank, host_rank)
    remote = tier is Tier.NETWORK
    latency = world.cluster.network_latency if remote else 0.0
    processing = (mpi.rma_atomic if remote else mpi.shm_atomic) + (
        mpi.tier_atomic_penalty(tier)
    )
    return latency, processing, remote


def _commit_atomic(window, remote: bool, processing: float, latency: float) -> int:
    """Commit one fetch-and-add(step, +1): stats + counter, scalar order."""
    old = window.cells["step"]
    window.cells["step"] = old + 1
    window.n_atomics += 1
    if remote:
        window.n_remote_atomics += 1
    window.total_atomic_time_s += processing + 2.0 * latency
    return old


def _fifo_arrive(lane, fifo: _GlobalFifo, when: float, payload) -> None:
    """Queue one atomic on the unit FIFO at ``when`` (arrival order)."""
    if fifo.busy:
        fifo.queue.append(payload)
    else:
        fifo.busy = True
        # payload[0] is the requesting rank's processing time
        lane.schedule(when + payload[0], when, _M_GCOMMIT, payload)


def _fifo_release(lane, fifo: _GlobalFifo, commit: float) -> None:
    """Hand the unit to the next FIFO waiter at commit time."""
    if fifo.queue:
        nxt = fifo.queue.pop(0)
        lane.schedule(commit + nxt[0], commit, _M_GCOMMIT, nxt)
    else:
        fifo.busy = False


def _record_workers(run, world, ranks: List[_Rank], finish, chunks, iters) -> None:
    """Run the scalar models' worker-stat epilogue over cohort ranks."""
    for state, ctx in zip(ranks, world.contexts):
        run.record_worker(
            name=ctx.name(),
            node=ctx.node,
            finish_time=finish.get(ctx.rank, state.finish_time),
            process=state,
            n_chunks=chunks.get(ctx.rank, 0),
            n_iterations=iters.get(ctx.rank, 0),
        )


# ---------------------------------------------------------------------------
# depth-1 drivers: one serialised counter, no tier locks
# ---------------------------------------------------------------------------


def _run_counter_loop(run, world, window, ranks, resolve, on_chunk, on_done) -> int:
    """Drive the fetch/compute loop of the flat protocols.

    ``resolve(step, rank_state, now)`` maps a committed counter value to
    ``(step, start, size)`` or None for exhaustion; ``on_chunk`` and
    ``on_done`` emit the model-specific records.  Returns the macro
    count.  Chunk-calculation overhead and latency accrue per rank in
    protocol order; records are emitted at their anchored macro times.
    """
    lane = CohortLane()
    fifo = _GlobalFifo()
    host = 0
    profiles: Dict[int, Tuple[float, float, bool]] = {}
    for node in range(run.cluster.n_nodes):
        rank0 = node * run.ppn
        profiles[node] = _atomic_profile(world, host, rank0)
    cc = run.costs.chunk_calc
    macros = 0

    def fetch(state: _Rank, now: float) -> None:
        latency, processing, remote = profiles[state.node]
        if latency:
            state.overhead_time += latency
            lane.schedule(now + latency, now, _M_GARRIVE, (processing, state))
        else:
            _fifo_arrive(lane, fifo, now, (processing, state))

    for state in ranks:  # t=0 spawn kick, rank order = scalar seq order
        fetch(state, 0.0)

    while len(lane):
        time, _push, _seq, code, payload = lane.pop()
        macros += 1
        if code == _M_GARRIVE:
            _fifo_arrive(lane, fifo, time, payload)
        elif code == _M_GCOMMIT:
            processing, state = payload
            latency, _proc, remote = profiles[state.node]
            step = _commit_atomic(window, remote, processing, latency)
            state.overhead_time += processing
            if latency:
                state.overhead_time += latency
            state.overhead_time += cc
            lane.schedule(
                time + latency + cc, time + latency, _M_RESOLVE, (step, state)
            )
            _fifo_release(lane, fifo, time)
        elif code == _M_RESOLVE:
            step, state = payload
            chunk = resolve(step, state, time)
            if chunk is None:
                state.finish_time = time
                on_done(state, time)
                continue
            step, start, size = chunk
            on_chunk(state, step, start, size, time)
            duration = run.exec_time(start, size, state.node, state.core)
            state.compute_time += duration
            lane.schedule(time + duration, time, _M_CDONE, (step, start, size, state))
        elif code == _M_CDONE:
            step, start, size, state = payload
            run.record_subchunk(step, start, size, pe=state.rank)
            state.n_chunks += 1
            state.n_iters += size
            fetch(state, time)
    run.sim.n_events_processed += macros
    return macros


def _make_ranks(run, world) -> List[_Rank]:
    """One accumulator per rank, in world (spawn) order."""
    return [
        _Rank(ctx.rank, ctx.node, ctx.core, ctx.local_rank)
        for ctx in world.contexts
    ]


def _run_dcc(model, run) -> None:
    """Cohort driver for the dCC model (single global step counter)."""
    from repro.models.dcc import (
        MAX_LEVELS,
        _flatten_schedule,
        collect_dcc_counters,
    )
    from repro.smpi.world import MpiWorld

    depth = run.spec.depth
    if depth > MAX_LEVELS:
        raise ValueError(
            f"dcc maps scheduling levels onto machine tiers "
            f"cluster->node->socket->numa->core and therefore supports "
            f"at most {MAX_LEVELS} levels; got a depth-{depth} stack "
            f"({run.spec.label})"
        )
    run.n_sched_levels = depth
    world = MpiWorld(run.sim, run.cluster, ppn=run.ppn, costs=run.costs)
    schedule = _flatten_schedule(run, world)
    starts = [start for start, _ in schedule]
    sizes = [size for _, size in schedule]
    n_steps = len(schedule)
    window = world.create_window(0, {"step": 0})
    ranks = _make_ranks(run, world)
    finish: Dict[int, float] = {}
    chunks: Dict[int, int] = {}
    iters: Dict[int, int] = {}

    def resolve(step, state, now):
        if step >= n_steps:
            return None
        return step, starts[step], sizes[step]

    def on_chunk(state, step, start, size, now):
        run.record_chunk(step, start, size, pe=state.rank)

    def on_done(state, now):
        finish[state.rank] = now
        chunks[state.rank] = state.n_chunks
        iters[state.rank] = state.n_iters

    _run_counter_loop(run, world, window, ranks, resolve, on_chunk, on_done)
    _record_workers(run, world, ranks, finish, chunks, iters)
    collect_dcc_counters(run, window, n_steps, None)


def _run_flat(model, run) -> None:
    """Cohort driver for depth-1 mpi+mpi (flat global-queue protocol)."""
    from repro.models.base import GlobalQueue
    from repro.models.mpi_mpi import collect_queue_counters
    from repro.smpi.world import MpiWorld

    run.n_sched_levels = 1
    world = MpiWorld(run.sim, run.cluster, ppn=run.ppn, costs=run.costs)
    inter_calc = run.spec.inter.make_calculator(
        run.workload.n,
        world.size,
        rng=run.sim.rng("inter-rnd"),
        chunk_overhead=run.costs.chunk_calc,
    )
    queue = GlobalQueue(world, inter_calc, run.workload.n, host_rank=0, run=run)
    ranks = _make_ranks(run, world)
    finish: Dict[int, float] = {}
    chunks: Dict[int, int] = {}
    iters: Dict[int, int] = {}

    def resolve(step, state, now):
        step, start, size = queue.resolve_step(step)
        if size <= 0:
            return None
        return step, start, size

    def on_chunk(state, step, start, size, now):
        run.record_chunk(step, start, size, pe=state.rank)

    def on_done(state, now):
        finish[state.rank] = now
        chunks[state.rank] = state.n_chunks
        iters[state.rank] = state.n_iters

    _run_counter_loop(run, world, queue.window, ranks, resolve, on_chunk, on_done)
    _record_workers(run, world, ranks, finish, chunks, iters)
    collect_queue_counters(run, queue, {}, None)


# ---------------------------------------------------------------------------
# depth-2 driver: per-node polled queues over the global counter
# ---------------------------------------------------------------------------


def _run_depth2(model, run) -> None:
    """Cohort driver for the paper's two-level mpi+mpi configuration.

    Replays the full protocol of
    :meth:`repro.models.mpi_mpi.MpiMpiModel._take_from` /
    ``_worker_loop`` as macro events: lock polling (fast-forwarded
    cohorts), critical sections, global refills through the serialised
    RMA unit, deposits, takes and compute — anchored at the simulated
    seconds the scalar events would land.
    """
    from repro.models.base import GlobalQueue
    from repro.models.mpi_mpi import collect_queue_counters
    from repro.smpi.world import MpiWorld

    run.n_sched_levels = 2
    world = MpiWorld(run.sim, run.cluster, ppn=run.ppn, costs=run.costs)
    n_nodes = run.cluster.n_nodes
    inter_calc = run.spec.inter.make_calculator(
        run.workload.n,
        n_nodes,
        rng=run.sim.rng("inter-rnd"),
        chunk_overhead=run.costs.chunk_calc,
    )
    queue = GlobalQueue(world, inter_calc, run.workload.n, host_rank=0, run=run)
    local_queues = model._build_queues(run, world, queue, 2, None)

    mpi = run.costs.mpi
    A = mpi.shm_lock_attempt  # per-attempt message cost (seconds)
    ACC3 = 3 * mpi.shm_access
    U = mpi.shm_unlock
    S = mpi.shm_win_sync
    CC = run.costs.chunk_calc
    POLL = mpi.shm_poll_interval

    lane = CohortLane()
    fifo = _GlobalFifo()
    ranks = _make_ranks(run, world)
    locks: Dict[int, _NodeLock] = {}
    profiles: Dict[int, Tuple[float, float, bool]] = {}
    for node in range(n_nodes):
        shm = local_queues[node].shm
        locks[node] = _NodeLock(node, shm, _JitterBuffer(shm._rng))
        profiles[node] = _atomic_profile(world, 0, node * run.ppn)
    finish: Dict[int, float] = {}
    chunks: Dict[int, int] = {}
    iters: Dict[int, int] = {}
    live = len(ranks)

    def arrive(state: _Rank, now: float) -> None:
        """Rank enters ``shm.lock``: join the node's polling cohort."""
        nl = locks[state.node]
        attempt = now + A
        heapq.heappush(nl.heap, (attempt, state))
        if nl.holder is None and (nl.check_time is None or attempt < nl.check_time):
            nl.version += 1
            nl.check_time = attempt
            lane.schedule(attempt, now, _M_CHECK, (nl, nl.version))

    def fast_forward(nl: _NodeLock, released: float) -> None:
        """Release at ``released``: realise the cohort's deferred failed
        attempts (chronological per-window order), then schedule the
        winner check at the first strictly-later attempt."""
        # The hottest loop in the engine (tens of millions of deferred
        # attempts at 64k ranks): locals, an inlined EAFP jitter buffer,
        # two-element heap entries and a hoisted emptiness check cut the
        # per-attempt cost without touching a single accrual order.
        # heapreplace keeps the heap size invariant, so `heap` truthiness
        # is loop-invariant and tested once.
        heap = nl.heap
        shm = nl.shm
        replace = heapq.heapreplace
        jitter = nl.jitter
        buf, idx = jitter._buf, jitter._idx
        poll_wait = shm.total_poll_wait
        if heap:
            while True:
                attempt, state = heap[0]
                if attempt > released:
                    break
                state.attempts += 1
                try:
                    wait = POLL * buf[idx]
                except IndexError:
                    buf = jitter._buf = jitter._rng.uniform(
                        0.5, 1.5, size=_JITTER_BATCH
                    ).tolist()
                    idx = 0
                    wait = POLL * buf[0]
                idx += 1
                poll_wait += wait
                state.overhead_time += A
                state.overhead_time += wait
                replace(heap, (attempt + wait + A, state))
        jitter._idx = idx
        shm.total_poll_wait = poll_wait
        nl.holder = None
        if heap:
            first = heap[0][0]
            nl.version += 1
            nl.check_time = first
            # push_time = attempt - A: the scalar engine pushed the
            # winning attempt's event when its poll wait ended
            lane.schedule(first, first - A, _M_CHECK, (nl, nl.version))
        else:
            nl.check_time = None

    def release(nl: _NodeLock, now: float) -> None:
        fast_forward(nl, now)

    def begin_exec(state: _Rank, sub, now: float) -> None:
        """Post-unlock tail: win_sync then the chunk's compute span."""
        nl = locks[state.node]
        nl.shm.n_syncs += 1
        state.overhead_time += S
        _head, sub_start, size, _step = sub
        duration = run.exec_time(sub_start, size, state.node, state.core)
        state.compute_time += duration
        lane.schedule(now + S + duration, now + S, _M_CDONE, (state, sub))

    for state in ranks:  # t=0 spawn kick in rank (spawn) order
        arrive(state, 0.0)

    macros = 0
    while len(lane):
        now, _push, _lseq, code, payload = lane.pop()
        macros += 1
        if code == _M_CHECK:
            nl, version = payload
            if version != nl.version or nl.holder is not None:
                continue  # superseded by a later arrival or acquisition
            _attempt, state = heapq.heappop(nl.heap)
            state.overhead_time += A
            state.attempts += 1
            shm = nl.shm
            shm.n_attempts += state.attempts
            shm.n_acquisitions += 1
            if state.attempts > shm.max_attempts_per_acquire:
                shm.max_attempts_per_acquire = state.attempts
            state.attempts = 0
            nl.holder = state
            nl.check_time = None
            state.overhead_time += ACC3
            lane.schedule(now + ACC3, now, _M_TAKE, state)
        elif code == _M_TAKE:
            state = payload
            lq = local_queues[state.node]
            sub = lq.take(state.child)
            if sub is not None:
                state.overhead_time += U
                lane.schedule(now + U, now, _M_UNLOCK_TAKEN, (state, sub))
            elif lq.shm.cells["global_done"]:
                state.overhead_time += U
                lane.schedule(now + U, now, _M_UNLOCK_EXIT, state)
            else:  # this rank is currently the fastest: refill
                latency, processing, _remote = profiles[state.node]
                if latency:
                    state.overhead_time += latency
                    lane.schedule(
                        now + latency, now, _M_GARRIVE, (processing, state)
                    )
                else:
                    _fifo_arrive(lane, fifo, now, (processing, state))
        elif code == _M_GARRIVE:
            _fifo_arrive(lane, fifo, now, payload)
        elif code == _M_GCOMMIT:
            processing, state = payload
            latency, _proc, remote = profiles[state.node]
            step = _commit_atomic(queue.window, remote, processing, latency)
            state.overhead_time += processing
            if latency:
                state.overhead_time += latency
            state.overhead_time += CC
            lane.schedule(
                now + latency + CC, now + latency, _M_RESOLVE, (step, state)
            )
            _fifo_release(lane, fifo, now)
        elif code == _M_RESOLVE:
            step, state = payload
            resolved = queue.resolve_step(step)
            state.overhead_time += ACC3
            lane.schedule(now + ACC3, now, _M_DEPOSIT, (state, resolved))
        elif code == _M_DEPOSIT:
            state, (step, start, size) = payload
            lq = local_queues[state.node]
            if size > 0:
                lq.deposit(step, start, size, ((queue.calc, state.node),))
                run.record_level_chunk(0, step, start, size, state.node)
                sub = lq.take(state.child)
                state.overhead_time += U
                lane.schedule(now + U, now, _M_UNLOCK_TAKEN, (state, sub))
            else:
                lq.shm.cells["global_done"] = 1
                state.overhead_time += U
                lane.schedule(now + U, now, _M_UNLOCK_EMPTY, state)
        elif code == _M_UNLOCK_TAKEN:
            state, sub = payload
            release(locks[state.node], now)
            begin_exec(state, sub, now)
        elif code == _M_UNLOCK_EXIT:
            state = payload
            release(locks[state.node], now)
            state.finish_time = now
            finish[state.rank] = now
            chunks[state.rank] = state.n_chunks
            iters[state.rank] = state.n_iters
            live -= 1
        elif code == _M_UNLOCK_EMPTY:
            state = payload
            nl = locks[state.node]
            release(nl, now)
            nl.shm.n_syncs += 1
            state.overhead_time += S
            arrive(state, now + S)
        elif code == _M_CDONE:
            state, sub = payload
            head, sub_start, size, _step = sub
            run.record_subchunk(head.local_step - 1, sub_start, size, pe=state.rank)
            state.n_chunks += 1
            state.n_iters += size
            arrive(state, now)
    if live:
        raise RuntimeError(
            f"cohort engine deadlock: {live} rank(s) never terminated"
        )
    run.sim.n_events_processed += macros
    _record_workers(run, world, ranks, finish, chunks, iters)
    collect_queue_counters(run, queue, local_queues, None)
