"""The discrete-event simulation engine.

The :class:`Simulator` owns a time-ordered event heap.  Each heap entry
resumes one simulated :class:`Process` (a Python generator).  Processes
communicate and synchronise exclusively through the primitives in
:mod:`repro.sim.primitives` and the resources in
:mod:`repro.sim.resources`, which keeps the engine itself tiny and the
whole simulation deterministic.

Performance notes
-----------------
Every paper artifact replays millions of events through this loop, so
:meth:`Simulator.run` is written as a single inlined interpreter:

* a type-keyed dispatch table (:data:`_COMMAND_KINDS`) replaces the
  old ``isinstance`` chain; unknown ``Command`` subclasses are resolved
  once and memoised;
* per-event attribute lookups (heap ops, ``DelayKind`` members) are
  hoisted into locals, and the dominant pop-then-push pair is fused
  into a single ``heapreplace`` (the current event is *peeked* and
  lazily replaced by the process's next resume, halving sift work);
* zero-delay resumes — spawn kick-offs, event triggers, lock hand-offs,
  the poll loops behind ``SharedWindow.lock`` — go through a FIFO
  *ready* deque instead of the heap (O(1) instead of O(log n)); the
  deque is merged with the heap in exact ``(time, seq)`` order, so
  execution order is bit-identical to the pure-heap engine.

The lazy-root invariant: while a heap-sourced event is being
interpreted, its entry remains the heap root.  Every resume scheduled
*during* interpretation lies strictly later in ``(time, seq)`` order
(delays are positive, sequence numbers grow), so the root stays the
minimum until it is replaced or popped on every exit path.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from math import inf as _INF
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional, Tuple

import numpy as np

from repro.sim.primitives import Command, Delay, DelayKind, Halt, SimEvent, Spawn

ProcessBody = Generator[Command, Any, Any]

#: dispatch codes for the command interpreter
_KIND_DELAY = 1
_KIND_EVENT = 2
_KIND_SPAWN = 3
_KIND_HALT = 4

#: type-keyed dispatch table; exact types are pre-registered, subclasses
#: are resolved through ``_resolve_command_kind`` and memoised here.
_COMMAND_KINDS: Dict[type, int] = {
    Delay: _KIND_DELAY,
    SimEvent: _KIND_EVENT,
    Spawn: _KIND_SPAWN,
    Halt: _KIND_HALT,
}


#: sentinel returned by ``Simulator._interpret_uncommon`` when the
#: process blocked (scheduled a future resume) instead of continuing.
_BLOCKED = object()


def _resolve_command_kind(cls: type) -> int:
    """Slow-path dispatch for Command subclasses (memoised)."""
    for base, code in (
        (Delay, _KIND_DELAY),
        (SimEvent, _KIND_EVENT),
        (Spawn, _KIND_SPAWN),
        (Halt, _KIND_HALT),
    ):
        if issubclass(cls, base):
            _COMMAND_KINDS[cls] = code
            return code
    return 0


class _HaltSignal(BaseException):
    """Internal control-flow signal: a process yielded ``Halt``.

    Raised (and always caught) inside :meth:`Simulator.run` so the hot
    loop does not need a per-event halt check; derives from
    ``BaseException`` so stray ``except Exception`` user code cannot
    swallow it.
    """


class ProcessFailure(RuntimeError):
    """Raised when a simulated process raises; carries the process name."""

    def __init__(self, process: "Process", original: BaseException):
        super().__init__(f"process {process.name!r} failed: {original!r}")
        self.process = process
        self.original = original


class SimulationTimeout(RuntimeError):
    """The watchdog deadline passed before the simulation drained.

    Raised by :meth:`Simulator.run` when ``max_sim_time`` is exceeded;
    carries a diagnostic snapshot (simulated time, the still-alive
    processes, pending event counts) so a livelocked configuration
    fails loudly instead of spinning forever.
    """

    def __init__(self, sim: "Simulator", deadline: float):
        alive = [p.name for p in sim.processes if p.alive]
        shown = ", ".join(alive[:8]) + ("..." if len(alive) > 8 else "")
        super().__init__(
            f"simulation exceeded max_sim_time={deadline:g}s at "
            f"t={sim.now:g}s with {len(alive)} live process(es) "
            f"[{shown}] and {len(sim._heap) + len(sim._ready)} pending "
            f"event(s) — likely a livelock or an unreachable termination "
            f"condition"
        )
        self.deadline = deadline
        self.sim_time = sim.now
        self.live_processes = alive
        self.pending_events = len(sim._heap) + len(sim._ready)


class Process:
    """A running simulated process.

    Wraps the user generator together with its accounting state.  The
    per-kind time accumulators (:attr:`compute_time`,
    :attr:`overhead_time`, :attr:`idle_time`) are the raw material for
    the metrics layer; *implicit* idle time (waiting on events) is the
    remainder ``(end - start) - compute - overhead - idle``.
    """

    __slots__ = (
        "name",
        "gen",
        "send",
        "sim",
        "alive",
        "killed",
        "finished",
        "_done",
        "result",
        "start_time",
        "end_time",
        "compute_time",
        "overhead_time",
        "idle_time",
        "meta",
    )

    def __init__(self, sim: "Simulator", gen: ProcessBody, name: str):
        self.sim = sim
        self.gen = gen
        #: bound ``gen.send`` — resolved once; the run loop's hottest call
        self.send = gen.send
        self.name = name
        self.alive = True
        #: True when the process was crash-stopped by :meth:`Simulator.kill`
        self.killed = False
        #: True only after a *normal* termination (generator returned);
        #: stays False for processes killed by ProcessFailure.
        self.finished = False
        self._done: Optional[SimEvent] = None
        self.result: Any = None
        self.start_time = sim.now
        self.end_time: Optional[float] = None
        self.compute_time = 0.0
        self.overhead_time = 0.0
        self.idle_time = 0.0
        #: Free-form annotations (rank ids, node ids, ...), set by layers above.
        self.meta: Dict[str, Any] = {}

    @property
    def done(self) -> SimEvent:
        """Triggered (with the generator's return value) on termination.

        Created lazily: most processes are never waited on, so the
        event (and its trigger at finish time) would be pure overhead.
        A process that already terminated hands back a pre-triggered
        event carrying its result.
        """
        event = self._done
        if event is None:
            event = self._done = SimEvent(self.sim, name=f"{self.name}.done")
            if self.finished:
                # Normal termination only: a crashed process (raised ->
                # ProcessFailure) must not present itself as completed.
                event.triggered = True
                event.value = self.result
        return event

    @property
    def elapsed(self) -> float:
        """Wall-clock (simulated) lifetime of the process so far."""
        end = self.end_time if self.end_time is not None else self.sim.now
        return end - self.start_time

    @property
    def wait_time(self) -> float:
        """Implicit idle time spent blocked on events/resources."""
        return max(
            0.0, self.elapsed - self.compute_time - self.overhead_time - self.idle_time
        )

    def _account(self, delay: Delay) -> None:
        if delay.kind is DelayKind.COMPUTE:
            self.compute_time += delay.duration
        elif delay.kind is DelayKind.OVERHEAD:
            self.overhead_time += delay.duration
        else:
            self.idle_time += delay.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :meth:`rng`).
    trace:
        Optional callback ``(time, process_name, label, payload)``
        invoked by instrumented layers; ``None`` disables tracing with
        zero overhead at call sites that check :attr:`tracing`.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Callable[[float, str, str, Any], None]] = None,
    ):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Process, Any]] = []
        #: zero-delay resumes at the *current* time, FIFO by sequence
        #: number; merged with the heap in exact (time, seq) order.
        self._ready: Deque[Tuple[int, Process, Any]] = deque()
        #: shared monotonic sequence for FIFO tie-breaking (C-level fast)
        self._seq = count(1)
        self.seed = int(seed)
        self._rngs: Dict[str, np.random.Generator] = {}
        self.processes: List[Process] = []
        self._halted: Optional[str] = None
        self.trace = trace
        self.n_events_processed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        return self.trace is not None

    def emit(self, process_name: str, label: str, payload: Any = None) -> None:
        """Emit a trace record if tracing is enabled."""
        if self.trace is not None:
            self.trace(self.now, process_name, label, payload)

    def rng(self, stream: str) -> np.random.Generator:
        """Return the named deterministic RNG stream.

        Streams are independent and reproducible: the same ``(seed,
        stream)`` pair always yields the same sequence regardless of
        creation order.
        """
        gen = self._rngs.get(stream)
        if gen is None:
            ss = np.random.SeedSequence(self.seed, spawn_key=(_stable_hash(stream),))
            gen = np.random.default_rng(ss)
            self._rngs[stream] = gen
        return gen

    def event(self, name: str = "") -> SimEvent:
        """Create an event bound to this simulator."""
        return SimEvent(self, name=name)

    def spawn(self, gen: ProcessBody, name: Optional[str] = None) -> Process:
        """Start a new process at the current simulation time."""
        if not hasattr(gen, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        process = Process(self, gen, name or f"proc-{len(self.processes)}")
        self.processes.append(process)
        # Kick the generator off with an immediate resume so that spawn
        # order (not creation order) defines execution order at t=now.
        self._schedule_resume(process, None)
        return process

    def kill(self, process: Process) -> bool:
        """Crash-stop ``process`` at the current simulated time.

        Returns True if the process was alive (and is now dead), False
        for a no-op on an already-terminated process.  The generator is
        closed, which runs its ``finally`` blocks (modelling hardware
        that completes in-flight atomics) and makes any stale queue
        entry for the process resolve as an immediate ``StopIteration``
        in the run loop — no queue scrubbing needed.  A killed process
        never counts as :attr:`Process.finished` and its ``done`` event
        never triggers: crash-stop is silent, exactly like a real dead
        rank.
        """
        if not process.alive:
            return False
        process.alive = False
        process.killed = True
        process.end_time = self.now
        try:
            process.gen.close()
        except RuntimeError:
            # The generator refused to die (yielded during close);
            # treat it as dead anyway — it will never be resumed.
            pass
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_sim_time: Optional[float] = None,
    ) -> float:
        """Run until the queues drain, ``until`` is reached, or a halt.

        ``max_sim_time`` arms a watchdog: if simulated time would pass
        it before the queues drain, :class:`SimulationTimeout` is
        raised with a diagnostic snapshot (live processes, pending
        events).  Unlike ``until`` — which *pauses* at the horizon —
        the watchdog treats reaching the deadline as a failure.

        Returns the final simulation time.  Re-entrant calls are not
        supported (the engine is strictly single-threaded).
        """
        # -- hoisted hot-loop locals -----------------------------------
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace
        next_seq = self._seq.__next__
        compute_kind = DelayKind.COMPUTE
        overhead_kind = DelayKind.OVERHEAD
        horizon = _INF if until is None else until
        deadline = _INF if max_sim_time is None else max_sim_time
        # The tight lane skips the horizon/deadline compare entirely, so
        # it is only legal when neither bound is armed.
        unbounded = until is None and max_sim_time is None
        now = self.now
        n_done = 0
        try:
            while True:
                # -- tight lane: heap-sourced event, ready deque empty --
                # The dominant regime (pure delay-driven phases), taken
                # only for horizon-free runs (``until=None`` — every
                # model execution; bounded runs use the general lane).
                # Kept free of the merge logic, the from_heap flag and
                # the horizon compare; exits via IndexError on heap
                # exhaustion and falls back to the general lane the
                # moment anything lands in the ready deque.  Heap-sourced
                # events are *peeked*: the root entry stays put (it
                # remains the minimum — see the lazy-root invariant
                # above) and is replaced/popped only when the resume
                # resolves.
                if unbounded:
                    while not ready:
                        try:
                            # The only statement this handler guards:
                            # IndexError here means the heap drained.
                            # Exceptions from process code cannot reach
                            # it — they are wrapped as ProcessFailure at
                            # the send() call below.
                            t, _seq, process, value = heap[0]
                        except IndexError:
                            break
                        if t != now:
                            # Times cluster heavily (lockstep delays,
                            # barrier releases): skip the attribute
                            # store when the clock does not move.
                            now = self.now = t
                        n_done += 1
                        # No liveness check here: every queue entry
                        # references an alive process (death paths —
                        # StopIteration and ProcessFailure — consume
                        # the process's only pending entry, and
                        # triggers only ever wake blocked waiters).
                        while True:
                            try:
                                command = process.send(value)
                            except StopIteration as stop:
                                heappop(heap)
                                self._finish(process, stop.value)
                                break
                            except ProcessFailure:
                                heappop(heap)
                                raise
                            except BaseException as exc:  # noqa: BLE001
                                heappop(heap)
                                process.alive = False
                                process.end_time = now
                                raise ProcessFailure(process, exc) from exc

                            if command.__class__ is Delay:
                                # Fast path: the most common command.
                                duration = command.duration
                                kind = command.kind
                                if kind is compute_kind:
                                    process.compute_time += duration
                                elif kind is overhead_kind:
                                    process.overhead_time += duration
                                else:
                                    process.idle_time += duration
                                if duration == 0.0:
                                    # Zero delays resume inline: cheap
                                    # and keeps event counts
                                    # proportional to *time-consuming*
                                    # actions.
                                    value = None
                                    continue
                                heapreplace(
                                    heap,
                                    (now + duration, next_seq(), process, None),
                                )
                                break
                            if command.__class__ is SimEvent:
                                if command._sim is None:
                                    command._sim = self
                                if command.triggered:
                                    value = command.value
                                    continue
                                command._waiters.append(process)
                                heappop(heap)
                                break
                            # Uncommon commands (Spawn/Halt/subclasses):
                            # shared slow-path interpreter.
                            value = self._interpret_uncommon(
                                process, command, True
                            )
                            if value is _BLOCKED:
                                break

                # -- general lane: merge ready deque and heap ----------
                # Every ready entry sits at the current time, so a heap
                # entry wins only when it is also due now with a smaller
                # sequence number.
                if ready:
                    head = heap[0] if heap else None
                    if head is not None and head[0] <= now and head[1] < ready[0][0]:
                        from_heap = True
                        t, _seq, process, value = head
                        now = self.now = t
                    else:
                        from_heap = False
                        _seq, process, value = ready.popleft()
                elif heap:
                    t, _seq, process, value = heap[0]
                    if t > horizon or t > deadline:
                        if t > deadline and deadline < horizon:
                            # Watchdog fires before (or instead of) the
                            # pause horizon: fail loudly.
                            raise SimulationTimeout(self, deadline)
                        self.now = until
                        return until
                    from_heap = True
                    now = self.now = t
                else:
                    break
                n_done += 1
                if not process.alive:
                    if from_heap:
                        heappop(heap)
                    continue

                # -- interpret the process's next command(s) -----------
                while True:
                    try:
                        command = process.send(value)
                    except StopIteration as stop:
                        if from_heap:
                            heappop(heap)
                        self._finish(process, stop.value)
                        break
                    except ProcessFailure:
                        if from_heap:
                            heappop(heap)
                        raise
                    except BaseException as exc:  # noqa: BLE001 - deliberate wrap
                        if from_heap:
                            heappop(heap)
                        process.alive = False
                        process.end_time = now
                        raise ProcessFailure(process, exc) from exc

                    cls = command.__class__
                    if cls is Delay:
                        # Fast path: by far the most common command.
                        duration = command.duration
                        kind = command.kind
                        if kind is compute_kind:
                            process.compute_time += duration
                        elif kind is overhead_kind:
                            process.overhead_time += duration
                        else:
                            process.idle_time += duration
                        if duration == 0.0:
                            # Zero delays resume inline: cheap and keeps
                            # event counts proportional to
                            # *time-consuming* actions.
                            value = None
                            continue
                        if from_heap:
                            heapreplace(
                                heap, (now + duration, next_seq(), process, None)
                            )
                        else:
                            heappush(heap, (now + duration, next_seq(), process, None))
                        break
                    if cls is SimEvent:
                        if command._sim is None:
                            command._sim = self
                        if command.triggered:
                            value = command.value
                            continue
                        command._waiters.append(process)
                        if from_heap:
                            heappop(heap)
                        break
                    # -- uncommon commands: shared slow-path dispatch --
                    value = self._interpret_uncommon(process, command, from_heap)
                    if value is _BLOCKED:
                        break
        except _HaltSignal:
            pass
        finally:
            self.n_events_processed += n_done
        return self.now

    def _interpret_uncommon(
        self, process: Process, command: Any, from_heap: bool
    ) -> Any:
        """Handle Spawn/Halt/``Command`` subclasses from the run loop.

        Returns the value to resume the process with, or :data:`_BLOCKED`
        when the process yielded a pending resume (delay scheduled /
        event wait) and interpretation of this event is over.  When
        ``from_heap`` is true the current event's (stale) root entry is
        consumed on every path that ends the resume.
        """
        code = _COMMAND_KINDS.get(command.__class__)
        if code is None:
            code = _resolve_command_kind(command.__class__)
        if code == _KIND_DELAY:
            process._account(command)
            if command.duration == 0.0:
                return None
            entry = (self.now + command.duration, next(self._seq), process, None)
            if from_heap:
                heapq.heapreplace(self._heap, entry)
            else:
                heapq.heappush(self._heap, entry)
            return _BLOCKED
        if code == _KIND_EVENT:
            if command._sim is None:
                command.bind(self)
            if command.triggered:
                return command.value
            command.add_waiter(process)
            if from_heap:
                heapq.heappop(self._heap)
            return _BLOCKED
        if code == _KIND_SPAWN:
            return self.spawn(command.factory(), name=command.name)
        if code == _KIND_HALT:
            if from_heap:
                heapq.heappop(self._heap)
            self._halted = command.reason or "halted"
            raise _HaltSignal()
        if from_heap:
            heapq.heappop(self._heap)
        raise TypeError(
            f"process {process.name!r} yielded unsupported command "
            f"{command!r} of type {type(command).__name__}"
        )

    @property
    def halted_reason(self) -> Optional[str]:
        return self._halted

    # ------------------------------------------------------------------
    # engine internals
    # ------------------------------------------------------------------
    def _schedule_resume(self, process: Process, value: Any, delay: float = 0.0) -> None:
        if delay == 0.0:
            # Fast lane: resumes at the current time keep FIFO order, so
            # a deque append replaces an O(log n) heap push.
            self._ready.append((next(self._seq), process, value))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, next(self._seq), process, value)
            )

    def _step(self, process: Process, value: Any) -> None:
        """Resume ``process`` with ``value`` and interpret its next command.

        Compatibility shim: the hot loop in :meth:`run` inlines this
        logic; ``_step`` remains for callers that drive one resume at a
        time (debuggers, tests).  Unlike :meth:`run` it schedules
        through :meth:`_schedule_resume` and never touches heap entries
        of other events.
        """
        if not process.alive:
            return
        while True:
            try:
                command = process.send(value)
            except StopIteration as stop:
                self._finish(process, stop.value)
                return
            except ProcessFailure:
                raise
            except BaseException as exc:  # noqa: BLE001 - deliberate wrap
                process.alive = False
                process.end_time = self.now
                raise ProcessFailure(process, exc) from exc

            code = _COMMAND_KINDS.get(command.__class__)
            if code is None:
                code = _resolve_command_kind(command.__class__)
            if code == _KIND_DELAY:
                process._account(command)
                if command.duration == 0.0:
                    value = None
                    continue
                self._schedule_resume(process, None, command.duration)
                return
            if code == _KIND_EVENT:
                if command._sim is None:
                    command.bind(self)
                if command.triggered:
                    value = command.value
                    continue
                command.add_waiter(process)
                return
            if code == _KIND_SPAWN:
                child = self.spawn(command.factory(), name=command.name)
                value = child
                continue
            if code == _KIND_HALT:
                self._halted = command.reason or "halted"
                return
            raise TypeError(
                f"process {process.name!r} yielded unsupported command "
                f"{command!r} of type {type(command).__name__}"
            )

    def _finish(self, process: Process, result: Any) -> None:
        if process.killed:
            # A crash-stopped process's closed generator raises
            # StopIteration when its stale queue entry resumes it; that
            # is the entry draining, not a normal termination.  Keep the
            # kill-time end_time and never trigger ``done``.
            return
        process.alive = False
        process.finished = True
        process.result = result
        process.end_time = self.now
        done = process._done
        if done is not None:
            done.trigger(result)


class CohortLane:
    """Macro-event dispatch lane for the rank-aggregated cohort engine.

    A tiny ordered heap of *macro* events — condensed spans of the
    scalar event stream, each standing in for a whole chain of per-rank
    heap events.  Entries order by ``(time, push_time, seq)``:

    * ``time`` — the simulated second the macro's scalar anchor event
      would land;
    * ``push_time`` — the simulated second the scalar engine would have
      *pushed* that anchor entry (the previous yield point).  The
      scalar heap breaks same-time ties by push order, so carrying the
      push time reproduces exact tie-breaking — e.g. a lock attempt
      landing precisely at an unlock's release loses because attempt
      entries are pushed ``shm_lock_attempt`` before landing while
      unlock entries are pushed only ``shm_unlock`` before;
    * ``seq`` — a monotonic sequence assigned at schedule time, which
      resolves residual ties (structurally symmetric ranks/node groups)
      in ancestry order, exactly like the scalar engine's sequence
      numbers inherited from rank spawn order.

    The lane is deliberately engine-agnostic: :mod:`repro.sim.cohorts`
    interprets the macro codes; this class only owns ordering.
    """

    __slots__ = ("now", "heap", "_seq")

    def __init__(self):
        self.now: float = 0.0
        self.heap: List[Tuple[float, float, int, int, Any]] = []
        self._seq = count(1)

    def schedule(self, time: float, push_time: float, code: int, payload: Any) -> None:
        """Enqueue a macro anchored at ``time`` pushed at ``push_time``."""
        heapq.heappush(
            self.heap, (time, push_time, next(self._seq), code, payload)
        )

    def pop(self) -> Tuple[float, float, int, int, Any]:
        """Pop the next macro in scalar-equivalent order, advancing ``now``."""
        entry = heapq.heappop(self.heap)
        self.now = entry[0]
        return entry

    def __len__(self) -> int:
        return len(self.heap)


def _stable_hash(text: str) -> int:
    """A deterministic 32-bit hash (Python's ``hash`` is salted)."""
    value = 2166136261
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value


def drain(
    sim: Simulator,
    processes: Iterable[Process],
    max_sim_time: Optional[float] = None,
) -> None:
    """Run the simulator until every given process has terminated.

    ``max_sim_time`` arms the engine watchdog (see
    :class:`SimulationTimeout`).
    """
    sim.run(max_sim_time=max_sim_time)
    pending = [p for p in processes if p.alive]
    if pending:
        names = ", ".join(p.name for p in pending[:8])
        raise RuntimeError(
            f"simulation deadlock: {len(pending)} processes still alive ({names})"
        )
