"""The discrete-event simulation engine.

The :class:`Simulator` owns a time-ordered event heap.  Each heap entry
resumes one simulated :class:`Process` (a Python generator).  Processes
communicate and synchronise exclusively through the primitives in
:mod:`repro.sim.primitives` and the resources in
:mod:`repro.sim.resources`, which keeps the engine itself tiny and the
whole simulation deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

import numpy as np

from repro.sim.primitives import Command, Delay, DelayKind, Halt, SimEvent, Spawn

ProcessBody = Generator[Command, Any, Any]


class ProcessFailure(RuntimeError):
    """Raised when a simulated process raises; carries the process name."""

    def __init__(self, process: "Process", original: BaseException):
        super().__init__(f"process {process.name!r} failed: {original!r}")
        self.process = process
        self.original = original


class Process:
    """A running simulated process.

    Wraps the user generator together with its accounting state.  The
    per-kind time accumulators (:attr:`compute_time`,
    :attr:`overhead_time`, :attr:`idle_time`) are the raw material for
    the metrics layer; *implicit* idle time (waiting on events) is the
    remainder ``(end - start) - compute - overhead - idle``.
    """

    __slots__ = (
        "name",
        "gen",
        "sim",
        "alive",
        "done",
        "result",
        "start_time",
        "end_time",
        "compute_time",
        "overhead_time",
        "idle_time",
        "meta",
    )

    def __init__(self, sim: "Simulator", gen: ProcessBody, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        #: Triggered (with the generator's return value) on termination.
        self.done = SimEvent(sim, name=f"{name}.done")
        self.result: Any = None
        self.start_time = sim.now
        self.end_time: Optional[float] = None
        self.compute_time = 0.0
        self.overhead_time = 0.0
        self.idle_time = 0.0
        #: Free-form annotations (rank ids, node ids, ...), set by layers above.
        self.meta: Dict[str, Any] = {}

    @property
    def elapsed(self) -> float:
        """Wall-clock (simulated) lifetime of the process so far."""
        end = self.end_time if self.end_time is not None else self.sim.now
        return end - self.start_time

    @property
    def wait_time(self) -> float:
        """Implicit idle time spent blocked on events/resources."""
        return max(
            0.0, self.elapsed - self.compute_time - self.overhead_time - self.idle_time
        )

    def _account(self, delay: Delay) -> None:
        if delay.kind is DelayKind.COMPUTE:
            self.compute_time += delay.duration
        elif delay.kind is DelayKind.OVERHEAD:
            self.overhead_time += delay.duration
        else:
            self.idle_time += delay.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :meth:`rng`).
    trace:
        Optional callback ``(time, process_name, label, payload)``
        invoked by instrumented layers; ``None`` disables tracing with
        zero overhead at call sites that check :attr:`tracing`.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Callable[[float, str, str, Any], None]] = None,
    ):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Process, Any]] = []
        self._seq = 0
        self.seed = int(seed)
        self._rngs: Dict[str, np.random.Generator] = {}
        self.processes: List[Process] = []
        self._halted: Optional[str] = None
        self.trace = trace
        self.n_events_processed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        return self.trace is not None

    def emit(self, process_name: str, label: str, payload: Any = None) -> None:
        """Emit a trace record if tracing is enabled."""
        if self.trace is not None:
            self.trace(self.now, process_name, label, payload)

    def rng(self, stream: str) -> np.random.Generator:
        """Return the named deterministic RNG stream.

        Streams are independent and reproducible: the same ``(seed,
        stream)`` pair always yields the same sequence regardless of
        creation order.
        """
        gen = self._rngs.get(stream)
        if gen is None:
            ss = np.random.SeedSequence(self.seed, spawn_key=(_stable_hash(stream),))
            gen = np.random.default_rng(ss)
            self._rngs[stream] = gen
        return gen

    def event(self, name: str = "") -> SimEvent:
        """Create an event bound to this simulator."""
        return SimEvent(self, name=name)

    def spawn(self, gen: ProcessBody, name: Optional[str] = None) -> Process:
        """Start a new process at the current simulation time."""
        if not hasattr(gen, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        process = Process(self, gen, name or f"proc-{len(self.processes)}")
        self.processes.append(process)
        # Kick the generator off with an immediate resume so that spawn
        # order (not creation order) defines execution order at t=now.
        self._schedule_resume(process, None)
        return process

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or a halt.

        Returns the final simulation time.  Re-entrant calls are not
        supported (the engine is strictly single-threaded).
        """
        heap = self._heap
        while heap:
            time, _seq, process, value = heapq.heappop(heap)
            if until is not None and time > until:
                # Put it back so that a subsequent run() can continue.
                heapq.heappush(heap, (time, _seq, process, value))
                self.now = until
                return self.now
            self.now = time
            self.n_events_processed += 1
            self._step(process, value)
            if self._halted is not None:
                break
        return self.now

    @property
    def halted_reason(self) -> Optional[str]:
        return self._halted

    # ------------------------------------------------------------------
    # engine internals
    # ------------------------------------------------------------------
    def _schedule_resume(self, process: Process, value: Any, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, process, value))

    def _step(self, process: Process, value: Any) -> None:
        """Resume ``process`` with ``value`` and interpret its next command."""
        if not process.alive:
            return
        while True:
            try:
                command = process.gen.send(value)
            except StopIteration as stop:
                self._finish(process, stop.value)
                return
            except ProcessFailure:
                raise
            except BaseException as exc:  # noqa: BLE001 - deliberate wrap
                process.alive = False
                process.end_time = self.now
                raise ProcessFailure(process, exc) from exc

            if type(command) is Delay or isinstance(command, Delay):
                process._account(command)
                if command.duration == 0.0:
                    # Zero delays resume inline: cheap and keeps event
                    # counts proportional to *time-consuming* actions.
                    value = None
                    continue
                self._schedule_resume(process, None, command.duration)
                return
            if isinstance(command, SimEvent):
                if command._sim is None:
                    command.bind(self)
                if command.triggered:
                    value = command.value
                    continue
                command.add_waiter(process)
                return
            if isinstance(command, Spawn):
                child = self.spawn(command.factory(), name=command.name)
                value = child
                continue
            if isinstance(command, Halt):
                self._halted = command.reason or "halted"
                return
            raise TypeError(
                f"process {process.name!r} yielded unsupported command "
                f"{command!r} of type {type(command).__name__}"
            )

    def _finish(self, process: Process, result: Any) -> None:
        process.alive = False
        process.result = result
        process.end_time = self.now
        process.done.trigger(result)


def _stable_hash(text: str) -> int:
    """A deterministic 32-bit hash (Python's ``hash`` is salted)."""
    value = 2166136261
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value


def drain(sim: Simulator, processes: Iterable[Process]) -> None:
    """Run the simulator until every given process has terminated."""
    sim.run()
    pending = [p for p in processes if p.alive]
    if pending:
        names = ", ".join(p.name for p in pending[:8])
        raise RuntimeError(
            f"simulation deadlock: {len(pending)} processes still alive ({names})"
        )
