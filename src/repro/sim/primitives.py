"""Primitive commands and events understood by the simulation engine.

Simulated processes are generators.  Everything a process can *do* is
expressed by yielding one of the :class:`Command` subclasses defined
here; the :class:`~repro.sim.engine.Simulator` interprets the command
and resumes the generator when it completes.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional


class DelayKind(enum.Enum):
    """Classification of simulated time spent inside a :class:`Delay`.

    The engine accumulates per-process totals for each kind, which the
    metrics layer later turns into useful-work / overhead / idle
    breakdowns (cf. the paper's discussion of idle time under the
    implicit OpenMP barrier, Fig. 2).
    """

    #: Useful work: executing loop iterations.
    COMPUTE = "compute"
    #: Scheduling/communication overhead: chunk calculation, lock
    #: polling, window synchronisation, message latency, ...
    OVERHEAD = "overhead"
    #: Deliberate idling (rare; most idle time arises from waiting on
    #: events and is accounted implicitly).
    IDLE = "idle"


class Command:
    """Marker base class for everything a process may ``yield``."""

    __slots__ = ()


class Delay(Command):
    """Advance the yielding process's local clock by ``duration``.

    Parameters
    ----------
    duration:
        Simulated seconds; must be non-negative.
    kind:
        How the elapsed time should be accounted for this process.
    """

    __slots__ = ("duration", "kind")

    def __init__(self, duration: float, kind: DelayKind = DelayKind.OVERHEAD):
        if duration < 0:
            raise ValueError(f"negative delay: {duration!r}")
        self.duration = float(duration)
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay({self.duration:.3e}, {self.kind.value})"


# ---------------------------------------------------------------------------
# interned Delay factories
#
# Delay objects are immutable in practice (the engine only reads them),
# so the factory functions intern them per (kind, duration).  Simulated
# runs yield the same handful of modelled costs (lock attempts, window
# accesses, chunk-calculation overheads, per-iteration compute grains)
# millions of times; returning a cached object skips an allocation and
# ``__init__`` on the engine's hottest path.  Caches are bounded so
# jittered one-off durations cannot grow them without limit — the
# recurring constants are seen (and cached) first.
# ---------------------------------------------------------------------------

_INTERN_LIMIT = 4096
_compute_cache: dict = {}
_overhead_cache: dict = {}
_timeout_cache: dict = {}


def clear_delay_caches() -> None:
    """Drop all interned Delay objects (tests / long-process hygiene)."""
    _compute_cache.clear()
    _overhead_cache.clear()
    _timeout_cache.clear()


def Compute(duration: float) -> Delay:
    """A delay accounted as useful computation (loop-iteration work)."""
    cached = _compute_cache.get(duration)
    if cached is not None:
        return cached
    delay = Delay(duration, DelayKind.COMPUTE)
    if len(_compute_cache) < _INTERN_LIMIT:
        _compute_cache[duration] = delay
    return delay


def Overhead(duration: float) -> Delay:
    """A delay accounted as scheduling/communication overhead."""
    cached = _overhead_cache.get(duration)
    if cached is not None:
        return cached
    delay = Delay(duration, DelayKind.OVERHEAD)
    if len(_overhead_cache) < _INTERN_LIMIT:
        _overhead_cache[duration] = delay
    return delay


def Timeout(duration: float) -> Delay:
    """A delay accounted as idle time (pure waiting)."""
    cached = _timeout_cache.get(duration)
    if cached is not None:
        return cached
    delay = Delay(duration, DelayKind.IDLE)
    if len(_timeout_cache) < _INTERN_LIMIT:
        _timeout_cache[duration] = delay
    return delay


def ComputeOnce(duration: float) -> Delay:
    """A compute delay that bypasses the intern cache.

    For effectively-unique durations — noise-jittered chunk execution
    times — where caching would only fill the bounded intern tables
    with keys that never recur, crowding out the genuinely repeating
    constants.
    """
    return Delay(duration, DelayKind.COMPUTE)


def OverheadOnce(duration: float) -> Delay:
    """An overhead delay that bypasses the intern cache (see ComputeOnce)."""
    return Delay(duration, DelayKind.OVERHEAD)


class SimEvent(Command):
    """A one-shot event that processes can wait on.

    A process waits by yielding the event itself.  When some other
    process (or engine callback) calls :meth:`trigger`, every waiter is
    resumed at the trigger time and receives ``value`` as the result of
    its ``yield`` expression.  Triggering an already-triggered event is
    an error unless ``ignore_retrigger`` was requested, which keeps
    broadcast-style users honest.
    """

    __slots__ = ("_sim", "triggered", "value", "_waiters", "name")

    def __init__(self, sim: "Any" = None, name: str = ""):
        self._sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Any] = []  # Process objects
        self.name = name

    def bind(self, sim: Any) -> "SimEvent":
        """Attach the event to a simulator (done lazily by the engine)."""
        self._sim = sim
        return self

    def add_waiter(self, process: Any) -> None:
        self._waiters.append(process)

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all current waiters at the current time."""
        if self.triggered:
            raise RuntimeError(f"event {self.name or id(self)} already triggered")
        if self._sim is None:
            raise RuntimeError("event is not bound to a simulator")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim._schedule_resume(process, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.triggered else "pending"
        return f"SimEvent({self.name!r}, {state}, waiters={len(self._waiters)})"


class Spawn(Command):
    """Ask the engine to start a child process; resumes with the Process."""

    __slots__ = ("factory", "name")

    def __init__(self, factory: Callable[[], Any], name: Optional[str] = None):
        self.factory = factory
        self.name = name


class Halt(Command):
    """Stop the whole simulation immediately (used by watchdogs/tests)."""

    __slots__ = ("reason",)

    def __init__(self, reason: str = ""):
        self.reason = reason
