"""Synchronisation resources built on the engine's event primitive.

All resources are FIFO and deterministic.  They are deliberately
minimal: higher-level constructs (MPI window locks with polling, OpenMP
barriers with modelled costs) are built *on top of* these in
:mod:`repro.smpi` and :mod:`repro.somp`, keeping the timing models out
of the core engine.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.engine import Simulator
from repro.sim.primitives import Command, SimEvent


class Lock:
    """FIFO mutual-exclusion lock.

    Usage inside a process::

        yield from lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    __slots__ = ("sim", "name", "_locked", "_waiters", "owner", "n_acquisitions")

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[SimEvent] = deque()
        self.owner: Optional[str] = None
        self.n_acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def n_waiters(self) -> int:
        return len(self._waiters)

    def try_acquire(self, owner: str = "?") -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._locked:
            return False
        self._locked = True
        self.owner = owner
        self.n_acquisitions += 1
        return True

    def acquire(self, owner: str = "?") -> Generator[Command, Any, None]:
        """Blocking acquire (generator — use with ``yield from``)."""
        if not self._locked:
            self._locked = True
            self.owner = owner
            self.n_acquisitions += 1
            return
        gate = self.sim.event(f"{self.name}.gate")
        self._waiters.append(gate)
        yield gate
        # Ownership was transferred to us by release().
        self.owner = owner
        self.n_acquisitions += 1

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError(f"release of unlocked {self.name}")
        while self._waiters:
            # Hand off directly: the lock stays logically held, the next
            # waiter resumes at the current time already owning it.  A
            # waiter that crash-stopped while queued can never resume to
            # claim ownership, so its gate is skipped — otherwise the
            # lock would be stranded "held by nobody" forever.
            gate = self._waiters.popleft()
            if any(p.alive for p in gate._waiters):
                self.owner = None
                gate.trigger()
                return
        self._locked = False
        self.owner = None

    def force_release(self) -> None:
        """Break a (dead owner's) lease: drop the lock without hand-off.

        Used by failure-aware layers after they *detect* that the
        current owner crashed while holding the lock.  Unlike
        :meth:`release` it does not wake blocked waiters — the polling
        protocols that use ``force_release`` retry via
        :meth:`try_acquire`, never via the waiter queue — and it is a
        no-op on an unlocked lock (two pollers may race to break the
        same lease).
        """
        self._locked = False
        self.owner = None


class Semaphore:
    """Counting semaphore with FIFO wakeups."""

    __slots__ = ("sim", "name", "_count", "_waiters")

    def __init__(self, sim: Simulator, value: int, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._count = value
        self._waiters: Deque[SimEvent] = deque()

    @property
    def value(self) -> int:
        return self._count

    def acquire(self) -> Generator[Command, Any, None]:
        if self._count > 0:
            self._count -= 1
            return
        gate = self.sim.event(f"{self.name}.gate")
        self._waiters.append(gate)
        yield gate

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().trigger()
        else:
            self._count += 1


class Barrier:
    """Reusable n-party barrier.

    The n-th arrival releases everyone; the barrier then resets for the
    next phase.  Arrival order is preserved in :attr:`generations` for
    inspection by tests.
    """

    __slots__ = ("sim", "name", "parties", "_gate", "_arrived", "generations")

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs >= 1 parties")
        self.sim = sim
        self.name = name
        self.parties = parties
        self._gate = sim.event(f"{name}.gen0")
        self._arrived = 0
        #: completion times of each generation (for tests/metrics)
        self.generations: List[float] = []

    def wait(self) -> Generator[Command, Any, None]:
        self._arrived += 1
        if self._arrived == self.parties:
            gate = self._gate
            self.generations.append(self.sim.now)
            self._arrived = 0
            self._gate = self.sim.event(f"{self.name}.gen{len(self.generations)}")
            gate.trigger()
            return
        gate = self._gate
        yield gate


class Store:
    """Unbounded FIFO channel carrying arbitrary items.

    ``put`` never blocks; ``get`` blocks until an item is available.
    Items are delivered in insertion order, one per getter, FIFO on the
    getter side too — which is exactly the matching discipline the
    simulated MPI point-to-point layer needs.
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Generator[Command, Any, Any]:
        if self._items:
            return self._items.popleft()
        gate = self.sim.event(f"{self.name}.get")
        self._getters.append(gate)
        item = yield gate
        return item

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (test helper; does not consume)."""
        return list(self._items)
