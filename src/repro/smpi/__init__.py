"""Simulated MPI runtime (substrate S3).

Models the MPI features the paper's implementations rely on, with
calibrated costs:

* **two-sided** point-to-point (``send``/``recv`` with tag matching,
  eager/rendezvous cost model) — used by the master-worker baseline;
* **collectives** (barrier, bcast, reduce/allreduce) with a log-tree
  cost model — used for loop start/end synchronisation;
* **one-sided RMA** (:class:`~repro.smpi.rma.Window`): remote atomics
  (``MPI_Fetch_and_op`` / ``MPI_Compare_and_swap``) serialised at the
  target — this is the *global work queue* of the distributed
  chunk-calculation approach;
* **MPI-3 shared memory** (:class:`~repro.smpi.shm.SharedWindow`,
  i.e. ``MPI_Win_allocate_shared``): per-node shared state guarded by
  ``MPI_Win_lock``/``MPI_Win_unlock`` with the *lock-polling* retry
  behaviour described by Zhao, Balaji & Gropp (ISPDC 2016) [38] and
  ``MPI_Win_sync`` memory barriers — this is the *local work queue*
  whose contention cost explains the paper's ``X+SS`` results.

Everything runs on :mod:`repro.sim`; per-rank code is written as
generator "main" functions receiving a :class:`~repro.smpi.world.RankCtx`.
"""

from repro.smpi.rma import Window
from repro.smpi.shm import SharedWindow
from repro.smpi.world import MpiWorld, RankCtx

__all__ = ["MpiWorld", "RankCtx", "SharedWindow", "Window"]
