"""Two-sided point-to-point transport: mailboxes with tag matching.

Each rank owns a :class:`Mailbox`.  Senders hand a message plus its
modelled transfer time to :meth:`Mailbox.deliver_after`; the mailbox
spawns a tiny delivery process that makes the message visible after
that delay.  Receivers block until a message matching ``(source, tag)``
(or ``ANY_SOURCE``) is present.  Matching follows MPI semantics:
per-(source, tag) FIFO ordering (non-overtaking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.primitives import SimEvent, Timeout

ANY_SOURCE = -1


@dataclass
class Message:
    source: int
    tag: int
    payload: Any
    nbytes: int = 64


class Mailbox:
    """Incoming-message store for one rank, with MPI-style matching."""

    def __init__(self, sim: Simulator, owner_rank: int):
        self.sim = sim
        self.owner_rank = owner_rank
        self._queue: List[Message] = []
        # Pending receives: (source filter, tag, gate event)
        self._pending: List[Tuple[int, int, SimEvent]] = []
        self.n_delivered = 0

    # -- sender side -----------------------------------------------------
    def deliver_after(self, delay: float, message: Message) -> None:
        """Schedule delivery of ``message`` after the transfer delay."""

        def _delivery():
            if delay > 0:
                yield Timeout(delay)
            self._deposit(message)

        self.sim.spawn(
            _delivery(), name=f"msg->{self.owner_rank}:{message.tag}"
        )

    def _deposit(self, message: Message) -> None:
        self.n_delivered += 1
        # Try to match a pending receive first (FIFO among matching ones).
        for index, (source, tag, gate) in enumerate(self._pending):
            if tag == message.tag and source in (ANY_SOURCE, message.source):
                del self._pending[index]
                gate.trigger(message)
                return
        self._queue.append(message)

    # -- receiver side -----------------------------------------------------
    def _match(self, source: int, tag: int) -> Optional[Message]:
        for index, message in enumerate(self._queue):
            if message.tag == tag and source in (ANY_SOURCE, message.source):
                return self._queue.pop(index)
        return None

    def get(self, source: int, tag: int):
        """Blocking matched receive (generator)."""
        message = self._match(source, tag)
        if message is not None:
            return message
        gate = self.sim.event(f"recv@{self.owner_rank}")
        self._pending.append((source, tag, gate))
        message = yield gate
        return message

    def get_any(self, tag: int):
        """Blocking receive from any source (generator)."""
        message = yield from self.get(ANY_SOURCE, tag)
        return message

    @property
    def backlog(self) -> int:
        return len(self._queue)
