"""One-sided RMA window with remote atomics.

Implements the *global work queue* substrate of the distributed
chunk-calculation approach: a window of named integer cells hosted on
one rank, supporting ``MPI_Fetch_and_op``-style atomics from any rank.

Cost model
----------
Atomic operations are serialised at the *target*: the target can retire
one atomic at a time (hardware/NIC-agent serialisation), modelled by a
hidden FIFO lock held for the processing time.  Origin ranks
additionally pay network latency each way when the target is on a
different node, and the locality-tier penalties of
:class:`~repro.cluster.costs.MpiCosts` when the host window's memory
sits in another NUMA domain or socket (zero by default).  Under heavy
contention (all ranks hammering the step counter) this produces the
realistic queueing delay that motivates the paper's *hierarchical*
design in the first place — the local queue absorbs most of the
traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.cluster.interconnect import Tier
from repro.sim.primitives import Overhead
from repro.sim.resources import Lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.world import MpiWorld, RankCtx


_OPS = {
    "sum": lambda old, value: old + value,
    "replace": lambda old, value: value,
    "max": lambda old, value: max(old, value),
    "min": lambda old, value: min(old, value),
    "no_op": lambda old, value: old,
}


class Window:
    """An RMA window of named integer cells hosted on ``host_rank``."""

    def __init__(self, world: "MpiWorld", host_rank: int, cells: Dict[str, int]):
        if not 0 <= host_rank < world.size:
            raise ValueError(f"invalid host rank {host_rank}")
        self.world = world
        self.host_rank = host_rank
        self.host_node = world.placement.node_of(host_rank)
        self.cells: Dict[str, int] = dict(cells)
        self._unit = Lock(world.sim, name=f"win@{host_rank}.atomic-unit")
        # statistics
        self.n_atomics = 0
        self.n_remote_atomics = 0
        #: times the window was re-hosted after its host rank died
        self.n_failovers = 0
        #: accumulated atomic service seconds (latency both ways +
        #: serialised target processing + locality-tier penalty) — the
        #: distance-priced traffic the *host* placement can change.
        self.total_atomic_time_s = 0.0

    # ------------------------------------------------------------------
    def fail_over(self, new_host: int) -> None:
        """Re-host the window on ``new_host`` after its host rank died.

        Coordinator failover for the *global* queue state: the window's
        cells migrate to the new host (their values survive — the
        recovery protocol replicates them), and all subsequent atomics
        are priced against the new host's location.  Instantaneous in
        simulated time; the protocol's latency is charged by the fault
        injector.
        """
        if not 0 <= new_host < self.world.size:
            raise ValueError(f"invalid failover host rank {new_host}")
        self.host_rank = new_host
        self.host_node = self.world.placement.node_of(new_host)
        self.n_failovers += 1

    def _check_cell(self, cell: str) -> None:
        if cell not in self.cells:
            raise KeyError(f"window has no cell {cell!r}; cells: {list(self.cells)}")

    def _priced_atomic(self, ctx: "RankCtx", mutate, on_commit=None):
        """Run one serialised, distance-priced atomic at the target
        (generator); returns ``mutate()``'s result (the *old* value).

        The shared protocol behind :meth:`fetch_and_op` and
        :meth:`compare_and_swap`: the origin pays one-way latency to
        reach a network-remote target, queues on the target's hidden
        FIFO unit, pays the serialised processing time (plus the
        locality-tier penalty), applies ``mutate`` — which reads and
        updates the cell and returns the pre-update value — and finally
        pays the return latency.

        Statistics (``n_atomics``/``total_atomic_time_s``) accrue
        *inside* the critical section, the instant the update commits:
        an origin that crashes before its atomic is retired (mid-request
        latency, or while queued on the unit) must not inflate the
        placement counters with service time the target never spent.

        ``on_commit(old)`` also runs inside the critical section —
        before the return-latency yield, so a caller that crashes while
        the result is in flight has still registered the side effect
        (failure-aware layers use this for their claims ledger).
        """
        mpi = self.world.costs.mpi
        tier = self.world.interconnect.distance(ctx.rank, self.host_rank)
        remote = tier is Tier.NETWORK
        latency = self.world.cluster.network_latency if remote else 0.0
        processing = (
            mpi.rma_atomic if remote else mpi.shm_atomic
        ) + mpi.tier_atomic_penalty(tier)

        if latency:
            yield Overhead(latency)
        yield from self._unit.acquire(owner=f"rank{ctx.rank}")
        try:
            yield Overhead(processing)
            old = mutate()
            self.n_atomics += 1
            if remote:
                self.n_remote_atomics += 1
            self.total_atomic_time_s += processing + 2.0 * latency
            if on_commit is not None:
                on_commit(old)
        finally:
            self._unit.release()
        if latency:
            yield Overhead(latency)
        return old

    def fetch_and_op(
        self,
        ctx: "RankCtx",
        cell: str,
        value: int = 0,
        op: str = "sum",
        on_commit=None,
    ):
        """Atomic read-modify-write; returns the *old* value (generator).

        ``op='no_op'`` gives ``MPI_Get_accumulate`` semantics (atomic
        read).  The calling rank is charged one-way latency, serialised
        processing at the target, and the return latency; see
        :meth:`_priced_atomic` for the timing/accounting protocol and
        the ``on_commit(old)`` hook.
        """
        self._check_cell(cell)
        if op not in _OPS:
            raise ValueError(f"unsupported RMA op {op!r}")

        def mutate() -> int:
            old = self.cells[cell]
            self.cells[cell] = _OPS[op](old, value)
            return old

        old = yield from self._priced_atomic(ctx, mutate, on_commit=on_commit)
        return old

    def atomic_get(self, ctx: "RankCtx", cell: str):
        """Atomic read of a cell (generator)."""
        old = yield from self.fetch_and_op(ctx, cell, 0, op="no_op")
        return old

    def compare_and_swap(
        self,
        ctx: "RankCtx",
        cell: str,
        expected: int,
        desired: int,
        on_commit=None,
    ):
        """``MPI_Compare_and_swap``; returns the old value (generator).

        The swap commits only when the cell holds ``expected``; either
        way the origin pays the full priced-atomic protocol (see
        :meth:`_priced_atomic`).  ``on_commit(old)`` runs inside the
        critical section whether or not the swap won — the callback can
        compare ``old`` with the expected value to tell (CAS-based
        lock/lease protocols need the losing case too).
        """
        self._check_cell(cell)

        def mutate() -> int:
            old = self.cells[cell]
            if old == expected:
                self.cells[cell] = desired
            return old

        old = yield from self._priced_atomic(ctx, mutate, on_commit=on_commit)
        return old

    def get(self, ctx: "RankCtx", cell: str, nbytes: int = 8):
        """Non-atomic ``MPI_Get`` of one cell (generator)."""
        self._check_cell(cell)
        yield Overhead(
            self.world.interconnect.transfer_time(ctx.rank, self.host_rank, nbytes)
        )
        return self.cells[cell]

    def put(self, ctx: "RankCtx", cell: str, value: int, nbytes: int = 8):
        """Non-atomic ``MPI_Put`` to one cell (generator)."""
        self._check_cell(cell)
        yield Overhead(
            self.world.interconnect.transfer_time(ctx.rank, self.host_rank, nbytes)
        )
        self.cells[cell] = value

    def peek(self, cell: str) -> int:
        """Zero-cost read for tests/assertions (not a simulated op)."""
        self._check_cell(cell)
        return self.cells[cell]
