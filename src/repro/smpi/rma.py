"""One-sided RMA window with remote atomics.

Implements the *global work queue* substrate of the distributed
chunk-calculation approach: a window of named integer cells hosted on
one rank, supporting ``MPI_Fetch_and_op``-style atomics from any rank.

Cost model
----------
Atomic operations are serialised at the *target*: the target can retire
one atomic at a time (hardware/NIC-agent serialisation), modelled by a
hidden FIFO lock held for the processing time.  Origin ranks
additionally pay network latency each way when the target is on a
different node, and the locality-tier penalties of
:class:`~repro.cluster.costs.MpiCosts` when the host window's memory
sits in another NUMA domain or socket (zero by default).  Under heavy
contention (all ranks hammering the step counter) this produces the
realistic queueing delay that motivates the paper's *hierarchical*
design in the first place — the local queue absorbs most of the
traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.cluster.interconnect import Tier
from repro.sim.primitives import Overhead
from repro.sim.resources import Lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.world import MpiWorld, RankCtx


_OPS = {
    "sum": lambda old, value: old + value,
    "replace": lambda old, value: value,
    "max": lambda old, value: max(old, value),
    "min": lambda old, value: min(old, value),
    "no_op": lambda old, value: old,
}


class Window:
    """An RMA window of named integer cells hosted on ``host_rank``."""

    def __init__(self, world: "MpiWorld", host_rank: int, cells: Dict[str, int]):
        if not 0 <= host_rank < world.size:
            raise ValueError(f"invalid host rank {host_rank}")
        self.world = world
        self.host_rank = host_rank
        self.host_node = world.placement.node_of(host_rank)
        self.cells: Dict[str, int] = dict(cells)
        self._unit = Lock(world.sim, name=f"win@{host_rank}.atomic-unit")
        # statistics
        self.n_atomics = 0
        self.n_remote_atomics = 0
        #: times the window was re-hosted after its host rank died
        self.n_failovers = 0
        #: accumulated atomic service seconds (latency both ways +
        #: serialised target processing + locality-tier penalty) — the
        #: distance-priced traffic the *host* placement can change.
        self.total_atomic_time_s = 0.0

    # ------------------------------------------------------------------
    def fail_over(self, new_host: int) -> None:
        """Re-host the window on ``new_host`` after its host rank died.

        Coordinator failover for the *global* queue state: the window's
        cells migrate to the new host (their values survive — the
        recovery protocol replicates them), and all subsequent atomics
        are priced against the new host's location.  Instantaneous in
        simulated time; the protocol's latency is charged by the fault
        injector.
        """
        if not 0 <= new_host < self.world.size:
            raise ValueError(f"invalid failover host rank {new_host}")
        self.host_rank = new_host
        self.host_node = self.world.placement.node_of(new_host)
        self.n_failovers += 1

    def _check_cell(self, cell: str) -> None:
        if cell not in self.cells:
            raise KeyError(f"window has no cell {cell!r}; cells: {list(self.cells)}")

    def fetch_and_op(
        self,
        ctx: "RankCtx",
        cell: str,
        value: int = 0,
        op: str = "sum",
        on_commit=None,
    ):
        """Atomic read-modify-write; returns the *old* value (generator).

        ``op='no_op'`` gives ``MPI_Get_accumulate`` semantics (atomic
        read).  The calling rank is charged one-way latency, serialised
        processing at the target, and the return latency.

        ``on_commit(old)``, if given, runs synchronously inside the
        target's critical section the instant the cell is updated —
        before the return-latency yield, so a caller that crashes while
        the result is in flight has still registered the side effect
        (failure-aware layers use this for their claims ledger).
        """
        self._check_cell(cell)
        if op not in _OPS:
            raise ValueError(f"unsupported RMA op {op!r}")
        mpi = self.world.costs.mpi
        tier = self.world.interconnect.distance(ctx.rank, self.host_rank)
        remote = tier is Tier.NETWORK
        latency = self.world.cluster.network_latency if remote else 0.0
        processing = (
            mpi.rma_atomic if remote else mpi.shm_atomic
        ) + mpi.tier_atomic_penalty(tier)

        self.total_atomic_time_s += processing + 2.0 * latency
        if latency:
            yield Overhead(latency)
        yield from self._unit.acquire(owner=f"rank{ctx.rank}")
        try:
            yield Overhead(processing)
            old = self.cells[cell]
            self.cells[cell] = _OPS[op](old, value)
            self.n_atomics += 1
            if remote:
                self.n_remote_atomics += 1
            if on_commit is not None:
                on_commit(old)
        finally:
            self._unit.release()
        if latency:
            yield Overhead(latency)
        return old

    def atomic_get(self, ctx: "RankCtx", cell: str):
        """Atomic read of a cell (generator)."""
        old = yield from self.fetch_and_op(ctx, cell, 0, op="no_op")
        return old

    def compare_and_swap(self, ctx: "RankCtx", cell: str, expected: int, desired: int):
        """``MPI_Compare_and_swap``; returns the old value (generator)."""
        self._check_cell(cell)
        mpi = self.world.costs.mpi
        tier = self.world.interconnect.distance(ctx.rank, self.host_rank)
        remote = tier is Tier.NETWORK
        latency = self.world.cluster.network_latency if remote else 0.0
        processing = (
            mpi.rma_atomic if remote else mpi.shm_atomic
        ) + mpi.tier_atomic_penalty(tier)

        self.total_atomic_time_s += processing + 2.0 * latency
        if latency:
            yield Overhead(latency)
        yield from self._unit.acquire(owner=f"rank{ctx.rank}")
        try:
            yield Overhead(processing)
            old = self.cells[cell]
            if old == expected:
                self.cells[cell] = desired
            self.n_atomics += 1
            if remote:
                self.n_remote_atomics += 1
        finally:
            self._unit.release()
        if latency:
            yield Overhead(latency)
        return old

    def get(self, ctx: "RankCtx", cell: str, nbytes: int = 8):
        """Non-atomic ``MPI_Get`` of one cell (generator)."""
        self._check_cell(cell)
        yield Overhead(
            self.world.interconnect.transfer_time(ctx.rank, self.host_rank, nbytes)
        )
        return self.cells[cell]

    def put(self, ctx: "RankCtx", cell: str, value: int, nbytes: int = 8):
        """Non-atomic ``MPI_Put`` to one cell (generator)."""
        self._check_cell(cell)
        yield Overhead(
            self.world.interconnect.transfer_time(ctx.rank, self.host_rank, nbytes)
        )
        self.cells[cell] = value

    def peek(self, cell: str) -> int:
        """Zero-cost read for tests/assertions (not a simulated op)."""
        self._check_cell(cell)
        return self.cells[cell]
