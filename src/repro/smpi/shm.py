"""MPI-3 shared-memory window with passive-target lock polling.

Implements the *local work queue* substrate: a per-node window created
with ``MPI_Win_allocate_shared``, accessed by the node's ranks under
``MPI_Win_lock(MPI_LOCK_EXCLUSIVE)`` / ``MPI_Win_unlock`` plus
``MPI_Win_sync`` memory barriers — exactly the primitives the paper's
Section 3 describes.

The decisive behaviour (paper Sections 5-6): ``MPI_Win_lock`` is
implemented with **lock polling** (Zhao, Balaji & Gropp [38]).  A rank
that fails to acquire re-issues a lock-attempt message only after a
polling interval, so under contention each hand-off costs a large
fraction of that interval, and the number of lock-attempt messages
grows with the number of simultaneous requesters.  This is why fine
grained intra-node techniques (``X+SS``) perform poorly under the
MPI+MPI approach while coarse ones are unaffected.

The window tracks contention statistics (attempts, acquisitions, poll
wait time) that the benchmarks report and the ablation sweeps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.sim.primitives import Overhead, OverheadOnce
from repro.sim.resources import Lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.world import MpiWorld, RankCtx


class SharedWindow:
    """A node-local shared-memory window with named cells + free state.

    ``cells`` hold named integers (counters, flags) accessed through
    :meth:`load`/:meth:`store` at per-access cost.  ``state`` is a
    free-form dict for structured queue contents (chunk range lists);
    callers charge access costs explicitly through :meth:`access` —
    keeping the cost model honest without forcing byte-level encoding.

    All mutating accesses must happen while holding the window lock;
    violations raise immediately (they would be data races on real
    hardware).
    """

    def __init__(
        self,
        world: "MpiWorld",
        node,
        cells: Dict[str, int],
        home_rank: Optional[int] = None,
    ):
        self.world = world
        #: window key: node index, or any hashable for finer-grained
        #: windows (e.g. ``(node, socket)`` for a socket-level queue)
        self.node = node
        self.cells: Dict[str, int] = dict(cells)
        #: free-form structured contents (the queue's chunk ranges)
        self.state: Dict[str, Any] = {}
        # int keys keep their historical stream names so per-node
        # windows (and thus every two-level run) stay bit-identical
        tag = (
            str(node)
            if not isinstance(node, tuple)
            else "-".join(str(part) for part in node)
        )
        self._lock = Lock(world.sim, name=f"shmwin@node{tag}")
        self._rng = world.sim.rng(f"shm-lockpoll.node{tag}")
        #: rank whose NUMA domain physically hosts the window's pages.
        #: Default: the lowest rank of the tier group the key names
        #: (first-touch allocation by the group leader); a placement
        #: plan may override it with any group member via ``home_rank``.
        #: Accesses from other ranks pay the locality-tier penalties of
        #: the cost model; None for free-form keys, which stay
        #: distance-blind.
        self.home_rank: Optional[int] = (
            home_rank if home_rank is not None else self._home_of(world, node)
        )
        #: per-rank (load, atomic) penalty memo — the tier of a
        #: (rank, window) pair never changes during a run
        self._penalties: Dict[int, Tuple[float, float]] = {}
        # statistics
        self.n_acquisitions = 0
        self.n_attempts = 0
        self.total_poll_wait = 0.0
        self.max_attempts_per_acquire = 0
        self.n_syncs = 0
        #: leases broken after their holder crash-stopped mid-epoch
        self.n_leases_broken = 0
        #: times the window was re-homed after its home rank died
        self.n_failovers = 0
        #: accumulated locality-tier penalty seconds actually charged on
        #: this window (lock attempts, unlocks, loads, accesses,
        #: atomics) — the distance-priced share of its traffic, which is
        #: what queue *placement* can change.  Zero with default knobs.
        self.total_penalty_s = 0.0

    @staticmethod
    def _home_of(world: "MpiWorld", key) -> Optional[int]:
        """Lowest rank of the tier group ``key`` names, or None."""
        placement = world.placement
        try:
            if isinstance(key, int):
                members = placement.ranks_on_node(key)
            elif isinstance(key, tuple) and len(key) == 2:
                members = placement.ranks_on_socket(*key)
            elif isinstance(key, tuple) and len(key) == 3:
                members = placement.ranks_on_numa(*key)
            else:
                return None
        except (TypeError, IndexError):
            return None
        return members[0] if members else None

    def _penalty_of(self, ctx: "RankCtx") -> Tuple[float, float]:
        """(load, atomic) locality penalty for ``ctx`` on this window."""
        cached = self._penalties.get(ctx.rank)
        if cached is None:
            if self.home_rank is None:
                cached = (0.0, 0.0)
            else:
                net = self.world.interconnect
                cached = (
                    net.load_penalty(ctx.rank, self.home_rank),
                    net.atomic_penalty(ctx.rank, self.home_rank),
                )
            self._penalties[ctx.rank] = cached
        return cached

    # ------------------------------------------------------------------
    # locking (the expensive part)
    # ------------------------------------------------------------------
    def lock(self, ctx: "RankCtx"):
        """``MPI_Win_lock(MPI_LOCK_EXCLUSIVE)`` with polling retries.

        Each attempt costs one lock-attempt message; failed attempts
        retry after ``shm_poll_interval`` (jittered +-50% so pollers do
        not stay phase-locked forever).  Polling time is accounted as
        *overhead* — the CPU is busy re-issuing attempts.
        """
        mpi = self.world.costs.mpi
        owner = f"rank{ctx.rank}"
        # each lock-attempt message travels to the window's home NUMA
        # domain, so remote-NUMA/cross-socket requesters pay the tier
        # penalty per attempt (zero with default knobs)
        atomic_penalty = self._penalty_of(ctx)[1]
        attempt_cost = mpi.shm_lock_attempt + atomic_penalty
        attempts = 0
        while True:
            attempts += 1
            self.total_penalty_s += atomic_penalty
            yield Overhead(attempt_cost)
            if self._lock.try_acquire(owner):
                break
            faults = self.world.faults
            if faults is not None and self._owner_is_dead():
                # Lease break: the exclusive lock is held by a rank that
                # crash-stopped mid-epoch.  Wait out one lease timeout
                # (the failure detector's confirmation window),
                # re-confirm, then force the lock open and retry
                # immediately.  Never taken when faults is None, so the
                # fault-free event stream is untouched.
                yield OverheadOnce(faults.lease_timeout)
                if self._owner_is_dead():
                    self._lock.force_release()
                    self.n_leases_broken += 1
                continue
            wait = mpi.shm_poll_interval * float(self._rng.uniform(0.5, 1.5))
            self.total_poll_wait += wait
            yield OverheadOnce(wait)  # jittered: unique per retry, skip interning
        self.n_attempts += attempts
        self.n_acquisitions += 1
        self.max_attempts_per_acquire = max(self.max_attempts_per_acquire, attempts)

    def unlock(self, ctx: "RankCtx"):
        """``MPI_Win_unlock`` (epoch close: one more message home)."""
        self._require_held(ctx)
        penalty = self._penalty_of(ctx)[1]
        self.total_penalty_s += penalty
        yield Overhead(self.world.costs.mpi.shm_unlock + penalty)
        self._lock.release()

    def sync(self, ctx: "RankCtx"):
        """``MPI_Win_sync`` memory barrier."""
        self.n_syncs += 1
        yield Overhead(self.world.costs.mpi.shm_win_sync)

    def _owner_is_dead(self) -> bool:
        """True when the lock is held by a crash-stopped rank."""
        owner = self._lock.owner
        if owner is None or not owner.startswith("rank"):
            return False
        try:
            rank = int(owner[4:])
        except ValueError:
            return False
        return not self.world.rank_alive(rank)

    def fail_over(self, new_home: int) -> None:
        """Re-home the window on ``new_home`` after its home rank died.

        Coordinator failover: the next live rank of the tier group
        adopts the window (re-first-touching its pages), so locality
        penalties are re-priced against the new home.  Instantaneous in
        simulated time — the recovery protocol's latency is charged by
        the fault injector, not here.
        """
        self.home_rank = new_home
        self._penalties.clear()
        self.n_failovers += 1

    @property
    def locked(self) -> bool:
        return self._lock.locked

    def _require_held(self, ctx: "RankCtx") -> None:
        """The *calling rank* must own the exclusive lock.

        Merely checking that the lock is held is not enough: rank A
        mutating the window while rank B holds the lock is exactly the
        data race ``MPI_Win_lock`` exists to prevent.
        """
        if not self._lock.locked:
            raise RuntimeError(
                f"shared window on node {self.node} accessed without holding "
                "MPI_Win_lock — this is a data race"
            )
        owner = f"rank{ctx.rank}"
        if self._lock.owner != owner:
            raise RuntimeError(
                f"shared window on node {self.node} accessed by {owner} while "
                f"{self._lock.owner} holds MPI_Win_lock — this is a data race"
            )

    # ------------------------------------------------------------------
    # data access (cheap, but must hold the lock)
    # ------------------------------------------------------------------
    def load(self, ctx: "RankCtx", cell: str):
        """Read one named cell (generator; requires the calling rank's lock)."""
        self._require_held(ctx)
        self._check_cell(cell)
        penalty = self._penalty_of(ctx)[0]
        self.total_penalty_s += penalty
        yield Overhead(self.world.costs.mpi.shm_access + penalty)
        return self.cells[cell]

    def store(self, ctx: "RankCtx", cell: str, value: int):
        """Write one named cell (generator; requires the calling rank's lock)."""
        self._require_held(ctx)
        self._check_cell(cell)
        penalty = self._penalty_of(ctx)[0]
        self.total_penalty_s += penalty
        yield Overhead(self.world.costs.mpi.shm_access + penalty)
        self.cells[cell] = value

    def access(self, ctx: "RankCtx", n: int = 1):
        """Charge ``n`` shared-memory accesses for :attr:`state` reads/writes.

        The structured queue contents live in :attr:`state` as Python
        objects; models mutate them directly but must account the
        touches through this method (and hold the lock).
        """
        self._require_held(ctx)
        penalty = self._penalty_of(ctx)[0]
        self.total_penalty_s += n * penalty
        yield Overhead(n * (self.world.costs.mpi.shm_access + penalty))

    def atomic_fetch_add(self, ctx: "RankCtx", cell: str, value: int):
        """Lock-free shared atomic (``MPI_Fetch_and_op`` on the local
        window) — does *not* require holding the window lock."""
        self._check_cell(cell)
        penalty = self._penalty_of(ctx)[1]
        self.total_penalty_s += penalty
        yield Overhead(self.world.costs.mpi.shm_atomic + penalty)
        old = self.cells[cell]
        self.cells[cell] = old + value
        return old

    def _check_cell(self, cell: str) -> None:
        if cell not in self.cells:
            raise KeyError(f"shared window has no cell {cell!r}")

    def peek(self, cell: str) -> int:
        """Zero-cost read for tests/assertions (not a simulated op)."""
        self._check_cell(cell)
        return self.cells[cell]

    # ------------------------------------------------------------------
    @property
    def mean_attempts_per_acquire(self) -> float:
        if self.n_acquisitions == 0:
            return 0.0
        return self.n_attempts / self.n_acquisitions

    def contention_stats(self) -> Dict[str, float]:
        """Lock-contention counters of this window (waits in seconds)."""
        return {
            "acquisitions": self.n_acquisitions,
            "attempts": self.n_attempts,
            "mean_attempts": self.mean_attempts_per_acquire,
            "max_attempts": self.max_attempts_per_acquire,
            "total_poll_wait": self.total_poll_wait,
            "syncs": self.n_syncs,
            "total_penalty_s": self.total_penalty_s,
        }
