"""MPI world and per-rank context.

:class:`MpiWorld` wires a :class:`~repro.sim.engine.Simulator`, a
:class:`~repro.cluster.machine.ClusterSpec`, and a placement into a set
of rank processes.  Rank main functions are generators taking a
:class:`RankCtx`; all MPI operations are generator methods used with
``yield from`` so their simulated costs accrue to the calling rank.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
)

from repro.cluster.costs import CostModel, DEFAULT_COSTS
from repro.cluster.interconnect import Interconnect
from repro.cluster.machine import ClusterSpec
from repro.cluster.topology import Placement, block_placement
from repro.sim.engine import Process, Simulator, drain
from repro.sim.primitives import Command, Overhead
from repro.sim.resources import Barrier, Store
from repro.smpi.p2p import Mailbox, Message
from repro.smpi.rma import Window
from repro.smpi.shm import SharedWindow

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.faults import FaultModel

MainFn = Callable[["RankCtx"], Generator[Command, Any, Any]]


class MpiWorld:
    """All global state of one simulated MPI job."""

    def __init__(
        self,
        sim: Simulator,
        cluster: ClusterSpec,
        ppn: Optional[int] = None,
        costs: CostModel = DEFAULT_COSTS,
        faults: Optional["FaultModel"] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        #: fault schedule in effect, or None for a fault-free world.
        #: Consulted by the passive-target lock poller (lease breaking);
        #: None guarantees the fault-free event stream.
        self.faults = faults
        if ppn is None:
            ppn = min(node.cores for node in cluster.nodes)
        self.ppn = ppn
        self.placement: Placement = block_placement(cluster, ppn)
        self.costs = costs
        # the interconnect owns the rank -> (node, socket, numa, core)
        # mapping: all its queries take *ranks*, never node indices
        self.interconnect = Interconnect(cluster, costs.mpi, self.placement)
        self.size = self.placement.size
        self._mailboxes: List[Mailbox] = [
            Mailbox(sim, rank) for rank in range(self.size)
        ]
        self._barrier = Barrier(sim, self.size, name="mpi-world-barrier")
        self.contexts: List[RankCtx] = [
            RankCtx(self, rank) for rank in range(self.size)
        ]
        self._windows: List[Window] = []
        self._shared_windows: Dict[Any, SharedWindow] = {}

    # ------------------------------------------------------------------
    def launch(self, main: MainFn, name_prefix: str = "rank") -> List[Process]:
        """Spawn one process per rank running ``main(ctx)``."""
        processes = []
        for ctx in self.contexts:
            process = self.sim.spawn(main(ctx), name=f"{name_prefix}{ctx.rank}")
            process.meta["rank"] = ctx.rank
            process.meta["node"] = ctx.node
            ctx.process = process
            processes.append(process)
        return processes

    def run(
        self,
        main: MainFn,
        name_prefix: str = "rank",
        max_sim_time: Optional[float] = None,
    ) -> List[Process]:
        """Launch and run to completion; raises on deadlock.

        ``max_sim_time`` arms the engine watchdog (seconds of simulated
        time) so a livelocked configuration fails loudly.
        """
        processes = self.launch(main, name_prefix)
        drain(self.sim, processes, max_sim_time=max_sim_time)
        return processes

    def rank_alive(self, rank: int) -> bool:
        """False only for a crash-stopped rank (a rank that finished
        normally is not *dead* — it just has no more work)."""
        process = self.contexts[rank].process
        return process is None or not process.killed

    # ------------------------------------------------------------------
    def create_window(self, host_rank: int, cells: Dict[str, int]) -> Window:
        """Collectively allocate an RMA window hosted on ``host_rank``."""
        window = Window(self, host_rank, cells)
        self._windows.append(window)
        return window

    def create_shared_window(
        self, node, cells: Dict[str, int], home_rank: Optional[int] = None
    ) -> SharedWindow:
        """Allocate a shared-memory window (``MPI_Win_allocate_shared``).

        ``node`` is the window's key: a node index for the classic
        per-node local queue, or any hashable (e.g. a ``(node, socket)``
        or ``(node, socket, numa)`` tuple) for the finer-grained windows
        of deeper scheduling stacks — each key gets its own lock, so
        socket- and NUMA-level queues do not contend on the node lock.

        ``home_rank`` overrides the rank whose NUMA domain first-touches
        the window's pages (default: the tier group's leader) — the
        lever of :mod:`repro.cluster.placement_opt`.
        """
        if node in self._shared_windows:
            raise RuntimeError(f"shared window {node!r} already exists")
        window = SharedWindow(self, node, cells, home_rank=home_rank)
        self._shared_windows[node] = window
        return window

    def shared_window_of(self, node) -> SharedWindow:
        return self._shared_windows[node]

    @property
    def windows(self) -> List[Window]:
        return list(self._windows)

    @property
    def shared_windows(self) -> Dict[Any, SharedWindow]:
        return dict(self._shared_windows)


class RankCtx:
    """Per-rank view of the MPI world (what real code gets from MPI).

    All communication methods are generators; use them with
    ``yield from`` inside rank main functions.
    """

    def __init__(self, world: MpiWorld, rank: int):
        self.world = world
        self.rank = rank
        self.node = world.placement.node_of(rank)
        self.socket = world.placement.socket_of(rank)
        self.numa = world.placement.numa_of(rank)
        self.core = world.placement.core_of(rank)
        self.local_rank = rank - min(world.placement.ranks_on_node(self.node))
        self.socket_rank = world.placement.socket_rank(rank)
        self.numa_rank = world.placement.numa_rank(rank)
        self.process: Optional[Process] = None

    # -- introspection ---------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    @property
    def node_ranks(self) -> List[int]:
        """Ranks sharing this rank's node (the shared-memory communicator)."""
        return self.world.placement.ranks_on_node(self.node)

    @property
    def is_node_leader(self) -> bool:
        return self.rank == self.node_ranks[0]

    @property
    def core_speed(self) -> float:
        return self.world.cluster.node_of(self.node).core_speed

    def name(self) -> str:
        return f"rank{self.rank}(n{self.node}.c{self.core})"

    # -- two-sided -------------------------------------------------------
    def send(self, dest: int, tag: int, payload: Any, nbytes: int = 64):
        """Blocking standard-mode send (completes when the message is
        handed to the transport; delivery happens after the modelled
        transfer time)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"send to invalid rank {dest}")
        transfer = self.world.interconnect.message_time(self.rank, dest, nbytes)
        # Sender-side software overhead is paid by the sender now.
        yield Overhead(self.world.costs.mpi.p2p_overhead)
        message = Message(source=self.rank, tag=tag, payload=payload, nbytes=nbytes)
        self.world._mailboxes[dest].deliver_after(transfer, message)

    def recv(self, source: int, tag: int):
        """Blocking receive matching ``(source, tag)``; returns payload."""
        message = yield from self.world._mailboxes[self.rank].get(source, tag)
        # Receiver-side software overhead.
        yield Overhead(self.world.costs.mpi.p2p_overhead)
        return message.payload

    def recv_any(self, tag: int):
        """Blocking receive matching ``(ANY_SOURCE, tag)``; returns (source, payload)."""
        message = yield from self.world._mailboxes[self.rank].get_any(tag)
        yield Overhead(self.world.costs.mpi.p2p_overhead)
        return message.source, message.payload

    # -- collectives -------------------------------------------------------
    def barrier(self):
        """``MPI_Barrier`` over the world communicator (log-tree cost)."""
        import math

        stages = math.ceil(math.log2(self.size)) if self.size > 1 else 0
        yield Overhead(self.world.costs.mpi.collective_stage * stages)
        yield from self.world._barrier.wait()

    # -- windows -----------------------------------------------------------
    def win_allocate(self, host_rank: int, cells: Dict[str, int]) -> Window:
        """Non-collective convenience wrapper (allocation cost ignored —
        windows are created once per loop, never on the critical path)."""
        return self.world.create_window(host_rank, cells)

    def shared_window(self) -> SharedWindow:
        """This node's shared-memory window (must already exist)."""
        return self.world.shared_window_of(self.node)
