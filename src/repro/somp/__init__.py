"""Simulated OpenMP runtime (substrate S4).

Models what the paper's MPI+OpenMP baseline needs from OpenMP:

* a persistent **thread team** per MPI process (hot teams: fork paid
  once, later parallel regions reuse the threads);
* **worksharing loops** with the standard schedules —
  ``static[,k]``, ``dynamic[,k]``, ``guided[,k]`` — plus the
  LaPeSD-libGOMP research extensions (``tss``, ``fac2``, ``wf``,
  ``random``) the paper cites [31];
* the **implicit barrier** at the end of every worksharing loop — the
  synchronisation the MPI+MPI approach eliminates (paper Fig. 2);
* an optional **nowait** execution mode in which threads skip the
  barrier and fetch new chunks themselves (the paper's Section 6
  future-work variant), at the cost of serialised MPI calls.

Costs (atomic chunk grabs, barriers, fork) come from
:class:`repro.cluster.costs.OmpCosts`.
"""

from repro.somp.schedule import ScheduleSpec, UnsupportedScheduleError
from repro.somp.team import OmpTeam

__all__ = ["OmpTeam", "ScheduleSpec", "UnsupportedScheduleError"]
