"""OpenMP loop-schedule specifications.

Parses ``schedule(...)`` clause strings and maps DLS technique names to
their OpenMP equivalents (paper Table 1).  The *Intel* OpenMP runtime
only implements ``static``/``dynamic``/``guided``; TSS/FAC2/WF/RANDOM
exist only in the research LaPeSD-libGOMP runtime [31] — which is
exactly why the paper's Figures 4-7 have no MPI+OpenMP series for
``X+TSS`` and ``X+FAC2``.  The ``extensions`` flag reproduces that
restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: schedules in the (Intel) OpenMP standard runtime
STANDARD_KINDS = ("static", "dynamic", "guided")
#: additional schedules available via LaPeSD-libGOMP [31]
EXTENSION_KINDS = ("tss", "fac2", "wf", "random", "tfss")

#: DLS technique name -> OpenMP schedule clause string
TECHNIQUE_TO_CLAUSE = {
    "STATIC": "static",
    "SS": "dynamic,1",
    "GSS": "guided,1",
    "TSS": "tss",
    "FAC2": "fac2",
    "TFSS": "tfss",
    "WF": "wf",
    "RND": "random",
}


class UnsupportedScheduleError(ValueError):
    """Requested schedule is not available in the selected runtime."""


@dataclass(frozen=True)
class ScheduleSpec:
    """A parsed ``schedule(kind[,chunk])`` clause."""

    kind: str
    chunk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in STANDARD_KINDS + EXTENSION_KINDS:
            raise UnsupportedScheduleError(f"unknown schedule kind {self.kind!r}")
        if self.chunk is not None and self.chunk < 1:
            raise UnsupportedScheduleError(f"chunk must be >= 1, got {self.chunk}")

    @property
    def is_extension(self) -> bool:
        return self.kind in EXTENSION_KINDS

    @property
    def pinned(self) -> bool:
        """Static schedules pre-assign iterations to threads (no grabs)."""
        return self.kind == "static"

    @classmethod
    def parse(cls, text: str) -> "ScheduleSpec":
        """Parse ``"guided,4"`` / ``"schedule(dynamic,1)"`` style strings."""
        body = text.strip().lower()
        if body.startswith("schedule(") and body.endswith(")"):
            body = body[len("schedule(") : -1]
        parts = [p.strip() for p in body.split(",")]
        kind = parts[0]
        chunk = None
        if len(parts) > 1 and parts[1]:
            try:
                chunk = int(parts[1])
            except ValueError as exc:
                raise UnsupportedScheduleError(f"bad chunk in {text!r}") from exc
        if len(parts) > 2:
            raise UnsupportedScheduleError(f"malformed schedule {text!r}")
        return cls(kind=kind, chunk=chunk)

    @classmethod
    def from_technique(cls, name: str, extensions: bool = True) -> "ScheduleSpec":
        """Map a DLS technique name onto an OpenMP schedule.

        With ``extensions=False`` (Intel runtime), only STATIC/SS/GSS
        resolve; TSS/FAC2/... raise :class:`UnsupportedScheduleError`
        with the paper's explanation.
        """
        key = name.strip().upper()
        if key == "MFSC":
            key = "mFSC"
        clause = TECHNIQUE_TO_CLAUSE.get(key)
        if clause is None:
            raise UnsupportedScheduleError(
                f"DLS technique {name!r} has no OpenMP schedule equivalent"
            )
        spec = cls.parse(clause)
        if spec.is_extension and not extensions:
            raise UnsupportedScheduleError(
                f"technique {name!r} needs schedule kind {spec.kind!r}, which the "
                "Intel OpenMP runtime does not provide (only static/dynamic/"
                "guided; cf. paper Sec. 5 — enable extensions for the "
                "LaPeSD-libGOMP behaviour)"
            )
        return spec

    def __str__(self) -> str:
        if self.chunk is None:
            return f"schedule({self.kind})"
        return f"schedule({self.kind},{self.chunk})"
