"""The simulated OpenMP thread team.

One :class:`OmpTeam` models the threads of one MPI process in the
MPI+OpenMP execution model.  Threads are persistent ("hot team"): the
fork cost is paid once, and each worksharing loop is a *phase*
broadcast to the team.  The master thread is the calling rank process
itself (thread 0); it participates in every worksharing loop.

Three execution styles:

* :meth:`parallel_for` — one chunk's worksharing loop ending in the
  **implicit barrier** (the paper's Fig. 2 behaviour);
* :meth:`parallel_for` with ``nowait=True`` — threads leave the loop as
  soon as they run out of sub-chunks;
* :meth:`parallel_region_selffetch` — the paper's Section 6 future-work
  variant: a single region in which every thread fetches new MPI chunks
  itself under a serialising mutex (``MPI_THREAD_SERIALIZED``-style).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

import numpy as np

from repro.cluster.costs import CostModel
from repro.core.technique_base import ChunkCalculator, ceil_div
from repro.core.techniques import get_technique
from repro.core import trace as trace_mod
from repro.sim.engine import Process, Simulator
from repro.sim.primitives import Command, Compute, ComputeOnce, Overhead, SimEvent
from repro.sim.resources import Barrier, Lock
from repro.somp.schedule import ScheduleSpec

#: body_time(start, size, thread_id) -> simulated seconds
BodyTimeFn = Callable[[int, int, int], float]
#: fetch() -> generator yielding commands, returning (start, size) or None
FetchFn = Callable[[], Generator[Command, Any, Optional[tuple]]]


@dataclass
class _Phase:
    """One worksharing loop instance, shared by all threads."""

    index: int
    start: int
    size: int
    spec: ScheduleSpec
    body_time: BodyTimeFn
    nowait: bool
    barrier: Optional[Barrier]
    calc: Optional[ChunkCalculator] = None
    #: next scheduling step (for calc-based and guided schedules)
    counter: int = 0
    #: iterations handed out so far
    scheduled: int = 0
    #: iterations finished so far
    executed: int = 0
    done_event: Optional[SimEvent] = None
    #: per-thread sub-chunk counts (stats)
    grabs: Dict[int, int] = field(default_factory=dict)
    executed_per_thread: Dict[int, int] = field(default_factory=dict)

    # -- self-fetch mode state ----------------------------------------
    fetch_fn: Optional[FetchFn] = None
    fetch_mutex: Optional[Lock] = None
    global_done: bool = False
    n_fetches: int = 0


class OmpTeam:
    """A persistent team of simulated OpenMP threads.

    Parameters
    ----------
    sim:
        The simulator (threads are spawned on it immediately).
    n_threads:
        Team size, master included.
    costs:
        Full cost model (``omp`` table + ``chunk_calc``).
    name:
        Prefix for thread process names (e.g. ``"n3"`` -> ``"n3.t5"``).
    weights / rng:
        Only needed for the ``wf`` / ``random`` extension schedules.
    trace:
        Optional :class:`repro.core.trace.Trace` to record Gantt data.
    barrier_penalty:
        Extra cost added to every implicit barrier — the locality-tier
        surcharge of a team whose threads span several NUMA domains or
        sockets (barrier cache lines bounce across the boundary).  Zero
        (the default) reproduces the distance-blind barrier bit-exactly.
    """

    def __init__(
        self,
        sim: Simulator,
        n_threads: int,
        costs: CostModel,
        name: str = "team",
        weights: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[trace_mod.Trace] = None,
        barrier_penalty: float = 0.0,
    ):
        if n_threads < 1:
            raise ValueError(f"team needs >= 1 thread, got {n_threads}")
        self.sim = sim
        self.n_threads = n_threads
        self.costs = costs
        self.barrier_penalty = barrier_penalty
        self.name = name
        self.weights = weights
        self.rng = rng if rng is not None else sim.rng(f"omp-team.{name}")
        self.trace = trace
        self._gate = sim.event(f"{name}.phase0")
        self._phase_index = 0
        self._forked = False
        self._shutdown = False
        self.threads: List[Process] = [
            sim.spawn(self._thread_main(tid), name=f"{name}.t{tid}")
            for tid in range(1, n_threads)
        ]
        #: completed phases, for stats inspection
        self.phases: List[_Phase] = []
        #: the simulated process acting as this team's thread 0, when it
        #: is not the MPI rank process itself — nested three-level runs
        #: drive each socket team from a dedicated *socket driver*
        #: process and record it here for per-thread stats
        self.driver_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # master-side API (call with ``yield from`` inside a rank process)
    # ------------------------------------------------------------------
    def parallel_for(
        self,
        start: int,
        size: int,
        spec: ScheduleSpec,
        body_time: BodyTimeFn,
        nowait: bool = False,
    ):
        """Execute ``[start, start+size)`` across the team.

        Returns the :class:`_Phase` (for stats).  With the default
        ``nowait=False``, returns only after the implicit barrier — all
        iterations are complete.  With ``nowait=True``, returns when the
        *master's own* work is done; use :meth:`quiesce` to wait for
        stragglers.
        """
        if self._shutdown:
            raise RuntimeError("team already shut down")
        if not self._forked:
            # first parallel region pays the fork
            yield Overhead(self.costs.omp.fork)
            self._forked = True
        phase = self._make_phase(start, size, spec, body_time, nowait)
        gate, self._gate = self._gate, self.sim.event(
            f"{self.name}.phase{phase.index + 1}"
        )
        gate.trigger(phase)
        yield from self._workshare(phase, tid=0)
        self.phases.append(phase)
        return phase

    def parallel_region_selffetch(
        self,
        spec: ScheduleSpec,
        body_time: BodyTimeFn,
        fetch: FetchFn,
    ):
        """The ``nowait`` future-work variant (paper Sec. 6).

        A single parallel region: whenever the shared chunk runs dry,
        the first thread to notice acquires the fetch mutex and issues
        the MPI call itself.  One final barrier ends the region.
        Returns the phase for stats (``n_fetches`` etc.).
        """
        if self._shutdown:
            raise RuntimeError("team already shut down")
        if not self._forked:
            yield Overhead(self.costs.omp.fork)
            self._forked = True
        phase = self._make_phase(0, 0, spec, body_time, nowait=False)
        phase.fetch_fn = fetch
        phase.fetch_mutex = Lock(self.sim, name=f"{self.name}.fetch-mutex")
        phase.calc = None  # created per fetched chunk
        gate, self._gate = self._gate, self.sim.event(
            f"{self.name}.phase{phase.index + 1}"
        )
        gate.trigger(phase)
        yield from self._workshare_selffetch(phase, tid=0)
        self.phases.append(phase)
        return phase

    def quiesce(self, phase: _Phase):
        """Wait until every iteration of a nowait phase has executed."""
        if phase.executed >= phase.size:
            return
        if phase.done_event is None:
            phase.done_event = self.sim.event(f"{self.name}.quiesce{phase.index}")
        yield phase.done_event

    def shutdown(self) -> None:
        """Terminate the worker threads (idempotent)."""
        if not self._shutdown:
            self._shutdown = True
            self._gate.trigger(None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_phase(
        self, start: int, size: int, spec: ScheduleSpec, body_time: BodyTimeFn,
        nowait: bool,
    ) -> _Phase:
        calc = self._make_calc(spec, size)
        barrier = None if nowait else Barrier(
            self.sim, self.n_threads, name=f"{self.name}.bar{self._phase_index}"
        )
        phase = _Phase(
            index=self._phase_index,
            start=start,
            size=size,
            spec=spec,
            body_time=body_time,
            nowait=nowait,
            barrier=barrier,
            calc=calc,
        )
        self._phase_index += 1
        return phase

    def _make_calc(self, spec: ScheduleSpec, size: int) -> Optional[ChunkCalculator]:
        """Calculator for extension schedules (None for the standard three)."""
        if spec.kind in ("static", "dynamic", "guided"):
            return None
        technique = {
            "tss": "TSS",
            "fac2": "FAC2",
            "tfss": "TFSS",
            "wf": "WF",
            "random": "RND",
        }[spec.kind]
        return get_technique(technique).make(
            size, self.n_threads, weights=self.weights, rng=self.rng
        )

    def _thread_main(self, tid: int):
        gate = self._gate
        while True:
            phase = yield gate
            gate = self._gate  # next phase's gate (may already be armed)
            if phase is None:
                return
            if phase.fetch_fn is not None:
                yield from self._workshare_selffetch(phase, tid)
            else:
                yield from self._workshare(phase, tid)

    # -- sub-chunk grabbing ------------------------------------------------
    def _grab(self, phase: _Phase, tid: int) -> Optional[tuple]:
        """Take the next sub-chunk (pure state update; costs charged by
        the caller).  Returns (abs_start, size) or None."""
        remaining = phase.size - phase.scheduled
        if remaining <= 0:
            return None
        spec = phase.spec
        if phase.calc is not None:
            size = phase.calc.size_at(phase.counter, pe=tid)
            if size <= 0:
                return None
        elif spec.kind == "dynamic":
            size = spec.chunk or 1
        elif spec.kind == "guided":
            size = max(spec.chunk or 1, ceil_div(remaining, self.n_threads))
        else:  # pragma: no cover - static is handled by _static_slices
            raise AssertionError("static schedules never grab")
        size = min(size, remaining)
        abs_start = phase.start + phase.scheduled
        phase.scheduled += size
        phase.counter += 1
        phase.grabs[tid] = phase.grabs.get(tid, 0) + 1
        return abs_start, size

    def _static_slices(self, phase: _Phase, tid: int) -> List[tuple]:
        """Pinned iteration blocks of thread ``tid`` for schedule(static[,k])."""
        n, t = phase.size, self.n_threads
        if phase.spec.chunk is None:
            base, rem = divmod(n, t)
            # contiguous partition: first `rem` threads get base+1
            start = tid * base + min(tid, rem)
            size = base + (1 if tid < rem else 0)
            return [(phase.start + start, size)] if size > 0 else []
        k = phase.spec.chunk
        blocks = []
        for block_start in range(tid * k, n, t * k):
            size = min(k, n - block_start)
            if size > 0:
                blocks.append((phase.start + block_start, size))
        return blocks

    def _execute(self, phase: _Phase, tid: int, abs_start: int, size: int):
        duration = phase.body_time(abs_start, size, tid)
        t0 = self.sim.now
        yield ComputeOnce(duration)  # jittered: unique per chunk, skip interning
        phase.executed += size
        phase.executed_per_thread[tid] = (
            phase.executed_per_thread.get(tid, 0) + size
        )
        if phase.calc is not None:
            phase.calc.record(tid, size, compute_time=duration)
        if self.trace is not None:
            self.trace.add(
                f"{self.name}.t{tid}", t0, self.sim.now, trace_mod.COMPUTE
            )
        if phase.executed >= phase.size and phase.done_event is not None:
            phase.done_event.trigger()

    def _workshare(self, phase: _Phase, tid: int):
        omp = self.costs.omp
        yield Overhead(omp.worksharing_init)
        if phase.spec.pinned:
            for abs_start, size in self._static_slices(phase, tid):
                phase.grabs[tid] = phase.grabs.get(tid, 0) + 1
                yield from self._execute(phase, tid, abs_start, size)
        else:
            while True:
                # atomic capture of the shared counter (+ chunk formula
                # evaluation for the calculator-based schedules)
                cost = omp.atomic
                if phase.calc is not None:
                    cost += self.costs.chunk_calc
                yield Overhead(cost)
                grabbed = self._grab(phase, tid)
                if grabbed is None:
                    break
                yield from self._execute(phase, tid, *grabbed)
        if not phase.nowait:
            yield from self._barrier_wait(phase, tid)

    def _barrier_wait(self, phase: _Phase, tid: int):
        """The implicit end-of-worksharing barrier (paper Fig. 2)."""
        yield Overhead(
            self.costs.omp.barrier_time(self.n_threads) + self.barrier_penalty
        )
        t0 = self.sim.now
        yield from phase.barrier.wait()
        if self.trace is not None and self.sim.now > t0:
            self.trace.add(
                f"{self.name}.t{tid}", t0, self.sim.now, trace_mod.SYNC
            )

    # -- self-fetch (nowait future-work) region ---------------------------
    def _workshare_selffetch(self, phase: _Phase, tid: int):
        omp = self.costs.omp
        yield Overhead(omp.worksharing_init)
        while True:
            cost = omp.atomic
            if phase.calc is not None:
                cost += self.costs.chunk_calc
            yield Overhead(cost)
            grabbed = self._grab(phase, tid) if phase.calc is not None else None
            if grabbed is None:
                if phase.global_done:
                    break
                # chunk dry: serialise the MPI fetch through the mutex
                t0 = self.sim.now
                yield from phase.fetch_mutex.acquire(owner=f"t{tid}")
                try:
                    # re-check: someone may have refilled while we waited
                    if phase.calc is not None and phase.scheduled < phase.size:
                        continue
                    if phase.global_done:
                        break
                    result = yield from phase.fetch_fn()
                    phase.n_fetches += 1
                    if result is None:
                        phase.global_done = True
                        break
                    new_start, new_size = result
                    phase.start = new_start
                    phase.size = new_size
                    phase.scheduled = 0
                    phase.counter = 0
                    # Standard dynamic/guided have no Technique
                    # calculator; emulate one so _grab has a uniform path.
                    phase.calc = self._make_calc(
                        phase.spec, new_size
                    ) or self._emulate_calc(phase.spec, new_size)
                finally:
                    phase.fetch_mutex.release()
                if self.trace is not None and self.sim.now > t0:
                    self.trace.add(
                        f"{self.name}.t{tid}", t0, self.sim.now, trace_mod.OBTAIN
                    )
                continue
            yield from self._execute(phase, tid, *grabbed)
        # one final barrier ends the region
        yield from self._barrier_wait(phase, tid)

    def _emulate_calc(self, spec: ScheduleSpec, size: int) -> ChunkCalculator:
        from repro.core.techniques import _FixedSizeCalculator, _GssCalculator

        if spec.kind == "dynamic":
            return _FixedSizeCalculator("dynamic-emu", size, self.n_threads,
                                        spec.chunk or 1)
        if spec.kind == "guided":
            return _GssCalculator("guided-emu", size, self.n_threads)
        if spec.kind == "static":
            # In the self-fetch region there is no pinned pre-assignment
            # (threads join chunks at different times), so 'static'
            # degrades gracefully to self-scheduled slices of the pinned
            # size — the same semantics the MPI+MPI local queue gives a
            # STATIC intra-node technique.
            return _FixedSizeCalculator(
                "static-emu", size, self.n_threads,
                spec.chunk or ceil_div(max(size, 1), self.n_threads),
            )
        raise AssertionError(f"no emulation needed for {spec.kind}")

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate phase statistics (for tests and reports)."""
        return {
            "phases": len(self.phases),
            "total_grabs": sum(sum(p.grabs.values()) for p in self.phases),
            "total_fetches": sum(p.n_fetches for p in self.phases),
        }
