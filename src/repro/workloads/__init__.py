"""Workloads (substrate S8): the loops whose iterations get scheduled.

A :class:`~repro.workloads.base.Workload` is an iteration space plus a
vector of nominal per-iteration execution times.  The two paper
workloads derive their cost vectors from **real kernels**:

* :mod:`repro.workloads.mandelbrot` — true escape-time iteration counts
  over the complex plane (high algorithmic imbalance, the paper's
  stress case);
* :mod:`repro.workloads.psia` — the Parallel Spin-Image Algorithm:
  per-point neighbourhood sizes of a synthetic 3-D object determine the
  cost of generating each spin image (mild imbalance).

:mod:`repro.workloads.synthetic` provides distributional generators
(constant/uniform/gaussian/exponential/bimodal/ramp) for tests and
ablations, and :mod:`repro.workloads.traces` persists cost traces and
generates adversarial stress traces (spike/ramp/bimodal structure
built to provoke adaptive technique selection).
"""

from repro.workloads.base import Workload
from repro.workloads.mandelbrot import mandelbrot_workload
from repro.workloads.psia import psia_workload
from repro.workloads.synthetic import (
    banded_workload,
    bimodal_workload,
    constant_workload,
    exponential_workload,
    gaussian_workload,
    ramp_workload,
    uniform_workload,
)
from repro.workloads.traces import (
    ADVERSARIAL_KINDS,
    adversarial_workload,
    load_trace,
    save_trace,
)

__all__ = [
    "ADVERSARIAL_KINDS",
    "Workload",
    "adversarial_workload",
    "banded_workload",
    "bimodal_workload",
    "constant_workload",
    "exponential_workload",
    "gaussian_workload",
    "load_trace",
    "mandelbrot_workload",
    "psia_workload",
    "ramp_workload",
    "save_trace",
    "uniform_workload",
]
