"""The Workload abstraction: an iteration space with a cost vector."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.technique_base import IterationProfile


class Workload:
    """A parallel loop: ``n`` independent iterations with known costs.

    Parameters
    ----------
    name:
        Diagnostic label (appears in reports).
    costs:
        Nominal per-iteration execution times in seconds on a
        nominal-speed core (1-D float array).
    meta:
        Free-form provenance (kernel parameters etc.).
    executor:
        Optional callable ``(start, size) -> Any`` that *really*
        performs the iterations (used by the native backend and the
        examples; the simulator only needs ``costs``).

    Block costs are O(1) via a prefix-sum table — execution models call
    :meth:`block_cost` once per sub-chunk, so this matters.
    """

    def __init__(
        self,
        name: str,
        costs: np.ndarray,
        meta: Optional[Dict[str, Any]] = None,
        executor: Optional[Callable[[int, int], Any]] = None,
    ):
        costs = np.asarray(costs, dtype=np.float64)
        if costs.ndim != 1:
            raise ValueError(f"costs must be 1-D, got shape {costs.shape}")
        if costs.size and costs.min() < 0:
            raise ValueError("iteration costs must be non-negative")
        self.name = name
        self.costs = costs
        self.meta = dict(meta or {})
        self.executor = executor
        self._prefix = np.concatenate(([0.0], np.cumsum(costs)))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of loop iterations."""
        return int(self.costs.size)

    @property
    def total_cost(self) -> float:
        """Serial execution time on one nominal core."""
        return float(self._prefix[-1])

    def cost(self, i: int) -> float:
        """Nominal cost of iteration ``i``."""
        return float(self.costs[i])

    def block_cost(self, start: int, size: int) -> float:
        """Total nominal cost of iterations ``[start, start+size)`` (O(1))."""
        if size < 0 or start < 0 or start + size > self.n:
            raise IndexError(
                f"block [{start}, {start + size}) outside loop of {self.n} iterations"
            )
        return float(self._prefix[start + size] - self._prefix[start])

    def profile(self, h: float = 1.0e-6) -> IterationProfile:
        """The (mu, sigma) prior that FAC/TAP/FSC assume known."""
        if self.n == 0:
            raise ValueError("empty workload has no profile")
        mu = float(self.costs.mean())
        sigma = float(self.costs.std())
        return IterationProfile(mu=mu, sigma=sigma, h=h)

    @property
    def cov(self) -> float:
        """Coefficient of variation of iteration costs (imbalance proxy)."""
        mu = self.costs.mean()
        return float(self.costs.std() / mu) if mu > 0 else 0.0

    # ------------------------------------------------------------------
    def scaled_to(self, total_seconds: float, name: Optional[str] = None) -> "Workload":
        """A copy rescaled so the serial time equals ``total_seconds``.

        This is how absolute magnitudes are calibrated to the paper's
        reported numbers without touching the cost *shape* (see
        EXPERIMENTS.md).
        """
        if self.total_cost <= 0:
            raise ValueError("cannot scale a zero-cost workload")
        factor = total_seconds / self.total_cost
        out = Workload(
            name=name or f"{self.name}@{total_seconds:g}s",
            costs=self.costs * factor,
            meta={**self.meta, "scaled_from": self.name, "scale_factor": factor},
            executor=self.executor,
        )
        return out

    def subset(self, n: int, name: Optional[str] = None) -> "Workload":
        """First ``n`` iterations (for quick tests)."""
        if not 0 <= n <= self.n:
            raise ValueError(f"cannot take {n} of {self.n} iterations")
        return Workload(
            name=name or f"{self.name}[:{n}]",
            costs=self.costs[:n],
            meta=dict(self.meta),
            executor=self.executor,
        )

    def execute(self, start: int, size: int) -> Any:
        """Really run iterations (native backend); requires an executor."""
        if self.executor is None:
            raise NotImplementedError(f"workload {self.name!r} has no real executor")
        return self.executor(start, size)

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, n={self.n}, total={self.total_cost:.4g}s, "
            f"cov={self.cov:.3f})"
        )
