"""Mandelbrot workload: real escape-time iteration counts.

The paper uses Mandelbrot as the high-imbalance kernel (Section 4):
points inside the set cost ``max_iter`` inner iterations, points far
outside escape almost immediately, so per-pixel work varies by orders
of magnitude — exactly the "algorithmic variation" DLS techniques are
designed to absorb.

One *loop iteration* is one pixel (row-major), matching the single
large parallel loop the paper describes.  The cost vector is derived
from the true escape counts computed with a vectorised kernel; the
workload also carries a real executor so the native backend and the
examples can render actual images.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.workloads.base import Workload

#: the classic full view of the set
DEFAULT_REGION = (-2.5, 1.0, -1.25, 1.25)


def escape_counts(
    width: int,
    height: int,
    max_iter: int = 512,
    region: Tuple[float, float, float, float] = DEFAULT_REGION,
) -> np.ndarray:
    """Escape-time iteration counts, shape ``(height, width)``.

    Vectorised over all active pixels; a pixel that never escapes costs
    the full ``max_iter`` iterations (these pixels create the load
    imbalance).
    """
    if width < 1 or height < 1 or max_iter < 1:
        raise ValueError("width, height, max_iter must be >= 1")
    x_min, x_max, y_min, y_max = region
    xs = np.linspace(x_min, x_max, width)
    ys = np.linspace(y_min, y_max, height)
    c_re = np.broadcast_to(xs, (height, width)).copy().ravel()
    c_im = np.broadcast_to(ys[:, None], (height, width)).copy().ravel()

    z_re = np.zeros_like(c_re)
    z_im = np.zeros_like(c_im)
    counts = np.full(c_re.size, max_iter, dtype=np.int64)
    active = np.arange(c_re.size)

    for iteration in range(max_iter):
        zr = z_re[active]
        zi = z_im[active]
        zr2 = zr * zr
        zi2 = zi * zi
        escaped = zr2 + zi2 > 4.0
        if escaped.any():
            counts[active[escaped]] = iteration
            keep = ~escaped
            active = active[keep]
            if active.size == 0:
                break
            zr = zr[keep]
            zi = zi[keep]
            zr2 = zr2[keep]
            zi2 = zi2[keep]
        z_im[active] = 2.0 * zr * zi + c_im[active]
        z_re[active] = zr2 - zi2 + c_re[active]
    return counts.reshape(height, width)


def mandelbrot_workload(
    width: int = 256,
    height: int = 256,
    max_iter: int = 512,
    region: Tuple[float, float, float, float] = DEFAULT_REGION,
    iter_time: float = 1.0e-6,
    base_time: float = 2.0e-7,
    total_seconds: Optional[float] = None,
) -> Workload:
    """Build the Mandelbrot workload.

    Parameters
    ----------
    width, height, max_iter, region:
        Kernel parameters; iteration ``i`` is pixel ``(i // width,
        i % width)`` of the escape-count image.
    iter_time / base_time:
        Nominal seconds per inner iteration / fixed per-pixel overhead.
    total_seconds:
        If given, rescale so the serial time matches (calibration knob;
        the cost *shape* is unchanged).
    """
    counts = escape_counts(width, height, max_iter, region)
    costs = base_time + iter_time * counts.astype(np.float64).ravel()

    def executor(start: int, size: int) -> np.ndarray:
        """Really compute the escape counts of pixels [start, start+size)."""
        flat = counts.ravel()
        return flat[start : start + size].copy()

    workload = Workload(
        name=f"mandelbrot-{width}x{height}",
        costs=costs,
        meta={
            "kernel": "mandelbrot",
            "width": width,
            "height": height,
            "max_iter": max_iter,
            "region": region,
            "iter_time": iter_time,
            "base_time": base_time,
        },
        executor=executor,
    )
    if total_seconds is not None:
        workload = workload.scaled_to(total_seconds, name=workload.name)
    return workload


def render_ascii(
    counts: np.ndarray, width: int = 78, palette: str = " .:-=+*#%@"
) -> str:
    """Tiny ASCII rendering of an escape-count image (for examples)."""
    height = max(1, counts.shape[0] * width // (2 * counts.shape[1]))
    ys = (np.arange(height) * counts.shape[0] // height).astype(int)
    xs = (np.arange(width) * counts.shape[1] // width).astype(int)
    sampled = counts[np.ix_(ys, xs)].astype(float)
    lo, hi = sampled.min(), sampled.max()
    norm = (sampled - lo) / (hi - lo) if hi > lo else np.zeros_like(sampled)
    idx = (norm * (len(palette) - 1)).astype(int)
    return "\n".join("".join(palette[j] for j in row) for row in idx)
