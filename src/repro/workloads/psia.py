"""PSIA workload: the Parallel Spin-Image Algorithm.

The paper's second kernel (Section 4).  The spin-image algorithm
(Johnson 1997) converts a 3-D object into a set of 2-D images: for each
*oriented point* ``p`` with normal ``n``, every other surface point
``x`` inside the support is projected into cylindrical coordinates

    alpha = sqrt(|x - p|^2 - (n . (x - p))^2)      (radial distance)
    beta  = n . (x - p)                            (elevation)

and accumulated into a 2-D histogram — the spin image.  One *loop
iteration* generates one spin image; its cost is proportional to the
number of surface points inside the support sphere, so the imbalance
comes from surface sampling density.  PSIA therefore has much milder
imbalance than Mandelbrot (the paper's discussion of Figures 4-7 relies
on this), which we reproduce with a synthetic object made of a uniform
sphere plus a denser cluster cap.

Everything is computed for real: point cloud, k-d tree neighbourhoods,
and (on demand) the actual spin images.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.workloads.base import Workload


def synthetic_object(
    n_points: int,
    cluster_fraction: float = 0.3,
    cluster_spread: float = 0.35,
    seed: int = 1234,
) -> Tuple[np.ndarray, np.ndarray]:
    """A synthetic 3-D surface: points + outward normals.

    A unit sphere sampled uniformly, with ``cluster_fraction`` of the
    points concentrated in a Gaussian cap around the north pole — the
    density contrast produces the mild neighbourhood-size variation
    that gives PSIA its (low) load imbalance.
    """
    if n_points < 1:
        raise ValueError("need at least one point")
    if not 0.0 <= cluster_fraction < 1.0:
        raise ValueError("cluster_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    n_cluster = int(n_points * cluster_fraction)
    n_uniform = n_points - n_cluster

    # uniform sphere sampling via normalised Gaussians
    g = rng.normal(size=(n_uniform, 3))
    uniform = g / np.linalg.norm(g, axis=1, keepdims=True)

    # clustered cap: perturb the pole direction then renormalise
    pole = np.array([0.0, 0.0, 1.0])
    pert = rng.normal(scale=cluster_spread, size=(n_cluster, 3))
    cap = pole + pert
    cap = cap / np.linalg.norm(cap, axis=1, keepdims=True)

    points = np.concatenate([uniform, cap], axis=0)
    rng.shuffle(points, axis=0)
    normals = points.copy()  # unit sphere: normal == position
    return points, normals


def neighbourhood_sizes(points: np.ndarray, support_radius: float) -> np.ndarray:
    """Number of surface points within the support sphere of each point."""
    tree = cKDTree(points)
    return np.asarray(
        tree.query_ball_point(points, r=support_radius, return_length=True),
        dtype=np.int64,
    )


def spin_image(
    points: np.ndarray,
    normals: np.ndarray,
    index: int,
    support_radius: float = 0.4,
    bins: int = 16,
) -> np.ndarray:
    """Compute the real spin image of oriented point ``index``.

    Returns a ``(bins, bins)`` histogram over (alpha, beta).  Used by
    the native backend and the PSIA example; the simulator only needs
    the cost vector.
    """
    p = points[index]
    n = normals[index]
    d = points - p
    beta = d @ n
    alpha_sq = np.einsum("ij,ij->i", d, d) - beta * beta
    alpha = np.sqrt(np.maximum(alpha_sq, 0.0))
    inside = (alpha <= support_radius) & (np.abs(beta) <= support_radius)
    inside[index] = False
    hist, _, _ = np.histogram2d(
        alpha[inside],
        beta[inside],
        bins=bins,
        range=[[0.0, support_radius], [-support_radius, support_radius]],
    )
    return hist


def psia_workload(
    n_points: int = 16384,
    support_radius: float = 0.4,
    bins: int = 16,
    point_time: float = 2.0e-7,
    base_time: float = 5.0e-6,
    cluster_fraction: float = 0.3,
    cluster_spread: float = 0.35,
    seed: int = 1234,
    total_seconds: Optional[float] = None,
) -> Workload:
    """Build the PSIA workload.

    One iteration = one spin image; ``cost_i = base_time + point_time *
    |neighbourhood(i)|`` with neighbourhoods measured on the real
    synthetic object via a k-d tree.
    """
    points, normals = synthetic_object(
        n_points,
        cluster_fraction=cluster_fraction,
        cluster_spread=cluster_spread,
        seed=seed,
    )
    sizes = neighbourhood_sizes(points, support_radius)
    costs = base_time + point_time * sizes.astype(np.float64)

    def executor(start: int, size: int) -> np.ndarray:
        """Really generate spin images [start, start+size); returns a
        stack of (bins, bins) histograms."""
        return np.stack(
            [
                spin_image(points, normals, i, support_radius, bins)
                for i in range(start, start + size)
            ]
        )

    workload = Workload(
        name=f"psia-{n_points}",
        costs=costs,
        meta={
            "kernel": "psia",
            "n_points": n_points,
            "support_radius": support_radius,
            "bins": bins,
            "point_time": point_time,
            "base_time": base_time,
            "cluster_fraction": cluster_fraction,
            "cluster_spread": cluster_spread,
            "seed": seed,
        },
        executor=executor,
    )
    if total_seconds is not None:
        workload = workload.scaled_to(total_seconds, name=workload.name)
    return workload
