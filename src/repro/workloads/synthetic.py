"""Synthetic cost-distribution workloads for tests and ablations.

Each generator produces a :class:`~repro.workloads.base.Workload` with
per-iteration costs drawn from a named distribution — the standard way
the DLS literature studies technique behaviour under controlled
variability (constant/uniform/gaussian/exponential loads appear in the
factoring and AWF papers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workloads.base import Workload


def _finalize(name: str, costs: np.ndarray, meta: dict) -> Workload:
    # execution times cannot be negative whatever the distribution says
    costs = np.maximum(costs, 1e-12)
    return Workload(name=name, costs=costs, meta=meta)


def constant_workload(n: int, cost: float = 1.0e-3) -> Workload:
    """Perfectly balanced iterations (STATIC's best case)."""
    if cost <= 0:
        raise ValueError("cost must be positive")
    return _finalize(
        f"constant-{n}",
        np.full(n, cost),
        {"kernel": "constant", "cost": cost},
    )


def uniform_workload(
    n: int, low: float = 0.5e-3, high: float = 1.5e-3, seed: int = 0
) -> Workload:
    """Uniform(low, high) iteration costs."""
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    rng = np.random.default_rng(seed)
    return _finalize(
        f"uniform-{n}",
        rng.uniform(low, high, size=n),
        {"kernel": "uniform", "low": low, "high": high, "seed": seed},
    )


def gaussian_workload(
    n: int, mu: float = 1.0e-3, sigma: float = 2.0e-4, seed: int = 0
) -> Workload:
    """Gaussian(mu, sigma) costs, clipped at a tiny positive floor."""
    if mu <= 0 or sigma < 0:
        raise ValueError("need mu > 0 and sigma >= 0")
    rng = np.random.default_rng(seed)
    return _finalize(
        f"gaussian-{n}",
        rng.normal(mu, sigma, size=n),
        {"kernel": "gaussian", "mu": mu, "sigma": sigma, "seed": seed},
    )


def exponential_workload(n: int, mu: float = 1.0e-3, seed: int = 0) -> Workload:
    """Exponential(mu) costs — heavy-ish tail, cov = 1."""
    if mu <= 0:
        raise ValueError("need mu > 0")
    rng = np.random.default_rng(seed)
    return _finalize(
        f"exponential-{n}",
        rng.exponential(mu, size=n),
        {"kernel": "exponential", "mu": mu, "seed": seed},
    )


def bimodal_workload(
    n: int,
    fast: float = 0.2e-3,
    slow: float = 5.0e-3,
    slow_fraction: float = 0.2,
    seed: int = 0,
) -> Workload:
    """A mix of cheap and expensive iterations (Mandelbrot-like)."""
    if not 0 <= slow_fraction <= 1:
        raise ValueError("slow_fraction in [0, 1]")
    rng = np.random.default_rng(seed)
    slow_mask = rng.random(n) < slow_fraction
    costs = np.where(slow_mask, slow, fast)
    return _finalize(
        f"bimodal-{n}",
        costs,
        {
            "kernel": "bimodal",
            "fast": fast,
            "slow": slow,
            "slow_fraction": slow_fraction,
            "seed": seed,
        },
    )


def banded_workload(
    n: int,
    fast: float = 0.2e-3,
    slow: float = 5.0e-3,
    band: tuple = (0.4, 0.6),
) -> Workload:
    """A contiguous expensive band inside a cheap loop.

    This is the *spatial* structure of Mandelbrot imbalance (the
    in-set region occupies contiguous index ranges in row-major order).
    Unlike :func:`bimodal_workload`, a pinned static split cannot
    average it away: whole slices land inside the band — which is what
    makes the implicit OpenMP barrier so costly in the paper's
    ``X+STATIC`` measurements.
    """
    lo, hi = band
    if not 0.0 <= lo < hi <= 1.0:
        raise ValueError("band must satisfy 0 <= lo < hi <= 1")
    costs = np.full(n, fast)
    costs[int(lo * n) : int(hi * n)] = slow
    return _finalize(
        f"banded-{n}",
        costs,
        {"kernel": "banded", "fast": fast, "slow": slow, "band": band},
    )


def ramp_workload(
    n: int,
    first: float = 2.0e-3,
    last: float = 0.1e-3,
) -> Workload:
    """Linearly decreasing (or increasing) costs.

    Decreasing ramps are TSS's motivating case; increasing ramps
    (``first < last``) are adversarial for techniques with large
    initial chunks (the paper's remark about FAC2 vs GSS when expensive
    iterations come first is about the decreasing case).
    """
    if first <= 0 or last <= 0:
        raise ValueError("endpoints must be positive")
    return _finalize(
        f"ramp-{n}",
        np.linspace(first, last, max(n, 1))[:n],
        {"kernel": "ramp", "first": first, "last": last},
    )
