"""Persisting workload cost traces.

Traces let expensive cost vectors (full-scale Mandelbrot/PSIA) be
computed once and reused across benchmark runs, and let users feed
*measured* per-iteration times from real applications into the
simulator — the same workflow the authors' later simulation work uses
(FLOP-count / time traces driving a simulator).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.base import Workload

_FORMAT_VERSION = 1


def save_trace(workload: Workload, path: Union[str, Path]) -> Path:
    """Save a workload's cost vector + metadata to an ``.npz`` file."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta_json = json.dumps(
        {"name": workload.name, "meta": _jsonable(workload.meta),
         "version": _FORMAT_VERSION}
    )
    np.savez_compressed(path, costs=workload.costs, meta=np.bytes_(meta_json.encode()))
    return path


def load_trace(path: Union[str, Path]) -> Workload:
    """Load a workload saved with :func:`save_trace`.

    The executor is not persisted (it is code, not data); the loaded
    workload is simulation-only.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        costs = np.asarray(data["costs"], dtype=np.float64)
        header = json.loads(bytes(data["meta"]).decode())
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace version in {path}")
    return Workload(name=header["name"], costs=costs, meta=header["meta"])


def _jsonable(obj):
    """Best-effort conversion of metadata to JSON-encodable values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj
