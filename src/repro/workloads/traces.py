"""Persisting workload cost traces and adversarial trace generation.

Traces let expensive cost vectors (full-scale Mandelbrot/PSIA) be
computed once and reused across benchmark runs, and let users feed
*measured* per-iteration times from real applications into the
simulator — the same workflow the authors' later simulation work uses
(FLOP-count / time traces driving a simulator).

:func:`adversarial_workload` complements the smooth distributional
generators in :mod:`repro.workloads.synthetic` with *structured*
stress traces — spikes, phase-flipping ramps, blocky bimodal costs —
built to provoke the adaptive selector (ADAPT ladders) into switching
and to punish techniques whose chunk sizes commit early.  Every trace
is a pure function of ``(kind, n, seed, base, peak)`` so regression
tests can pin schedules against it, and it round-trips through
:func:`save_trace` / :func:`load_trace` like any measured trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.base import Workload

_FORMAT_VERSION = 1

#: recognised ``kind`` values for :func:`adversarial_workload`
ADVERSARIAL_KINDS = ("spike", "ramp", "bimodal")


def adversarial_workload(
    kind: str,
    n: int,
    *,
    seed: int = 0,
    base: float = 0.2e-3,
    peak: float = 8.0e-3,
) -> Workload:
    """Generate a structured stress trace of ``n`` iteration costs.

    * ``"spike"`` — flat baseline punctured by rare (≈2%) expensive
      spikes at seeded positions, with one spike forced into the final
      tenth of the loop so schedules with large tail chunks always
      absorb at least one late straggler.
    * ``"ramp"`` — a phase-flipping ramp: costs climb linearly from
      ``base`` to ``peak`` over the first half, then descend back.
      Decreasing ramps favour TSS-style linear tapering; the embedded
      flip penalises a selector that commits to one rule early.
    * ``"bimodal"`` — contiguous cheap/expensive blocks of seeded
      random lengths, so the runtime (mu, sigma) estimate whipsaws as
      whole blocks enter and leave the feedback window.

    The result is deterministic given the arguments (the generator
    derives everything from ``numpy.random.default_rng(seed)``).
    """
    if kind not in ADVERSARIAL_KINDS:
        raise ValueError(
            f"unknown adversarial kind {kind!r}; expected one of "
            f"{ADVERSARIAL_KINDS}"
        )
    if n < 1:
        raise ValueError("need n >= 1")
    if not 0 < base <= peak:
        raise ValueError("need 0 < base <= peak")
    rng = np.random.default_rng(seed)
    if kind == "spike":
        costs = np.full(n, base)
        n_spikes = max(1, n // 50)
        costs[rng.choice(n, size=n_spikes, replace=False)] = peak
        # force a straggler into the last tenth of the loop
        tail_start = (9 * n) // 10
        costs[int(rng.integers(tail_start, n))] = peak
    elif kind == "ramp":
        half = max(n // 2, 1)
        up = np.linspace(base, peak, half)
        down = np.linspace(peak, base, n - half) if n > half else up[:0]
        costs = np.concatenate([up, down])[:n]
        # seeded multiplicative jitter keeps the ramp from being
        # perfectly learnable from a handful of observations
        costs = costs * rng.uniform(0.9, 1.1, size=n)
    else:  # bimodal blocks
        costs = np.empty(n)
        mean_block = max(n // 16, 1)
        cursor = 0
        expensive = bool(rng.integers(0, 2))
        while cursor < n:
            length = int(rng.integers(1, 2 * mean_block + 1))
            stop = min(cursor + length, n)
            costs[cursor:stop] = peak if expensive else base
            expensive = not expensive
            cursor = stop
    costs = np.maximum(costs, 1e-12)
    return Workload(
        name=f"adversarial-{kind}-{n}",
        costs=costs,
        meta={
            "kernel": "adversarial",
            "kind": kind,
            "seed": seed,
            "base": base,
            "peak": peak,
        },
    )


def save_trace(workload: Workload, path: Union[str, Path]) -> Path:
    """Save a workload's cost vector + metadata to an ``.npz`` file."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta_json = json.dumps(
        {"name": workload.name, "meta": _jsonable(workload.meta),
         "version": _FORMAT_VERSION}
    )
    np.savez_compressed(path, costs=workload.costs, meta=np.bytes_(meta_json.encode()))
    return path


def load_trace(path: Union[str, Path]) -> Workload:
    """Load a workload saved with :func:`save_trace`.

    The executor is not persisted (it is code, not data); the loaded
    workload is simulation-only.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        costs = np.asarray(data["costs"], dtype=np.float64)
        header = json.loads(bytes(data["meta"]).decode())
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace version in {path}")
    return Workload(name=header["name"], costs=costs, meta=header["meta"])


def _jsonable(obj):
    """Best-effort conversion of metadata to JSON-encodable values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj
