"""Shared pytest configuration for the test suite.

Registers the ``slow`` marker (tier-2 scaling smokes, excluded from the
default tier-1 run) and the Hypothesis profiles: on shared CI runners
the property suites run the ``ci`` profile — no deadline (runner timing
jitter must not fail a test) and derandomized (the same examples every
run, so a red build always reproduces locally).
"""

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


def pytest_configure(config):
    """Register the tier-2 ``slow`` marker."""
    config.addinivalue_line(
        "markers",
        "slow: tier-2 scaling smoke (minutes of wall time); excluded "
        "from the default run — select with -m slow",
    )


def pytest_collection_modifyitems(config, items):
    """Keep tier-1 fast: skip ``slow`` tests unless explicitly selected."""
    if "slow" in (config.getoption("-m") or ""):
        return
    skip = pytest.mark.skip(
        reason="tier-2 slow test; select with -m slow"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
