"""Regenerate the depth-2/3/4 differential golden snapshot.

Run from the repo root with the *reference* implementation checked out::

    PYTHONPATH=src python tests/golden/generate_depth_golden.py

``seed_runresults.json`` pins the two-level world; this snapshot
(``depth_runresults.json``) extends the differential guard to a sampled
grid of socket/NUMA topologies and depth-2/3/4 scheduling stacks for
both hierarchical models.  It was generated at the PR-3 HEAD (commit
``d737bf6``), *before* the locality-tier cost model landed, so
``tests/test_differential_seed.py`` replaying it through the tiered
code proves the per-tier penalty knobs are bit-exact no-ops at their
zero defaults.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

from repro.api import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.workloads import uniform_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "depth_runresults.json")

#: cluster_id -> factory; shapes expose the socket and NUMA tiers the
#: depth-3/4 stacks schedule at (and that the tiered costs penalise)
CLUSTERS = {
    "flat-2x8": lambda: homogeneous(2, 8),
    "sock-2x8s2": lambda: homogeneous(2, 8, sockets_per_node=2),
    "numa-2x8s2m2": lambda: homogeneous(
        2, 8, sockets_per_node=2, numa_per_socket=2
    ),
    "numa-1x16s4m2": lambda: homogeneous(
        1, 16, sockets_per_node=4, numa_per_socket=2
    ),
}

#: sampled stacks per depth (not the full cross product — the two-level
#: snapshot already covers that world exhaustively)
STACKS = {
    "mpi+mpi": [
        "GSS+SS",
        "FAC2+STATIC",
        "AWF-B+GSS",
        "GSS+FAC2+SS",
        "TSS+FAC2+STATIC",
        "FAC2+AWF-C+GSS",
        "GSS+FAC2+FAC2+SS",
        "FAC2+GSS+TSS+STATIC",
    ],
    "mpi+openmp": [
        "GSS+SS",
        "FAC2+STATIC",
        "GSS+FAC2+SS",
        "TSS+FAC2+STATIC",
        "GSS+FAC2+FAC2+SS",
        "FAC2+GSS+TSS+STATIC",
    ],
}


def config_matrix():
    for cluster_id, factory in CLUSTERS.items():
        cluster = factory()
        max_depth = 2
        if cluster.sockets_per_node > 1:
            max_depth = 3
        if cluster.numa_per_socket > 1:
            max_depth = 4
        for seed in (0, 7):
            for approach, stacks in STACKS.items():
                for stack in stacks:
                    depth = stack.count("+") + 1
                    if depth > max_depth:
                        continue
                    ppn = min(node.cores for node in cluster.nodes)
                    yield (approach, stack, cluster_id, ppn, seed)


def chunk_digest(result) -> str:
    payload = "|".join(
        ";".join(f"{c.step},{c.start},{c.size},{c.pe}" for c in level)
        for level in result.level_chunks
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def snapshot_one(approach, stack, cluster_id, ppn, seed):
    result = run_hierarchical(
        uniform_workload(240, low=5e-5, high=2e-3, seed=3),
        CLUSTERS[cluster_id](),
        inter=stack,
        approach=approach,
        ppn=ppn,
        seed=seed,
    )
    return {
        "spec_label": result.spec_label,
        "parallel_time": result.parallel_time.hex(),
        "n_events": result.n_events,
        "finish_times": {
            w.name: w.finish_time.hex() for w in result.metrics.workers
        },
        "chunk_digest": chunk_digest(result),
    }


def main() -> int:
    golden = {}
    for config in config_matrix():
        key = "/".join(str(part) for part in config)
        golden[key] = snapshot_one(*config)
        print(f"  {key}: T={float.fromhex(golden[key]['parallel_time']):.6g}s")
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
    print(f"wrote {len(golden)} configs to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
