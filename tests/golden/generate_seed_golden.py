"""Regenerate the differential-test golden snapshot.

Run from the repo root with the *reference* implementation checked out::

    PYTHONPATH=src python tests/golden/generate_seed_golden.py

The snapshot (``seed_runresults.json``) pins the exact simulated
behaviour of every pre-existing two-level ``X+Y`` configuration across
all four execution models: the makespan and per-rank finish times as
hex floats (bit-exact), plus a SHA-256 digest of the full chunk +
sub-chunk trace.  ``tests/test_differential_seed.py`` replays the same
configurations through the current code and asserts equality — proving
that the arbitrary-depth refactor left every two-level result
bit-identical to the seed.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

from repro.api import run_hierarchical
from repro.cluster.machine import heterogeneous, homogeneous
from repro.workloads import uniform_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "seed_runresults.json")

#: every config the snapshot covers: (approach, inter, intra, cluster_id,
#: ppn, seed, extra-kwargs)
CLUSTERS = {
    "homog-2x4": lambda: homogeneous(2, 4),
    "homog-3x4": lambda: homogeneous(3, 4),
    "hetero-2": lambda: heterogeneous([4, 4], [1.0, 1.5]),
}

INTERS = ["STATIC", "SS", "GSS", "TSS", "FAC2", "mFSC", "TFSS", "AWF-B", "AF"]
MPI_MPI_INTRAS = ["STATIC", "SS", "GSS", "TSS", "FAC2"]
OPENMP_INTRAS = ["STATIC", "SS", "GSS", "TSS"]


def config_matrix():
    for cluster_id in CLUSTERS:
        for seed in (0, 7):
            for inter in INTERS:
                for intra in MPI_MPI_INTRAS:
                    yield ("mpi+mpi", inter, intra, cluster_id, 4, seed)
                for intra in OPENMP_INTRAS:
                    yield ("mpi+openmp", inter, intra, cluster_id, 4, seed)
                # single-level baselines (intra ignored)
                yield ("flat-mpi", inter, "SS", cluster_id, 4, seed)
                yield ("master-worker", inter, "SS", cluster_id, 4, seed)


def chunk_digest(result) -> str:
    payload = ";".join(
        f"{c.step},{c.start},{c.size},{c.pe}" for c in result.chunks
    ) + "|" + ";".join(
        f"{c.step},{c.start},{c.size},{c.pe}" for c in result.subchunks
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def snapshot_one(approach, inter, intra, cluster_id, ppn, seed):
    result = run_hierarchical(
        uniform_workload(240, low=5e-5, high=2e-3, seed=3),
        CLUSTERS[cluster_id](),
        inter=inter,
        intra=intra,
        approach=approach,
        ppn=ppn,
        seed=seed,
    )
    return {
        "spec_label": result.spec_label,
        "parallel_time": result.parallel_time.hex(),
        "n_events": result.n_events,
        "finish_times": {
            w.name: w.finish_time.hex() for w in result.metrics.workers
        },
        "chunk_digest": chunk_digest(result),
    }


def main() -> int:
    golden = {}
    for config in config_matrix():
        key = "/".join(str(part) for part in config)
        golden[key] = snapshot_one(*config)
        print(f"  {key}: T={float.fromhex(golden[key]['parallel_time']):.6g}s")
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
    print(f"wrote {len(golden)} configs to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
