"""Configurable ADAPT candidate ladders + hysteresis (ISSUE 8, satellite 3).

Three pinned behaviours:

* the ``ADAPT[...]`` parse surface round-trips spellings, knobs and
  errors;
* the hysteresis knobs (``dwell=``, ``improve=``) measurably damp
  selector thrash — at the calculator level under adversarial
  alternating feedback, and at the run level (at most one switch per
  tier on a noisy seeded workload);
* the legacy bare ``ADAPT`` spelling is bit-exact with the PR-7
  behaviour: same SS->FAC2->GSS walk, same counters, same parallel
  time on the pinned replay.
"""

import pytest

from repro.api import run_hierarchical
from repro.cluster.costs import DEFAULT_COSTS
from repro.cluster.machine import homogeneous
from repro.core import get_technique
from repro.core.adaptive import RULE_NAMES, Adapt, _AdaptiveCalculator
from repro.core.technique_base import TechniqueError
from repro.workloads import uniform_workload


# ---------------------------------------------------------------------------
# parse surface
# ---------------------------------------------------------------------------
def test_parse_round_trips_spelling():
    for spelling in (
        "ADAPT[ss,fac2]",
        "ADAPT[fac2,gss,tss]",
        "ADAPT[ss,fac2,gss,tss,window=6,dwell=2,improve=0.05]",
    ):
        technique = Adapt.parse(spelling)
        assert technique.spelling() == spelling
        assert technique.name == spelling
        # and the registry dispatcher resolves the same configuration
        via_registry = get_technique(spelling)
        assert via_registry.candidates == technique.candidates
        assert via_registry.min_dwell == technique.min_dwell


def test_parse_is_case_insensitive_and_order_preserving():
    technique = Adapt.parse("adapt[TSS,fac2,Ss]")
    assert technique.candidates == ("TSS", "FAC2", "SS")
    # index 0 is the starting rung, whatever the order given
    calc = technique.make(1000, 4)
    assert calc.mode == "TSS"


def test_parse_knobs():
    technique = Adapt.parse("ADAPT[ss,gss,window=8,dwell=3,improve=0.1]")
    assert technique.window == 8
    assert technique.min_dwell == 3
    assert technique.improve_threshold == pytest.approx(0.1)
    calc = technique.make(500, 4)
    assert calc.window == 8 and calc.min_dwell == 3


@pytest.mark.parametrize(
    "bad, match",
    [
        ("ADAPT[ss,frobnicate]", "unknown candidate rules"),
        ("ADAPT[window=4]", "names no candidate rules"),
        ("ADAPT[ss,,gss]", "empty entry"),
        ("ADAPT[ss,speed=11]", "unknown ADAPT knob"),
        ("ADAPT[ss,dwell=abc]", "bad value"),
        ("GSS", "not an ADAPT ladder"),
    ],
)
def test_parse_rejects_bad_spellings(bad, match):
    with pytest.raises(TechniqueError, match=match):
        Adapt.parse(bad)


def test_default_instance_keeps_legacy_name():
    assert Adapt().name == "ADAPT"
    assert Adapt().candidates == ("SS", "FAC2", "GSS")
    assert "TSS" in RULE_NAMES


# ---------------------------------------------------------------------------
# the TSS rung
# ---------------------------------------------------------------------------
def test_tss_rung_tapers_linearly_from_mode_entry():
    calc = _AdaptiveCalculator("ADAPT[tss]", 1000, 4, candidates=("TSS",))
    sizes = [calc.size_at(step) for step in range(12)]
    assert sizes[0] == 125  # ceil(1000 / (2*4))
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    assert all(s >= 1 for s in sizes)


def test_tss_rung_reanchors_after_a_switch():
    calc = _AdaptiveCalculator(
        "x", 10000, 2, candidates=("TSS", "GSS"), window=2
    )
    first_anchor = calc.size_at(0)
    # force a coarsen (wait dominates), then a refine back into TSS
    calc.record_wait(0, 10.0)
    calc.record(0, 100, compute_time=0.1)
    calc.record(1, 100, compute_time=0.1)
    assert calc.mode == "GSS"
    calc.record(0, 100, compute_time=5.0)
    calc.record(1, 100, compute_time=0.001)
    assert calc.mode == "TSS"
    # the new trapezoid anchors on what remains, not on the original n
    assert calc.size_at(99) < first_anchor


# ---------------------------------------------------------------------------
# hysteresis: dwell + improvement margin damp thrash
# ---------------------------------------------------------------------------
def _drive_alternating(calc, rounds):
    """Adversarial feedback: wait-dominated and variance-dominated
    windows alternate, inviting a switch at every boundary."""
    step = 0
    for round_idx in range(rounds):
        if round_idx % 2 == 0:
            calc.record_wait(0, 10.0)
            times = (0.1, 0.1)
        else:
            times = (5.0, 0.001)
        for t in times:
            calc.size_at(step)
            calc.record(step % calc.p, 100, compute_time=t)
            step += 1


def test_hysteresis_damps_selector_thrash():
    thrashy = _AdaptiveCalculator("a", 10**6, 2, window=2)
    _drive_alternating(thrashy, rounds=12)
    damped = _AdaptiveCalculator(
        "b", 10**6, 2, window=2, min_dwell=3, improve_threshold=0.05
    )
    _drive_alternating(damped, rounds=12)
    assert thrashy.switch_count >= 6
    assert damped.switch_count <= thrashy.switch_count // 2


def test_min_dwell_blocks_early_switch_exactly():
    calc = _AdaptiveCalculator("c", 10**6, 2, window=2, min_dwell=2)
    # two wait-dominated windows: still dwelling, no switch allowed
    for _ in range(2):
        calc.record_wait(0, 10.0)
        calc.record(0, 100, compute_time=0.1)
        calc.record(1, 100, compute_time=0.1)
    assert calc.switch_count == 0 and calc.mode == "SS"
    # the third window clears the dwell and fires
    calc.record_wait(0, 10.0)
    calc.record(0, 100, compute_time=0.1)
    calc.record(1, 100, compute_time=0.1)
    assert calc.switch_count == 1 and calc.mode == "FAC2"


# ---------------------------------------------------------------------------
# run level: the seeded noisy-workload regression
# ---------------------------------------------------------------------------
def _noisy_run(inter):
    return run_hierarchical(
        uniform_workload(2000, low=5e-5, high=5e-4, seed=5),
        homogeneous(1, 16),
        inter=inter,
        approach="mpi+mpi",
        ppn=16,
        seed=0,
        costs=DEFAULT_COSTS.with_overrides(**{"mpi.shm_poll_interval": 1.2e-4}),
    )


def test_dwelled_ladder_switches_at_most_once_per_tier():
    result = _noisy_run("GSS+ADAPT[ss,fac2,gss,dwell=4,improve=0.05]")
    assert result.counters["adapt_switches"] <= 1
    assert sum(result.counters["adapt_final_modes"].values()) == 1


def test_legacy_adapt_replay_is_bit_exact_with_pr7():
    """The bare ``ADAPT`` spelling must still walk SS->FAC2->GSS with
    PR-7's exact counters and timing (captured before the ladder
    generalisation landed)."""
    result = _noisy_run("GSS+ADAPT")
    assert result.counters["adapt_switches"] == 1
    assert result.counters["adapt_final_modes"] == {"FAC2": 1}
    assert result.parallel_time.hex() == "0x1.192b671b333b9p-5"
    assert result.n_events == 1020
