"""Adaptive techniques (AWF-B/C/D/E, AF) at inner (non-root) levels.

Historically the adaptive weight calculators only ever saw runtime
measurements at the inter-node level (the global queue records compute
times per node).  In the depth-generalised models, runtime feedback
flows to *every* level along the refill path — these tests pin that
behaviour: an adaptive calculator placed at the intra-node or socket
level receives ``record()`` calls carrying positive compute times and
per-child PE indices, and the run stays correct.
"""

import pytest

from repro.api import run_hierarchical, run_model
from repro.cluster.machine import heterogeneous, homogeneous
from repro.core.chunking import verify_schedule
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.models import MpiMpiModel
from repro.workloads import uniform_workload

ADAPTIVE = ["AWF-B", "AWF-C", "AWF-D", "AWF-E", "AF"]


class _SpyCalc:
    """Transparent ChunkCalculator proxy that captures record() calls."""

    def __init__(self, inner, log):
        self._inner = inner
        self._log = log

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def record(self, pe, size, compute_time, overhead_time=0.0):
        self._log.append((pe, size, compute_time))
        return self._inner.record(pe, size, compute_time, overhead_time)


class _SpyLevelSpec(LevelSpec):
    """LevelSpec whose calculators report their runtime feedback."""

    def __init__(self, technique_name, log, **kwargs):
        base = LevelSpec.of(technique_name, **kwargs)
        super().__init__(
            technique=base.technique,
            weights=base.weights,
            profile=base.profile,
            min_chunk=base.min_chunk,
        )
        self._log = log
        self.made = 0

    def make_calculator(self, n, p, rng=None, chunk_overhead=None):
        self.made += 1
        return _SpyCalc(
            super().make_calculator(n, p, rng=rng, chunk_overhead=chunk_overhead),
            self._log,
        )


@pytest.mark.parametrize("technique", ADAPTIVE)
def test_adaptive_intra_level_receives_runtime_feedback(technique):
    wl = uniform_workload(400, seed=8)
    log = []
    spy = _SpyLevelSpec(technique, log)
    spec = HierarchicalSpec(levels=(LevelSpec.of("GSS"), spy))
    result = run_model(
        MpiMpiModel(), wl, homogeneous(2, 4), spec, ppn=4, seed=1,
    )
    verify_schedule(result.subchunks, wl.n)
    assert spy.made > 0, "intra level never instantiated a calculator"
    assert log, "no runtime feedback reached the intra-level calculator"
    pes = {pe for pe, _, _ in log}
    assert pes <= set(range(4)), "intra feedback uses per-node child indices"
    assert all(dt > 0 for _, _, dt in log), "compute times must be positive"
    assert sum(size for _, size, _ in log) == wl.n


@pytest.mark.parametrize("technique", ADAPTIVE)
def test_adaptive_socket_level_receives_runtime_feedback(technique):
    """The adaptive level sits *between* root and leaf (socket tier)."""
    wl = uniform_workload(600, seed=9)
    log = []
    spy = _SpyLevelSpec(technique, log)
    spec = HierarchicalSpec(
        levels=(LevelSpec.of("GSS"), spy, LevelSpec.of("SS"))
    )
    result = run_model(
        MpiMpiModel(), wl, homogeneous(2, 8, sockets_per_node=2),
        spec, ppn=8, seed=2,
    )
    verify_schedule(result.subchunks, wl.n)
    assert log, "no runtime feedback reached the socket-level calculator"
    # socket-level children are the node's two sockets
    assert {pe for pe, _, _ in log} <= {0, 1}
    # every executed iteration is reported upward through the chain
    assert sum(size for _, size, _ in log) == wl.n


def test_adaptive_at_all_three_levels_simultaneously():
    wl = uniform_workload(500, seed=10)
    logs = {level: [] for level in range(3)}
    spec = HierarchicalSpec(
        levels=(
            _SpyLevelSpec("AWF-B", logs[0]),
            _SpyLevelSpec("AWF-C", logs[1]),
            _SpyLevelSpec("AF", logs[2]),
        )
    )
    result = run_model(
        MpiMpiModel(), wl, homogeneous(2, 4, sockets_per_node=2),
        spec, ppn=4, seed=3,
    )
    verify_schedule(result.subchunks, wl.n)
    for level, log in logs.items():
        assert log, f"level {level} got no feedback"
        assert sum(size for _, size, _ in log) == wl.n


def test_adaptive_intra_adapts_on_heterogeneous_sockets():
    """AWF at the leaf level on a heterogeneous cluster still covers the
    loop and yields a finite makespan — the adaptive path, not the
    deterministic fast path, is exercised end to end."""
    wl = uniform_workload(800, seed=11)
    result = run_hierarchical(
        wl,
        heterogeneous([8, 8], [1.0, 2.0], socket_counts=[2, 2]),
        inter="GSS+AWF-B+SS",
        approach="mpi+mpi",
        ppn=8,
        seed=4,
    )
    verify_schedule(result.subchunks, wl.n)
    assert result.parallel_time > 0


def test_openmp_three_level_adaptive_middle():
    """mpi+openmp carves global chunks across sockets with AWF-C: the
    middle calculator is fed per-socket compute times between outer
    grabs."""
    wl = uniform_workload(600, seed=12)
    log = []
    spec = HierarchicalSpec(
        levels=(LevelSpec.of("GSS"), _SpyLevelSpec("AWF-C", log),
                LevelSpec.of("SS"))
    )
    from repro.models import MpiOpenMpModel

    result = run_model(
        MpiOpenMpModel(), wl, homogeneous(2, 8, sockets_per_node=2),
        spec, ppn=8, seed=5,
    )
    verify_schedule(result.subchunks, wl.n)
    assert log, "outer worksharing never recorded socket compute times"
    assert {pe for pe, _, _ in log} <= {0, 1}
    assert all(dt > 0 for _, _, dt in log)
