"""Property + unit tests for the ADAPT runtime-selection meta-technique.

(a) emitted chunks are always positive and tile exactly ``n``
    iterations, whatever feedback the selector receives (coverage /
    positivity property);
(b) the selector never picks a calculator outside its candidate set;
(c) a seeded regression pins that injected lock-poll contention drives
    the selector away from SS mid-run — and that doing so beats the
    fixed-SS leaf in simulated poll wait;
(d) the ADAPT token works through every composition surface
    (HierarchicalSpec.parse, run_hierarchical, GridRunner,
    figures.adaptive_variant).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.core.adaptive import _LADDER, _AdaptiveCalculator
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.core.technique_base import TechniqueError
from repro.core.techniques import get_technique
from repro.workloads import uniform_workload

#: feedback events: ("chunk", per-iteration-time) or ("wait", seconds)
feedback_events = st.lists(
    st.one_of(
        st.tuples(
            st.just("chunk"),
            st.floats(min_value=1e-7, max_value=1e-3, allow_nan=False),
        ),
        st.tuples(
            st.just("wait"),
            st.floats(min_value=0.0, max_value=1e-2, allow_nan=False),
        ),
    ),
    max_size=60,
)

candidate_sets = st.lists(
    st.sampled_from(_LADDER), min_size=1, max_size=3, unique=True
)


@given(
    n=st.integers(min_value=1, max_value=500),
    p=st.integers(min_value=1, max_value=16),
    events=feedback_events,
)
@settings(max_examples=100, deadline=None)
def test_adapt_chunks_are_positive_and_cover(n, p, events):
    calc = _AdaptiveCalculator("ADAPT", n, p)
    events = list(events)
    total = 0
    step = 0
    while True:
        size = calc.size_at(step, pe=step % p)
        if size == 0:
            break
        assert size >= 1
        step += 1
        total += size
        # interleave feedback with consumption, driving the selector
        if events:
            kind, value = events.pop()
            if kind == "chunk":
                calc.record(step % p, size, compute_time=value * size)
            else:
                calc.record_wait(step % p, value)
        assert total <= n
    assert total == n
    assert calc.size_at(step + 1, pe=0) == 0  # stays exhausted


@given(
    candidates=candidate_sets,
    events=feedback_events,
)
@settings(max_examples=100, deadline=None)
def test_adapt_never_picks_an_unavailable_calculator(candidates, events):
    calc = _AdaptiveCalculator("ADAPT", 400, 4, candidates=candidates)
    assert calc.mode in candidates
    for index, (kind, value) in enumerate(events):
        size = calc.size_at(index, pe=index % 4)
        if kind == "chunk":
            calc.record(index % 4, max(size, 1), compute_time=value)
        else:
            calc.record_wait(index % 4, value)
        assert calc.mode in candidates
    assert all(mode in candidates for mode in calc.mode_history)


def test_adapt_rejects_unknown_candidates():
    with pytest.raises(TechniqueError, match="unknown candidate"):
        _AdaptiveCalculator("ADAPT", 100, 4, candidates=("SS", "WF"))
    with pytest.raises(TechniqueError, match="at least one candidate"):
        _AdaptiveCalculator("ADAPT", 100, 4, candidates=())


def test_adapt_starts_at_finest_and_walks_the_ladder():
    calc = _AdaptiveCalculator("ADAPT", 10_000, 4, window=4)
    assert calc.mode == "SS"
    # dominant fetch wait over one window -> coarsen one rung
    for _ in range(4):
        calc.size_at(0, pe=0)
        calc.record_wait(0, wait_time=1.0)
        calc.record(0, 1, compute_time=1e-6)
    assert calc.mode == "FAC2"
    # still drowning -> coarsen to the top rung, then stay there
    for _ in range(8):
        calc.size_at(0, pe=0)
        calc.record_wait(0, wait_time=1.0)
        calc.record(0, 1, compute_time=1e-6)
    assert calc.mode == "GSS"
    # high iteration-time CoV with cheap fetches -> refine back down
    variable = [1e-6, 9e-4, 2e-6, 8e-4]
    for per_iter in variable:
        calc.size_at(0, pe=0)
        calc.record(0, 1, compute_time=per_iter)
    assert calc.mode == "FAC2"
    assert calc.switch_count == 3
    assert calc.mode_history == ["SS", "FAC2", "GSS", "FAC2"]


def test_adapt_registered_and_parses():
    technique = get_technique("ADAPT")
    assert technique.adaptive
    calc = technique.make(100, 4)
    assert calc.deterministic is False
    spec = HierarchicalSpec.parse("GSS+ADAPT")
    assert spec.label == "GSS+ADAPT"
    assert spec.levels[1].technique.name == "ADAPT"


def test_min_chunk_wrapper_forwards_wait_feedback():
    level = LevelSpec.of("ADAPT", min_chunk=4)
    calc = level.make_calculator(1000, 4)
    inner = calc.inner
    calc.record_wait(0, 0.5)
    assert inner._win_wait == 0.5
    # the selector surface shows through the wrapper, so the models'
    # duck-typed counter bookkeeping still sees min-chunk ADAPT levels
    assert calc.mode_history == ["SS"]
    assert calc.mode == "SS"
    assert calc.switch_count == 0
    # ...and stays absent for wrapped non-selectors
    plain = LevelSpec.of("GSS", min_chunk=4).make_calculator(1000, 4)
    assert not hasattr(plain, "mode_history")


def test_min_chunk_adapt_still_reports_counters():
    """Regression: an ADAPT level wrapped by the min-chunk clamp must
    still surface adapt_switches/adapt_final_modes in the counters."""
    wl = uniform_workload(300, low=5e-5, high=2e-3, seed=3)
    result = run_hierarchical(
        wl,
        homogeneous(1, 8),
        inter="GSS",
        intra=LevelSpec.of("ADAPT", min_chunk=2),
        approach="mpi+mpi",
        ppn=8,
        seed=0,
    )
    assert "adapt_final_modes" in result.counters
    assert sum(result.counters["adapt_final_modes"].values()) > 0


def test_configured_adapt_instance_in_a_stack():
    """Adapt(candidates=..., ...) is placeable directly in a spec; the
    roster of every calculator it makes honours the configuration."""
    from repro.core.adaptive import Adapt

    technique = Adapt(candidates=("FAC2", "GSS"), window=2)
    calc = technique.make(400, 4)
    assert calc.mode == "FAC2"  # finest *available* candidate
    assert calc.candidates == ("FAC2", "GSS")
    assert calc.window == 2
    with pytest.raises(TechniqueError, match="unknown candidate"):
        Adapt(candidates=("SS", "NOPE"))

    wl = uniform_workload(200, low=5e-5, high=2e-3, seed=3)
    result = run_hierarchical(
        wl, homogeneous(2, 4), inter="GSS", intra=LevelSpec.of(technique),
        approach="mpi+mpi", ppn=4, seed=0,
    )
    assert sum(c.size for c in result.subchunks) == wl.n
    assert set(result.counters["adapt_final_modes"]) <= {"FAC2", "GSS"}


def test_adapt_switches_away_from_ss_under_injected_contention():
    """Seeded regression: a wide node with a fine ADAPT leaf and an
    exaggerated lock-polling interval must coarsen away from SS — and
    beat the fixed-SS leaf's simulated poll wait by doing so."""
    from repro.cluster.costs import DEFAULT_COSTS

    wl = uniform_workload(2000, low=5e-5, high=5e-4, seed=5)
    cluster = homogeneous(1, 16)
    contended = DEFAULT_COSTS.with_overrides(**{"mpi.shm_poll_interval": 1.2e-4})

    adapt = run_hierarchical(
        wl, cluster, inter="GSS+ADAPT", approach="mpi+mpi", ppn=16, seed=0,
        costs=contended,
    )
    fixed_ss = run_hierarchical(
        wl, cluster, inter="GSS+SS", approach="mpi+mpi", ppn=16, seed=0,
        costs=contended,
    )
    assert adapt.counters["adapt_switches"] > 0
    final_modes = adapt.counters["adapt_final_modes"]
    assert any(mode != "SS" for mode in final_modes)
    assert (
        adapt.counters["total_poll_wait"] < fixed_ss.counters["total_poll_wait"]
    )


@pytest.mark.parametrize("stack", ["ADAPT", "ADAPT+STATIC", "GSS+FAC2+ADAPT"])
def test_adapt_covers_at_any_level(stack):
    wl = uniform_workload(300, low=5e-5, high=2e-3, seed=3)
    result = run_hierarchical(
        wl,
        homogeneous(2, 8, sockets_per_node=2),
        inter=stack,
        approach="mpi+mpi",
        ppn=8,
        seed=1,
    )
    assert result.parallel_time > 0
    assert sum(c.size for c in result.subchunks) == wl.n


def test_adapt_depth4_run_and_counters():
    wl = uniform_workload(400, low=5e-5, high=2e-3, seed=3)
    result = run_hierarchical(
        wl,
        homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2),
        inter="GSS+FAC2+FAC2+ADAPT",
        approach="mpi+mpi",
        ppn=8,
        seed=0,
    )
    assert sum(c.size for c in result.subchunks) == wl.n
    assert "adapt_final_modes" in result.counters
    assert sum(result.counters["adapt_final_modes"].values()) > 0


def test_adaptive_variant_spec_and_gridrunner():
    from repro.experiments.figures import adaptive_variant
    from repro.experiments.harness import GridRunner

    spec = adaptive_variant("fig5a")
    assert spec.figure_id == "fig5a-adapt"
    assert spec.intras[-1] == "ADAPT"
    deep = adaptive_variant("fig5a", sockets_per_node=2, numa_per_socket=2)
    assert deep.intras[-1] == "FAC2+FAC2+ADAPT"
    assert deep.sockets_per_node == 2 and deep.numa_per_socket == 2

    wl = uniform_workload(200, low=5e-5, high=2e-3, seed=3)
    runner = GridRunner(workload=wl, ppn=4, node_counts=(2,), seed=0)
    cells = runner.sweep(
        "GSS", ["ADAPT"], [("mpi+mpi", lambda intra: True)]
    )
    assert len(cells) == 1
    assert cells[0].intra == "ADAPT"
    assert cells[0].time > 0


def test_adaptive_variant_full_roster_and_ladders():
    from repro.experiments.figures import FULL_ROSTER_EXTRAS, adaptive_variant

    spec = adaptive_variant(
        "fig5a", full_roster=True, ladders=("ADAPT[ss,fac2,tss]",)
    )
    assert spec.figure_id == "fig5a-adapt-roster"
    assert spec.intras[-1] == "ADAPT"  # the plain selector stays last
    for extra in FULL_ROSTER_EXTRAS:
        assert extra in spec.intras
    assert "ADAPT[ss,fac2,tss]" in spec.intras
    # the base panels are untouched and come first
    base = adaptive_variant("fig5a")
    assert spec.intras[: len(base.intras) - 1] == base.intras[:-1]


def test_adapt_has_no_openmp_clause():
    """MPI+OpenMP cannot run an ADAPT leaf (no schedule clause) — the
    same restriction as the paper's unsupported TSS/FAC2 intras."""
    from repro.somp.schedule import ScheduleSpec, UnsupportedScheduleError

    with pytest.raises(UnsupportedScheduleError):
        ScheduleSpec.from_technique("ADAPT")
    from repro.experiments.figures import APPROACHES

    openmp_filter = dict(APPROACHES)["mpi+openmp"]
    assert not openmp_filter("ADAPT")
    assert not openmp_filter("FAC2+ADAPT")
