"""Adversarial trace generator tests (ISSUE 8, satellite 4).

The generator must be a pure function of its arguments (so schedules
against it can be pinned), carry the structural signature its kind
promises, survive the trace save/load round trip, and drive a full
hierarchical run.
"""

import numpy as np
import pytest

from repro.api import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.core import verify_schedule
from repro.workloads import (
    ADVERSARIAL_KINDS,
    adversarial_workload,
    load_trace,
    save_trace,
)


@pytest.mark.parametrize("kind", ADVERSARIAL_KINDS)
def test_shape_and_positivity(kind):
    wl = adversarial_workload(kind, 500, seed=3)
    assert wl.costs.shape == (500,)
    assert np.all(wl.costs > 0)
    assert wl.name == f"adversarial-{kind}-500"
    assert wl.meta["kernel"] == "adversarial"
    assert wl.meta["kind"] == kind and wl.meta["seed"] == 3


@pytest.mark.parametrize("kind", ADVERSARIAL_KINDS)
def test_deterministic_given_the_arguments(kind):
    a = adversarial_workload(kind, 400, seed=11)
    b = adversarial_workload(kind, 400, seed=11)
    assert np.array_equal(a.costs, b.costs)
    c = adversarial_workload(kind, 400, seed=12)
    assert not np.array_equal(a.costs, c.costs)


def test_spike_structure():
    wl = adversarial_workload("spike", 1000, seed=0, base=1e-4, peak=1e-2)
    values = set(np.unique(wl.costs))
    assert values <= {1e-4, 1e-2}
    n_spikes = int(np.sum(wl.costs == 1e-2))
    assert 1 <= n_spikes <= 1000 // 50 + 1
    # the forced tail straggler: at least one spike in the last tenth
    assert np.any(wl.costs[900:] == 1e-2)


def test_ramp_structure():
    wl = adversarial_workload("ramp", 1000, seed=0, base=1e-4, peak=1e-2)
    # the phase flip: the expensive region sits mid-loop, both ends cheap
    assert wl.costs[:50].mean() < wl.costs[450:550].mean()
    assert wl.costs[-50:].mean() < wl.costs[450:550].mean()
    # jitter is bounded to +-10% of the nominal ramp
    assert wl.costs.max() <= 1e-2 * 1.1 + 1e-12


def test_bimodal_structure():
    wl = adversarial_workload("bimodal", 1000, seed=0, base=1e-4, peak=1e-2)
    values = set(np.unique(wl.costs))
    assert values == {1e-4, 1e-2}
    # contiguous blocks: far fewer level changes than iterations
    changes = int(np.sum(wl.costs[1:] != wl.costs[:-1]))
    assert 1 <= changes < 200


def test_validation():
    with pytest.raises(ValueError, match="unknown adversarial kind"):
        adversarial_workload("zigzag", 100)
    with pytest.raises(ValueError, match="n >= 1"):
        adversarial_workload("spike", 0)
    with pytest.raises(ValueError, match="base <= peak"):
        adversarial_workload("spike", 100, base=2.0, peak=1.0)


@pytest.mark.parametrize("kind", ADVERSARIAL_KINDS)
def test_round_trips_through_trace_files(kind, tmp_path):
    wl = adversarial_workload(kind, 300, seed=7)
    path = save_trace(wl, tmp_path / f"{kind}.npz")
    loaded = load_trace(path)
    assert np.array_equal(loaded.costs, wl.costs)
    assert loaded.meta["kind"] == kind
    assert loaded.meta["seed"] == 7


@pytest.mark.parametrize("kind", ADVERSARIAL_KINDS)
def test_drives_a_full_hierarchical_run(kind):
    wl = adversarial_workload(kind, 600, seed=1)
    result = run_hierarchical(
        wl,
        homogeneous(2, 4),
        inter="GSS",
        intra="ADAPT[ss,fac2,tss]",
        approach="mpi+mpi",
        ppn=4,
        seed=0,
    )
    verify_schedule(result.subchunks, wl.n)
    assert result.parallel_time > 0
