"""Tests for Chrome trace-event export (repro.core.trace)."""

import json

import pytest

from repro import minihpc, run_hierarchical
from repro.core.trace import COMPUTE, SYNC, Trace
from repro.workloads import uniform_workload


def test_to_chrome_trace_event_fields():
    trace = Trace()
    trace.add("w0", 0.0, 1.0, COMPUTE, label="chunk-0")
    trace.add("w1", 0.5, 2.0, SYNC)
    trace.mark(1.5, "loop-end")
    events = trace.to_chrome_trace()
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(complete) == 2
    assert len(instants) == 1
    first = complete[0]
    assert first["name"] == "chunk-0"
    assert first["cat"] == COMPUTE
    assert first["ts"] == 0.0
    assert first["dur"] == pytest.approx(1e6)  # microseconds
    assert complete[0]["tid"] != complete[1]["tid"]
    assert instants[0]["name"] == "loop-end"


def test_save_chrome_trace_is_valid_json(tmp_path):
    trace = Trace()
    trace.add("w", 0.0, 0.5, COMPUTE)
    path = tmp_path / "trace.json"
    trace.save_chrome_trace(path)
    events = json.loads(path.read_text())
    assert isinstance(events, list) and events


def test_real_run_exports_chrome_trace(tmp_path):
    wl = uniform_workload(200, seed=1)
    result = run_hierarchical(
        wl, minihpc(2, 4), "GSS", "STATIC", approach="mpi+openmp",
        ppn=4, seed=0, collect_trace=True,
    )
    events = result.trace.to_chrome_trace()
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert COMPUTE in cats
    assert SYNC in cats  # the implicit barrier shows up
    result.trace.save_chrome_trace(tmp_path / "run.json")
    assert (tmp_path / "run.json").stat().st_size > 100
