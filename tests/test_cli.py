"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_techniques_command(capsys):
    code, out = run_cli(capsys, "techniques")
    assert code == 0
    for name in ("STATIC", "SS", "GSS", "TSS", "FAC2", "AWF-B", "AF"):
        assert name in out


def test_table1_command(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "schedule(guided,1)" in out


def test_table1_paper_only(capsys):
    code, out = run_cli(capsys, "table1", "--paper-only")
    assert code == 0
    assert "LaPeSD" not in out


def test_run_command(capsys):
    code, out = run_cli(
        capsys, "run", "--app", "mandelbrot", "--nodes", "2",
        "--ppn", "4", "--scale", "tiny",
    )
    assert code == 0
    assert "mpi+mpi" in out
    assert "T_par" in out


def test_run_command_gantt(capsys):
    code, out = run_cli(
        capsys, "run", "--nodes", "1", "--ppn", "4", "--scale", "tiny",
        "--gantt",
    )
    assert code == 0
    assert "legend" in out


def test_figure_command_single(capsys):
    code, out = run_cli(
        capsys, "figure", "--id", "fig5a", "--scale", "tiny",
        "--nodes", "2,4",
    )
    assert code == 0
    assert "Figure 5a" in out
    assert "shape checks" in out


def test_sync_command(capsys):
    code, out = run_cli(capsys, "sync", "--scale", "tiny")
    assert code == 0
    assert "Figure 2" in out and "Figure 3" in out


def test_ablation_command(capsys):
    code, out = run_cli(
        capsys, "ablation", "--id", "nowait", "--scale", "tiny",
    )
    assert code == 0
    assert "A-3" in out


def test_unknown_ablation(capsys):
    code, out = run_cli(capsys, "ablation", "--id", "nope", "--scale", "tiny")
    assert code == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_figure_id_errors(capsys):
    with pytest.raises(KeyError):
        main(["figure", "--id", "fig99x", "--scale", "tiny"])
