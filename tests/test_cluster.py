"""Tests for the cluster model: machine, costs, interconnect, noise, topology."""

import numpy as np
import pytest

from repro.cluster.costs import CostModel, MpiCosts, OmpCosts
from repro.cluster.interconnect import Interconnect
from repro.cluster.machine import (
    ClusterSpec,
    NodeSpec,
    heterogeneous,
    homogeneous,
    minihpc,
)
from repro.cluster.noise import HARSH_NOISE, MILD_NOISE, NO_NOISE, NoiseModel
from repro.cluster.topology import block_placement, round_robin_placement


# ---------------------------------------------------------------------------
# machine specs
# ---------------------------------------------------------------------------


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(cores=0)
    with pytest.raises(ValueError):
        NodeSpec(cores=4, core_speed=0.0)


def test_cluster_totals():
    cluster = homogeneous(3, 8)
    assert cluster.n_nodes == 3
    assert cluster.total_cores == 24
    assert len(cluster.core_speeds()) == 24


def test_cluster_subset():
    cluster = homogeneous(8, 4)
    sub = cluster.subset(3)
    assert sub.n_nodes == 3
    assert sub.network_latency == cluster.network_latency
    with pytest.raises(ValueError):
        cluster.subset(9)


def test_minihpc_defaults_match_paper():
    cluster = minihpc()
    assert cluster.n_nodes == 16
    assert cluster.nodes[0].cores == 16
    # 100 Gbit/s Omni-Path-like fabric
    assert cluster.network_bandwidth == pytest.approx(12.5e9)
    with pytest.raises(ValueError):
        minihpc(17)


def test_heterogeneous_speeds():
    cluster = heterogeneous([4, 4], core_speeds=[1.0, 2.0])
    speeds = cluster.core_speeds()
    assert np.allclose(speeds[:4], 1.0)
    assert np.allclose(speeds[4:], 2.0)
    with pytest.raises(ValueError):
        heterogeneous([4, 4], core_speeds=[1.0])


def test_empty_cluster_rejected():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=())


# ---------------------------------------------------------------------------
# costs
# ---------------------------------------------------------------------------


def test_p2p_time_components():
    costs = MpiCosts()
    small = costs.p2p_time(64, same_node=False, network_latency=1e-6,
                           network_bandwidth=1e9)
    big = costs.p2p_time(10**6, same_node=False, network_latency=1e-6,
                         network_bandwidth=1e9)
    assert big > small + 9e-4  # bandwidth term dominates


def test_rendezvous_adds_round_trip():
    costs = MpiCosts(eager_limit=1024)
    eager = costs.p2p_time(1024, False, 1e-6, 1e12)
    rendezvous = costs.p2p_time(1025, False, 1e-6, 1e12)
    assert rendezvous > eager + 1e-6


def test_omp_barrier_scales_log():
    omp = OmpCosts()
    assert omp.barrier_time(1) == 0.0
    assert omp.barrier_time(16) > omp.barrier_time(2)
    assert omp.barrier_time(16) == pytest.approx(
        omp.barrier_base + 4 * omp.barrier_log
    )


def test_cost_model_with_overrides():
    base = CostModel()
    out = base.with_overrides(
        **{"mpi.shm_poll_interval": 1e-4, "omp.atomic": 5e-7, "chunk_calc": 1e-7}
    )
    assert out.mpi.shm_poll_interval == 1e-4
    assert out.omp.atomic == 5e-7
    assert out.chunk_calc == 1e-7
    # original untouched (frozen dataclasses)
    assert base.mpi.shm_poll_interval != 1e-4


def test_rma_atomic_local_vs_remote():
    costs = MpiCosts()
    local = costs.rma_atomic_time(same_node=True, network_latency=1e-6)
    remote = costs.rma_atomic_time(same_node=False, network_latency=1e-6)
    assert remote > local


# ---------------------------------------------------------------------------
# interconnect
# ---------------------------------------------------------------------------


def test_interconnect_intra_faster_than_inter():
    cluster = homogeneous(2, 4)
    net = Interconnect(cluster, MpiCosts(), block_placement(cluster, 4))
    # ranks 0-3 share node 0; rank 4 lives on node 1
    assert net.message_time(0, 1, 64) < net.message_time(0, 4, 64)
    assert net.atomic_time(0, 1) < net.atomic_time(0, 4)
    assert net.transfer_time(0, 1, 1024) < net.transfer_time(0, 4, 1024)


def test_interconnect_distance_independent():
    cluster = homogeneous(8, 2)
    net = Interconnect(cluster, MpiCosts(), block_placement(cluster, 2))
    # non-blocking fat tree: all remote pairs equal (ranks 2 and 14
    # live on nodes 1 and 7)
    assert net.message_time(0, 2, 64) == net.message_time(0, 14, 64)


def test_interconnect_queries_take_ranks_not_nodes():
    """Regression for the historical rank/node-index confusion.

    ``Interconnect`` used to take *node indices* while every caller
    held *ranks* — passing ranks silently misclassified co-located
    pairs as remote on any multi-node placement.  The interface is now
    rank-based: distinct ranks of one node must price as shared-memory
    peers, and equal *node indices* used as ranks must not alias.
    """
    cluster = homogeneous(2, 4)
    net = Interconnect(cluster, MpiCosts(), block_placement(cluster, 4))
    # ranks 2 and 3 share node 0: same-node pricing despite rank 3 != 0
    assert net.same_node(2, 3)
    assert net.message_time(2, 3, 64) == net.message_time(0, 1, 64)
    # the old node-index reading would have called (0, 1) "remote";
    # ranks 0 and 1 share node 0, so it is a shared-memory pair
    local = net.message_time(0, 1, 64)
    remote = net.message_time(0, 5, 64)  # rank 5 is on node 1
    assert local < remote


# ---------------------------------------------------------------------------
# noise
# ---------------------------------------------------------------------------


def test_no_noise_is_identity():
    rng = np.random.default_rng(0)
    assert np.allclose(NO_NOISE.core_factor(rng, 8), 1.0)
    assert NO_NOISE.chunk_jitter(rng) == 1.0


def test_noise_factors_are_positive_and_spread():
    rng = np.random.default_rng(1)
    factors = HARSH_NOISE.core_factor(rng, 1000)
    assert factors.min() > 0
    assert factors.std() > MILD_NOISE.core_factor(
        np.random.default_rng(1), 1000
    ).std()


def test_chunk_jitter_centered_near_one():
    rng = np.random.default_rng(2)
    jitters = [MILD_NOISE.chunk_jitter(rng) for _ in range(2000)]
    assert 0.99 < np.mean(jitters) < 1.01


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------


def test_block_placement_layout():
    cluster = homogeneous(3, 4)
    placement = block_placement(cluster, 2)
    assert placement.size == 6
    assert placement.node_of(0) == 0
    assert placement.node_of(2) == 1
    assert placement.core_of(3) == 1
    assert placement.ranks_on_node(2) == [4, 5]
    assert placement.node_leaders() == [0, 2, 4]
    assert placement.local_rank(3) == 1


def test_block_placement_rejects_oversubscription():
    with pytest.raises(ValueError, match="oversubscribes"):
        block_placement(homogeneous(2, 4), 5)


def test_round_robin_placement():
    cluster = homogeneous(2, 2)
    placement = round_robin_placement(cluster, 4)
    assert [placement.node_of(r) for r in range(4)] == [0, 1, 0, 1]
    with pytest.raises(ValueError, match="not enough cores"):
        round_robin_placement(cluster, 5)
