"""Cohort-vs-scalar differential harness (PR-10).

The cohort engine (:mod:`repro.sim.cohorts`) promises *bit-exactness,
not approximation*: on eligible cells it must reproduce the scalar
engine's :class:`RunResult` down to the last ulp, and on ineligible
cells it must fall back to the scalar path outright.  This suite pins
that contract three ways:

* both golden snapshots (``seed_runresults.json``,
  ``depth_runresults.json``) replay bit-exactly through
  ``engine="cohort"`` — the same assertions the scalar engine passes,
  including event counts (these cells carry noise, so they exercise
  the transparent fallback);
* eligible deterministic cells (NO_NOISE, homogeneous, depth 1-2
  mpi+mpi and dcc) compare cohort against scalar field by field as hex
  floats — makespan, chunk/subchunk streams, per-worker accounting,
  counters — where only ``n_events`` may differ (macro-events replace
  rank-events);
* the ``engine=`` spelling surface: both valid spellings everywhere
  (API, CLI), anything else rejected loudly.
"""

import hashlib
import json
import os

import pytest

from repro.api import run_hierarchical
from repro.cluster.machine import heterogeneous, homogeneous
from repro.cluster.noise import NO_NOISE
from repro.sim.cohorts import cohort_blockers
from repro.workloads import uniform_workload

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "seed_runresults.json"
)
DEPTH_GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "depth_runresults.json"
)

#: must match tests/golden/generate_seed_golden.py
CLUSTERS = {
    "homog-2x4": lambda: homogeneous(2, 4),
    "homog-3x4": lambda: homogeneous(3, 4),
    "hetero-2": lambda: heterogeneous([4, 4], [1.0, 1.5]),
}

#: must match tests/golden/generate_depth_golden.py
DEPTH_CLUSTERS = {
    "flat-2x8": lambda: homogeneous(2, 8),
    "sock-2x8s2": lambda: homogeneous(2, 8, sockets_per_node=2),
    "numa-2x8s2m2": lambda: homogeneous(
        2, 8, sockets_per_node=2, numa_per_socket=2
    ),
    "numa-1x16s4m2": lambda: homogeneous(
        1, 16, sockets_per_node=4, numa_per_socket=2
    ),
}


def _load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


GOLDEN = _load(GOLDEN_PATH)
APPROACHES = sorted({key.split("/")[0] for key in GOLDEN})
DEPTH_GOLDEN = _load(DEPTH_GOLDEN_PATH)


def _workload():
    return uniform_workload(240, low=5e-5, high=2e-3, seed=3)


def chunk_digest(result) -> str:
    payload = ";".join(
        f"{c.step},{c.start},{c.size},{c.pe}" for c in result.chunks
    ) + "|" + ";".join(
        f"{c.step},{c.start},{c.size},{c.pe}" for c in result.subchunks
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def level_chunk_digest(result) -> str:
    payload = "|".join(
        ";".join(f"{c.step},{c.start},{c.size},{c.pe}" for c in level)
        for level in result.level_chunks
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


# ---------------------------------------------------------------------------
# golden replays through the cohort engine (all four execution models)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
def test_seed_golden_bit_identical_through_cohort_engine(approach):
    """Every seed-golden config replays bit-exactly with engine="cohort".

    These cells run the default (mild) noise model, so the cohort
    engine must detect ineligibility and reproduce the scalar event
    stream — including ``n_events`` — untouched.
    """
    wl = _workload()
    mismatches = []
    for key, want in GOLDEN.items():
        got_approach, inter, intra, cluster_id, ppn, seed = key.split("/")
        if got_approach != approach:
            continue
        result = run_hierarchical(
            wl,
            CLUSTERS[cluster_id](),
            inter=inter,
            intra=intra,
            approach=approach,
            ppn=int(ppn),
            seed=int(seed),
            engine="cohort",
        )
        finish = {w.name: w.finish_time.hex() for w in result.metrics.workers}
        if (
            result.spec_label != want["spec_label"]
            or result.parallel_time.hex() != want["parallel_time"]
            or result.n_events != want["n_events"]
            or finish != want["finish_times"]
            or chunk_digest(result) != want["chunk_digest"]
        ):
            mismatches.append(key)
    assert not mismatches, (
        f"{len(mismatches)} {approach} configs diverged from the seed "
        f"golden under engine='cohort', e.g. {mismatches[:5]}"
    )


def test_depth_golden_bit_identical_through_cohort_engine():
    """Every depth-2/3/4 golden config replays bit-exactly with cohort."""
    wl = _workload()
    mismatches = []
    for key, want in DEPTH_GOLDEN.items():
        approach, stack, cluster_id, ppn, seed = key.split("/")
        result = run_hierarchical(
            wl,
            DEPTH_CLUSTERS[cluster_id](),
            inter=stack,
            approach=approach,
            ppn=int(ppn),
            seed=int(seed),
            engine="cohort",
        )
        finish = {w.name: w.finish_time.hex() for w in result.metrics.workers}
        if (
            result.spec_label != want["spec_label"]
            or result.parallel_time.hex() != want["parallel_time"]
            or result.n_events != want["n_events"]
            or finish != want["finish_times"]
            or level_chunk_digest(result) != want["chunk_digest"]
        ):
            mismatches.append(key)
    assert not mismatches, (
        f"{len(mismatches)} depth configs diverged from the depth golden "
        f"under engine='cohort', e.g. {mismatches[:5]}"
    )


# ---------------------------------------------------------------------------
# eligible cells: field-by-field cohort == scalar (hex floats)
# ---------------------------------------------------------------------------


def result_fingerprint(result):
    """Everything the simulation determines, floats as hex strings."""

    def canon(value):
        if isinstance(value, float):
            return value.hex()
        if isinstance(value, dict):
            return {
                str(k): canon(v)
                for k, v in sorted(value.items(), key=lambda i: str(i[0]))
            }
        if isinstance(value, (list, tuple)):
            return [canon(v) for v in value]
        return value

    return {
        "parallel_time": result.parallel_time.hex(),
        "chunks": [(c.step, c.start, c.size, c.pe) for c in result.chunks],
        "subchunks": [
            (c.step, c.start, c.size, c.pe) for c in result.subchunks
        ],
        "level_chunks": [
            [(c.step, c.start, c.size, c.pe) for c in level]
            for level in result.level_chunks
        ],
        "workers": [
            (
                w.name,
                w.node,
                w.finish_time.hex(),
                w.compute_time.hex(),
                w.overhead_time.hex(),
                w.idle_time.hex(),
                w.n_chunks,
                w.n_iterations,
            )
            for w in result.metrics.workers
        ],
        "counters": canon(dict(result.counters)),
    }


ELIGIBLE_CELLS = [
    # (label, approach, inter, intra, cluster factory, ppn)
    ("mpi+mpi/GSS+SS/2x4", "mpi+mpi", "GSS", "SS", lambda: homogeneous(2, 4), 4),
    ("mpi+mpi/SS+GSS/3x4", "mpi+mpi", "SS", "GSS", lambda: homogeneous(3, 4), 4),
    ("mpi+mpi/TSS+FAC2/4x2", "mpi+mpi", "TSS", "FAC2", lambda: homogeneous(4, 2), 2),
    ("mpi+mpi/GSS/flat-2x4", "mpi+mpi", "GSS", None, lambda: homogeneous(2, 4), 4),
    ("mpi+mpi/mFSC/flat-3x2", "mpi+mpi", "mFSC", None, lambda: homogeneous(3, 2), 2),
    ("dcc/GSS+SS/2x4", "dcc", "GSS+SS", None, lambda: homogeneous(2, 4), 4),
    ("dcc/GSS+FAC2/3x4", "dcc", "GSS+FAC2", None, lambda: homogeneous(3, 4), 4),
    ("dcc/TSS/2x4", "dcc", "TSS", None, lambda: homogeneous(2, 4), 4),
]


@pytest.mark.parametrize(
    "label,approach,inter,intra,cluster,ppn",
    ELIGIBLE_CELLS,
    ids=[cell[0] for cell in ELIGIBLE_CELLS],
)
def test_eligible_cells_bit_identical_minus_event_count(
    label, approach, inter, intra, cluster, ppn
):
    """On eligible cells the engines agree on every simulated quantity.

    Only ``n_events`` may (and should) differ: the cohort engine counts
    macro-events, strictly fewer than the scalar engine's rank-events.
    """
    wl = _workload()
    kwargs = dict(
        inter=inter, intra=intra, approach=approach, ppn=ppn, seed=0,
        noise=NO_NOISE,
    )
    scalar = run_hierarchical(wl, cluster(), **kwargs)
    cohort = run_hierarchical(wl, cluster(), engine="cohort", **kwargs)
    assert result_fingerprint(scalar) == result_fingerprint(cohort), label
    assert cohort.n_events <= scalar.n_events, (
        "macro-events must not exceed scalar rank-events"
    )


def test_eligible_cells_really_take_the_fast_path():
    """Guard against silent fallback: the eligible cells above report no
    blockers, and a macro-event run processes strictly fewer events."""
    wl = _workload()
    scalar = run_hierarchical(
        wl, homogeneous(2, 4), inter="GSS", intra="SS", seed=0,
        noise=NO_NOISE,
    )
    cohort = run_hierarchical(
        wl, homogeneous(2, 4), inter="GSS", intra="SS", seed=0,
        noise=NO_NOISE, engine="cohort",
    )
    assert cohort.n_events < scalar.n_events


def test_heterogeneous_and_noisy_cells_fall_back_whole_run():
    """Ineligible cells reproduce the scalar run exactly, events included."""
    wl = _workload()
    for kwargs in (
        dict(cluster=heterogeneous([4, 4], [1.0, 1.5]), inter="GSS",
             intra="SS", noise=NO_NOISE),     # heterogeneous core speeds
        dict(cluster=homogeneous(2, 4), inter="GSS", intra="SS"),  # noise
        dict(cluster=homogeneous(2, 4), inter="GSS", intra="AWF-B",
             noise=NO_NOISE),                  # adaptive technique
    ):
        cluster = kwargs.pop("cluster")
        scalar = run_hierarchical(wl, cluster, seed=0, **kwargs)
        cohort = run_hierarchical(wl, cluster, seed=0, engine="cohort",
                                  **kwargs)
        assert result_fingerprint(scalar) == result_fingerprint(cohort)
        assert scalar.n_events == cohort.n_events


# ---------------------------------------------------------------------------
# the engine= spelling surface
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "engine", ["scalar", "cohort", "Scalar", "COHORT", " cohort "]
)
def test_engine_spellings_accepted(engine):
    """Both engines parse case-insensitively with whitespace stripped."""
    wl = uniform_workload(40, low=5e-5, high=2e-3, seed=1)
    result = run_hierarchical(
        wl, homogeneous(1, 2), inter="GSS", intra="SS", seed=0,
        engine=engine,
    )
    assert result.parallel_time > 0


@pytest.mark.parametrize("engine", ["", "vector", "vectorised", "both"])
def test_engine_spellings_rejected(engine):
    wl = uniform_workload(40, low=5e-5, high=2e-3, seed=1)
    with pytest.raises(ValueError, match="unknown engine"):
        run_hierarchical(
            wl, homogeneous(1, 2), inter="GSS", intra="SS", seed=0,
            engine=engine,
        )


def test_cli_engine_flag():
    """The documented ``--engine`` flag parses and rejects bad values."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["run", "--engine", "cohort", "--nodes", "2", "--ppn", "2"]
    )
    assert args.engine == "cohort"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--engine", "vectorised"])


def test_cohort_blockers_reports_reasons(monkeypatch):
    """The eligibility probe names each blocking feature (or none)."""
    import repro.sim.cohorts as cohorts

    seen = {}
    original = cohorts.cohort_blockers

    def spy(model, run):
        blockers = original(model, run)
        seen["blockers"] = blockers
        return blockers

    monkeypatch.setattr(cohorts, "cohort_blockers", spy)
    wl = uniform_workload(40, low=5e-5, high=2e-3, seed=1)

    run_hierarchical(wl, homogeneous(2, 4), inter="GSS", intra="SS",
                     seed=0, noise=NO_NOISE, engine="cohort")
    assert seen["blockers"] == []

    run_hierarchical(wl, homogeneous(2, 4), inter="GSS", intra="SS",
                     seed=0, engine="cohort")  # default (mild) noise
    assert seen["blockers"], "a noisy cell must report at least one blocker"
    assert any("noise" in reason for reason in seen["blockers"])
