"""Property-based cohort-vs-scalar equivalence (PR-10).

Hypothesis draws random scheduling stacks (depth 1-4), topologies,
noise models, seeds and execution models, runs each cell through both
engines, and asserts the cohort engine's contract:

* identical chunk sets at every scheduling level (the composed
  schedule is engine-independent);
* identical counters and makespan, bit-for-bit (floats compared as
  hex);
* conservation invariants — every workload iteration is scheduled
  exactly once, whichever engine ran it and wherever cohorts split
  (contention winners vs losers, noise draws, heterogeneous speeds).

Ineligible draws (noise, adaptive techniques, depth > 2, heterogeneous
speeds) exercise the transparent fallback, where even the event count
must match; eligible draws exercise the macro-event fast path.  The
``ci`` Hypothesis profile (tests/conftest.py) derandomizes the suite on
shared runners so a red build always reproduces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_hierarchical
from repro.cluster.machine import heterogeneous, homogeneous
from repro.cluster.noise import MILD_NOISE, NO_NOISE
from repro.workloads import uniform_workload

#: techniques legal at any level of an mpi+mpi stack
TECHNIQUES = ["GSS", "SS", "TSS", "FAC2", "mFSC", "RND", "STATIC", "AWF-B"]
#: techniques the dcc model can flatten (deterministic, rank-agnostic)
DCC_TECHNIQUES = ["GSS", "SS", "TSS", "FAC2", "mFSC", "RND"]

WORKLOAD = uniform_workload(96, low=5e-5, high=2e-3, seed=5)


def fingerprint(result):
    """Everything the simulation determines, floats as hex strings."""

    def canon(value):
        if isinstance(value, float):
            return value.hex()
        if isinstance(value, dict):
            return {
                str(k): canon(v)
                for k, v in sorted(value.items(), key=lambda i: str(i[0]))
            }
        if isinstance(value, (list, tuple)):
            return [canon(v) for v in value]
        return value

    return {
        "parallel_time": result.parallel_time.hex(),
        "level_chunks": [
            [(c.step, c.start, c.size, c.pe) for c in level]
            for level in result.level_chunks
        ],
        "subchunks": [
            (c.step, c.start, c.size, c.pe) for c in result.subchunks
        ],
        "workers": [
            (w.name, w.finish_time.hex(), w.compute_time.hex(),
             w.overhead_time.hex(), w.n_chunks, w.n_iterations)
            for w in result.metrics.workers
        ],
        "counters": canon(dict(result.counters)),
    }


def assert_conservation(result, n_iterations):
    """Every iteration scheduled exactly once, at every materialized level.

    The dcc model resolves chunks straight from the flattened stack, so
    its intermediate levels record no chunks — only levels that did
    materialize must each cover the workload exactly, and the final
    subchunk stream always must.
    """
    covered_levels = 0
    for level, chunks in enumerate(result.level_chunks):
        if not chunks:
            continue
        covered_levels += 1
        flat = [
            i for c in chunks for i in range(c.start, c.start + c.size)
        ]
        assert sorted(flat) == list(range(n_iterations)), (
            f"level {level} lost or duplicated iterations"
        )
    assert covered_levels >= 1
    flat = [
        i
        for c in result.subchunks
        for i in range(c.start, c.start + c.size)
    ]
    assert sorted(flat) == list(range(n_iterations)), (
        "subchunks lost or duplicated iterations"
    )
    assert sum(w.n_iterations for w in result.metrics.workers) == n_iterations


@st.composite
def cells(draw):
    """One random cell: approach, stack, cluster, noise, seed."""
    approach = draw(st.sampled_from(["mpi+mpi", "dcc"]))
    roster = DCC_TECHNIQUES if approach == "dcc" else TECHNIQUES
    depth = draw(st.integers(min_value=1, max_value=4))
    stack = "+".join(
        draw(st.lists(st.sampled_from(roster), min_size=depth,
                      max_size=depth))
    )
    hetero = draw(st.booleans()) and depth <= 2 and approach == "mpi+mpi"
    if hetero:
        cluster = heterogeneous([4, 4], [1.0, 1.5])
        ppn = 4
    else:
        # 2 sockets x 2 NUMA domains supports any depth 1-4 stack
        nodes = draw(st.sampled_from([1, 2, 3]))
        ppn = draw(st.sampled_from([2, 4]))
        cluster = homogeneous(
            nodes, ppn, sockets_per_node=2, numa_per_socket=1
        ) if ppn >= 2 else homogeneous(nodes, ppn)
        if depth >= 4:
            cluster = homogeneous(
                nodes, 4, sockets_per_node=2, numa_per_socket=2
            )
            ppn = 4
    noise = draw(st.sampled_from([NO_NOISE, MILD_NOISE]))
    seed = draw(st.integers(min_value=0, max_value=3))
    return approach, stack, cluster, ppn, noise, seed


@settings(max_examples=30)
@given(cells())
def test_cohort_equals_scalar_on_random_cells(cell):
    approach, stack, cluster, ppn, noise, seed = cell
    kwargs = dict(
        inter=stack, intra=None, approach=approach, ppn=ppn, seed=seed,
        noise=noise,
    )
    scalar = run_hierarchical(WORKLOAD, cluster, **kwargs)
    cohort = run_hierarchical(WORKLOAD, cluster, engine="cohort", **kwargs)
    assert fingerprint(scalar) == fingerprint(cohort)
    assert cohort.n_events <= scalar.n_events
    assert_conservation(cohort, WORKLOAD.n)
    assert_conservation(scalar, WORKLOAD.n)


@settings(max_examples=10)
@given(
    inter=st.sampled_from(["GSS", "TSS", "FAC2"]),
    intra=st.sampled_from(["SS", "GSS", "FAC2"]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_eligible_two_level_cells_hit_the_fast_path(inter, intra, seed):
    """NO_NOISE homogeneous two-level cells must aggregate, not fall
    back: fewer events processed, same result."""
    kwargs = dict(inter=inter, intra=intra, ppn=4, seed=seed, noise=NO_NOISE)
    scalar = run_hierarchical(WORKLOAD, homogeneous(2, 4), **kwargs)
    cohort = run_hierarchical(
        WORKLOAD, homogeneous(2, 4), engine="cohort", **kwargs
    )
    assert fingerprint(scalar) == fingerprint(cohort)
    assert cohort.n_events < scalar.n_events


def test_injected_crashes_fall_back_and_match():
    """Fault-carrying cells are ineligible; the fallback reproduces the
    scalar crash/re-execution stream exactly, events included."""
    kwargs = dict(
        inter="FAC2", intra="SS", ppn=4, seed=0, noise=NO_NOISE,
        faults="crash:3@0.001",
    )
    scalar = run_hierarchical(WORKLOAD, homogeneous(2, 4), **kwargs)
    cohort = run_hierarchical(
        WORKLOAD, homogeneous(2, 4), engine="cohort", **kwargs
    )
    assert fingerprint(scalar) == fingerprint(cohort)
    assert scalar.n_events == cohort.n_events
    assert scalar.counters.get("failures_injected", 0) >= 1
