"""Tier-2 scaling smoke for the cohort engine (PR-10).

Marked ``slow`` (see tests/conftest.py): excluded from the default
tier-1 run, selected by the CI tier-2 job with ``-m slow``.  Pins the
scaling claim behind the cohort engine:

* a 1000-node x 64-rank SS+GSS cell — 64,000 simulated ranks, the
  scale the paper's experiments could not reach — completes under a
  hard wall-time budget (the scalar engine needs ~4.5 minutes for the
  same cell on the reference machine; see BENCH_PR10.json);
* the macro-event count stays far below the scalar engine's rank-event
  count (the aggregation is real, not a relabeling).

The wall budget is deliberately loose (shared CI runners), so this
test is *blocking on completion, non-blocking on timing trends* —
regressions in the trend are read off BENCH_PR10.json instead.
"""

import time

import pytest

from repro.api import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.cluster.noise import NO_NOISE
from repro.workloads import uniform_workload

#: wall budget (seconds) for the 64k-rank cell; ~12 s on the reference
#: machine, with a wide allowance for slower shared runners
WALL_BUDGET_S = 120.0


def _workload():
    return uniform_workload(20000, low=5e-5, high=2e-3, seed=3)


@pytest.mark.slow
def test_64k_rank_cell_completes_within_wall_budget():
    wl = _workload()
    t0 = time.perf_counter()
    result = run_hierarchical(
        wl, homogeneous(1000, 64), inter="SS", intra="GSS", seed=0,
        noise=NO_NOISE, collect_chunks=False, engine="cohort",
    )
    wall = time.perf_counter() - t0
    assert wall < WALL_BUDGET_S, (
        f"64k-rank SS+GSS cell took {wall:.1f}s (budget {WALL_BUDGET_S}s)"
    )
    # sanity: the run actually simulated the whole workload
    assert result.parallel_time > 0
    assert sum(w.n_iterations for w in result.metrics.workers) == wl.n


@pytest.mark.slow
def test_macro_events_far_below_scalar_rank_events():
    """At a 10^4-rank scale the cohort engine processes an order of
    magnitude fewer events than the scalar engine for the same cell,
    while agreeing bit-for-bit on the makespan."""
    wl = uniform_workload(4000, low=5e-5, high=2e-3, seed=3)
    cell = dict(inter="SS", intra="GSS", seed=0, noise=NO_NOISE,
                collect_chunks=False)
    cluster = homogeneous(157, 64)  # 10,048 ranks
    scalar = run_hierarchical(wl, cluster, **cell)
    cohort = run_hierarchical(wl, cluster, engine="cohort", **cell)
    assert scalar.parallel_time.hex() == cohort.parallel_time.hex()
    assert cohort.n_events * 10 < scalar.n_events, (
        f"expected >=10x event reduction, got scalar={scalar.n_events} "
        f"cohort={cohort.n_events}"
    )
