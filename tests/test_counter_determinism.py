"""Counter-accrual determinism (PR-10 satellite).

``RunResult.counters`` holds floating-point reductions over per-tier
shared windows (``total_poll_wait``, ``lock_penalty_s``,
``global_atomic_time_s``...).  Floating-point addition is not
associative, so these sums are only reproducible if the accumulation
*order* is pinned.  Historically the reductions walked the queue dict
in insertion order — which follows rank/window registration order and
would silently change under any registration reshuffle (exactly the
coupling a batching engine exposes).  The reductions now walk the
canonical tier order of
:func:`repro.models.mpi_mpi.sorted_queue_items`; this suite pins that
contract.
"""

import pytest

from repro.api import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.cluster.noise import NO_NOISE
from repro.models.mpi_mpi import MpiMpiModel, sorted_queue_items
from repro.workloads import uniform_workload


def _workload():
    return uniform_workload(160, low=5e-5, high=2e-3, seed=2)


def canon(value):
    """Counters with floats as hex strings (bit-exact comparison)."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {
            str(k): canon(v)
            for k, v in sorted(value.items(), key=lambda i: str(i[0]))
        }
    if isinstance(value, (list, tuple)):
        return [canon(v) for v in value]
    return value


def test_sorted_queue_items_orders_mixed_tier_keys():
    """Node keys (ints) and socket/NUMA keys (tuples) sort canonically."""
    queues = {
        (1, 0): "socket-1-0",
        1: "node-1",
        (0, 1, 0): "numa-0-1-0",
        0: "node-0",
        (0, 1): "socket-0-1",
    }
    assert [key for key, _ in sorted_queue_items(queues)] == [
        0, (0, 1), (0, 1, 0), 1, (1, 0)
    ]
    # order is a property of the keys, not of insertion history
    reinserted = dict(reversed(list(queues.items())))
    assert sorted_queue_items(reinserted) == sorted_queue_items(queues)


@pytest.mark.parametrize("stack", ["GSS+SS", "GSS+FAC2+SS"])
def test_counters_survive_permuted_queue_registration(monkeypatch, stack):
    """Reversing the queue dict's insertion order must not move a single
    bit of any counter: all reductions walk the canonical tier order."""
    wl = _workload()
    cluster = homogeneous(2, 8, sockets_per_node=2)
    kwargs = dict(inter=stack, approach="mpi+mpi", ppn=8, seed=0,
                  noise=NO_NOISE)

    baseline = run_hierarchical(wl, cluster, **kwargs)

    original = MpiMpiModel._build_queues

    def reversed_registration(self, run, world, queue, depth, plan=None):
        queues = original(self, run, world, queue, depth, plan)
        return dict(reversed(list(queues.items())))

    monkeypatch.setattr(MpiMpiModel, "_build_queues", reversed_registration)
    permuted = run_hierarchical(wl, cluster, **kwargs)

    assert canon(dict(baseline.counters)) == canon(dict(permuted.counters))
    assert baseline.parallel_time.hex() == permuted.parallel_time.hex()


def test_counters_identical_across_repeat_runs():
    """Two identical scalar runs agree on every counter bit (the
    baseline determinism the permutation test refines)."""
    wl = _workload()
    kwargs = dict(inter="GSS", intra="SS", ppn=4, seed=0, noise=NO_NOISE)
    first = run_hierarchical(wl, homogeneous(2, 4), **kwargs)
    second = run_hierarchical(wl, homogeneous(2, 4), **kwargs)
    assert canon(dict(first.counters)) == canon(dict(second.counters))
