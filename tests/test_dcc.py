"""Tests for the distributed chunk calculation execution model (dCC).

dCC (arXiv 2101.07050) flattens the hierarchical level stack into one
serial leaf sequence and dispenses it from a single fetch-and-op step
counter; every rank resolves start/size locally.  The pinned property:
for deterministic stacks the produced chunk *set* is identical to the
hierarchical mpi+mpi run of the same spec — only the rank assignment
differs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_hierarchical
from repro.cluster.machine import minihpc
from repro.core.chunking import verify_schedule
from repro.workloads import Workload

#: deterministic, profile-free techniques dCC can flatten — including
#: the staged roster additions and seeded RND (its schedule is a pure
#: function of the spec, so every rank materialises the same sequence)
DETERMINISTIC = [
    "STATIC", "SS", "GSS", "TSS", "FAC2", "mFSC", "TFSS",
    "FISS", "VISS", "RND",
]

workloads = st.builds(
    lambda costs: Workload("prop", np.asarray(costs)),
    st.lists(
        st.floats(min_value=1e-6, max_value=5e-3, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
)


def chunk_set(result):
    return sorted((c.start, c.size) for c in result.subchunks)


# ---------------------------------------------------------------------------
# the tentpole property: dCC == mpi+mpi chunk sets, any depth
# ---------------------------------------------------------------------------
@given(
    wl=workloads,
    levels=st.lists(st.sampled_from(DETERMINISTIC), min_size=1, max_size=4),
    nodes=st.integers(min_value=1, max_value=3),
    per_leaf=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_dcc_matches_mpi_mpi_chunk_set(wl, levels, nodes, per_leaf, seed):
    """Random deterministic stacks over random depth-1..4 machine
    topologies: both models produce the same verify_schedule-clean
    chunk set."""
    depth = len(levels)
    sockets = 2 if depth >= 3 else 1
    numa = 2 if depth >= 4 else 1
    ppn = sockets * numa * per_leaf
    cluster = minihpc(
        nodes, ppn, sockets_per_node=sockets, numa_per_socket=numa
    )
    stack = "+".join(levels)
    dcc = run_hierarchical(
        wl, cluster, inter=stack, approach="dcc", ppn=ppn, seed=seed
    )
    mpi = run_hierarchical(
        wl, cluster, inter=stack, approach="mpi+mpi", ppn=ppn, seed=seed
    )
    verify_schedule(dcc.subchunks, wl.n)
    verify_schedule(mpi.subchunks, wl.n)
    assert chunk_set(dcc) == chunk_set(mpi)
    assert sum(c.size for c in dcc.subchunks) == wl.n


@given(wl=workloads, seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_dcc_bit_deterministic(wl, seed):
    a = run_hierarchical(wl, minihpc(2, 4), inter="GSS+FAC2",
                         approach="dcc", ppn=4, seed=seed)
    b = run_hierarchical(wl, minihpc(2, 4), inter="GSS+FAC2",
                         approach="dcc", ppn=4, seed=seed)
    assert a.parallel_time == b.parallel_time
    assert a.n_events == b.n_events
    assert [c.start for c in a.subchunks] == [c.start for c in b.subchunks]


def test_dcc_counter_accounting():
    """Exactly one atomic per dispensed step plus one exhausted fetch
    per rank — the O(1)-per-chunk traffic signature of dCC."""
    wl = Workload("acct", np.full(500, 1e-4))
    result = run_hierarchical(wl, minihpc(2, 8), inter="GSS+SS",
                              approach="dcc", ppn=8)
    steps = result.counters["dcc_steps"]
    assert steps > 0
    assert result.counters["global_atomics"] == steps + 2 * 8
    assert len(result.subchunks) == steps


# ---------------------------------------------------------------------------
# validation and the dcc=True knob
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "technique",
    [
        "ADAPT", "AWF-B", "AF", "WF",
        # roster additions that need runtime feedback: TAP estimates
        # (mu, sigma) online; configured ladders are still selectors
        "TAP", "ADAPT[ss,fac2]", "ADAPT[ss,fac2,gss,tss,dwell=2]",
    ],
)
def test_dcc_rejects_adaptive_and_pe_dependent(technique):
    wl = Workload("adapt", np.full(100, 1e-4))
    kwargs = {}
    if technique == "WF":
        kwargs["inter_weights"] = [1.0, 2.0]
    with pytest.raises(ValueError, match="dcc"):
        run_hierarchical(wl, minihpc(2, 4), inter="GSS", intra=technique,
                         approach="dcc", ppn=4, **kwargs)


def test_dcc_flattens_roster_newcomers_to_mpi_mpi_chunk_sets():
    """FISS/VISS/seeded-RND stacks flatten and match mpi+mpi exactly."""
    wl = Workload("roster", np.full(700, 1e-4))
    cluster = minihpc(2, 4)
    for stack in ("FISS+SS", "VISS+GSS", "RND+FAC2", "GSS+RND"):
        dcc = run_hierarchical(wl, cluster, inter=stack, approach="dcc",
                               ppn=4, seed=3)
        mpi = run_hierarchical(wl, cluster, inter=stack, approach="mpi+mpi",
                               ppn=4, seed=3)
        verify_schedule(dcc.subchunks, wl.n)
        assert chunk_set(dcc) == chunk_set(mpi), stack


def test_dcc_rejects_stacks_deeper_than_machine_tiers():
    wl = Workload("deep", np.full(100, 1e-4))
    with pytest.raises(ValueError, match="at most 4 levels"):
        run_hierarchical(
            wl, minihpc(2, 8, sockets_per_node=2, numa_per_socket=2),
            inter="GSS+FAC2+FAC2+FAC2+STATIC", approach="dcc", ppn=8,
        )


def test_dcc_knob_reroutes_mpi_mpi_stack():
    wl = Workload("knob", np.full(200, 1e-4))
    via_knob = run_hierarchical(wl, minihpc(2, 4), inter="GSS+FAC2",
                                approach="mpi+mpi", ppn=4, dcc=True)
    direct = run_hierarchical(wl, minihpc(2, 4), inter="GSS+FAC2",
                              approach="dcc", ppn=4)
    assert via_knob.approach == "dcc"
    assert via_knob.parallel_time == direct.parallel_time
    assert chunk_set(via_knob) == chunk_set(direct)


def test_dcc_knob_rejects_other_approaches():
    wl = Workload("knob", np.full(100, 1e-4))
    with pytest.raises(ValueError, match="does not apply"):
        run_hierarchical(wl, minihpc(2, 4), inter="GSS",
                         approach="master-worker", ppn=4, dcc=True)


# ---------------------------------------------------------------------------
# fault tolerance: claims via on_commit, counter-window failover
# ---------------------------------------------------------------------------
def test_dcc_completes_on_survivors_after_crashes():
    wl = Workload("faulty", np.full(800, 2e-4))
    result = run_hierarchical(
        wl, minihpc(2, 4), inter="GSS+FAC2", approach="dcc", ppn=4,
        faults="crash:5@0.0005,crash:6@0.001", max_sim_time=30.0,
    )
    verify_schedule(result.subchunks, wl.n)
    assert result.counters["failures_injected"] == 2
    assert sorted(result.counters["dead_ranks"]) == [5, 6]


def test_dcc_counter_window_fails_over_when_host_dies():
    wl = Workload("failover", np.full(800, 2e-4))
    result = run_hierarchical(
        wl, minihpc(2, 4), inter="GSS+FAC2", approach="dcc", ppn=4,
        faults="crash:0@0.0005", max_sim_time=30.0,
    )
    verify_schedule(result.subchunks, wl.n)
    assert result.counters["failovers"] >= 1
    # rank 0 hosted the counter; after failover the home is a live rank
    assert result.counters["window_homes"]["global"] != 0


def test_dcc_faulted_run_reexecutes_stranded_ranges():
    wl = Workload("stranded", np.full(1200, 3e-4))
    fault_free = run_hierarchical(wl, minihpc(2, 4), inter="SS",
                                  approach="dcc", ppn=4)
    faulted = run_hierarchical(
        wl, minihpc(2, 4), inter="SS", approach="dcc", ppn=4,
        faults="crash:1@0.002,crash:2@0.003", max_sim_time=30.0,
    )
    verify_schedule(faulted.subchunks, wl.n)
    assert faulted.counters["chunks_reexecuted"] >= 1
    assert faulted.parallel_time >= fault_free.parallel_time


# ---------------------------------------------------------------------------
# placement pricing of the counter window
# ---------------------------------------------------------------------------
def test_dcc_reports_priced_counter_traffic():
    wl = Workload("priced", np.full(400, 1e-4))
    result = run_hierarchical(wl, minihpc(2, 4), inter="GSS",
                              approach="dcc", ppn=4)
    assert result.counters["placement_cost_s"] > 0
    assert result.counters["placement_cost_s"] == pytest.approx(
        result.counters["global_atomic_time_s"]
    )
    assert result.counters["lock_penalty_s"] == 0.0
    assert result.counters["window_homes"] == {"global": 0}


def test_dcc_optimized_placement_runs_and_reports():
    wl = Workload("opt", np.full(400, 1e-4))
    result = run_hierarchical(wl, minihpc(2, 4), inter="GSS",
                              approach="dcc", ppn=4, placement="optimized")
    verify_schedule(result.subchunks, wl.n)
    assert result.counters["placement"] == "optimized"
    assert "placement_objective_s" in result.counters


# ---------------------------------------------------------------------------
# experiments threading: cache key discrimination + GridRunner field
# ---------------------------------------------------------------------------
def test_cell_key_discriminates_dcc():
    from repro.experiments.parallel import cell_key, workload_fingerprint

    wl = Workload("keys", np.full(100, 1e-4))
    fp = workload_fingerprint(wl)
    cluster = minihpc(2, 4)
    base = cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0)
    assert cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
                    dcc=True) != base
    assert cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
                    dcc=False) == base


def test_cell_key_discriminates_v6_roster_fields():
    """v6 keys: ladder spellings are distinct cache cells, and the
    format version itself moved past the pre-roster caches."""
    from repro.experiments.parallel import (
        CACHE_FORMAT_VERSION,
        cell_key,
        workload_fingerprint,
    )

    assert CACHE_FORMAT_VERSION == 6
    wl = Workload("keys6", np.full(100, 1e-4))
    fp = workload_fingerprint(wl)
    cluster = minihpc(2, 4)
    keys = {
        cell_key(fp, cluster, "mpi+mpi", "GSS", intra, 2, 4, 0)
        for intra in (
            "ADAPT",
            "ADAPT[ss,fac2]",
            "ADAPT[ss,fac2,dwell=2]",
            "ADAPT[ss,fac2,gss,tss]",
            "FISS",
            "VISS",
            "RND",
            "TAP",
        )
    }
    assert len(keys) == 8


def test_grid_runner_dcc_sweep(tmp_path):
    from repro.experiments.harness import GridRunner

    wl = Workload("grid", np.full(300, 1e-4))
    runner = GridRunner(
        workload=wl, ppn=4, node_counts=(2,), dcc=True,
        cache_dir=str(tmp_path),
    )
    cells = runner.sweep("GSS", ["SS"], [("mpi+mpi", lambda intra: True)])
    assert len(cells) == 1 and cells[0].time > 0
    # the cache round-trips under the dcc-aware key
    again = GridRunner(
        workload=wl, ppn=4, node_counts=(2,), dcc=True,
        cache_dir=str(tmp_path),
    ).sweep("GSS", ["SS"], [("mpi+mpi", lambda intra: True)])
    assert again[0].same_result(cells[0])
    # and a non-dcc sweep of the same grid must not be served from it
    plain = GridRunner(
        workload=wl, ppn=4, node_counts=(2,), dcc=False,
        cache_dir=str(tmp_path),
    )
    plain_cells = plain.sweep("GSS", ["SS"], [("mpi+mpi", lambda intra: True)])
    assert plain.last_sweep_stats["cache_hits"] == 0
    assert plain_cells[0].time != cells[0].time


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_cli_approach_dcc(capsys):
    from repro.cli import main

    code = main([
        "run", "--approach", "dcc", "--techniques", "GSS+FAC2",
        "--nodes", "2", "--ppn", "4", "--scale", "tiny",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "dcc" in out


def test_cli_dcc_flag(capsys):
    from repro.cli import main

    code = main([
        "run", "--dcc", "--techniques", "GSS+FAC2",
        "--nodes", "2", "--ppn", "4", "--scale", "tiny",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "dcc" in out


# ---------------------------------------------------------------------------
# the contention sweep (figures variant)
# ---------------------------------------------------------------------------
def test_dcc_variant_sweep_passes_checks():
    from repro.experiments.figures import run_dcc_variant

    result = run_dcc_variant("fig5a", scale="tiny")
    assert result.cells
    text = result.to_text()
    assert "dcc" in text and "master-worker" in text
    assert result.all_passed, text
