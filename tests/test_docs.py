"""Documentation integrity: the link checker and the docs themselves.

The CI ``docs`` job runs ``tools/check_docs.py`` standalone; this test
keeps the same guarantee inside the tier-1 suite and unit-tests the
checker's slug/anchor logic so it cannot silently stop catching rot.
"""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)

ds_spec = importlib.util.spec_from_file_location(
    "check_docstrings", ROOT / "tools" / "check_docstrings.py"
)
check_docstrings = importlib.util.module_from_spec(ds_spec)
ds_spec.loader.exec_module(check_docstrings)


def test_required_documents_exist():
    for name in (
        "README.md",
        "docs/ARCHITECTURE.md",
        "docs/TECHNIQUES.md",
        "docs/PERFORMANCE.md",
        "docs/PLACEMENT.md",
        "docs/ROBUSTNESS.md",
    ):
        assert (ROOT / name).exists(), f"{name} missing"


def test_no_broken_links():
    assert check_docs.check() == []


def test_slugify_matches_github_style():
    assert check_docs.slugify("Worked depth-4 example") == "worked-depth-4-example"
    assert (
        check_docs.slugify(
            "Scheduling level stacks: how `W+X+Y+Z` descends the machine"
        )
        == "scheduling-level-stacks-how-wxyz-descends-the-machine"
    )


def test_checker_flags_breakage(tmp_path, monkeypatch):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "# Title\n\n[dead](docs/GONE.md) [bad](README.md#nope)\n"
        "```\n[ignored-in-fence](docs/GONE.md)\n```\n"
    )
    monkeypatch.setattr(check_docs, "ROOT", tmp_path)
    errors = check_docs.check()
    assert len(errors) == 2
    assert any("GONE.md" in e for e in errors)
    assert any("#nope" in e for e in errors)


def test_slugify_preserves_literal_underscores():
    """GitHub keeps underscores in slugs; only markup chars vanish."""
    assert (
        check_docs.slugify("Calibration: the `CALIBRATED_COSTS` preset")
        == "calibration-the-calibrated_costs-preset"
    )


def test_anchors_exact_match_and_duplicate_suffixes(tmp_path, monkeypatch):
    """Fragments match generated slugs verbatim (GitHub 404s on
    mixed-case fragments) and duplicate headings get -1/-2 suffixes."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "# Setup\n\n## Steps\n\n## Steps\n\n"
        "[first](#steps) [second](#steps-1) "
        "[case](#Setup) [ghost](#steps-2)\n"
    )
    monkeypatch.setattr(check_docs, "ROOT", tmp_path)
    errors = check_docs.check()
    assert len(errors) == 2
    assert any("#Setup" in e for e in errors)  # exact match: case matters
    assert any("#steps-2" in e for e in errors)  # only one duplicate exists


def test_cluster_docstring_coverage_is_clean():
    """The CI docs job runs tools/check_docstrings.py; keep the same
    guarantee in tier 1 so a missing docstring fails fast."""
    assert check_docstrings.check() == []


def test_docstring_checker_flags_gaps(tmp_path, monkeypatch):
    module = tmp_path / "src" / "repro" / "cluster"
    module.mkdir(parents=True)
    bad = module / "costs.py"
    bad.write_text(
        '"""No units mentioned here, and no index convention."""\n'
        "def priced():\n    return 1\n"
    )
    monkeypatch.setattr(check_docstrings, "ROOT", tmp_path)
    monkeypatch.setattr(
        check_docstrings, "CHECKED_MODULES", ["src/repro/cluster/costs.py"]
    )
    errors = check_docstrings.check()
    assert len(errors) == 3  # units, index convention, missing docstring
    assert any("'priced'" in e for e in errors)
    assert any("unit convention" in e for e in errors)
    assert any("index convention" in e for e in errors)


def test_techniques_doc_covers_the_roster():
    """Every registered technique name appears in docs/TECHNIQUES.md."""
    from repro.core.techniques import TECHNIQUES

    text = (ROOT / "docs" / "TECHNIQUES.md").read_text()
    for name in TECHNIQUES:
        assert f"`{name}`" in text, f"{name} undocumented in TECHNIQUES.md"
