"""Documentation integrity: the link checker and the docs themselves.

The CI ``docs`` job runs ``tools/check_docs.py`` standalone; this test
keeps the same guarantee inside the tier-1 suite and unit-tests the
checker's slug/anchor logic so it cannot silently stop catching rot.
"""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def test_required_documents_exist():
    for name in (
        "README.md",
        "docs/ARCHITECTURE.md",
        "docs/TECHNIQUES.md",
        "docs/PERFORMANCE.md",
    ):
        assert (ROOT / name).exists(), f"{name} missing"


def test_no_broken_links():
    assert check_docs.check() == []


def test_slugify_matches_github_style():
    assert check_docs.slugify("Worked depth-4 example") == "worked-depth-4-example"
    assert (
        check_docs.slugify(
            "Scheduling level stacks: how `W+X+Y+Z` descends the machine"
        )
        == "scheduling-level-stacks-how-wxyz-descends-the-machine"
    )


def test_checker_flags_breakage(tmp_path, monkeypatch):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "# Title\n\n[dead](docs/GONE.md) [bad](README.md#nope)\n"
        "```\n[ignored-in-fence](docs/GONE.md)\n```\n"
    )
    monkeypatch.setattr(check_docs, "ROOT", tmp_path)
    errors = check_docs.check()
    assert len(errors) == 2
    assert any("GONE.md" in e for e in errors)
    assert any("#nope" in e for e in errors)


def test_techniques_doc_covers_the_roster():
    """Every registered technique name appears in docs/TECHNIQUES.md."""
    from repro.core.techniques import TECHNIQUES

    text = (ROOT / "docs" / "TECHNIQUES.md").read_text()
    for name in TECHNIQUES:
        assert f"`{name}`" in text, f"{name} undocumented in TECHNIQUES.md"
