"""Smoke-run every example script so they cannot rot.

Each example is executed in-process (import as __main__ would be slow
to isolate; we exec the file with a fresh namespace) and must complete
without raising.  Output volume is irrelevant here — correctness of the
public-API usage is what's guarded.
"""

import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 9


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # keep the heavier studies small where they honour REPRO_SCALE
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    code = compile(script.read_text(), str(script), "exec")
    namespace = {"__name__": "__main__", "__file__": str(script)}
    exec(code, namespace)  # noqa: S102 - deliberate: run the example
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
