"""Tests for the experiment harness (figures, tables, ablations, intext)."""

import pytest

from repro.experiments import (
    FIGURES,
    figure_mandelbrot,
    figure_psia,
    run_figure,
    scale_from_env,
    table1,
)
from repro.experiments.figures import FigureSpec, ShapeCheck, run_sync_illustration
from repro.experiments.harness import Cell, GridRunner, series
from repro.experiments.tables import table1_rows
from repro.experiments.workloads import SCALES, clear_cache, figure_workload


# ---------------------------------------------------------------------------
# figure registry
# ---------------------------------------------------------------------------


def test_all_eight_figures_registered():
    assert sorted(FIGURES) == [
        "fig4a", "fig4b", "fig5a", "fig5b",
        "fig6a", "fig6b", "fig7a", "fig7b",
    ]
    assert FIGURES["fig4a"].inter == "STATIC"
    assert FIGURES["fig5b"].app == "psia"
    assert FIGURES["fig6a"].inter == "TSS"
    assert FIGURES["fig7a"].inter == "FAC2"


def test_figure_spec_defaults_match_paper():
    spec = FIGURES["fig5a"]
    assert spec.node_counts == (2, 4, 8, 16)
    assert spec.ppn == 16
    assert spec.intras == ("STATIC", "SS", "GSS", "TSS", "FAC2")
    assert "Figure 5a" in spec.title


def test_unknown_figure_rejected():
    with pytest.raises(KeyError, match="unknown figure"):
        run_figure("fig9z")


# ---------------------------------------------------------------------------
# workload builders
# ---------------------------------------------------------------------------


def test_scales_defined():
    assert set(SCALES) == {"tiny", "quick", "default", "full"}


def test_scale_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert scale_from_env() == "default"
    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert scale_from_env() == "quick"
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        scale_from_env()


def test_figure_workloads_cached():
    clear_cache()
    a = figure_mandelbrot("tiny")
    b = figure_mandelbrot("tiny")
    assert a is b
    clear_cache()
    c = figure_mandelbrot("tiny")
    assert c is not a


def test_figure_workload_dispatch():
    assert figure_workload("mandelbrot", "tiny").meta["kernel"] == "mandelbrot"
    assert figure_workload("psia", "tiny").meta["kernel"] == "psia"
    with pytest.raises(ValueError):
        figure_workload("linpack", "tiny")


def test_mandelbrot_imbalance_greater_than_psia():
    """The structural premise of the whole evaluation (paper Sec. 4)."""
    mb = figure_mandelbrot("tiny")
    ps = figure_psia("tiny")
    assert mb.cov > 2 * ps.cov


def test_workload_scaling_hook():
    wl = figure_mandelbrot("tiny", total_seconds=10.0)
    assert wl.total_cost == pytest.approx(10.0)


# ---------------------------------------------------------------------------
# grid runner
# ---------------------------------------------------------------------------


def test_grid_runner_cell_and_series():
    runner = GridRunner(workload=figure_mandelbrot("tiny"), ppn=4,
                        node_counts=(2,), seed=0)
    cells = runner.sweep(
        "GSS",
        ["STATIC", "SS"],
        [("mpi+mpi", lambda intra: True),
         ("mpi+openmp", lambda intra: intra == "STATIC")],
    )
    # mpi+mpi runs both intras; mpi+openmp only STATIC
    assert len(cells) == 3
    s = series(cells, "mpi+mpi", "STATIC")
    assert list(s) == [2]
    assert s[2] > 0
    assert all(isinstance(c, Cell) and c.label.startswith("GSS+") for c in cells)


def test_grid_runner_progress_callback():
    messages = []
    runner = GridRunner(
        workload=figure_mandelbrot("tiny"), ppn=4, node_counts=(2,),
        seed=0, progress=messages.append,
    )
    runner.run_cell("mpi+mpi", "GSS", "GSS", 2)
    assert len(messages) == 1
    assert "GSS+GSS" in messages[0]


# ---------------------------------------------------------------------------
# full figure at tiny scale
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("figure_id", ["fig5a", "fig4b"])
def test_run_figure_tiny(figure_id):
    result = run_figure(figure_id, scale="tiny", node_counts=(2, 4))
    text = result.to_text()
    # all five panels present
    for intra in ("STATIC", "SS", "GSS", "TSS", "FAC2"):
        assert f"intra-node: {intra}" in text
    # the paper's runtime restriction shows up as n/a
    assert "n/a" in text
    # checks were evaluated
    assert result.checks
    assert "shape checks" in text


def test_figure_result_series_extraction():
    result = run_figure("fig5a", scale="tiny", node_counts=(2,))
    s = result.series("mpi+mpi", "FAC2")
    assert list(s) == [2]
    assert result.series("mpi+openmp", "FAC2") == {}  # Intel runtime: n/a


def test_shape_check_line_format():
    check = ShapeCheck("works", True, "detail")
    assert check.line() == "  [PASS] works  (detail)"
    assert ShapeCheck("broken", False).line() == "  [FAIL] broken"


# ---------------------------------------------------------------------------
# sync illustration + table
# ---------------------------------------------------------------------------


def test_sync_illustration_tiny():
    report = run_sync_illustration(scale="tiny")
    assert "Figure 2" in report and "Figure 3" in report
    assert "t'_end" in report


def test_table1_contents():
    text = table1()
    assert "schedule(static)" in text
    assert "schedule(dynamic,1)" in text
    assert "schedule(guided,1)" in text
    assert "LaPeSD-libGOMP" in text
    rows = table1_rows()
    assert [r["technique"] for r in rows] == ["STATIC", "SS", "GSS"]


def test_table1_paper_only():
    text = table1(include_extensions=False)
    assert "LaPeSD" not in text
