"""Fault-injection layer and failure-aware scheduling tests.

Covers the :mod:`repro.cluster.faults` model itself (parsing, seeded
random schedules, signatures), the engine primitives behind it
(``Simulator.kill``, the ``max_sim_time`` watchdog, lock lease
breaking), the zero-default guarantee (``faults=None`` and an inactive
model are bit-identical to the historical event stream), and the
end-to-end recovery property: under any crash-stop schedule that leaves
survivors, every iteration is executed exactly once by a surviving
rank, in all three failure-aware models.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_hierarchical
from repro.cluster.faults import NO_FAULTS, CrashStop, FailSlow, FaultModel
from repro.cluster.machine import homogeneous
from repro.core.chunking import verify_schedule
from repro.sim import Simulator
from repro.sim.engine import SimulationTimeout
from repro.sim.primitives import Compute, Timeout
from repro.smpi import MpiWorld
from repro.workloads import Workload
from repro.workloads.synthetic import uniform_workload


def _workload(n=240, seed=3):
    return uniform_workload(n, low=5e-5, high=2e-3, seed=seed)


# ---------------------------------------------------------------------------
# the fault model itself
# ---------------------------------------------------------------------------
def test_parse_round_trip():
    spec = "crash:5@0.002,slow:2@0.001:0.5,stall:1@0.003:0.0005"
    model = FaultModel.parse(spec)
    assert model.active
    assert model.crashed_ranks == (5,)
    assert model.speed_factor(2, 0.002) == 0.5
    assert model.speed_factor(2, 0.0005) == 1.0
    # describe() emits the same tokens, parseable again
    again = FaultModel.parse(model.describe())
    assert again == model


def test_parse_rejects_bad_tokens():
    with pytest.raises(ValueError):
        FaultModel.parse("crunch:1@0.1")
    with pytest.raises(ValueError):
        FaultModel.parse("slow:1@0.1:0")  # factor must be in (0, 1]
    with pytest.raises(ValueError):
        FaultModel.parse("crash:1@-0.5")
    with pytest.raises(ValueError):
        FaultModel(crashes=(CrashStop(1, 0.1), CrashStop(1, 0.2)))


def test_parse_none_is_inactive():
    assert not FaultModel.parse("none").active
    assert not FaultModel.parse("").active
    assert not NO_FAULTS.active
    assert NO_FAULTS.signature() is None
    assert NO_FAULTS.describe() == "none"


def test_validate_rejects_out_of_range_ranks():
    with pytest.raises(ValueError):
        FaultModel.parse("crash:99@0.1").validate(8)
    with pytest.raises(ValueError):
        FaultModel(slowdowns=(FailSlow(-1, 0.1, 0.5),)).validate(8)


def test_random_crashes_seeded_and_capped():
    a = FaultModel.random_crashes(4, 4, 2, (1e-3, 5e-3), seed=7)
    b = FaultModel.random_crashes(4, 4, 2, (1e-3, 5e-3), seed=7)
    assert a == b
    assert len(a.crashes) == 4
    # ppn - 1 = 1 crash per node at most: every node keeps a survivor
    victims_per_node = {}
    for crash in a.crashes:
        node = crash.rank // 2
        victims_per_node[node] = victims_per_node.get(node, 0) + 1
    assert all(count <= 1 for count in victims_per_node.values())
    assert all(1e-3 <= c.time <= 5e-3 for c in a.crashes)
    c = FaultModel.random_crashes(4, 4, 2, (1e-3, 5e-3), seed=8)
    assert c != a


def test_signature_distinguishes_schedules():
    a = FaultModel.parse("crash:1@0.001")
    b = FaultModel.parse("crash:1@0.002")
    assert a.signature() != b.signature()
    assert a.signature() == FaultModel.parse("crash:1@0.001").signature()


# ---------------------------------------------------------------------------
# engine primitives: kill + watchdog
# ---------------------------------------------------------------------------
def test_kill_stops_process_without_finishing_it():
    sim = Simulator()
    log = []

    def victim():
        yield Timeout(1.0)
        log.append("survived")

    def killer(target):
        yield Timeout(0.5)
        assert sim.kill(target)
        assert not sim.kill(target)  # second kill is a no-op

    process = sim.spawn(victim(), name="victim")
    sim.spawn(killer(process), name="killer")
    sim.run()
    assert process.killed and not process.alive
    assert process.end_time == pytest.approx(0.5)
    assert log == []


def test_max_sim_time_watchdog_raises_with_diagnostics():
    sim = Simulator()

    def spinner():
        while True:
            yield Timeout(1.0)

    sim.spawn(spinner(), name="spinner")
    with pytest.raises(SimulationTimeout) as excinfo:
        sim.run(max_sim_time=10.0)
    message = str(excinfo.value)
    assert "10" in message and "spinner" in message
    assert excinfo.value.deadline == 10.0


def test_max_sim_time_inert_when_run_finishes_in_time():
    sim = Simulator()
    done = []

    def quick():
        yield Timeout(1.0)
        done.append(True)

    sim.spawn(quick(), name="quick")
    sim.run(max_sim_time=10.0)
    assert done == [True]


def test_run_hierarchical_threads_max_sim_time():
    with pytest.raises(SimulationTimeout):
        run_hierarchical(
            _workload(), homogeneous(2, 4), inter="FAC2", intra="SS",
            ppn=4, max_sim_time=1e-9,
        )


# ---------------------------------------------------------------------------
# lease breaking: a rank killed while holding a shared-window lock
# ---------------------------------------------------------------------------
def test_dead_lock_holder_lease_is_broken():
    faults = FaultModel.parse("crash:0@0.001")
    world = MpiWorld(
        Simulator(seed=0), homogeneous(1, 4), ppn=4, faults=faults
    )
    shm = world.create_shared_window(0, {"c": 0})
    reached = []

    def main(ctx):
        if ctx.rank == 0:
            yield from shm.lock(ctx)
            yield Compute(1.0)  # killed long before this completes
            yield from shm.unlock(ctx)
        else:
            yield Timeout(0.002)
            yield from shm.lock(ctx)
            reached.append(ctx.rank)
            yield from shm.unlock(ctx)

    processes = world.launch(main)
    world.sim.spawn(_kill_at(world, 0, 0.001), name="injector")
    world.sim.run()
    assert processes[0].killed
    assert sorted(reached) == [1, 2, 3]
    assert shm.n_leases_broken >= 1


def _kill_at(world, rank, time):
    def injector():
        yield Timeout(time)
        world.sim.kill(world.contexts[rank].process)

    return injector()


def test_live_holder_lease_is_not_broken():
    # same shape, no crash: the poller must never force-release a lock
    # whose owner is alive (and with faults=None the branch is skipped)
    world = MpiWorld(Simulator(seed=0), homogeneous(1, 2), ppn=2)
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        yield from shm.lock(ctx)
        yield Compute(1e-4)
        yield from shm.unlock(ctx)

    world.run(main)
    assert shm.n_leases_broken == 0


# ---------------------------------------------------------------------------
# zero-default guarantee: None / inactive faults replay bit-exactly
# ---------------------------------------------------------------------------
def _digest(result):
    return (
        float(result.parallel_time).hex(),
        [(c.step, c.start, c.size, c.pe) for c in result.subchunks],
        result.n_events,
    )


@pytest.mark.parametrize(
    "approach,stack",
    [
        ("mpi+mpi", ("FAC2", "SS")),
        ("mpi+mpi", ("GSS", "FAC2+SS")),
        ("flat-mpi", ("FAC2", None)),
        ("master-worker", ("SS", None)),
        ("mpi+openmp", ("GSS", "STATIC")),
    ],
)
def test_inactive_faults_bit_exact(approach, stack):
    inter, intra = stack
    kwargs = dict(
        workload=_workload(), cluster=homogeneous(2, 4),
        inter=inter, intra=intra, approach=approach, ppn=4, seed=5,
    )
    baseline = _digest(run_hierarchical(**kwargs))
    assert _digest(run_hierarchical(**kwargs, faults=NO_FAULTS)) == baseline
    assert _digest(run_hierarchical(**kwargs, faults="none")) == baseline
    # the watchdog's general event lane must be bit-exact too
    assert _digest(run_hierarchical(**kwargs, max_sim_time=1e6)) == baseline


def test_active_faults_rejected_by_mpi_openmp():
    with pytest.raises(ValueError, match="failure-aware"):
        run_hierarchical(
            _workload(), homogeneous(2, 4), inter="GSS", intra="STATIC",
            approach="mpi+openmp", ppn=4, faults="crash:1@0.001",
        )


def test_master_crash_rejected():
    with pytest.raises(ValueError, match="rank 0"):
        run_hierarchical(
            _workload(), homogeneous(2, 4), inter="SS", intra=None,
            approach="master-worker", ppn=4, faults="crash:0@0.001",
        )


# ---------------------------------------------------------------------------
# recovery: exactly-once execution on the survivors
# ---------------------------------------------------------------------------
def _fault_counters(result):
    return {
        key: result.counters[key]
        for key in (
            "failures_injected", "chunks_reexecuted", "failovers",
            "lock_leases_broken", "dead_ranks",
        )
    }


def test_coordinator_failover_regression():
    # rank 0 hosts the global window AND is the node-0 tier leader
    # (shared-window home): killing it must fail over both
    result = run_hierarchical(
        _workload(), homogeneous(4, 4), inter="FAC2", intra="SS",
        ppn=4, seed=1, faults="crash:0@0.001",
    )
    verify_schedule(result.subchunks, 240)
    counters = _fault_counters(result)
    assert counters["dead_ranks"] == [0]
    assert counters["failovers"] >= 1
    assert counters["failures_injected"] == 1


def test_crash_reexecutes_stranded_work():
    result = run_hierarchical(
        _workload(), homogeneous(4, 4), inter="FAC2", intra="SS",
        ppn=4, seed=1, faults="crash:5@0.002,crash:9@0.003",
    )
    verify_schedule(result.subchunks, 240)
    assert result.counters["dead_ranks"] == [5, 9]


def test_fail_slow_and_stall_extend_makespan():
    kwargs = dict(
        workload=_workload(), cluster=homogeneous(2, 4),
        inter="SS", intra="SS", ppn=4, seed=2,
    )
    baseline = run_hierarchical(**kwargs).parallel_time
    slow = run_hierarchical(
        **kwargs, faults="slow:0@0:0.1,slow:1@0:0.1,slow:2@0:0.1"
    ).parallel_time
    stalled = run_hierarchical(
        **kwargs, faults="stall:0@0.001:0.05"
    ).parallel_time
    assert slow > baseline
    assert stalled > baseline


def test_flat_mpi_survives_host_crash():
    result = run_hierarchical(
        _workload(), homogeneous(2, 4), inter="FAC2", intra=None,
        approach="flat-mpi", ppn=4, seed=1,
        faults="crash:0@0.001,crash:3@0.003",
    )
    verify_schedule(result.subchunks, 240)
    counters = _fault_counters(result)
    assert counters["dead_ranks"] == [0, 3]
    assert counters["failovers"] >= 1  # global window re-hosted


def test_master_worker_survives_worker_crashes():
    result = run_hierarchical(
        _workload(), homogeneous(3, 4), inter="FAC2", intra=None,
        approach="master-worker", ppn=4, seed=1,
        faults="crash:3@0.001,crash:7@0.002",
    )
    verify_schedule(result.subchunks, 240)
    assert result.counters["dead_ranks"] == [3, 7]
    assert result.counters["chunks_reexecuted"] >= 1


@given(
    costs=st.lists(
        st.floats(min_value=1e-5, max_value=2e-3, allow_nan=False),
        min_size=20,
        max_size=200,
    ),
    stack=st.sampled_from(
        [
            ("SS", None),  # depth 1 (flat protocol inside mpi+mpi)
            ("FAC2", "SS"),  # depth 2
            ("GSS", "FAC2+SS"),  # depth 3
            ("FAC2", "FAC2+GSS+SS"),  # depth 4
        ]
    ),
    n_nodes=st.integers(min_value=1, max_value=3),
    n_crashes=st.integers(min_value=0, max_value=5),
    fault_seed=st.integers(min_value=0, max_value=1000),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_exactly_once_under_random_crashes(
    costs, stack, n_nodes, n_crashes, fault_seed, seed
):
    """Under any survivable crash schedule, every iteration is executed
    exactly once by a surviving rank, at every hierarchy depth."""
    ppn = 4
    wl = Workload("prop", np.asarray(costs))
    faults = FaultModel.random_crashes(
        min(n_crashes, n_nodes * (ppn - 1)),
        n_nodes,
        ppn,
        (1e-4, 5e-3),
        seed=fault_seed,
    )
    inter, intra = stack
    cluster = homogeneous(
        n_nodes, ppn, sockets_per_node=2 if intra and "+" in intra else 1
    )
    result = run_hierarchical(
        wl, cluster, inter=inter, intra=intra, ppn=ppn, seed=seed,
        faults=faults, max_sim_time=1e4,
    )
    verify_schedule(result.subchunks, wl.n)
    # a crash scheduled after a rank already finished is a no-op, so
    # the dead set is a subset of (not always equal to) the schedule
    assert set(result.counters["dead_ranks"]) <= set(faults.crashed_ranks)
    # the hard guarantee is coverage (verify_schedule above); also at
    # least one rank did work, i.e. the run completed on survivors
    assert {c.pe for c in result.subchunks}
