"""Tests for the GlobalQueue dispensing protocols (models.base).

Three protocols implement the distributed chunk-calculation approach:

* deterministic techniques — one fetch&op on the step counter, size and
  start derived locally;
* adaptive / PE-dependent techniques — step fetch&op + scheduled-count
  fetch&add (interleavings hand out relabelled but disjoint ranges);
* pinned STATIC — PE k owns chunk k, no window traffic.
"""

import pytest

from repro.cluster.machine import homogeneous
from repro.core.chunking import Chunk, verify_schedule
from repro.core.techniques import get_technique
from repro.models.base import GlobalQueue
from repro.sim import Compute, Simulator
from repro.smpi import MpiWorld


def make_world(n_nodes=2, cores=4, ppn=4, seed=0):
    return MpiWorld(Simulator(seed=seed), homogeneous(n_nodes, cores), ppn=ppn)


def drain_queue(world, queue, pe_of=lambda ctx: ctx.node):
    """All ranks fetch chunks until exhaustion; returns the chunk list."""
    chunks = []

    def main(ctx):
        while True:
            step, start, size = yield from queue.next_chunk(ctx, pe=pe_of(ctx))
            if size <= 0:
                return
            chunks.append(Chunk(step=max(step, 0), start=start, size=size,
                                pe=ctx.rank))
            yield Compute(1e-5)

    world.run(main)
    return chunks


def test_deterministic_protocol_tiles_iteration_space():
    world = make_world()
    calc = get_technique("GSS").make(1000, 2)
    queue = GlobalQueue(world, calc, 1000)
    chunks = drain_queue(world, queue)
    verify_schedule(chunks, 1000)
    # one atomic per grab attempt (grabs + one exhausted probe per rank)
    assert queue.window.n_atomics >= len(chunks)


def test_deterministic_steps_are_unique():
    world = make_world()
    calc = get_technique("FAC2").make(512, 2)
    queue = GlobalQueue(world, calc, 512)
    chunks = drain_queue(world, queue)
    steps = [c.step for c in chunks]
    assert len(steps) == len(set(steps))


def test_adaptive_protocol_tiles_despite_interleaving():
    world = make_world(n_nodes=4, cores=4, ppn=4)
    calc = get_technique("AWF-B").make(2000, 4)
    queue = GlobalQueue(world, calc, 2000)
    chunks = drain_queue(world, queue)
    verify_schedule(chunks, 2000)
    # scheduled-count protocol uses two atomics per successful grab
    assert queue.window.peek("scheduled") == 2000


def test_wf_protocol_with_weights():
    world = make_world(n_nodes=2, cores=4, ppn=4)
    calc = get_technique("WF").make(1000, 2, weights=[3.0, 1.0])
    queue = GlobalQueue(world, calc, 1000)
    chunks = drain_queue(world, queue)
    verify_schedule(chunks, 1000)
    # node 0 (weight 3) must take clearly more than node 1
    node0 = sum(c.size for c in chunks if c.pe < 4)
    assert node0 > 550


def test_pinned_static_no_window_traffic():
    world = make_world(n_nodes=2, cores=4, ppn=4)
    calc = get_technique("STATIC").make(1000, 2)
    queue = GlobalQueue(world, calc, 1000, pinned=True)
    chunks = drain_queue(world, queue)
    verify_schedule(chunks, 1000)
    assert len(chunks) == 2  # one chunk per node, one scheduling round
    assert queue.window.n_atomics == 0  # never touched the window


def test_pinned_static_second_request_returns_empty():
    world = make_world(n_nodes=1, cores=4, ppn=4)
    calc = get_technique("STATIC").make(100, 1)
    queue = GlobalQueue(world, calc, 100)
    queue.pinned = True
    sizes = []

    def main(ctx):
        if ctx.rank == 0:
            for _ in range(3):
                _, _, size = yield from queue.next_chunk(ctx, pe=0)
                sizes.append(size)
        else:
            yield Compute(0.0)

    world.run(main)
    assert sizes == [100, 0, 0]


def test_exhausted_queue_keeps_returning_zero():
    world = make_world(n_nodes=1, cores=2, ppn=2)
    calc = get_technique("SS").make(3, 2)
    queue = GlobalQueue(world, calc, 3)
    results = []

    def main(ctx):
        for _ in range(4):
            _, _, size = yield from queue.next_chunk(ctx, pe=0)
            results.append(size)

    world.run(main)
    assert sorted(results, reverse=True) == [1, 1, 1, 0, 0, 0, 0, 0]


# Deterministic, profile-free techniques — the roster the single-counter
# protocol serves (adaptive/PE-dependent ones use the scheduled-count
# protocol, which always clamped).
DETERMINISTIC_ROSTER = ["STATIC", "SS", "GSS", "TSS", "FAC2", "mFSC", "TFSS"]


@pytest.mark.parametrize("name", DETERMINISTIC_ROSTER)
def test_deterministic_final_chunk_clamped_to_queue_n(name):
    """Regression: a calculator materialised for a larger loop than the
    queue serves (hierarchical refills, dCC segment reuse) used to hand
    out its final nominal chunk unclamped, overrunning ``n``."""
    world = make_world()
    calc = get_technique(name).make(1000, 2)
    queue = GlobalQueue(world, calc, 950)  # nominal final chunk overshoots
    chunks = drain_queue(world, queue)
    verify_schedule(chunks, 950)
    assert max(c.end for c in chunks) == 950


@pytest.mark.parametrize("name", DETERMINISTIC_ROSTER)
def test_deterministic_committed_claims_clamped_to_queue_n(name):
    """The claims ledger must mirror the clamp: a claim carved inside
    the atomic's critical section can never extend beyond the queue's
    ``n`` (a crash would otherwise re-deposit phantom iterations)."""

    class _StubRun:
        faults_active = True

        def __init__(self):
            self.claimed = []

        def claim(self, rank, step, start, size):
            self.claimed.append((rank, step, start, size))

    world = make_world()
    run = _StubRun()
    calc = get_technique(name).make(1000, 2)
    queue = GlobalQueue(world, calc, 950, run=run)
    chunks = drain_queue(world, queue)
    verify_schedule(chunks, 950)
    assert run.claimed, "claims ledger never engaged"
    assert all(start + size <= 950 for _, _, start, size in run.claimed)
    assert all(size > 0 for _, _, _, size in run.claimed)


def test_remote_node_pays_more_for_chunks():
    """The queue host's node gets cheaper atomics — visible in worker
    overhead accounting."""
    world = make_world(n_nodes=2, cores=2, ppn=2)
    calc = get_technique("SS").make(400, 4)
    queue = GlobalQueue(world, calc, 400)
    drain_queue(world, queue, pe_of=lambda ctx: ctx.rank)
    local = world.contexts[0].process.overhead_time
    remote = world.contexts[2].process.overhead_time
    assert remote > local
