"""Tests for HierarchicalSpec/LevelSpec composition and the public API."""

import pytest

from repro.api import APPROACHES, run_hierarchical, run_model
from repro.cluster.machine import homogeneous
from repro.core.chunking import unroll, verify_schedule
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.core.technique_base import IterationProfile
from repro.core.techniques import get_technique
from repro.models import MpiMpiModel
from repro.workloads import uniform_workload


# ---------------------------------------------------------------------------
# LevelSpec / HierarchicalSpec
# ---------------------------------------------------------------------------


def test_levelspec_from_string_and_instance():
    a = LevelSpec.of("GSS")
    b = LevelSpec.of(get_technique("GSS"))
    assert a.technique is b.technique


def test_hierarchicalspec_label():
    spec = HierarchicalSpec.of("GSS", "STATIC")
    assert spec.label == "GSS+STATIC"
    assert str(spec) == "GSS+STATIC"


def test_hierarchicalspec_prefixed_kwargs():
    profile = IterationProfile(mu=1e-3, sigma=1e-4)
    spec = HierarchicalSpec.of(
        "FAC", "WF",
        inter_profile=profile,
        intra_weights=[1.0, 2.0, 1.0, 1.0],
    )
    assert spec.inter.profile is profile
    assert spec.intra.weights == [1.0, 2.0, 1.0, 1.0]


def test_hierarchicalspec_rejects_unknown_kwargs():
    with pytest.raises(TypeError, match="unknown HierarchicalSpec"):
        HierarchicalSpec.of("GSS", "SS", bogus=1)


def test_min_chunk_wrapper_enforces_floor():
    spec = LevelSpec.of("GSS", min_chunk=8)
    calc = spec.make_calculator(1000, 4)
    chunks = unroll(calc)
    verify_schedule(chunks, 1000)
    # every chunk except possibly the last >= 8
    assert all(c.size >= 8 for c in chunks[:-1])


def test_min_chunk_wrapper_records_feedback():
    spec = LevelSpec.of("AWF-B", min_chunk=4)
    calc = spec.make_calculator(1000, 4)
    size = calc.size_at(0, pe=0)
    calc.record(0, size, compute_time=1.0)  # must not raise
    assert size >= 4


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def test_approaches_tuple_stable():
    assert set(APPROACHES) == {
        "mpi+mpi", "mpi+openmp", "flat-mpi", "master-worker", "dcc"
    }


def test_run_hierarchical_accepts_technique_instances():
    wl = uniform_workload(200, seed=1)
    result = run_hierarchical(
        wl, homogeneous(2, 4),
        inter=get_technique("GSS"), intra=get_technique("SS"),
        approach="mpi+mpi", ppn=4,
    )
    assert result.spec_label == "GSS+SS"


def test_run_hierarchical_approach_aliases():
    wl = uniform_workload(100, seed=2)
    for alias in ("MPI+MPI", "mpi_mpi", "mpi mpi"):
        result = run_hierarchical(
            wl, homogeneous(1, 4), "GSS", "SS", approach=alias, ppn=4,
        )
        assert result.approach == "mpi+mpi"


def test_run_model_direct():
    wl = uniform_workload(100, seed=3)
    result = run_model(
        MpiMpiModel(), wl, homogeneous(2, 4),
        HierarchicalSpec.of("FAC2", "GSS"), ppn=4, seed=0,
    )
    assert result.approach == "mpi+mpi"
    assert result.parallel_time > 0


def test_spec_kwargs_flow_through_api():
    wl = uniform_workload(100, seed=4)
    result = run_hierarchical(
        wl, homogeneous(2, 4), "WF", "SS", approach="flat-mpi", ppn=4,
        inter_weights=[1.0] * 8,
    )
    assert result.spec_label == "WF+SS"


def test_ppn_defaults_to_node_cores():
    wl = uniform_workload(100, seed=5)
    result = run_hierarchical(
        wl, homogeneous(2, 4), "GSS", "SS", approach="mpi+mpi",
    )
    assert result.ppn == 4
