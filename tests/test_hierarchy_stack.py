"""Arbitrary-depth level stacks: spec API, CLI syntax, and grid sweeps.

The tentpole of the depth generalisation: ``HierarchicalSpec`` is a
stack of ``LevelSpec``s of any depth >= 1, the two-level constructor is
a compatibility classmethod, and three-level configurations run through
the simulator, the CLI (``--techniques X+Y+Z``), and the experiment
grid sweep.
"""

import pytest

from repro.api import run_hierarchical
from repro.cli import main as cli_main
from repro.cluster.machine import homogeneous, minihpc
from repro.core.chunking import verify_schedule
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.core.technique_base import IterationProfile
from repro.experiments.harness import GridRunner
from repro.workloads import uniform_workload


# ---------------------------------------------------------------------------
# spec construction
# ---------------------------------------------------------------------------


def test_stack_depths_and_labels():
    assert HierarchicalSpec.of_levels("GSS").depth == 1
    assert HierarchicalSpec.of_levels("GSS").label == "GSS"
    spec = HierarchicalSpec.of_levels("GSS", "FAC2", "STATIC")
    assert spec.depth == 3
    assert spec.label == "GSS+FAC2+STATIC"
    assert str(spec) == "GSS+FAC2+STATIC"


def test_parse_round_trips_labels():
    for text in ("GSS", "GSS+STATIC", "TSS+FAC2+SS"):
        assert HierarchicalSpec.parse(text).label == text
    with pytest.raises(ValueError, match="malformed"):
        HierarchicalSpec.parse("GSS++STATIC")


def test_two_level_constructor_is_a_stack_view():
    spec = HierarchicalSpec.of("GSS", "STATIC")
    assert spec.depth == 2
    assert spec.levels == (spec.inter, spec.intra)
    assert spec.inter is spec.levels[0]
    assert spec.intra is spec.levels[-1]


def test_inter_intra_on_deep_and_shallow_stacks():
    deep = HierarchicalSpec.of_levels("GSS", "FAC2", "STATIC")
    assert deep.inter.technique.name == "GSS"
    assert deep.intra.technique.name == "STATIC"
    shallow = HierarchicalSpec.of_levels("TSS")
    assert shallow.inter is shallow.intra  # single level plays both roles


def test_level_prefixed_kwargs():
    profile = IterationProfile(mu=1e-3, sigma=1e-4)
    spec = HierarchicalSpec.of_levels(
        "FAC", "WF", "SS",
        level0_profile=profile,
        level1_weights=[1.0, 2.0],
    )
    assert spec.levels[0].profile is profile
    assert spec.levels[1].weights == [1.0, 2.0]
    # inter_/intra_ aliases address the root/leaf at any depth
    spec = HierarchicalSpec.of_levels(
        "FAC", "SS", "WF",
        inter_profile=profile, intra_weights=[1.0, 1.0],
    )
    assert spec.levels[0].profile is profile
    assert spec.levels[2].weights == [1.0, 1.0]


def test_bad_level_kwargs_rejected():
    with pytest.raises(TypeError, match="unknown HierarchicalSpec"):
        HierarchicalSpec.of_levels("GSS", "SS", bogus=1)
    with pytest.raises(TypeError, match="level 5"):
        HierarchicalSpec.of_levels("GSS", "SS", level5_min_chunk=2)
    with pytest.raises(ValueError, match="at least one level"):
        HierarchicalSpec(levels=())


def test_constructor_compat_forms():
    inter, intra = LevelSpec.of("GSS"), LevelSpec.of("SS")
    assert HierarchicalSpec(inter=inter, intra=intra).levels == (inter, intra)
    assert HierarchicalSpec((inter, intra)).levels == (inter, intra)
    with pytest.raises(TypeError, match="not both"):
        HierarchicalSpec((inter,), inter=inter, intra=intra)
    with pytest.raises(TypeError, match="both inter= and intra="):
        HierarchicalSpec(inter=inter)


def test_spec_equality_follows_levels():
    a = HierarchicalSpec.of_levels("GSS", "SS")
    levels = a.levels
    assert a == HierarchicalSpec(levels=levels)
    assert a != HierarchicalSpec.of_levels("GSS", "GSS")


# ---------------------------------------------------------------------------
# api-level stack syntax
# ---------------------------------------------------------------------------


def test_api_accepts_joined_stacks_and_omitted_intra():
    wl = uniform_workload(300, seed=4)
    cl = homogeneous(2, 8, sockets_per_node=2)
    a = run_hierarchical(wl, cl, "GSS+FAC2+STATIC", approach="mpi+mpi", ppn=8)
    b = run_hierarchical(wl, cl, "GSS", "FAC2+STATIC", approach="mpi+mpi", ppn=8)
    assert a.spec_label == b.spec_label == "GSS+FAC2+STATIC"
    assert a.parallel_time == b.parallel_time  # same stack, same simulation
    verify_schedule(a.subchunks, wl.n)


def test_api_rejects_malformed_stack():
    wl = uniform_workload(50, seed=4)
    with pytest.raises(ValueError, match="malformed"):
        run_hierarchical(wl, homogeneous(1, 4), "GSS+", approach="mpi+mpi", ppn=4)


def test_three_level_run_exposes_level_chunks():
    wl = uniform_workload(400, seed=5)
    result = run_hierarchical(
        wl, homogeneous(2, 8, sockets_per_node=2),
        "GSS+FAC2+STATIC", approach="mpi+mpi", ppn=8,
    )
    assert len(result.level_chunks) == 3
    assert result.level_chunks[0] is result.chunks
    assert result.level_chunks[-1] is result.subchunks
    # socket tier sits strictly between the node and core tiers
    assert 0 < len(result.level_chunks[1]) <= len(result.level_chunks[2])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_techniques_stack(capsys):
    code = cli_main([
        "run", "--techniques", "GSS+FAC2+STATIC", "--sockets", "2",
        "--nodes", "2", "--ppn", "8", "--scale", "tiny",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "GSS+FAC2+STATIC" in out


def test_cli_techniques_overrides_inter_intra(capsys):
    code = cli_main([
        "run", "--techniques", "TSS+SS", "--inter", "GSS",
        "--intra", "STATIC", "--nodes", "2", "--ppn", "4", "--scale", "tiny",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "TSS+SS" in out


# ---------------------------------------------------------------------------
# grid sweep
# ---------------------------------------------------------------------------


def test_socket_variant_figure_sweeps_three_level_stacks():
    from repro.experiments.figures import run_figure_spec, socket_variant

    spec = socket_variant("fig5a", sockets_per_node=2)
    assert spec.inter == "GSS"
    assert spec.intras == (
        "FAC2+STATIC", "FAC2+SS", "FAC2+GSS", "FAC2+TSS", "FAC2+FAC2"
    )
    small = spec.__class__(
        figure_id=spec.figure_id,
        paper_ref=spec.paper_ref,
        app=spec.app,
        inter=spec.inter,
        intras=spec.intras[:2],
        node_counts=(2,),
        ppn=4,
        sockets_per_node=2,
    )
    result = run_figure_spec(small, scale="tiny")
    assert len(result.cells) == 4  # 2 intra stacks x 2 approaches x 1 node count
    assert {c.label for c in result.cells} == {
        "GSS+FAC2+STATIC", "GSS+FAC2+SS"
    }
    assert "2 sockets/node" in result.to_text(shape_checks=False)


def test_grid_sweep_mixes_two_and_three_level_cells():
    runner = GridRunner(
        workload=uniform_workload(300, seed=6),
        ppn=8,
        node_counts=(1, 2),
        cluster_factory=lambda n: minihpc(n, 8, sockets_per_node=2),
    )
    cells = runner.sweep(
        "GSS",
        ["STATIC", "FAC2+STATIC"],
        [("mpi+mpi", lambda intra: True)],
    )
    assert len(cells) == 4
    labels = {cell.label for cell in cells}
    assert labels == {"GSS+STATIC", "GSS+FAC2+STATIC"}
    assert all(cell.time > 0 for cell in cells)
