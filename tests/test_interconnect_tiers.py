"""Property tests for the locality-tier distance model.

For random depth-1..4 topologies (nodes x sockets x NUMA domains x
cores) and random non-negative penalty knobs, the
:class:`repro.cluster.interconnect.Interconnect` must always be

(a) **symmetric** — ``distance(a, b) == distance(b, a)``;
(b) **tier-monotone** — for identical payloads, cost never decreases
    with distance: same-NUMA <= same-socket <= same-node <= network;
(c) **placement-consistent** — the tier agrees with the placement's
    own (node, socket, numa) coordinates for every rank pair.

Plus unit coverage for the zero-default equivalence (penalties off =>
the seed's two-class model) and the shared-window home/penalty wiring.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costs import MpiCosts, NUMA_PENALTY_COSTS
from repro.cluster.interconnect import Interconnect, Tier
from repro.cluster.machine import homogeneous
from repro.cluster.topology import block_placement

#: (nodes, sockets_per_node, numa_per_socket, cores_per_numa)
topologies = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.sampled_from([1, 2, 4]),
    st.sampled_from([1, 2]),
    st.integers(min_value=1, max_value=2),
)

penalties = st.tuples(
    st.floats(min_value=0.0, max_value=5e-6, allow_nan=False),
    st.floats(min_value=0.0, max_value=5e-6, allow_nan=False),
    st.floats(min_value=0.0, max_value=5e-6, allow_nan=False),
)


def _interconnect(topo, knobs=(0.0, 0.0, 0.0)):
    nodes, sockets, numa, cpn = topo
    cluster = homogeneous(
        nodes, sockets * numa * cpn, sockets_per_node=sockets,
        numa_per_socket=numa,
    )
    costs = MpiCosts(
        remote_numa_load_penalty=knobs[0],
        remote_numa_atomic_penalty=knobs[1],
        cross_socket_penalty=knobs[2],
    )
    ppn = cluster.nodes[0].cores
    return Interconnect(cluster, costs, block_placement(cluster, ppn))


@given(topo=topologies)
@settings(max_examples=60, deadline=None)
def test_distance_is_symmetric(topo):
    net = _interconnect(topo)
    size = net.placement.size
    for a in range(size):
        for b in range(size):
            assert net.distance(a, b) == net.distance(b, a)


@given(topo=topologies)
@settings(max_examples=60, deadline=None)
def test_distance_is_placement_consistent(topo):
    """The tier agrees with the placement's machine coordinates."""
    net = _interconnect(topo)
    placement = net.placement
    for a in range(placement.size):
        for b in range(placement.size):
            tier = net.distance(a, b)
            if placement.node_of(a) != placement.node_of(b):
                assert tier is Tier.NETWORK
            elif placement.socket_of(a) != placement.socket_of(b):
                assert tier is Tier.SAME_NODE
            elif placement.numa_of(a) != placement.numa_of(b):
                assert tier is Tier.SAME_SOCKET
            else:
                assert tier is Tier.SAME_NUMA
            if a == b:
                assert tier is Tier.SAME_NUMA


@given(topo=topologies, knobs=penalties)
@settings(max_examples=80, deadline=None)
def test_tier_costs_are_monotone_in_distance(topo, knobs):
    """Identical payloads never get cheaper with distance.

    For one representative rank pair per tier the topology exposes,
    message/atomic/transfer costs are non-decreasing in the tier order
    SAME_NUMA <= SAME_SOCKET <= SAME_NODE <= NETWORK, for any
    non-negative penalty knobs.
    """
    net = _interconnect(topo, knobs)
    size = net.placement.size
    representative = {}
    for a in range(size):
        for b in range(size):
            representative.setdefault(net.distance(a, b), (a, b))
    present = sorted(representative)
    for nearer, farther in zip(present, present[1:]):
        pair_n, pair_f = representative[nearer], representative[farther]
        assert net.message_time(*pair_n, 64) <= net.message_time(*pair_f, 64)
        assert net.atomic_time(*pair_n) <= net.atomic_time(*pair_f)
        assert net.transfer_time(*pair_n, 1024) <= net.transfer_time(*pair_f, 1024)
    # the penalty tables themselves are monotone ladders
    for t1, t2 in zip(Tier, list(Tier)[1:]):
        assert net.costs.tier_load_penalty(t1) <= net.costs.tier_load_penalty(t2)
        assert net.costs.tier_atomic_penalty(t1) <= net.costs.tier_atomic_penalty(t2)


@given(topo=topologies)
@settings(max_examples=40, deadline=None)
def test_zero_penalties_collapse_to_two_classes(topo):
    """With the default (zero) knobs every same-node pair prices alike,
    whatever NUMA/socket boundary it straddles — the seed's model."""
    net = _interconnect(topo)
    size = net.placement.size
    by_class = {}
    for a in range(size):
        for b in range(size):
            remote = net.distance(a, b) is Tier.NETWORK
            cost = (
                net.message_time(a, b, 64),
                net.atomic_time(a, b),
                net.transfer_time(a, b, 256),
            )
            by_class.setdefault(remote, set()).add(cost)
    for costs in by_class.values():
        assert len(costs) == 1


# ---------------------------------------------------------------------------
# shared-window homes (the queue-placement story)
# ---------------------------------------------------------------------------


def _world(cluster, costs=None):
    from repro.cluster.costs import CostModel
    from repro.sim.engine import Simulator
    from repro.smpi.world import MpiWorld

    return MpiWorld(
        Simulator(seed=0), cluster, costs=costs or CostModel()
    )


def test_shared_window_homes_follow_tier_groups():
    cluster = homogeneous(1, 8, sockets_per_node=2, numa_per_socket=2)
    world = _world(cluster)
    node_win = world.create_shared_window(0, {})
    socket_win = world.create_shared_window((0, 1), {})
    numa_win = world.create_shared_window((0, 1, 1), {})
    free_win = world.create_shared_window("scratch", {})
    assert node_win.home_rank == 0
    assert socket_win.home_rank == 4  # first rank of socket 1
    assert numa_win.home_rank == 6  # first rank of (socket 1, numa 1)
    assert free_win.home_rank is None


def test_shared_window_penalties_price_the_distance():
    cluster = homogeneous(1, 8, sockets_per_node=2, numa_per_socket=2)
    world = _world(cluster, NUMA_PENALTY_COSTS)
    mpi = NUMA_PENALTY_COSTS.mpi
    win = world.create_shared_window(0, {})  # home: rank 0 (socket 0, numa 0)
    # rank 1 shares rank 0's NUMA domain: free
    assert win._penalty_of(world.contexts[1]) == (0.0, 0.0)
    # rank 2 sits in numa 1 of socket 0: remote-NUMA penalties
    assert win._penalty_of(world.contexts[2]) == (
        mpi.remote_numa_load_penalty,
        mpi.remote_numa_atomic_penalty,
    )
    # rank 4 sits in socket 1: remote-NUMA + cross-socket
    assert win._penalty_of(world.contexts[4]) == (
        mpi.remote_numa_load_penalty + mpi.cross_socket_penalty,
        mpi.remote_numa_atomic_penalty + mpi.cross_socket_penalty,
    )


def test_numa_penalty_preset_is_nonzero_and_documented():
    mpi = NUMA_PENALTY_COSTS.mpi
    assert mpi.remote_numa_load_penalty > 0
    assert mpi.remote_numa_atomic_penalty > 0
    assert mpi.cross_socket_penalty > 0
    # the default model stays distance-blind
    assert MpiCosts().tier_atomic_penalty(Tier.NETWORK) == 0.0


def test_rma_atomics_pay_the_tier_penalty():
    """Same-node RMA atomics get dearer across sockets under the preset."""
    from repro.sim.engine import drain

    cluster = homogeneous(1, 8, sockets_per_node=2, numa_per_socket=2)

    def atomic_cost(costs, origin_rank):
        world = _world(cluster, costs)
        window = world.create_window(0, {"c": 0})
        done = {}

        def main(ctx):
            if ctx.rank == origin_rank:
                t0 = ctx.sim.now
                yield from window.fetch_and_op(ctx, "c", 1)
                done["cost"] = ctx.sim.now - t0
            return
            yield  # pragma: no cover

        drain(world.sim, world.launch(main))
        return done["cost"]

    near = atomic_cost(NUMA_PENALTY_COSTS, 1)  # same NUMA as host rank 0
    far = atomic_cost(NUMA_PENALTY_COSTS, 4)  # other socket
    assert far == pytest.approx(
        near
        + NUMA_PENALTY_COSTS.mpi.remote_numa_atomic_penalty
        + NUMA_PENALTY_COSTS.mpi.cross_socket_penalty
    )
