"""Tests for metrics (repro.core.metrics) and traces (repro.core.trace)."""

import pytest

from repro.core.metrics import (
    LoadMetrics,
    WorkerStats,
    compute_metrics,
    parallel_efficiency,
    speedup_series,
)
from repro.core.trace import COMPUTE, IDLE, OBTAIN, SYNC, Interval, Trace


def make_worker(name="w0", node=0, finish=10.0, compute=8.0, overhead=1.0,
                idle=1.0, chunks=4, iterations=100):
    return WorkerStats(
        name=name, node=node, finish_time=finish, compute_time=compute,
        overhead_time=overhead, idle_time=idle, n_chunks=chunks,
        n_iterations=iterations,
    )


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def test_empty_metrics_are_zero():
    m = compute_metrics([])
    assert m.parallel_time == 0.0
    assert m.cov_finish == 0.0
    assert m.total_chunks == 0


def test_single_worker_metrics():
    m = compute_metrics([make_worker()])
    assert m.parallel_time == 10.0
    assert m.cov_finish == 0.0
    assert m.imbalance == 1.0
    assert m.total_chunks == 4


def test_parallel_time_is_max_finish():
    workers = [make_worker(finish=5.0), make_worker(name="w1", finish=12.0)]
    assert compute_metrics(workers).parallel_time == 12.0


def test_imbalance_is_max_over_mean_compute():
    workers = [
        make_worker(compute=10.0),
        make_worker(name="w1", compute=2.0),
        make_worker(name="w2", compute=6.0),
    ]
    m = compute_metrics(workers)
    assert m.imbalance == pytest.approx(10.0 / 6.0)


def test_perfectly_balanced_execution():
    workers = [make_worker(name=f"w{i}") for i in range(8)]
    m = compute_metrics(workers)
    assert m.cov_finish == 0.0
    assert m.imbalance == 1.0


def test_fractions():
    workers = [make_worker(finish=10.0, compute=7.0, overhead=2.0, idle=1.0)]
    m = compute_metrics(workers)
    assert m.idle_fraction == pytest.approx(0.1)
    assert m.overhead_fraction == pytest.approx(0.2)


def test_summary_renders():
    text = compute_metrics([make_worker()]).summary()
    assert "T_par" in text and "cov" in text and "chunks" in text


def test_speedup_series_and_efficiency():
    times = {2: 10.0, 4: 5.0, 8: 3.0}
    speedups = speedup_series(times)
    assert speedups[2] == 1.0
    assert speedups[4] == 2.0
    eff = parallel_efficiency(times)
    assert eff[2] == pytest.approx(1.0)
    assert eff[4] == pytest.approx(1.0)   # perfect halving
    assert eff[8] == pytest.approx(10.0 / 3.0 * 2 / 8)


def test_speedup_series_empty():
    assert speedup_series({}) == {}
    assert parallel_efficiency({}) == {}


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------


def test_interval_validation():
    with pytest.raises(ValueError):
        Interval("w", 2.0, 1.0, COMPUTE)


def test_trace_totals_per_kind_and_worker():
    trace = Trace()
    trace.add("a", 0.0, 2.0, COMPUTE)
    trace.add("a", 2.0, 3.0, SYNC)
    trace.add("b", 0.0, 1.5, COMPUTE)
    assert trace.total(COMPUTE) == pytest.approx(3.5)
    assert trace.total(COMPUTE, "a") == pytest.approx(2.0)
    assert trace.total(SYNC, "b") == 0.0
    assert trace.sync_time_per_worker() == {"a": pytest.approx(1.0), "b": 0.0}


def test_trace_zero_length_intervals_dropped():
    trace = Trace()
    trace.add("a", 1.0, 1.0, COMPUTE)
    assert trace.intervals == []


def test_trace_span_and_workers():
    trace = Trace()
    trace.add("x", 1.0, 2.0, COMPUTE)
    trace.add("y", 0.5, 3.0, OBTAIN)
    assert trace.span() == (0.5, 3.0)
    assert trace.workers() == ["x", "y"]


def test_empty_trace_renders():
    assert Trace().render_gantt() == "(empty trace)"


def test_gantt_glyphs_reflect_dominant_activity():
    trace = Trace()
    trace.add("w", 0.0, 8.0, COMPUTE)
    trace.add("w", 8.0, 10.0, SYNC)
    chart = trace.render_gantt(width=10, legend=False)
    row = chart.splitlines()[1]
    cells = row.split("|")[1]
    assert cells.count("#") == 8
    assert cells.count("=") == 2


def test_gantt_multiple_workers_aligned():
    trace = Trace()
    trace.add("w0", 0.0, 4.0, COMPUTE)
    trace.add("longname", 0.0, 2.0, IDLE)
    chart = trace.render_gantt(width=20)
    lines = chart.splitlines()
    rows = [l for l in lines if "|" in l]
    assert len(rows) == 2
    # aligned pipes
    assert rows[0].index("|") == rows[1].index("|")


def test_gantt_legend_present_by_default():
    trace = Trace()
    trace.add("w", 0.0, 1.0, COMPUTE)
    assert "legend" in trace.render_gantt()


def test_trace_marks():
    trace = Trace()
    trace.mark(1.0, "loop-start")
    assert trace.marks == [(1.0, "loop-start")]
