"""Behavioural tests: the paper's qualitative findings at test scale.

These encode Section 5's observations as assertions:

1. ``X+STATIC`` — MPI+MPI clearly beats MPI+OpenMP on imbalanced
   workloads (no implicit barrier; Figs 5-7).
2. ``X+SS``    — MPI+MPI clearly *loses* (lock-polling contention on
   the local queue; all figures).
3. ``STATIC+Y``, Y not SS — the two approaches tie (Fig 4).
4. Strong scaling: more nodes, less time.
5. Figures 2/3: the OpenMP trace shows implicit-sync idle time, the
   MPI+MPI trace does not, and t'_end < t_end.
"""

import pytest

from repro import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.core.trace import SYNC
from repro.workloads import (
    constant_workload,
    mandelbrot_workload,
    uniform_workload,
)

CLUSTER = homogeneous(2, 16)
PPN = 16

# The calibrated figure structure (see repro.experiments.workloads):
# the lower half-plane region makes per-iteration cost *increase* along
# the loop, so the dense rows land in the smaller later chunks of the
# decreasing-chunk techniques — the structure under which the paper's
# X+STATIC advantage is visible.  Test scale: 128x128.
IMBALANCED = mandelbrot_workload(
    128, 128, max_iter=512, iter_time=1.0e-6, base_time=0.5e-6,
    region=(-2.5, 1.0, -1.25, 0.0),
)
# A mildly varying workload (PSIA-like), fine-grained enough that
# per-sub-chunk scheduling costs are visible.
MILD = uniform_workload(16384, low=40e-6, high=60e-6, seed=42)


def run(workload, approach, inter, intra, cluster=CLUSTER, **kw):
    kw.setdefault("collect_chunks", False)
    return run_hierarchical(
        workload, cluster, inter=inter, intra=intra,
        approach=approach, ppn=PPN, seed=0, **kw,
    )


# ---------------------------------------------------------------------------
# finding 1: X+STATIC — MPI+MPI wins on imbalanced loads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("inter", ["GSS", "TSS", "FAC2"])
def test_x_static_mpi_mpi_beats_mpi_openmp_on_imbalance(inter):
    hybrid = run(IMBALANCED, "mpi+openmp", inter, "STATIC")
    mpimpi = run(IMBALANCED, "mpi+mpi", inter, "STATIC")
    # the barrier-free local queue should win clearly (>=15%)
    assert mpimpi.parallel_time < 0.85 * hybrid.parallel_time, (
        f"{inter}+STATIC: mpi+mpi={mpimpi.parallel_time:.4f}s "
        f"vs mpi+openmp={hybrid.parallel_time:.4f}s"
    )


def test_x_static_gap_shrinks_for_mild_imbalance():
    """PSIA analogue: the GSS+STATIC gap is small for mild imbalance."""
    hybrid = run(MILD, "mpi+openmp", "GSS", "STATIC")
    mpimpi = run(MILD, "mpi+mpi", "GSS", "STATIC")
    ratio_mild = hybrid.parallel_time / mpimpi.parallel_time
    hybrid_i = run(IMBALANCED, "mpi+openmp", "GSS", "STATIC")
    mpimpi_i = run(IMBALANCED, "mpi+mpi", "GSS", "STATIC")
    ratio_imb = hybrid_i.parallel_time / mpimpi_i.parallel_time
    assert ratio_imb > ratio_mild


def test_openmp_idle_time_explains_the_static_gap():
    hybrid = run(IMBALANCED, "mpi+openmp", "GSS", "STATIC")
    mpimpi = run(IMBALANCED, "mpi+mpi", "GSS", "STATIC")
    assert hybrid.metrics.idle_fraction > mpimpi.metrics.idle_fraction + 0.05


# ---------------------------------------------------------------------------
# finding 2: X+SS — MPI+MPI loses to lock polling
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("inter", ["STATIC", "GSS", "FAC2"])
def test_x_ss_mpi_mpi_loses(inter):
    hybrid = run(MILD, "mpi+openmp", inter, "SS")
    mpimpi = run(MILD, "mpi+mpi", inter, "SS")
    assert mpimpi.parallel_time > 1.10 * hybrid.parallel_time, (
        f"{inter}+SS: mpi+mpi={mpimpi.parallel_time:.4f}s "
        f"vs mpi+openmp={hybrid.parallel_time:.4f}s"
    )


def test_ss_penalty_driven_by_lock_contention_counters():
    result = run(MILD, "mpi+mpi", "GSS", "SS")
    stats = result.counters["lock_stats"]
    total_acq = sum(s["acquisitions"] for s in stats.values())
    # every iteration needs (at least) one locked queue access
    assert total_acq >= MILD.n
    assert result.counters["total_poll_wait"] > 0.0
    mean_attempts = sum(s["attempts"] for s in stats.values()) / total_acq
    assert mean_attempts > 1.01  # real retries happened


def test_ss_penalty_vanishes_with_coarser_intra_technique():
    ss = run(MILD, "mpi+mpi", "GSS", "SS")
    fac2 = run(MILD, "mpi+mpi", "GSS", "FAC2")
    assert fac2.parallel_time < ss.parallel_time


# ---------------------------------------------------------------------------
# finding 3: STATIC+Y parity (Y != SS)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("intra", ["STATIC", "GSS"])
def test_static_inter_parity_between_approaches(intra):
    """Fig 4: with one scheduling round at the inter level, both
    implementations perform the same (within 10%) for Y != SS."""
    hybrid = run(MILD, "mpi+openmp", "STATIC", intra)
    mpimpi = run(MILD, "mpi+mpi", "STATIC", intra)
    ratio = mpimpi.parallel_time / hybrid.parallel_time
    assert 0.9 < ratio < 1.1, f"STATIC+{intra}: ratio={ratio:.3f}"


# ---------------------------------------------------------------------------
# finding 4: strong scaling
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", ["mpi+mpi", "mpi+openmp"])
def test_more_nodes_less_time(approach):
    t = {}
    for n_nodes in (1, 2, 4):
        cluster = homogeneous(n_nodes, 16)
        t[n_nodes] = run(MILD, approach, "GSS", "GSS", cluster=cluster).parallel_time
    assert t[1] > t[2] > t[4]
    # efficiency should be decent on this coarse workload
    assert t[1] / t[4] > 2.5


# ---------------------------------------------------------------------------
# finding 5: figures 2/3 — implicit synchronisation traces
# ---------------------------------------------------------------------------


def test_fig2_fig3_sync_traces_and_tend():
    hybrid = run(
        IMBALANCED, "mpi+openmp", "GSS", "STATIC",
        collect_trace=True, collect_chunks=True,
    )
    mpimpi = run(
        IMBALANCED, "mpi+mpi", "GSS", "STATIC",
        collect_trace=True, collect_chunks=True,
    )
    hybrid_sync = sum(hybrid.trace.sync_time_per_worker().values())
    mpimpi_sync = sum(mpimpi.trace.sync_time_per_worker().values())
    assert hybrid_sync > 0.0, "Fig 2: OpenMP threads must show implicit sync"
    assert mpimpi_sync == 0.0, "Fig 3: MPI+MPI must have no implicit sync"
    # t'_end < t_end (Fig 3 vs Fig 2)
    assert mpimpi.parallel_time < hybrid.parallel_time
    # Gantt rendering works and shows sync glyphs for the hybrid
    chart = hybrid.trace.render_gantt(width=60)
    assert "=" in chart
    assert "#" in chart


def test_master_worker_slower_than_distributed_at_scale():
    """The master bottleneck (paper Sec. 2): with many workers and SS,
    centralised assignment falls behind the RMA-based scheme."""
    wl = constant_workload(2048, cost=0.2e-3)
    cluster = homogeneous(4, 16)
    mw = run(wl, "master-worker", "SS", "SS", cluster=cluster)
    flat = run(wl, "flat-mpi", "SS", "SS", cluster=cluster)
    assert flat.parallel_time < mw.parallel_time


def test_hierarchy_beats_flat_for_fine_grained_chunks():
    """What the local queue buys (ablation A-2): with SS at the global
    level, every chunk request crosses the network in the flat model."""
    wl = constant_workload(8192, cost=0.05e-3)
    cluster = homogeneous(16, 16)  # 256 workers hammer the single queue
    flat = run(wl, "flat-mpi", "SS", "SS", cluster=cluster)
    hier = run(wl, "mpi+mpi", "FAC2", "FAC2", cluster=cluster)
    # flat SS: one remote atomic per iteration, serialised at the host's
    # atomic unit (~N * rma_atomic is a hard floor); the hierarchy needs
    # only ~a hundred global fetches
    assert hier.parallel_time < 0.7 * flat.parallel_time
    assert hier.counters["global_atomics"] < flat.counters["global_atomics"] / 10
