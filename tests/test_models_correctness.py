"""Correctness invariants of every execution model.

The non-negotiable property: every iteration executes exactly once, for
every (approach x inter x intra) combination, on heterogeneous-enough
workloads and cluster shapes.
"""

import pytest

from repro import run_hierarchical
from repro.cluster.machine import heterogeneous, homogeneous
from repro.cluster.noise import NO_NOISE
from repro.core.chunking import verify_schedule
from repro.core.hierarchy import HierarchicalSpec
from repro.core.techniques import PAPER_TECHNIQUES
from repro.models import MpiOpenMpModel
from repro.workloads import (
    bimodal_workload,
    constant_workload,
    ramp_workload,
    uniform_workload,
)

APPROACHES = ("mpi+mpi", "mpi+openmp", "flat-mpi", "master-worker")
CLUSTER = homogeneous(2, 4)


def run(workload, approach, inter, intra, cluster=CLUSTER, ppn=4, **kw):
    return run_hierarchical(
        workload,
        cluster,
        inter=inter,
        intra=intra,
        approach=approach,
        ppn=ppn,
        seed=0,
        **kw,
    )


# ---------------------------------------------------------------------------
# exhaustive coverage grid over the paper's techniques
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
@pytest.mark.parametrize("inter", PAPER_TECHNIQUES)
def test_all_inter_techniques_cover_iteration_space(approach, inter):
    wl = uniform_workload(500, seed=2)
    result = run(wl, approach, inter, "GSS")
    verify_schedule(result.subchunks, wl.n)
    assert result.parallel_time > 0


@pytest.mark.parametrize("approach", ("mpi+mpi", "mpi+openmp"))
@pytest.mark.parametrize("intra", PAPER_TECHNIQUES)
def test_all_intra_techniques_cover_iteration_space(approach, intra):
    wl = uniform_workload(500, seed=3)
    result = run(wl, approach, "GSS", intra)
    verify_schedule(result.subchunks, wl.n)


@pytest.mark.parametrize("approach", APPROACHES)
def test_single_iteration_loop(approach):
    wl = constant_workload(1)
    result = run(wl, approach, "GSS", "GSS")
    assert result.parallel_time > 0
    verify_schedule(result.subchunks, 1)


@pytest.mark.parametrize("approach", APPROACHES)
def test_fewer_iterations_than_workers(approach):
    wl = constant_workload(3)
    result = run(wl, approach, "FAC2", "SS")
    verify_schedule(result.subchunks, 3)


@pytest.mark.parametrize("approach", ("mpi+mpi", "mpi+openmp"))
def test_single_node_cluster(approach):
    wl = uniform_workload(200, seed=4)
    result = run(wl, approach, "GSS", "FAC2", cluster=homogeneous(1, 4))
    verify_schedule(result.subchunks, wl.n)
    assert result.n_nodes == 1


@pytest.mark.parametrize("approach", ("mpi+mpi", "flat-mpi"))
def test_heterogeneous_cluster_coverage(approach):
    cluster = heterogeneous([4, 4], core_speeds=[1.0, 2.0])
    wl = bimodal_workload(400, seed=5)
    result = run(wl, approach, "GSS", "GSS", cluster=cluster)
    verify_schedule(result.subchunks, wl.n)


def test_adaptive_inter_techniques_cover():
    for inter in ("AWF-B", "AWF-C", "AF", "WF", "RND"):
        wl = uniform_workload(300, seed=6)
        result = run(wl, "mpi+mpi", inter, "SS")
        verify_schedule(result.subchunks, wl.n)


def test_adaptive_intra_techniques_cover_mpi_mpi():
    for intra in ("AWF-B", "AF", "WF", "TFSS", "mFSC", "RND"):
        wl = uniform_workload(300, seed=7)
        result = run(wl, "mpi+mpi", "GSS", intra)
        verify_schedule(result.subchunks, wl.n)


def test_ramp_workload_coverage_all_models():
    wl = ramp_workload(256)
    for approach in APPROACHES:
        result = run(wl, approach, "TSS", "STATIC")
        verify_schedule(result.subchunks, wl.n)


# ---------------------------------------------------------------------------
# determinism & bookkeeping
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
def test_runs_are_deterministic_given_seed(approach):
    wl = bimodal_workload(300, seed=8)
    a = run(wl, approach, "FAC2", "GSS")
    b = run(wl, approach, "FAC2", "GSS")
    assert a.parallel_time == b.parallel_time
    assert a.n_events == b.n_events


def test_different_seeds_differ():
    wl = bimodal_workload(300, seed=8)
    a = run_hierarchical(wl, CLUSTER, "FAC2", "GSS", approach="mpi+mpi", ppn=4, seed=1)
    b = run_hierarchical(wl, CLUSTER, "FAC2", "GSS", approach="mpi+mpi", ppn=4, seed=2)
    assert a.parallel_time != b.parallel_time


def test_result_metadata_complete():
    wl = uniform_workload(100, seed=9)
    result = run(wl, "mpi+mpi", "GSS", "SS")
    assert result.approach == "mpi+mpi"
    assert result.spec_label == "GSS+SS"
    assert result.workload == wl.name
    assert result.n_nodes == 2
    assert result.ppn == 4
    assert result.workers == 8
    assert result.n_events > 0
    assert "lock_acquisitions" in result.counters


def test_worker_stats_account_all_iterations():
    wl = uniform_workload(400, seed=10)
    result = run(wl, "mpi+mpi", "GSS", "FAC2")
    assert sum(w.n_iterations for w in result.metrics.workers) == wl.n
    assert all(w.finish_time <= result.parallel_time for w in result.metrics.workers)


def test_mpi_openmp_worker_count_is_threads_not_ranks():
    wl = uniform_workload(200, seed=11)
    result = run(wl, "mpi+openmp", "GSS", "SS")
    # 2 nodes x 4 threads = 8 workers even though there are only 2 ranks
    assert result.workers == 8


def test_collect_chunks_false_skips_lists_but_verifies_totals():
    wl = uniform_workload(200, seed=12)
    result = run(wl, "mpi+mpi", "GSS", "SS", collect_chunks=False)
    assert result.subchunks == []
    assert result.parallel_time > 0


def test_inter_chunks_recorded_per_node():
    wl = uniform_workload(300, seed=13)
    result = run(wl, "mpi+mpi", "GSS", "STATIC")
    assert result.chunks, "inter-level chunks must be recorded"
    assert {c.pe for c in result.chunks} <= {0, 1}
    assert sum(c.size for c in result.chunks) == wl.n


def test_static_inter_gives_one_chunk_per_node():
    """Paper: STATIC at the inter-node level = one scheduling round."""
    wl = uniform_workload(300, seed=14)
    for approach in ("mpi+mpi", "mpi+openmp"):
        result = run(wl, approach, "STATIC", "GSS")
        assert len(result.chunks) == 2  # one per node
        assert sorted(c.pe for c in result.chunks) == [0, 1]
        sizes = sorted(c.size for c in result.chunks)
        assert sizes == [150, 150]


# ---------------------------------------------------------------------------
# model-specific constraints
# ---------------------------------------------------------------------------


def test_intel_runtime_rejects_tss_intra():
    """The paper could not run X+TSS / X+FAC2 with MPI+OpenMP on the
    Intel stack — our model reproduces that constraint when asked."""
    from repro.sim import ProcessFailure
    from repro.somp import UnsupportedScheduleError

    wl = uniform_workload(100, seed=15)
    model = MpiOpenMpModel(intel_runtime=True)
    spec = HierarchicalSpec.of("GSS", "TSS")
    with pytest.raises((UnsupportedScheduleError, ProcessFailure)):
        model.run(workload=wl, cluster=CLUSTER, spec=spec, ppn=4)


def test_default_runtime_accepts_tss_intra():
    wl = uniform_workload(100, seed=16)
    result = run(wl, "mpi+openmp", "GSS", "TSS")
    verify_schedule(result.subchunks, wl.n)


def test_master_worker_needs_two_ranks():
    from repro.models import MasterWorkerModel

    wl = constant_workload(10)
    model = MasterWorkerModel()
    with pytest.raises(ValueError, match="at least 2 ranks"):
        model.run(
            workload=wl,
            cluster=homogeneous(1, 1),
            spec=HierarchicalSpec.of("GSS", "SS"),
            ppn=1,
        )


def test_master_worker_master_executes_nothing():
    wl = uniform_workload(200, seed=17)
    result = run(wl, "master-worker", "GSS", "SS")
    master = next(w for w in result.metrics.workers if "master" in w.name)
    assert master.n_iterations == 0
    assert master.compute_time == 0.0


def test_unknown_approach_rejected():
    wl = constant_workload(10)
    with pytest.raises(ValueError, match="unknown approach"):
        run(wl, "mpi+upc", "GSS", "SS")


def test_no_noise_mpi_openmp_static_static_is_analytic():
    """With all noise off, STATIC+STATIC on a constant workload must
    give a perfectly balanced execution: parallel time ~= serial / P."""
    wl = constant_workload(512, cost=1e-3)
    result = run_hierarchical(
        wl,
        homogeneous(2, 4),
        "STATIC",
        "STATIC",
        approach="mpi+openmp",
        ppn=4,
        seed=0,
        noise=NO_NOISE,
    )
    ideal = wl.total_cost / 8
    assert result.parallel_time == pytest.approx(ideal, rel=1e-2)
