"""Heterogeneity & adaptivity: WF/AWF/AF on non-uniform clusters.

The weighted/adaptive techniques exist for heterogeneous systems
(paper Sec. 2 cites WF/AWF for exactly this).  These tests pin down the
classic behaviours: GSS's giant-first-chunk pathology on slow PEs,
factoring's robustness, weighting reaching the speed-proportional work
split, and runtime adaptation recovering it without ground truth.
"""

import pytest

from repro import run_hierarchical
from repro.cluster.machine import heterogeneous
from repro.cluster.noise import NO_NOISE
from repro.core.hierarchy import HierarchicalSpec, LevelSpec
from repro.models import FlatMpiModel
from repro.workloads import constant_workload

#: node 1's cores are 3x faster than node 0's
CLUSTER = heterogeneous([8, 8], core_speeds=[1.0, 3.0])
#: total relative speed = 8*1 + 8*3 = 32 core-equivalents
IDEAL_SPEED = 32.0


def run_flat(workload, technique, weights=None, seed=0):
    spec = HierarchicalSpec(
        inter=LevelSpec.of(technique, weights=weights),
        intra=LevelSpec.of("SS"),
    )
    return FlatMpiModel().run(
        workload=workload, cluster=CLUSTER, spec=spec, ppn=8, seed=seed,
        noise=NO_NOISE,
    )


def node_share(result, node):
    total = sum(w.n_iterations for w in result.metrics.workers)
    mine = sum(w.n_iterations for w in result.metrics.workers if w.node == node)
    return mine / total


def test_gss_giant_first_chunk_pathology():
    """GSS hands out ceil(N/P) first; when a slow PE draws it, that one
    chunk becomes the critical path — the known GSS weakness on
    heterogeneous systems that motivated weighted factoring."""
    wl = constant_workload(4096, cost=1e-3)
    result = run_flat(wl, "GSS")
    ideal = wl.total_cost / IDEAL_SPEED
    first_chunk_on_slow = (4096 / 16) * 1e-3 / 1.0
    assert result.parallel_time >= first_chunk_on_slow * 0.99
    assert result.parallel_time > 1.5 * ideal
    assert result.metrics.cov_finish > 0.2  # badly unbalanced finishes


def test_fac2_near_ideal_on_heterogeneous():
    """Factoring's halving batches leave enough tail work for the fast
    PEs to absorb the imbalance — near-ideal without any weights."""
    wl = constant_workload(4096, cost=1e-3)
    result = run_flat(wl, "FAC2")
    ideal = wl.total_cost / IDEAL_SPEED
    assert result.parallel_time < 1.05 * ideal
    # work split approaches the speed ratio 24:8
    assert node_share(result, 1) == pytest.approx(0.75, abs=0.07)


def test_wf_matches_or_beats_fac2():
    wl = constant_workload(4096, cost=1e-3)
    weights = [1.0] * 8 + [3.0] * 8  # ground-truth speeds
    wf = run_flat(wl, "WF", weights=weights)
    fac2 = run_flat(wl, "FAC2")
    assert wf.parallel_time <= fac2.parallel_time * 1.01
    assert node_share(wf, 1) > 0.65


def test_awf_b_learns_speeds_without_being_told():
    wl = constant_workload(8192, cost=1e-3)
    awf = run_flat(wl, "AWF-B")
    fac2 = run_flat(wl, "FAC2")
    assert awf.parallel_time <= fac2.parallel_time * 1.05
    assert node_share(awf, 1) > 0.6


def test_af_adapts_per_pe_rates():
    wl = constant_workload(8192, cost=1e-3)
    af = run_flat(wl, "AF")
    assert node_share(af, 1) > 0.6


def test_awf_c_adapts_at_least_as_fast_as_awf_b():
    """Variant C refreshes weights per chunk, B per batch."""
    wl = constant_workload(2048, cost=1e-3)
    c = run_flat(wl, "AWF-C")
    b = run_flat(wl, "AWF-B")
    assert node_share(c, 1) >= node_share(b, 1) - 0.05


def test_mpi_mpi_hierarchical_on_heterogeneous_nodes():
    """FAC2 over node groups + FAC2 inside reaches a near-speed-
    proportional split without worker migration (contrast with the
    processor-group migration scheme of [12], paper Sec. 2)."""
    wl = constant_workload(4096, cost=1e-3)
    result = run_hierarchical(
        wl, CLUSTER, inter="FAC2", intra="FAC2", approach="mpi+mpi",
        ppn=8, seed=0, noise=NO_NOISE,
    )
    ideal = wl.total_cost / IDEAL_SPEED
    assert result.parallel_time < 1.25 * ideal
    assert node_share(result, 1) > 0.6
