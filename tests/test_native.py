"""Tests for the native threads backend (real kernel execution)."""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchicalSpec
from repro.native import NativeRunner
from repro.workloads import Workload, mandelbrot_workload


@pytest.fixture(scope="module")
def workload():
    return mandelbrot_workload(width=48, height=48, max_iter=64)


@pytest.fixture(scope="module")
def serial(workload):
    return workload.execute(0, workload.n)


def assemble(result, workload, dtype):
    out = np.empty(workload.n, dtype=dtype)
    for chunk in result.chunks:
        out[chunk.start : chunk.end] = result.outputs[chunk.start]
    return out


@pytest.mark.parametrize("technique", ["STATIC", "SS", "GSS", "TSS", "FAC2"])
def test_flat_execution_matches_serial(workload, serial, technique):
    runner = NativeRunner(workload, n_workers=4, collect_outputs=True)
    result = runner.run_flat(technique)
    result.verify(workload.n)
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)
    assert result.total_iterations == workload.n


@pytest.mark.parametrize("inter,intra", [("GSS", "FAC2"), ("FAC2", "SS"),
                                         ("TSS", "STATIC")])
def test_hierarchical_execution_matches_serial(workload, serial, inter, intra):
    runner = NativeRunner(workload, n_workers=8, collect_outputs=True)
    result = runner.run_hierarchical(HierarchicalSpec.of(inter, intra), n_groups=2)
    result.verify(workload.n)
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)


def test_hierarchical_group_divisibility(workload):
    runner = NativeRunner(workload, n_workers=6)
    with pytest.raises(ValueError, match="equal groups"):
        runner.run_hierarchical(HierarchicalSpec.of("GSS", "GSS"), n_groups=4)


def test_single_worker(workload, serial):
    runner = NativeRunner(workload, n_workers=1, collect_outputs=True)
    result = runner.run_flat("GSS")
    assert result.total_iterations == workload.n
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)


def test_worker_accounting(workload):
    runner = NativeRunner(workload, n_workers=4)
    result = runner.run_flat("FAC2")
    assert sum(result.per_worker_iterations.values()) == workload.n
    assert all(b >= 0 for b in result.per_worker_busy.values())
    assert result.wall_seconds > 0
    assert result.mode == "flat"


def test_requires_executor():
    bare = Workload("bare", np.ones(16))
    with pytest.raises(ValueError, match="no real executor"):
        NativeRunner(bare, n_workers=2)


def test_invalid_worker_count(workload):
    with pytest.raises(ValueError):
        NativeRunner(workload, n_workers=0)


def test_worker_exception_propagates():
    def bad_executor(start, size):
        raise RuntimeError("kernel exploded")

    wl = Workload("bad", np.ones(8), executor=bad_executor)
    runner = NativeRunner(wl, n_workers=2)
    with pytest.raises(RuntimeError, match="kernel exploded"):
        runner.run_flat("SS")


def test_outputs_not_collected_by_default(workload):
    runner = NativeRunner(workload, n_workers=2)
    result = runner.run_flat("GSS")
    assert result.outputs is None
