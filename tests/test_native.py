"""Tests for the native threads backend (real kernel execution)."""

import numpy as np
import pytest

from repro.cluster.machine import ClusterSpec, NodeSpec, homogeneous
from repro.core.hierarchy import HierarchicalSpec
from repro.native import NativeRunner
from repro.workloads import Workload, mandelbrot_workload


@pytest.fixture(scope="module")
def workload():
    return mandelbrot_workload(width=48, height=48, max_iter=64)


@pytest.fixture(scope="module")
def serial(workload):
    return workload.execute(0, workload.n)


def assemble(result, workload, dtype):
    out = np.empty(workload.n, dtype=dtype)
    for chunk in result.chunks:
        out[chunk.start : chunk.end] = result.outputs[chunk.start]
    return out


@pytest.mark.parametrize("technique", ["STATIC", "SS", "GSS", "TSS", "FAC2"])
def test_flat_execution_matches_serial(workload, serial, technique):
    runner = NativeRunner(workload, n_workers=4, collect_outputs=True)
    result = runner.run_flat(technique)
    result.verify(workload.n)
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)
    assert result.total_iterations == workload.n


@pytest.mark.parametrize("inter,intra", [("GSS", "FAC2"), ("FAC2", "SS"),
                                         ("TSS", "STATIC")])
def test_hierarchical_execution_matches_serial(workload, serial, inter, intra):
    runner = NativeRunner(workload, n_workers=8, collect_outputs=True)
    result = runner.run_hierarchical(HierarchicalSpec.of(inter, intra), n_groups=2)
    result.verify(workload.n)
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)


def test_hierarchical_group_divisibility(workload):
    runner = NativeRunner(workload, n_workers=6)
    with pytest.raises(ValueError, match="equal groups"):
        runner.run_hierarchical(HierarchicalSpec.of("GSS", "GSS"), n_groups=4)


def test_single_worker(workload, serial):
    runner = NativeRunner(workload, n_workers=1, collect_outputs=True)
    result = runner.run_flat("GSS")
    assert result.total_iterations == workload.n
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)


def test_worker_accounting(workload):
    runner = NativeRunner(workload, n_workers=4)
    result = runner.run_flat("FAC2")
    assert sum(result.per_worker_iterations.values()) == workload.n
    assert all(b >= 0 for b in result.per_worker_busy.values())
    assert result.wall_seconds > 0
    assert result.mode == "flat"


def test_requires_executor():
    bare = Workload("bare", np.ones(16))
    with pytest.raises(ValueError, match="no real executor"):
        NativeRunner(bare, n_workers=2)


def test_invalid_worker_count(workload):
    with pytest.raises(ValueError):
        NativeRunner(workload, n_workers=0)


def test_worker_exception_propagates():
    def bad_executor(start, size):
        raise RuntimeError("kernel exploded")

    wl = Workload("bad", np.ones(8), executor=bad_executor)
    runner = NativeRunner(wl, n_workers=2)
    with pytest.raises(RuntimeError, match="kernel exploded"):
        runner.run_flat("SS")


def test_outputs_not_collected_by_default(workload):
    runner = NativeRunner(workload, n_workers=2)
    result = runner.run_flat("GSS")
    assert result.outputs is None


# ---------------------------------------------------------------------------
# topology-aware hierarchical mode
# ---------------------------------------------------------------------------


def leaf_group_of(result, worker):
    return next(k for k, members in result.groups.items() if worker in members)


def assert_group_containment(result):
    """Every chunk a worker executed lies inside a range deposited into
    that worker's own leaf tier queue (never a foreign group's)."""
    for chunk in result.chunks:
        key = leaf_group_of(result, chunk.pe)
        assert any(
            start <= chunk.start and chunk.end <= start + size
            for start, size in result.group_deposits[key]
        ), f"chunk {chunk} escapes its group {key}'s deposits"


def test_topology_node_socket_groups(workload, serial):
    """Depth-2 on a dual-socket node: one group per socket, made of
    socket-contiguous workers (not modular stripes)."""
    node = NodeSpec(cores=8, sockets=2)
    runner = NativeRunner(workload, n_workers=8, collect_outputs=True)
    result = runner.run_hierarchical(
        HierarchicalSpec.of("GSS", "FAC2"), topology=node
    )
    result.verify(workload.n)
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)
    assert result.groups == {(0,): [0, 1, 2, 3], (1,): [4, 5, 6, 7]}
    assert_group_containment(result)


def test_topology_numa_groups_are_contiguous(workload):
    """Depth-3 on a socketed NUMA node: leaf groups are NUMA-contiguous
    worker blocks and deposits nest socket -> NUMA."""
    node = NodeSpec(cores=8, sockets=2, numa_per_socket=2)
    runner = NativeRunner(workload, n_workers=8)
    result = runner.run_hierarchical(
        HierarchicalSpec.parse("GSS+FAC2+SS"), topology=node
    )
    result.verify(workload.n)
    assert result.groups == {
        (0, 0): [0, 1], (0, 1): [2, 3], (1, 0): [4, 5], (1, 1): [6, 7],
    }
    assert_group_containment(result)
    # NUMA deposits nest inside their socket's deposits
    for key, deposits in result.group_deposits.items():
        if len(key) != 2:
            continue
        socket_ranges = result.group_deposits[key[:1]]
        for start, size in deposits:
            assert any(
                s <= start and start + size <= s + z
                for s, z in socket_ranges
            ), f"NUMA deposit ({start}, {size}) escapes socket {key[:1]}"


def test_topology_cluster_depth_four(workload, serial):
    """A depth-4 W+X+Y+Z stack runs through the full tier tree."""
    cluster = homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2)
    runner = NativeRunner(workload, n_workers=16, collect_outputs=True)
    result = runner.run_hierarchical(
        HierarchicalSpec.parse("GSS+FAC2+FAC2+SS"), topology=cluster
    )
    result.verify(workload.n)
    assert np.array_equal(assemble(result, workload, serial.dtype), serial)
    assert len(result.groups) == 8  # 2 nodes x 2 sockets x 2 NUMA
    assert_group_containment(result)


def test_topology_partial_occupancy(workload):
    """Fewer workers than cores: groups follow the placement prefix."""
    node = NodeSpec(cores=8, sockets=2, numa_per_socket=2)
    runner = NativeRunner(workload, n_workers=5)
    result = runner.run_hierarchical(
        HierarchicalSpec.parse("GSS+SS"), topology=node
    )
    result.verify(workload.n)
    assert result.groups == {(0,): [0, 1, 2, 3], (1,): [4]}


def test_topology_rejects_bad_arguments(workload):
    runner = NativeRunner(workload, n_workers=4)
    with pytest.raises(TypeError, match="not both"):
        runner.run_hierarchical(
            HierarchicalSpec.of("GSS", "SS"), n_groups=2,
            topology=NodeSpec(cores=4),
        )
    with pytest.raises(TypeError, match="n_groups .*or"):
        runner.run_hierarchical(HierarchicalSpec.of("GSS", "SS"))
    with pytest.raises(ValueError, match="oversubscribe"):
        runner.run_hierarchical(
            HierarchicalSpec.of("GSS", "SS"), topology=NodeSpec(cores=2)
        )
    with pytest.raises(ValueError, match="depth-4"):
        runner.run_hierarchical(
            HierarchicalSpec.parse("GSS+FAC2+FAC2+SS"),
            topology=NodeSpec(cores=4, sockets=2, numa_per_socket=2),
        )
    with pytest.raises(TypeError, match="NodeSpec or ClusterSpec"):
        runner.run_hierarchical(
            HierarchicalSpec.of("GSS", "SS"), topology="dual-socket"
        )


def test_topology_matches_flat_striping_when_degenerate(workload):
    """A 1-socket NodeSpec is one group — identical schedule to the
    legacy n_groups=1 striping (same calculators, same protocol)."""
    spec = HierarchicalSpec.of("GSS", "FAC2")
    runner = NativeRunner(workload, n_workers=4)
    topo = runner.run_hierarchical(spec, topology=NodeSpec(cores=4))
    legacy = runner.run_hierarchical(spec, n_groups=1)
    assert topo.total_iterations == legacy.total_iterations == workload.n
    assert sorted((c.start, c.size) for c in topo.chunks) == sorted(
        (c.start, c.size) for c in legacy.chunks
    )


def test_topology_simulated_lock_cost_reporting(workload):
    """The lock ledger prices worker<->queue distance.

    Which worker wins which grab is a real thread race, so the test
    pins the deterministic part: the reported penalty equals the
    hand-recomputed price of the recorded ledger (each acquisition
    charged the tier-atomic penalty between the worker's core and the
    queue home), per-NUMA leaf-queue grabs are always free, and the
    distance-blind default knobs price everything at zero.
    """
    from repro.cluster.costs import DEFAULT_COSTS, NUMA_PENALTY_COSTS

    cluster = homogeneous(1, 8, sockets_per_node=2, numa_per_socket=2)
    node = cluster.nodes[0]
    runner = NativeRunner(workload, n_workers=8)
    result = runner.run_hierarchical(
        HierarchicalSpec.parse("GSS+FAC2+FAC2+SS"), topology=cluster,
        costs=NUMA_PENALTY_COSTS,
    )
    # every executed chunk came from a ledgered leaf-queue acquisition
    assert sum(
        n for per_queue in result.group_lock_acquisitions.values()
        for n in per_queue.values()
    ) >= len(result.chunks)

    def path_of(worker):  # workers bind to cores in placement order
        return (0, node.socket_of_core(worker), node.numa_of_core(worker))

    mpi = NUMA_PENALTY_COSTS.mpi
    expected = 0.0
    for key, per_worker in result.group_lock_acquisitions.items():
        home_worker = min(result.groups[k][0] for k in result.groups
                          if k[: len(key)] == key)
        home = path_of(home_worker)
        for worker, n_acquired in per_worker.items():
            mine = path_of(worker)
            if mine[1] != home[1]:
                per_op = mpi.remote_numa_atomic_penalty + mpi.cross_socket_penalty
            elif mine[2] != home[2]:
                per_op = mpi.remote_numa_atomic_penalty
            else:
                per_op = 0.0
            expected += n_acquired * per_op
            if len(key) == 3:  # leaf NUMA queues: members are all home
                assert per_op == 0.0
    assert result.simulated_lock_penalty_s == pytest.approx(expected)

    # distance-blind default knobs price everything at zero
    free = runner.run_hierarchical(
        HierarchicalSpec.parse("GSS+SS"), topology=cluster,
        costs=DEFAULT_COSTS,
    )
    assert free.simulated_lock_penalty_s == 0.0
    # legacy striping mode has no topology to price against
    with pytest.raises(TypeError, match="requires topology"):
        runner.run_hierarchical(
            HierarchicalSpec.parse("GSS+SS"), n_groups=2,
            costs=NUMA_PENALTY_COSTS,
        )
