"""The NUMA machine tier (4th level) end to end.

Covers the machine model (NodeSpec/ClusterSpec ``numa_per_socket``),
NUMA-aware placement, depth-4 ``W+X+Y+Z`` stacks through both
hierarchical models, the CLI (``--numa``), ``GridRunner``/figure
sweeps, and the bit-exactness of the ``numa_per_socket=1`` default.
"""

import pytest

from repro.api import run_hierarchical
from repro.cli import main as cli_main
from repro.cluster.machine import ClusterSpec, NodeSpec, heterogeneous, homogeneous
from repro.cluster.topology import block_placement
from repro.core.chunking import verify_schedule
from repro.workloads import uniform_workload


# ---------------------------------------------------------------------------
# machine model
# ---------------------------------------------------------------------------


def test_numa_validation():
    with pytest.raises(ValueError, match=">= 1 NUMA"):
        NodeSpec(cores=4, numa_per_socket=0)
    with pytest.raises(ValueError, match="NUMA domains"):
        NodeSpec(cores=6, sockets=2, numa_per_socket=2)  # 3 cores/socket


def test_numa_of_core_mapping():
    node = NodeSpec(cores=8, sockets=2, numa_per_socket=2)
    assert node.cores_per_socket == 4
    assert node.cores_per_numa == 2
    assert node.numa_domains == 4
    # sockets: [0 0 0 0 | 1 1 1 1]; NUMA within socket: [0 0 1 1 | 0 0 1 1]
    assert [node.numa_of_core(c) for c in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]
    with pytest.raises(ValueError, match="outside node"):
        node.numa_of_core(8)


def test_cluster_numa_property_uniform_and_mixed():
    uniform = homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2)
    assert uniform.numa_per_socket == 2
    mixed = ClusterSpec(
        nodes=(
            NodeSpec(cores=8, sockets=2, numa_per_socket=2),
            NodeSpec(cores=8, sockets=2, numa_per_socket=1),
        )
    )
    with pytest.raises(ValueError, match="mixed NUMA"):
        mixed.numa_per_socket


def test_heterogeneous_numa_counts():
    cluster = heterogeneous([4, 8], socket_counts=[1, 2], numa_counts=[2, 2])
    assert cluster.nodes[0].numa_domains == 2
    assert cluster.nodes[1].numa_domains == 4
    with pytest.raises(ValueError, match="numa_counts"):
        heterogeneous([4, 8], numa_counts=[2])


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------


def test_block_placement_respects_numa_boundaries():
    placement = block_placement(
        homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2), ppn=6
    )
    # 6 ranks/node: NUMA (0,0)=[0,1], (0,1)=[2,3], (1,0)=[4,5]
    assert placement.ranks_on_numa(0, 0, 0) == [0, 1]
    assert placement.ranks_on_numa(0, 0, 1) == [2, 3]
    assert placement.ranks_on_numa(0, 1, 0) == [4, 5]
    assert placement.ranks_on_numa(0, 1, 1) == []
    assert placement.numas_on_socket(0, 0) == [0, 1]
    assert placement.numas_on_socket(0, 1) == [0]
    assert placement.numa_of(2) == 1
    assert placement.numa_rank(3) == 1
    # consecutive ranks never interleave NUMA domains
    for node in (0, 1):
        paths = [
            (placement.socket_of(r), placement.numa_of(r))
            for r in placement.ranks_on_node(node)
        ]
        assert paths == sorted(paths)


# ---------------------------------------------------------------------------
# depth-4 stacks through the models
# ---------------------------------------------------------------------------


def check_nesting(result, n):
    verify_schedule(result.subchunks, n)
    for upper, lower in zip(result.level_chunks, result.level_chunks[1:]):
        spans = sorted((u.start, u.end) for u in upper)
        for chunk in lower:
            assert any(
                start <= chunk.start and chunk.end <= end
                for start, end in spans
            ), f"sub-chunk {chunk} escapes every parent range"


@pytest.mark.parametrize("approach", ["mpi+mpi", "mpi+openmp"])
def test_depth_four_covers_and_nests(approach):
    wl = uniform_workload(400, seed=31)
    result = run_hierarchical(
        wl, homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2),
        inter="GSS+FAC2+FAC2+STATIC", approach=approach, ppn=8, seed=0,
    )
    check_nesting(result, wl.n)
    assert len(result.level_chunks) == 4


@pytest.mark.parametrize("approach", ["mpi+mpi", "mpi+openmp"])
def test_depth_four_on_single_numa_sockets(approach):
    """numa_per_socket=1: the NUMA tier degenerates to the socket tier."""
    wl = uniform_workload(300, seed=32)
    result = run_hierarchical(
        wl, homogeneous(2, 4, sockets_per_node=2),
        inter="GSS+FAC2+SS+STATIC", approach=approach, ppn=4, seed=0,
    )
    check_nesting(result, wl.n)


def test_depth_four_partial_numa_occupancy():
    """ppn below the core count leaves NUMA domains partially or fully
    empty; grouping follows the placement, not the raw machine."""
    wl = uniform_workload(300, seed=33)
    for ppn in (1, 3, 5):
        result = run_hierarchical(
            wl, homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2),
            inter="GSS+FAC2+FAC2+SS", approach="mpi+mpi", ppn=ppn, seed=0,
        )
        verify_schedule(result.subchunks, wl.n)


def test_depth_four_per_numa_locks():
    """Depth 4 allocates one shared window (own lock) per NUMA domain on
    top of the per-node and per-socket windows."""
    wl = uniform_workload(300, seed=34)
    result = run_hierarchical(
        wl, homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2),
        inter="GSS+FAC2+FAC2+SS", approach="mpi+mpi", ppn=8, seed=0,
    )
    lock_keys = set(result.counters["lock_stats"])
    # 2 node keys + 4 socket keys + 8 NUMA keys
    assert len([k for k in lock_keys if isinstance(k, int)]) == 2
    assert len([k for k in lock_keys if isinstance(k, tuple) and len(k) == 2]) == 4
    assert len([k for k in lock_keys if isinstance(k, tuple) and len(k) == 3]) == 8


def test_three_level_results_unchanged_by_numa_field():
    """Adding numa_per_socket=1 explicitly is bit-identical to the
    pre-NUMA machine (the golden differential covers depth <= 2; this
    pins depth 3)."""
    wl = uniform_workload(300, seed=35)
    kwargs = dict(
        inter="GSS+FAC2+SS", approach="mpi+mpi", ppn=8, seed=0,
    )
    base = run_hierarchical(
        wl, homogeneous(2, 8, sockets_per_node=2), **kwargs
    )
    explicit = run_hierarchical(
        wl, homogeneous(2, 8, sockets_per_node=2, numa_per_socket=1), **kwargs
    )
    assert base.parallel_time == explicit.parallel_time
    assert base.n_events == explicit.n_events
    assert [(c.start, c.size, c.pe) for c in base.subchunks] == [
        (c.start, c.size, c.pe) for c in explicit.subchunks
    ]


# ---------------------------------------------------------------------------
# CLI and GridRunner
# ---------------------------------------------------------------------------


def test_cli_run_depth_four(capsys):
    code = cli_main([
        "run", "--techniques", "GSS+FAC2+FAC2+STATIC", "--sockets", "2",
        "--numa", "2", "--nodes", "2", "--ppn", "8", "--scale", "tiny",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "GSS+FAC2+FAC2+STATIC" in out


def test_grid_runner_depth_four_sweep():
    from repro.experiments.harness import GridRunner
    from repro.workloads import mandelbrot_workload

    workload = mandelbrot_workload(width=16, height=16, max_iter=32)
    runner = GridRunner(
        workload=workload,
        ppn=8,
        node_counts=(2,),
        cluster_factory=lambda n: homogeneous(
            n, 8, sockets_per_node=2, numa_per_socket=2
        ),
    )
    cells = runner.sweep(
        "GSS", ["FAC2+FAC2+STATIC"], [("mpi+mpi", lambda intra: True)]
    )
    assert len(cells) == 1
    assert cells[0].label == "GSS+FAC2+FAC2+STATIC"
    assert cells[0].time > 0


def test_numa_variant_figure_spec():
    from repro.experiments.figures import numa_variant

    spec = numa_variant("fig5a", sockets_per_node=2, numa_per_socket=2)
    assert spec.figure_id == "fig5a-s2m2"
    assert spec.sockets_per_node == 2
    assert spec.numa_per_socket == 2
    assert all(intra.count("+") == 2 for intra in spec.intras)
    assert "NUMA" in spec.title
