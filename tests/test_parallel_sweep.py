"""Tests for the parallel sweep + content-addressed cell cache.

The hard guarantees of :mod:`repro.experiments.parallel`:

* a ``jobs=N`` sweep returns results identical to the serial sweep,
  cell for cell (``wall_seconds`` excepted — it measures the host);
* a second sweep against the same ``cache_dir`` runs zero simulations
  yet returns equal cells;
* changing the seed or the workload invalidates the cache cleanly.
"""

import numpy as np
import pytest

from repro.experiments.figures import APPROACHES, run_figure
from repro.experiments.harness import Cell, GridRunner
from repro.experiments.parallel import CellCache, cell_key, workload_fingerprint
from repro.experiments.workloads import figure_workload
from repro.cluster.costs import CALIBRATED_COSTS
from repro.cluster.machine import minihpc
from repro.workloads.base import Workload


@pytest.fixture(scope="module")
def workload():
    return figure_workload("mandelbrot", "tiny")


def sweep(workload, jobs=1, cache_dir=None, seed=0, intras=("STATIC", "SS", "GSS")):
    runner = GridRunner(
        workload=workload,
        ppn=4,
        node_counts=(2, 4),
        seed=seed,
        jobs=jobs,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )
    cells = runner.sweep("GSS", intras, APPROACHES)
    return cells, runner.last_sweep_stats


# ---------------------------------------------------------------------------
# determinism: parallel == serial
# ---------------------------------------------------------------------------
def test_parallel_sweep_identical_to_serial(workload):
    serial, _ = sweep(workload, jobs=1)
    parallel, stats = sweep(workload, jobs=4)
    assert stats["simulated"] == len(parallel) == len(serial)
    for a, b in zip(serial, parallel):
        assert a.same_result(b), f"parallel cell diverged: {a} vs {b}"
        # everything except wall_seconds must be byte-identical
        da, db = a.to_dict(), b.to_dict()
        da.pop("wall_seconds"), db.pop("wall_seconds")
        assert da == db


def test_figure_parallel_identical_to_serial():
    """The CLI path: ``repro figure --id fig5a --jobs 4`` == serial."""
    serial = run_figure("fig5a", scale="tiny", node_counts=(2,), jobs=1)
    parallel = run_figure("fig5a", scale="tiny", node_counts=(2,), jobs=4)
    assert len(serial.cells) == len(parallel.cells) > 0
    for a, b in zip(serial.cells, parallel.cells):
        assert a.same_result(b)


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------
def test_second_sweep_served_entirely_from_cache(workload, tmp_path):
    first, stats1 = sweep(workload, jobs=2, cache_dir=tmp_path)
    assert stats1["simulated"] == len(first)
    assert stats1["cache_hits"] == 0

    second, stats2 = sweep(workload, jobs=2, cache_dir=tmp_path)
    assert stats2["simulated"] == 0, "second sweep must run zero simulations"
    assert stats2["cache_hits"] == len(second)
    for a, b in zip(first, second):
        assert a.same_result(b)


def test_cache_hits_equal_across_serial_and_parallel(workload, tmp_path):
    first, _ = sweep(workload, jobs=1, cache_dir=tmp_path)
    cached, stats = sweep(workload, jobs=4, cache_dir=tmp_path)
    assert stats["simulated"] == 0
    for a, b in zip(first, cached):
        assert a.same_result(b)


def test_cache_invalidated_by_seed_change(workload, tmp_path):
    _, stats0 = sweep(workload, cache_dir=tmp_path, seed=0)
    _, stats1 = sweep(workload, cache_dir=tmp_path, seed=1)
    assert stats1["simulated"] == stats1["cells"], "new seed must miss the cache"


def test_cache_invalidated_by_workload_change(workload, tmp_path):
    _, stats0 = sweep(workload, cache_dir=tmp_path)
    rescaled = workload.scaled_to(workload.total_cost * 2.0)
    _, stats1 = sweep(rescaled, cache_dir=tmp_path)
    assert stats1["simulated"] == stats1["cells"], "new costs must miss the cache"


def test_cache_rejects_corrupt_entries(workload, tmp_path):
    cells, _ = sweep(workload, cache_dir=tmp_path)
    for path in tmp_path.glob("*.json"):
        path.write_text("{not json")
    again, stats = sweep(workload, cache_dir=tmp_path)
    assert stats["simulated"] == stats["cells"]
    for a, b in zip(cells, again):
        assert a.same_result(b)


# ---------------------------------------------------------------------------
# keys and serialization
# ---------------------------------------------------------------------------
def test_cell_dict_roundtrip():
    cell = Cell(
        approach="mpi+mpi",
        inter="GSS",
        intra="SS",
        nodes=4,
        time=1.25,
        overhead_fraction=0.1,
        idle_fraction=0.05,
        cov=0.3,
        n_events=12345,
        wall_seconds=0.7,
    )
    assert Cell.from_dict(cell.to_dict()) == cell


def test_workload_fingerprint_tracks_costs():
    a = Workload("w", np.array([1.0, 2.0, 3.0]))
    b = Workload("w", np.array([1.0, 2.0, 3.0]))
    c = Workload("w", np.array([1.0, 2.0, 3.0001]))
    d = Workload("w2", np.array([1.0, 2.0, 3.0]))
    assert workload_fingerprint(a) == workload_fingerprint(b)
    assert workload_fingerprint(a) != workload_fingerprint(c)
    assert workload_fingerprint(a) != workload_fingerprint(d)


def test_cell_key_distinguishes_every_input(workload):
    fp = workload_fingerprint(workload)
    cluster = minihpc(2, 4)
    base = cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0)
    assert base == cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0)
    variants = [
        cell_key(fp, cluster, "mpi+openmp", "GSS", "SS", 2, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "TSS", "SS", 2, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "STATIC", 2, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 4, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 8, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 7),
        cell_key(fp, minihpc(4, 4), "mpi+mpi", "GSS", "SS", 2, 4, 0),
        # PR-5 inputs: the NUMA tier, cost-model overrides, and the
        # window-placement policy all change the simulated result, so
        # each must change the digest
        cell_key(
            fp, minihpc(2, 4, sockets_per_node=2, numa_per_socket=2),
            "mpi+mpi", "GSS", "SS", 2, 4, 0,
        ),
        cell_key(
            fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
            costs=CALIBRATED_COSTS,
        ),
        cell_key(
            fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
            placement="optimized",
        ),
        cell_key(
            fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
            placement={"global": 3},
        ),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_cell_cache_len_and_version_guard(workload, tmp_path):
    cache = CellCache(str(tmp_path))
    assert len(cache) == 0
    cells, _ = sweep(workload, cache_dir=tmp_path)
    cache = CellCache(str(tmp_path))
    assert len(cache) == len(cells)
